//! Umbrella package holding the workspace-level integration tests and
//! examples. See the `m3` crate for the public API.
