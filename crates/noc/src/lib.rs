//! The packet-switched network-on-chip (NoC) connecting PEs and memory.
//!
//! The Tomahawk platform integrates all PEs and the DRAM module into a
//! packet-switched NoC (paper §1.4, §4.1); every DTU transfer — messages and
//! RDMA-style memory accesses alike — crosses it. This crate models:
//!
//! - a 2D [`mesh`](Topology) topology with dimension-ordered
//!   ([XY](route)) routing,
//! - per-link bandwidth with *contention*: a transfer reserves each link on
//!   its route, so concurrent transfers over shared links serialize,
//! - per-hop router latency, pipelined across the route.
//!
//! The model is analytic rather than flit-by-flit: when a transfer is issued,
//! its completion time is computed immediately from the current link
//! reservations. That keeps the event count low while preserving the
//! first-order behaviour the paper's evaluation depends on (bandwidth limits
//! and serialization under load, exercised by the Figure 6 scalability
//! experiment).

mod islands;
mod network;
mod routing;
mod topology;

pub use islands::IslandMap;
pub use network::{Noc, NocConfig, Transfer};
pub use routing::{route, Link};
pub use topology::{Coord, Topology};
