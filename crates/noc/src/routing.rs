//! Dimension-ordered (XY) routing.

use m3_base::PeId;

use crate::topology::{Coord, Topology};

/// A directed link between two adjacent mesh positions.
///
/// Links are identified by their endpoint coordinates; the two directions of
/// a physical channel are distinct links (full-duplex, as in typical NoCs).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Link {
    /// Source position.
    pub from: Coord,
    /// Destination position.
    pub to: Coord,
}

/// Computes the XY route from `src` to `dst`: first along X, then along Y.
///
/// XY routing is deterministic and deadlock-free on a mesh, which matches the
/// simple router a platform like Tomahawk employs. The returned sequence
/// contains one [`Link`] per hop; it is empty when `src == dst` (the DTU
/// still moves the data, but no NoC link is crossed).
///
/// # Panics
///
/// Panics if either node is not part of the mesh.
///
/// # Examples
///
/// ```
/// use m3_base::PeId;
/// use m3_noc::{route, Topology};
///
/// let topo = Topology::new(4, 4, 16);
/// let hops = route(&topo, PeId::new(0), PeId::new(5));
/// assert_eq!(hops.len(), 2); // one X hop, one Y hop
/// ```
pub fn route(topo: &Topology, src: PeId, dst: PeId) -> Vec<Link> {
    let mut cur = topo.coord(src);
    let goal = topo.coord(dst);
    let mut links = Vec::with_capacity(topo.hops(src, dst) as usize);
    while cur.x != goal.x {
        let next = Coord {
            x: if goal.x > cur.x { cur.x + 1 } else { cur.x - 1 },
            y: cur.y,
        };
        links.push(Link {
            from: cur,
            to: next,
        });
        cur = next;
    }
    while cur.y != goal.y {
        let next = Coord {
            x: cur.x,
            y: if goal.y > cur.y { cur.y + 1 } else { cur.y - 1 },
        };
        links.push(Link {
            from: cur,
            to: next,
        });
        cur = next;
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(4, 4, 16)
    }

    #[test]
    fn self_route_is_empty() {
        assert!(route(&topo(), PeId::new(5), PeId::new(5)).is_empty());
    }

    #[test]
    fn route_length_equals_hops() {
        let t = topo();
        for a in 0..16 {
            for b in 0..16 {
                let r = route(&t, PeId::new(a), PeId::new(b));
                assert_eq!(r.len() as u32, t.hops(PeId::new(a), PeId::new(b)));
            }
        }
    }

    #[test]
    fn route_is_contiguous_and_ends_at_destination() {
        let t = topo();
        let r = route(&t, PeId::new(0), PeId::new(15));
        assert_eq!(r.first().unwrap().from, t.coord(PeId::new(0)));
        assert_eq!(r.last().unwrap().to, t.coord(PeId::new(15)));
        for pair in r.windows(2) {
            assert_eq!(pair[0].to, pair[1].from);
        }
    }

    #[test]
    fn x_before_y() {
        let t = topo();
        // 0 at (0,0), 10 at (2,2): expect two X hops then two Y hops.
        let r = route(&t, PeId::new(0), PeId::new(10));
        assert_eq!(r.len(), 4);
        assert!(r[0].from.y == r[0].to.y && r[1].from.y == r[1].to.y);
        assert!(r[2].from.x == r[2].to.x && r[3].from.x == r[3].to.x);
    }

    #[test]
    fn reverse_direction_routes_differ() {
        // XY routing is not symmetric in the links used (x-first both ways),
        // but hop counts match.
        let t = topo();
        let fwd = route(&t, PeId::new(1), PeId::new(14));
        let back = route(&t, PeId::new(14), PeId::new(1));
        assert_eq!(fwd.len(), back.len());
        // Directions are opposite: the first forward link is not in the
        // backward route.
        assert!(!back.contains(&fwd[0]));
    }

    #[test]
    fn negative_direction_hops() {
        let t = topo();
        // From (3,3)=15 to (0,0)=0: x decreasing, then y decreasing.
        let r = route(&t, PeId::new(15), PeId::new(0));
        assert_eq!(r.len(), 6);
        assert!(r[0].to.x < r[0].from.x);
        assert!(r[5].to.y < r[5].from.y);
    }
}
