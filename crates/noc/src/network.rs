//! Transfer scheduling with link contention.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use m3_base::cycles::{transfer_time, Cycles};
use m3_base::PeId;
use m3_fault::FaultPlane;
use m3_sim::{keys, Component, Event, EventKind, Metrics, Recorder, StatHandle, Stats};

use crate::routing::{route, Link};
use crate::topology::Topology;

/// Tuning parameters of the NoC model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NocConfig {
    /// Link bandwidth in bytes per cycle. The DTU moves 8 bytes per cycle
    /// (paper §5.4), and the NoC links are sized to match, so the DTU —
    /// unlike the Xtensa core's `memcpy` — saturates the memory bandwidth.
    pub bytes_per_cycle: u64,
    /// Router traversal latency per hop.
    pub hop_latency: Cycles,
    /// Wire overhead added to every transfer (routing header/flit framing).
    pub packet_overhead: u64,
    /// When `false`, link reservations are skipped: transfers see an
    /// uncontended network. Used for ablations and for experiments that
    /// assume a perfectly scaling NoC (paper §5.7).
    pub contention: bool,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            bytes_per_cycle: m3_base::cfg::DTU_BYTES_PER_CYCLE,
            hop_latency: Cycles::new(3),
            packet_overhead: 8,
            contention: true,
        }
    }
}

/// The outcome of scheduling one transfer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Transfer {
    /// Cycle at which the last byte arrives at the destination.
    pub completes_at: Cycles,
    /// Cycles the transfer spent waiting for busy links (contention).
    pub waited: Cycles,
    /// Number of NoC hops crossed.
    pub hops: u32,
    /// Payload bytes moved.
    pub bytes: u64,
}

struct NocInner {
    topo: Topology,
    cfg: NocConfig,
    /// Per-directed-link time until which the link is reserved.
    busy_until: BTreeMap<Link, Cycles>,
    stats: Stats,
    /// Handles for the three counters bumped on every transfer, resolved
    /// once so `schedule` skips the string-keyed map lookups.
    stat_transfers: StatHandle,
    stat_bytes: StatHandle,
    stat_wait: StatHandle,
    /// Event sink; a detached (disabled) recorder until [`Noc::attach`].
    tracer: Recorder,
    /// Per-PE metrics; a detached bag until [`Noc::attach`].
    metrics: Metrics,
    /// Fault-injection plane; `None` (the default) means the clean-path
    /// code is byte-identical to a build without fault support.
    faults: Option<Rc<FaultPlane>>,
}

/// The network-on-chip: schedules transfers between mesh nodes.
///
/// `Noc` is cheaply cloneable; clones share the link state.
///
/// # Examples
///
/// ```
/// use m3_base::{Cycles, PeId};
/// use m3_noc::{Noc, NocConfig, Topology};
///
/// let noc = Noc::new(Topology::with_nodes(4), NocConfig::default());
/// let t = noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(3), 4096);
/// assert!(t.completes_at > Cycles::new(4096 / 8)); // bandwidth + latency
/// ```
#[derive(Clone)]
pub struct Noc {
    inner: Rc<RefCell<NocInner>>,
}

impl fmt::Debug for Noc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Noc")
            .field("topology", &inner.topo)
            .field("config", &inner.cfg)
            .field("reserved_links", &inner.busy_until.len())
            .finish()
    }
}

impl Noc {
    /// Creates a NoC over `topo` with the given configuration.
    pub fn new(topo: Topology, cfg: NocConfig) -> Noc {
        let stats = Stats::new();
        Noc {
            inner: Rc::new(RefCell::new(NocInner {
                topo,
                cfg,
                busy_until: BTreeMap::new(),
                stat_transfers: stats.handle("noc.transfers"),
                stat_bytes: stats.handle("noc.bytes"),
                stat_wait: stats.handle("noc.wait_cycles"),
                stats,
                tracer: Recorder::new(),
                metrics: Metrics::new(),
                faults: None,
            })),
        }
    }

    /// Connects this NoC to a simulation's event recorder and metrics bag
    /// (done by the DTU fabric on construction). Until attached, events go
    /// to a detached disabled recorder and metrics to a private bag.
    // m3lint: allow(cycle-accounting): instrumentation attach before the run; tracing never changes modelled timing
    pub fn attach(&self, tracer: Recorder, metrics: Metrics) {
        let mut inner = self.inner.borrow_mut();
        inner.tracer = tracer;
        inner.metrics = metrics;
    }

    /// Arms the fault-injection plane: subsequent transfers are subject to
    /// the plan's link delays and partitions.
    // m3lint: allow(cycle-accounting): harness config-plane: arms the fault plane before cycles advance
    pub fn set_faults(&self, faults: Rc<FaultPlane>) {
        self.inner.borrow_mut().faults = Some(faults);
    }

    /// The topology this NoC runs on.
    pub fn topology(&self) -> Topology {
        self.inner.borrow().topo.clone()
    }

    /// The active configuration.
    pub fn config(&self) -> NocConfig {
        self.inner.borrow().cfg.clone()
    }

    /// Shared statistics (`noc.transfers`, `noc.bytes`, `noc.wait_cycles`).
    pub fn stats(&self) -> Stats {
        self.inner.borrow().stats.clone()
    }

    /// Schedules a transfer of `bytes` payload bytes from `src` to `dst`
    /// starting at time `now`, reserving the links along the XY route.
    ///
    /// The transfer is modelled as a single wormhole burst: its wire duration
    /// is `(bytes + overhead) / bandwidth`, each link on the route is
    /// reserved for that duration starting no earlier than the head flit's
    /// arrival, and the head flit pays the hop latency per router. Every
    /// node additionally has a single *injection port* into its router
    /// (modelled as a self-link), so concurrent transfers out of one node —
    /// e.g. two RDMA reads from the DRAM module — serialize at the source
    /// even when their routes diverge.
    ///
    /// # Panics
    ///
    /// Panics if either node is not part of the mesh.
    pub fn schedule(&self, now: Cycles, src: PeId, dst: PeId, bytes: u64) -> Transfer {
        let mut inner = self.inner.borrow_mut();
        let NocConfig {
            bytes_per_cycle,
            hop_latency,
            packet_overhead,
            contention,
        } = inner.cfg.clone();
        let duration = transfer_time(bytes + packet_overhead, bytes_per_cycle);
        let src_coord = inner.topo.coord(src);
        let mut links = vec![Link {
            from: src_coord,
            to: src_coord,
        }];
        links.extend(route(&inner.topo, src, dst));
        let hops = links.len() as u32 - 1;

        // Fault plane: a partition holds the transfer at the source until
        // the link heals; a link-delay fault stretches the wire time.
        let mut depart = now;
        let mut fault_delay = Cycles::ZERO;
        if let Some(faults) = &inner.faults {
            if let Some(release) = faults.partition_release(now, src, dst) {
                inner.tracer.record_with(|| Event {
                    at: now,
                    dur: release - now,
                    pe: Some(src),
                    comp: Component::Noc,
                    kind: EventKind::FaultInject {
                        fault: "partition".to_string(),
                        target: src,
                    },
                });
                depart = release;
            }
            fault_delay = faults.extra_delay(now, src, dst);
            if !fault_delay.is_zero() {
                inner.tracer.record_with(|| Event {
                    at: now,
                    dur: fault_delay,
                    pe: Some(src),
                    comp: Component::Noc,
                    kind: EventKind::FaultInject {
                        fault: "link_delay".to_string(),
                        target: src,
                    },
                });
            }
        }

        let mut arrival = depart;
        let mut waited = depart - now;
        for link in links {
            let free_at = if contention {
                inner.busy_until.get(&link).copied().unwrap_or(Cycles::ZERO)
            } else {
                Cycles::ZERO
            };
            let start = arrival.max(free_at);
            waited += start - arrival;
            if contention {
                inner.busy_until.insert(link, start + duration);
            }
            arrival = start + hop_latency;
        }
        let completes_at = arrival + duration + fault_delay;

        inner.stats.incr_handle(inner.stat_transfers);
        inner.stats.add_handle(inner.stat_bytes, bytes);
        inner.stats.add_handle(inner.stat_wait, waited.as_u64());
        // Each of the hops+1 links (injection port included) is reserved
        // for the wire duration; attribute that to the sourcing node.
        inner.metrics.add(
            src,
            keys::NOC_LINK_BUSY,
            duration.as_u64().saturating_mul(u64::from(hops) + 1),
        );
        inner.metrics.add(src, keys::NOC_WAIT, waited.as_u64());
        inner.tracer.record_with(|| Event {
            at: now,
            dur: completes_at - now,
            pe: Some(src),
            comp: Component::Noc,
            kind: EventKind::NocXfer {
                src,
                dst,
                bytes,
                hops,
                waited,
            },
        });
        Transfer {
            completes_at,
            waited,
            hops,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noc4() -> Noc {
        Noc::new(Topology::new(2, 2, 4), NocConfig::default())
    }

    #[test]
    fn local_transfer_pays_only_bandwidth() {
        let noc = noc4();
        let t = noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(0), 64);
        // Injection port (3) + (64 + 8 overhead) / 8 = 9 cycles, no hops.
        assert_eq!(t.completes_at, Cycles::new(3 + 9));
        assert_eq!(t.hops, 0);
        assert_eq!(t.waited, Cycles::ZERO);
    }

    #[test]
    fn remote_transfer_pays_hop_latency() {
        let noc = noc4();
        // 0 -> 3 is two hops on a 2x2 mesh.
        let t = noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(3), 64);
        assert_eq!(t.hops, 2);
        // Injection port + 2 hops, 3 cycles each, + 9 cycles wire time.
        assert_eq!(t.completes_at, Cycles::new(3 * 3 + 9));
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let noc = noc4();
        let t = noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(1), 2 * 1024 * 1024);
        let wire = (2 * 1024 * 1024u64 + 8).div_ceil(8);
        // Injection port + one hop + wire.
        assert_eq!(t.completes_at, Cycles::new(6 + wire));
        // Sanity: about 262k cycles for 2 MiB at 8 B/cycle (paper §5.4).
        assert!(t.completes_at.as_u64() > 262_000 && t.completes_at.as_u64() < 263_000);
    }

    #[test]
    fn shared_link_serializes_transfers() {
        let noc = noc4();
        // Two transfers over the same link 0 -> 1 issued at the same time.
        let a = noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(1), 800);
        let b = noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(1), 800);
        assert_eq!(a.waited, Cycles::ZERO);
        assert!(b.waited >= Cycles::new(100), "second transfer must queue");
        assert!(b.completes_at > a.completes_at);
    }

    #[test]
    fn disjoint_routes_do_not_interfere() {
        let noc = Noc::new(Topology::new(4, 4, 16), NocConfig::default());
        let a = noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(1), 4096);
        let b = noc.schedule(Cycles::ZERO, PeId::new(14), PeId::new(15), 4096);
        assert_eq!(a.waited, Cycles::ZERO);
        assert_eq!(b.waited, Cycles::ZERO);
        assert_eq!(a.completes_at, b.completes_at);
    }

    #[test]
    fn contention_disabled_never_waits() {
        let noc = Noc::new(
            Topology::new(2, 2, 4),
            NocConfig {
                contention: false,
                ..NocConfig::default()
            },
        );
        for _ in 0..10 {
            let t = noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(1), 1 << 20);
            assert_eq!(t.waited, Cycles::ZERO);
        }
    }

    #[test]
    fn link_frees_after_reservation() {
        let noc = noc4();
        let a = noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(1), 800);
        // Issue after the first completes: no waiting.
        let b = noc.schedule(a.completes_at, PeId::new(0), PeId::new(1), 800);
        assert_eq!(b.waited, Cycles::ZERO);
    }

    #[test]
    fn opposite_directions_are_independent_links() {
        let noc = noc4();
        let a = noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(1), 1 << 16);
        let b = noc.schedule(Cycles::ZERO, PeId::new(1), PeId::new(0), 1 << 16);
        assert_eq!(a.waited, Cycles::ZERO);
        assert_eq!(b.waited, Cycles::ZERO, "full-duplex links");
    }

    #[test]
    fn injection_port_serializes_same_source_transfers() {
        // Routes diverge immediately, but both leave node 0: the single
        // injection port makes the second transfer wait.
        let noc = Noc::new(Topology::new(2, 2, 4), NocConfig::default());
        let a = noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(1), 800);
        let b = noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(2), 800);
        assert_eq!(a.waited, Cycles::ZERO);
        assert!(b.waited >= Cycles::new(100), "port contention: {b:?}");
    }

    #[test]
    fn stats_accumulate() {
        let noc = noc4();
        noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(1), 100);
        noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(2), 200);
        assert_eq!(noc.stats().get("noc.transfers"), 2);
        assert_eq!(noc.stats().get("noc.bytes"), 300);
    }

    #[test]
    fn attached_metrics_and_tracer_see_transfers() {
        let noc = noc4();
        let tracer = Recorder::new();
        let metrics = Metrics::new();
        noc.attach(tracer.clone(), metrics.clone());
        tracer.enable();
        let a = noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(1), 800);
        let b = noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(1), 800);
        assert!(b.waited > Cycles::ZERO);
        let src = PeId::new(0);
        // (800 + 8) / 8 = 101 cycles wire time, 2 links (port + hop) each.
        assert_eq!(metrics.get(src, keys::NOC_LINK_BUSY), 101 * 2 * 2);
        assert_eq!(metrics.get(src, keys::NOC_WAIT), b.waited.as_u64());
        let events = tracer.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind.tag(), "noc_xfer");
        assert_eq!(events[0].dur, a.completes_at);
        assert_eq!(events[0].pe, Some(src));
    }

    #[test]
    fn partition_holds_transfer_until_heal() {
        use m3_fault::{CycleWindow, FaultPlan, FaultPlane};
        let noc = noc4();
        let plan = FaultPlan::new().partition(
            PeId::new(0),
            PeId::new(1),
            CycleWindow::new(Cycles::ZERO, Cycles::new(1_000)),
        );
        noc.set_faults(Rc::new(FaultPlane::new(plan)));
        let clean = noc4().schedule(Cycles::ZERO, PeId::new(0), PeId::new(1), 64);
        let held = noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(1), 64);
        assert_eq!(held.waited, Cycles::new(1_000));
        assert_eq!(held.completes_at, Cycles::new(1_000) + clean.completes_at);
        // Both directions are severed.
        let back = noc.schedule(Cycles::new(10), PeId::new(1), PeId::new(0), 64);
        assert!(back.waited >= Cycles::new(990));
        // After the heal, traffic is clean again.
        let after = noc.schedule(Cycles::new(2_000), PeId::new(0), PeId::new(1), 64);
        assert_eq!(after.waited, Cycles::ZERO);
    }

    #[test]
    fn link_delay_stretches_only_windowed_transfers() {
        use m3_fault::{CycleWindow, FaultPlan, FaultPlane};
        let noc = noc4();
        let plan = FaultPlan::new().delay_link(
            PeId::new(0),
            PeId::new(1),
            CycleWindow::new(Cycles::new(100), Cycles::new(200)),
            Cycles::new(77),
        );
        noc.set_faults(Rc::new(FaultPlane::new(plan)));
        let clean = noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(1), 64);
        let slowed = noc.schedule(Cycles::new(150), PeId::new(0), PeId::new(1), 64);
        let base = clean.completes_at;
        assert_eq!(
            slowed.completes_at,
            Cycles::new(150) + base + Cycles::new(77)
        );
        // Reverse direction is unaffected (delays are directional).
        let reverse = noc.schedule(Cycles::new(150), PeId::new(1), PeId::new(0), 64);
        assert_eq!(reverse.completes_at, Cycles::new(150) + base);
    }

    #[test]
    fn zero_byte_transfer_still_pays_overhead() {
        let noc = noc4();
        let t = noc.schedule(Cycles::ZERO, PeId::new(0), PeId::new(1), 0);
        // Port + hop + 8/8 overhead.
        assert_eq!(t.completes_at, Cycles::new(6 + 1));
    }
}
