//! The 2D mesh topology.

use m3_base::PeId;

/// A position in the mesh grid.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Coord {
    /// Column, 0-based from the left.
    pub x: u32,
    /// Row, 0-based from the top.
    pub y: u32,
}

/// A 2D mesh of NoC nodes.
///
/// Every NoC endpoint — each PE and the DRAM module — occupies one mesh
/// position. Node `i` sits at `(i % width, i / width)`, filling rows first.
///
/// # Examples
///
/// ```
/// use m3_base::PeId;
/// use m3_noc::Topology;
///
/// let topo = Topology::with_nodes(8); // 3x3 grid, last position unused
/// assert_eq!(topo.coord(PeId::new(0)).x, 0);
/// assert_eq!(topo.hops(PeId::new(0), PeId::new(7)), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    width: u32,
    height: u32,
    nodes: u32,
}

impl Topology {
    /// Creates a `width` x `height` mesh with `nodes` occupied positions.
    ///
    /// # Panics
    ///
    /// Panics if the grid cannot hold `nodes`, or any dimension is zero.
    pub fn new(width: u32, height: u32, nodes: u32) -> Topology {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        assert!(
            nodes >= 1 && nodes <= width * height,
            "mesh {width}x{height} cannot hold {nodes} nodes"
        );
        Topology {
            width,
            height,
            nodes,
        }
    }

    /// Creates the smallest near-square mesh holding `nodes` positions.
    pub fn with_nodes(nodes: u32) -> Topology {
        assert!(nodes >= 1, "need at least one node");
        let width = (nodes as f64).sqrt().ceil() as u32;
        let height = nodes.div_ceil(width);
        Topology::new(width, height, nodes)
    }

    /// Grid width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of occupied positions.
    pub fn node_count(&self) -> u32 {
        self.nodes
    }

    /// Whether `node` is a valid node of this mesh.
    pub fn contains(&self, node: PeId) -> bool {
        node.raw() < self.nodes
    }

    /// The grid position of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the mesh.
    pub fn coord(&self, node: PeId) -> Coord {
        assert!(self.contains(node), "{node} outside mesh");
        Coord {
            x: node.raw() % self.width,
            y: node.raw() / self.width,
        }
    }

    /// The node at a grid position, if occupied.
    pub fn node_at(&self, c: Coord) -> Option<PeId> {
        if c.x >= self.width || c.y >= self.height {
            return None;
        }
        let raw = c.y * self.width + c.x;
        (raw < self.nodes).then_some(PeId::new(raw))
    }

    /// Manhattan distance between two nodes (the hop count of XY routing).
    ///
    /// # Panics
    ///
    /// Panics if either node is not part of the mesh.
    pub fn hops(&self, a: PeId, b: PeId) -> u32 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_nodes_picks_near_square() {
        let t = Topology::with_nodes(8);
        assert_eq!((t.width(), t.height()), (3, 3));
        let t = Topology::with_nodes(16);
        assert_eq!((t.width(), t.height()), (4, 4));
        let t = Topology::with_nodes(17);
        assert_eq!((t.width(), t.height()), (5, 4));
        let t = Topology::with_nodes(1);
        assert_eq!((t.width(), t.height()), (1, 1));
    }

    #[test]
    fn coord_roundtrip() {
        let t = Topology::new(4, 4, 16);
        for i in 0..16 {
            let node = PeId::new(i);
            let c = t.coord(node);
            assert_eq!(t.node_at(c), Some(node));
        }
    }

    #[test]
    fn node_at_rejects_out_of_grid() {
        let t = Topology::new(3, 3, 8);
        assert_eq!(t.node_at(Coord { x: 2, y: 2 }), None); // position 8 unoccupied
        assert_eq!(t.node_at(Coord { x: 5, y: 0 }), None);
        assert_eq!(t.node_at(Coord { x: 0, y: 0 }), Some(PeId::new(0)));
    }

    #[test]
    fn hops_is_manhattan_distance() {
        let t = Topology::new(4, 4, 16);
        assert_eq!(t.hops(PeId::new(0), PeId::new(0)), 0);
        assert_eq!(t.hops(PeId::new(0), PeId::new(3)), 3);
        assert_eq!(t.hops(PeId::new(0), PeId::new(15)), 6);
        assert_eq!(t.hops(PeId::new(5), PeId::new(6)), 1);
    }

    #[test]
    fn hops_is_symmetric() {
        let t = Topology::new(4, 3, 12);
        for a in 0..12 {
            for b in 0..12 {
                assert_eq!(
                    t.hops(PeId::new(a), PeId::new(b)),
                    t.hops(PeId::new(b), PeId::new(a))
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn coord_of_foreign_node_panics() {
        Topology::new(2, 2, 4).coord(PeId::new(4));
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn too_many_nodes_panics() {
        Topology::new(2, 2, 5);
    }
}
