//! Island partitioning for conservative-lookahead parallel simulation.
//!
//! A conservative PDES engine (parti-gem5, MGSim style) may run disjoint
//! parts of the mesh concurrently as long as no event can cross between
//! them in less time than the synchronization window. The NoC provides
//! that guarantee structurally: every cross-island transfer pays at least
//! the injection port plus one router hop plus one wire cycle, so the
//! minimum cross-island delivery latency is a sound *lookahead*.
//!
//! Islands are contiguous column blocks of the mesh. With XY routing a
//! message leaves its source column block exactly once, so column blocks
//! also minimize the number of boundary links — and they keep each
//! island's node set an interval of PE ids, which makes the partition easy
//! to reason about in traces.

use m3_base::cycles::Cycles;
use m3_base::PeId;

use crate::network::NocConfig;
use crate::topology::Topology;

/// A partition of the mesh into contiguous column-block islands.
///
/// # Examples
///
/// ```
/// use m3_base::PeId;
/// use m3_noc::{IslandMap, NocConfig, Topology};
///
/// let map = IslandMap::columns(Topology::new(4, 4, 16), 2);
/// assert_eq!(map.count(), 2);
/// assert_eq!(map.island_of(PeId::new(1)), 0); // column 1
/// assert_eq!(map.island_of(PeId::new(2)), 1); // column 2
/// // Adjacent columns: injection port + 1 hop @ 3 cycles + 1 wire cycle.
/// assert_eq!(
///     map.lookahead(&NocConfig::default()),
///     m3_base::Cycles::new(7)
/// );
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IslandMap {
    topo: Topology,
    /// `first_col[i]` is the leftmost column of island `i`; a final
    /// sentinel entry holds the mesh width, so island `i` owns columns
    /// `first_col[i] .. first_col[i + 1]`.
    first_col: Vec<u32>,
}

impl IslandMap {
    /// Splits `topo` into (up to) `islands` contiguous column blocks.
    ///
    /// Wide islands come first when the width does not divide evenly.
    /// When `islands` exceeds the mesh width the count is clamped — one
    /// column is the finest partition XY routing can isolate.
    ///
    /// # Panics
    ///
    /// Panics if `islands` is zero.
    pub fn columns(topo: Topology, islands: u32) -> IslandMap {
        assert!(islands > 0, "need at least one island");
        let islands = islands.min(topo.width());
        let base = topo.width() / islands;
        let extra = topo.width() % islands;
        let mut first_col = Vec::with_capacity(islands as usize + 1);
        let mut col = 0;
        for i in 0..islands {
            first_col.push(col);
            col += base + u32::from(i < extra);
        }
        first_col.push(topo.width());
        IslandMap { topo, first_col }
    }

    /// Number of islands in the partition.
    pub fn count(&self) -> u32 {
        self.first_col.len() as u32 - 1
    }

    /// The topology being partitioned.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The island owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the mesh.
    pub fn island_of(&self, node: PeId) -> u32 {
        let x = self.topo.coord(node).x;
        // partition_point: first island whose start column is past x.
        self.first_col.partition_point(|&c| c <= x) as u32 - 1
    }

    /// The nodes of island `i`, in PE-id order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not an island of this map.
    pub fn nodes_of(&self, i: u32) -> Vec<PeId> {
        let (lo, hi) = (self.first_col[i as usize], self.first_col[i as usize + 1]);
        (0..self.topo.node_count())
            .map(PeId::new)
            .filter(|&n| {
                let x = self.topo.coord(n).x;
                (lo..hi).contains(&x)
            })
            .collect()
    }

    /// The minimum XY hop count between any two nodes in different islands.
    ///
    /// `None` for a single-island map (nothing ever crosses).
    pub fn min_cross_hops(&self) -> Option<u32> {
        if self.count() < 2 {
            return None;
        }
        // Column blocks: the closest cross-island pair sits on the two
        // sides of a block boundary, one hop apart — unless a boundary
        // column has no occupied neighbour row, so check exhaustively.
        let mut min = None;
        for a in 0..self.topo.node_count() {
            for b in (a + 1)..self.topo.node_count() {
                let (a, b) = (PeId::new(a), PeId::new(b));
                if self.island_of(a) != self.island_of(b) {
                    let h = self.topo.hops(a, b);
                    min = Some(min.map_or(h, |m: u32| m.min(h)));
                }
            }
        }
        min
    }

    /// The sound lookahead for this partition under `cfg`: the minimum
    /// time between a cross-island transfer being issued and its first
    /// observable effect on the destination island.
    ///
    /// Derivation, following [`crate::Noc::schedule`]: the head flit pays
    /// the injection port plus one router per hop (`(hops + 1) *
    /// hop_latency`), and even a zero-byte message pays at least one wire
    /// cycle for the packet overhead. Contention and fault delays only
    /// *increase* latency, so they never invalidate the bound. An engine
    /// synchronizing islands every `lookahead` cycles therefore never
    /// delivers an event into a window that has already run.
    ///
    /// A single-island map has no cross traffic; the engine may pick any
    /// window width, so this returns the uncontended single-hop latency
    /// as a reasonable default.
    pub fn lookahead(&self, cfg: &NocConfig) -> Cycles {
        let hops = self.min_cross_hops().unwrap_or(1);
        let head = cfg.hop_latency.as_u64() * u64::from(hops + 1);
        let min_wire = cfg.packet_overhead.div_ceil(cfg.bytes_per_cycle).max(1);
        Cycles::new(head + min_wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_covers_all_nodes() {
        let map = IslandMap::columns(Topology::new(4, 4, 16), 2);
        assert_eq!(map.count(), 2);
        let mut all: Vec<PeId> = map.nodes_of(0);
        all.extend(map.nodes_of(1));
        all.sort();
        assert_eq!(all, (0..16).map(PeId::new).collect::<Vec<_>>());
        for n in 0..16 {
            let n = PeId::new(n);
            let i = map.island_of(n);
            assert!(map.nodes_of(i).contains(&n));
        }
    }

    #[test]
    fn uneven_split_gives_extra_columns_to_first_islands() {
        let map = IslandMap::columns(Topology::new(5, 4, 20), 2);
        // 5 columns -> 3 + 2.
        assert_eq!(map.nodes_of(0).len(), 12);
        assert_eq!(map.nodes_of(1).len(), 8);
    }

    #[test]
    fn island_count_clamps_to_width() {
        let map = IslandMap::columns(Topology::new(3, 3, 9), 8);
        assert_eq!(map.count(), 3);
        for i in 0..3 {
            assert_eq!(map.nodes_of(i).len(), 3);
        }
    }

    #[test]
    fn single_island_has_no_cross_hops() {
        let map = IslandMap::columns(Topology::new(4, 4, 16), 1);
        assert_eq!(map.min_cross_hops(), None);
        // Default lookahead still sound and non-zero.
        assert!(map.lookahead(&NocConfig::default()) > Cycles::ZERO);
    }

    #[test]
    fn adjacent_column_blocks_are_one_hop_apart() {
        let map = IslandMap::columns(Topology::new(4, 4, 16), 4);
        assert_eq!(map.min_cross_hops(), Some(1));
    }

    #[test]
    fn lookahead_matches_schedule_minimum() {
        use crate::network::Noc;
        let topo = Topology::new(4, 4, 16);
        let map = IslandMap::columns(topo.clone(), 2);
        let cfg = NocConfig::default();
        let la = map.lookahead(&cfg);
        // No cross-island transfer may complete sooner than the lookahead.
        let noc = Noc::new(topo, cfg);
        for a in 0..16 {
            for b in 0..16 {
                let (a, b) = (PeId::new(a), PeId::new(b));
                if map.island_of(a) != map.island_of(b) {
                    let t = noc.schedule(Cycles::ZERO, a, b, 0);
                    assert!(t.completes_at >= la, "{a}->{b}: {t:?} vs {la}");
                }
            }
        }
    }

    #[test]
    fn lookahead_scales_with_separation() {
        let topo = Topology::new(8, 2, 16);
        let near = IslandMap::columns(topo.clone(), 8);
        let far = IslandMap::columns(topo, 2);
        let cfg = NocConfig::default();
        // Same minimum: both have adjacent boundary columns.
        assert_eq!(near.lookahead(&cfg), far.lookahead(&cfg));
        assert_eq!(near.lookahead(&cfg), Cycles::new(2 * 3 + 1));
    }

    #[test]
    #[should_panic(expected = "at least one island")]
    fn zero_islands_panics() {
        IslandMap::columns(Topology::new(2, 2, 4), 0);
    }
}
