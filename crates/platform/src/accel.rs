//! The FFT accelerator cost model (paper §5.8, Figure 7).
//!
//! The paper adds "a core with instruction extensions for a fast fourier
//! transformation" and reports "about a factor of 30" speed-up over the
//! software FFT on a standard Xtensa core. The numeric FFT itself lives in
//! `m3-apps::fft`; this module prices it on either kind of core.

use m3_base::Cycles;

use crate::core_model::CoreModel;

/// Speed-up of the FFT instruction extensions over software (§5.8).
pub const FFT_ACCEL_SPEEDUP: u64 = 30;

/// Number of butterflies in a radix-2 FFT of `points` points.
///
/// # Panics
///
/// Panics if `points` is not a power of two (radix-2 requirement).
pub fn fft_butterflies(points: usize) -> u64 {
    assert!(
        points.is_power_of_two() && points > 1,
        "radix-2 FFT needs a power-of-two size > 1"
    );
    (points as u64 / 2) * points.trailing_zeros() as u64
}

/// Cycles a software radix-2 FFT of `points` points takes on `core`.
pub fn fft_sw_cycles(points: usize, core: &CoreModel) -> Cycles {
    Cycles::new(fft_butterflies(points) * core.fft_cycles_per_butterfly)
}

/// Cycles the FFT accelerator takes for `points` points.
pub fn fft_accel_cycles(points: usize, core: &CoreModel) -> Cycles {
    Cycles::new(
        (fft_butterflies(points) * core.fft_cycles_per_butterfly).div_ceil(FFT_ACCEL_SPEEDUP),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_model::XTENSA;

    #[test]
    fn butterfly_count() {
        assert_eq!(fft_butterflies(8), 4 * 3);
        assert_eq!(fft_butterflies(4096), 2048 * 12);
    }

    #[test]
    fn accelerator_is_30x_faster() {
        let sw = fft_sw_cycles(4096, &XTENSA);
        let hw = fft_accel_cycles(4096, &XTENSA);
        let ratio = sw.as_u64() as f64 / hw.as_u64() as f64;
        assert!((29.0..=31.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn figure7_scale_sanity() {
        // 32 KiB of complex<f32> samples = 4096 points; software FFT should
        // land in the low-millions of cycles like the paper's Figure 7 bar.
        let sw = fft_sw_cycles(4096, &XTENSA);
        assert!(
            sw.as_u64() > 500_000 && sw.as_u64() < 5_000_000,
            "software FFT {sw:?}"
        );
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        fft_butterflies(1000);
    }
}
