//! The prototype platform the reproduction runs on.
//!
//! The paper's prototype is the Tomahawk MPSoC (§4.1): multiple Xtensa RISC
//! PEs without privileged mode or MMU, each with 64 KiB + 64 KiB of
//! scratchpad memory (SPM), one DRAM module, all connected by a
//! packet-switched NoC, and one DTU per PE. This crate assembles those parts
//! (from `m3-noc` and `m3-dtu`) into a bootable [`Platform`] and adds the
//! per-core *cost models* the evaluation needs:
//!
//! - [`CoreModel`] — per-ISA parameters (Xtensa and ARM Cortex-A15, §5.2):
//!   `memcpy` bandwidth (Xtensa lacks a cache-line prefetcher and cannot
//!   saturate memory bandwidth, §5.4), mode-switch costs, FFT software cost,
//! - [`Cache`] — a set-associative LRU cache simulator used by the Linux
//!   baseline to produce the paper's `Lx` vs `Lx-$` (no cache misses) split,
//! - [`accel`] — the FFT accelerator core of Figure 7.

pub mod accel;
mod cache;
mod core_model;
mod pe;
mod platform;

pub use cache::Cache;
pub use core_model::{CoreModel, ARM, XTENSA};
pub use pe::{PeDesc, PeType};
pub use platform::{Platform, PlatformConfig};
