//! The assembled platform: PEs + SPMs + DRAM + NoC + DTUs.

use std::fmt;
use std::rc::Rc;

use m3_base::cfg::{DRAM_SIZE, SPM_DATA_SIZE};
use m3_base::PeId;
use m3_dtu::{Dtu, DtuSystem, MemKind};
use m3_noc::{Noc, NocConfig, Topology};
use m3_sim::Sim;

use crate::pe::{PeDesc, PeType};

/// Configuration of a platform instance.
#[derive(Clone, Debug)]
pub struct PlatformConfig {
    /// The PEs, in NoC-node order. The DRAM module is added automatically as
    /// the last node.
    pub pes: Vec<PeDesc>,
    /// NoC parameters.
    pub noc: NocConfig,
    /// Size of the DRAM module.
    pub dram_size: usize,
}

impl PlatformConfig {
    /// A platform with `n` Xtensa PEs, like the Tomahawk simulator started
    /// with `n` PEs (§4.1).
    pub fn xtensa(n: usize) -> PlatformConfig {
        PlatformConfig {
            pes: (0..n).map(|_| PeDesc::new(PeType::Xtensa)).collect(),
            noc: NocConfig::default(),
            dram_size: DRAM_SIZE,
        }
    }

    /// Appends a PE of the given type (builder-style).
    pub fn with_pe(mut self, ty: PeType) -> PlatformConfig {
        self.pes.push(PeDesc::new(ty));
        self
    }
}

impl Default for PlatformConfig {
    /// The 8-PE configuration of the Tomahawk silicon chip (§4.1).
    fn default() -> Self {
        PlatformConfig::xtensa(8)
    }
}

struct PlatformInner {
    sim: Sim,
    dtus: DtuSystem,
    descs: Vec<PeDesc>,
    dram: PeId,
    dram_size: usize,
}

/// A booted hardware platform (no software yet).
///
/// Cheaply cloneable; clones share all state.
///
/// # Examples
///
/// ```
/// use m3_platform::{Platform, PlatformConfig};
///
/// let platform = Platform::new(PlatformConfig::xtensa(4));
/// assert_eq!(platform.pe_count(), 4);
/// assert_eq!(platform.dram_pe().raw(), 4); // DRAM is the last NoC node
/// ```
#[derive(Clone)]
pub struct Platform {
    inner: Rc<PlatformInner>,
}

impl fmt::Debug for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Platform")
            .field("pes", &self.inner.descs)
            .field("dram", &self.inner.dram)
            .finish()
    }
}

impl Platform {
    /// Builds the platform: a NoC holding all PEs plus the DRAM module, one
    /// DTU per node, the DRAM backing store, and one remotely accessible
    /// data SPM per PE.
    pub fn new(cfg: PlatformConfig) -> Platform {
        Platform::new_in(Sim::new(), cfg)
    }

    /// Like [`Platform::new`], but builds the platform inside an existing
    /// simulation. The PDES islands use this: each island's `Sim` is
    /// created by the coordinator, and the platform must share it so the
    /// windowed executor drives the platform's timers.
    pub fn new_in(sim: Sim, cfg: PlatformConfig) -> Platform {
        let nodes = cfg.pes.len() as u32 + 1;
        let noc = Noc::new(Topology::with_nodes(nodes), cfg.noc.clone());
        let dtus = DtuSystem::new(sim.clone(), noc);
        let dram = PeId::new(cfg.pes.len() as u32);
        dtus.add_memory(dram, MemKind::Dram, cfg.dram_size);
        for i in 0..cfg.pes.len() {
            dtus.add_memory(PeId::new(i as u32), MemKind::Spm, SPM_DATA_SIZE);
        }
        Platform {
            inner: Rc::new(PlatformInner {
                sim,
                dtus,
                descs: cfg.pes,
                dram,
                dram_size: cfg.dram_size,
            }),
        }
    }

    /// The simulation the platform runs in.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// The DTU fabric.
    pub fn dtu_system(&self) -> &DtuSystem {
        &self.inner.dtus
    }

    /// The DTU of one PE.
    pub fn dtu(&self, pe: PeId) -> Dtu {
        self.inner.dtus.dtu(pe)
    }

    /// Number of PEs (excluding the DRAM module).
    pub fn pe_count(&self) -> usize {
        self.inner.descs.len()
    }

    /// The NoC node id of the DRAM module.
    pub fn dram_pe(&self) -> PeId {
        self.inner.dram
    }

    /// Size in bytes of the DRAM module (partitioning carves this up).
    pub fn dram_size(&self) -> usize {
        self.inner.dram_size
    }

    /// The descriptor of a PE.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is the DRAM node or out of range.
    pub fn desc(&self, pe: PeId) -> &PeDesc {
        &self.inner.descs[pe.idx()]
    }

    /// All PEs of a given type, in node order.
    pub fn pes_of_type(&self, ty: PeType) -> Vec<PeId> {
        self.inner
            .descs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.ty == ty)
            .map(|(i, _)| PeId::new(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_is_last_node_with_memory() {
        let p = Platform::new(PlatformConfig::xtensa(3));
        assert_eq!(p.dram_pe(), PeId::new(3));
        let mem = p.dtu_system().memory(p.dram_pe()).unwrap();
        assert_eq!(mem.borrow().len(), DRAM_SIZE);
    }

    #[test]
    fn every_pe_has_a_remotely_accessible_spm() {
        let p = Platform::new(PlatformConfig::xtensa(4));
        for i in 0..4 {
            let spm = p.dtu_system().memory(PeId::new(i)).unwrap();
            assert_eq!(spm.borrow().len(), SPM_DATA_SIZE);
        }
    }

    #[test]
    fn heterogeneous_config() {
        let cfg = PlatformConfig::xtensa(2).with_pe(PeType::FftAccel);
        let p = Platform::new(cfg);
        assert_eq!(p.pe_count(), 3);
        assert_eq!(p.pes_of_type(PeType::FftAccel), vec![PeId::new(2)]);
        assert_eq!(
            p.pes_of_type(PeType::Xtensa),
            vec![PeId::new(0), PeId::new(1)]
        );
        assert!(p.desc(PeId::new(2)).is_fft_accel());
    }

    #[test]
    fn all_dtus_start_privileged() {
        let p = Platform::new(PlatformConfig::default());
        for i in 0..p.pe_count() {
            assert!(p.dtu(PeId::new(i as u32)).is_privileged());
        }
    }
}
