//! Processing-element descriptors.

use std::fmt;

use crate::core_model::{CoreModel, ARM, XTENSA};

/// The kind of core behind a DTU.
///
/// The whole point of the DTU is that the OS does not care what is behind it
/// (paper §2.2: "a general-purpose core, a DSP, an ASIC, an FPGA, etc.");
/// the type matters only for (a) picking a suitable PE when an application
/// requests one (§4.5.5: "the application can request a specific type of
/// PE") and (b) the compute-cost model.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum PeType {
    /// A general-purpose Xtensa RISC core (no privileged mode, no MMU, §4.1).
    Xtensa,
    /// An ARM Cortex-A15 class core (used for the §5.2 cross-check).
    Arm,
    /// An Xtensa core with FFT instruction-set extensions (§5.8).
    FftAccel,
}

impl fmt::Display for PeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PeType::Xtensa => "xtensa",
            PeType::Arm => "arm",
            PeType::FftAccel => "fft-accel",
        };
        f.write_str(s)
    }
}

/// Description of one PE of the platform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeDesc {
    /// The kind of core.
    pub ty: PeType,
}

impl PeDesc {
    /// Creates a descriptor for a core of type `ty`.
    pub fn new(ty: PeType) -> PeDesc {
        PeDesc { ty }
    }

    /// The cost model of the general-purpose part of this core. The FFT
    /// accelerator is an Xtensa core with instruction extensions, so its
    /// scalar code runs at Xtensa cost.
    pub fn core_model(&self) -> &'static CoreModel {
        match self.ty {
            PeType::Xtensa | PeType::FftAccel => &XTENSA,
            PeType::Arm => &ARM,
        }
    }

    /// Whether this PE accelerates FFTs.
    pub fn is_fft_accel(&self) -> bool {
        self.ty == PeType::FftAccel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_models_match_type() {
        assert_eq!(PeDesc::new(PeType::Xtensa).core_model().name, "xtensa");
        assert_eq!(PeDesc::new(PeType::Arm).core_model().name, "arm-cortex-a15");
        assert_eq!(PeDesc::new(PeType::FftAccel).core_model().name, "xtensa");
    }

    #[test]
    fn accel_predicate() {
        assert!(PeDesc::new(PeType::FftAccel).is_fft_accel());
        assert!(!PeDesc::new(PeType::Xtensa).is_fft_accel());
    }

    #[test]
    fn display_names() {
        assert_eq!(PeType::Xtensa.to_string(), "xtensa");
        assert_eq!(PeType::FftAccel.to_string(), "fft-accel");
    }
}
