//! A set-associative LRU cache simulator.
//!
//! The Linux baseline PE has 64 KiB instruction and data caches (§5.1); the
//! paper reports results both with cache misses (`Lx`) and with the miss
//! penalty removed (`Lx-$`). This simulator produces the miss counts; the
//! [`CoreModel`](crate::CoreModel) turns them into cycles.

use std::collections::VecDeque;

/// A set-associative cache with LRU replacement.
///
/// # Examples
///
/// ```
/// use m3_platform::Cache;
///
/// let mut cache = Cache::new(1024, 32, 4); // 1 KiB, 32 B lines, 4-way
/// assert!(!cache.access(0));  // cold miss
/// assert!(cache.access(0));   // hit
/// assert!(cache.access(16));  // same line: hit
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    line_size: usize,
    sets: usize,
    ways: usize,
    /// Per-set LRU queues of line tags; front = least recently used.
    lru: Vec<VecDeque<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `capacity` bytes with `line_size`-byte lines and
    /// `ways`-way associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// `ways` sets of lines, or any parameter is zero or not a power of two
    /// where required).
    pub fn new(capacity: usize, line_size: usize, ways: usize) -> Cache {
        assert!(
            line_size.is_power_of_two() && line_size > 0,
            "bad line size"
        );
        assert!(ways > 0, "need at least one way");
        let lines = capacity / line_size;
        assert!(
            lines >= ways && lines.is_multiple_of(ways),
            "capacity {capacity} not divisible into {ways}-way sets of {line_size}-byte lines"
        );
        let sets = lines / ways;
        Cache {
            line_size,
            sets,
            ways,
            lru: vec![VecDeque::with_capacity(ways); sets],
            hits: 0,
            misses: 0,
        }
    }

    /// Creates the Linux PE's 64 KiB 4-way data cache with 32-byte lines
    /// (§5.1).
    pub fn lx_data_cache() -> Cache {
        Cache::new(m3_base::cfg::CACHE_SIZE, m3_base::cfg::CACHE_LINE_SIZE, 4)
    }

    /// Accesses one address; returns `true` on a hit. Misses install the
    /// line, evicting the LRU line of the set if necessary.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_size as u64;
        let set = (line % self.sets as u64) as usize;
        let queue = &mut self.lru[set];
        if let Some(pos) = queue.iter().position(|&t| t == line) {
            queue.remove(pos);
            queue.push_back(line);
            self.hits += 1;
            true
        } else {
            if queue.len() == self.ways {
                queue.pop_front();
            }
            queue.push_back(line);
            self.misses += 1;
            false
        }
    }

    /// Accesses every line of `[start, start + len)`; returns the number of
    /// misses.
    pub fn touch_range(&mut self, start: u64, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = start / self.line_size as u64;
        let last = (start + len as u64 - 1) / self.line_size as u64;
        let mut misses = 0;
        for line in first..=last {
            if !self.access(line * self.line_size as u64) {
                misses += 1;
            }
        }
        misses
    }

    /// Whether the line containing `addr` is currently resident (does not
    /// touch LRU state).
    pub fn contains(&self, addr: u64) -> bool {
        let line = addr / self.line_size as u64;
        let set = (line % self.sets as u64) as usize;
        self.lru[set].contains(&line)
    }

    /// Invalidates the whole cache (e.g. at a context switch of an
    /// untagged-cache model).
    pub fn flush(&mut self) {
        for q in &mut self.lru {
            q.clear();
        }
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> usize {
        self.line_size
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * self.line_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(1024, 32, 2);
        assert!(!c.access(100));
        assert!(c.access(100));
        assert!(c.access(96)); // same 32-byte line as 100
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2 sets, 2 ways, 32B lines: lines 0,2,4 map to set 0.
        let mut c = Cache::new(128, 32, 2);
        c.access(0); // line 0 -> set 0
        c.access(64); // line 2 -> set 0
        c.access(0); // line 0 now MRU
        c.access(128); // line 4 -> set 0, evicts line 2
        assert!(c.access(0), "line 0 must survive");
        assert!(!c.access(64), "line 2 was LRU and evicted");
    }

    #[test]
    fn touch_range_counts_line_misses() {
        let mut c = Cache::lx_data_cache();
        // 4 KiB spans 128 lines of 32 bytes.
        assert_eq!(c.touch_range(0, 4096), 128);
        assert_eq!(c.touch_range(0, 4096), 0, "now warm");
        // Unaligned range crossing a line boundary.
        let mut c2 = Cache::lx_data_cache();
        assert_eq!(c2.touch_range(30, 4), 2);
    }

    #[test]
    fn working_set_larger_than_cache_always_misses() {
        let mut c = Cache::lx_data_cache();
        let big = 2 * 1024 * 1024;
        c.touch_range(0, big);
        // Second sweep still misses everything: 2 MiB >> 64 KiB.
        let misses = c.touch_range(0, big);
        assert_eq!(misses as usize, big / 32);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = Cache::new(1024, 32, 2);
        c.access(0);
        c.flush();
        assert!(!c.access(0));
    }

    #[test]
    fn zero_length_range_is_free() {
        let mut c = Cache::lx_data_cache();
        assert_eq!(c.touch_range(123, 0), 0);
    }

    #[test]
    fn geometry() {
        let c = Cache::lx_data_cache();
        assert_eq!(c.capacity(), 64 * 1024);
        assert_eq!(c.line_size(), 32);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_geometry_panics() {
        Cache::new(128, 32, 3); // 4 lines do not divide into 3-way sets
    }
}
