//! Per-ISA core cost models.
//!
//! The paper runs its benchmarks on Xtensa cores and cross-checks on an ARM
//! Cortex-A15 (§5.2): "a Linux system call requires 320 cycles on ARM and
//! 410 cycles on Xtensa"; data transfers are slower on Xtensa because the
//! core has no cache-line prefetcher and `memcpy` cannot saturate the memory
//! bandwidth (§5.4). These parameters capture exactly those differences.

use m3_base::Cycles;

/// Cost parameters of one core architecture.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreModel {
    /// Architecture name (for reports).
    pub name: &'static str,
    /// Peak `memcpy` throughput of the core in bytes per cycle, cache hits
    /// assumed. The DTU reaches 8 B/cycle; no core in the prototype does.
    pub memcpy_bytes_per_cycle: u64,
    /// Whether the core has a cache-line prefetcher that hides miss latency
    /// behind the copy loop (ARM yes, Xtensa no — §5.2, §5.4).
    pub has_prefetcher: bool,
    /// Full penalty of one cache-line miss: the time to load a 32-byte line
    /// from DRAM. Configured to equal the DTU's transfer time for a line
    /// (paper §5.1: "loading data from DRAM takes the same time in both
    /// setups").
    pub cache_miss_penalty: Cycles,
    /// Total cost of a null system call on Linux (mode switch, state
    /// save/restore, dispatch): 410 on Xtensa, 320 on ARM (§5.2/§5.3).
    pub lx_syscall_total: Cycles,
    /// Software FFT cost per butterfly (one element of one `n log n` stage).
    pub fft_cycles_per_butterfly: u64,
}

/// The Xtensa RISC core of the Tomahawk platform (§4.1).
pub const XTENSA: CoreModel = CoreModel {
    name: "xtensa",
    memcpy_bytes_per_cycle: 2,
    has_prefetcher: false,
    // 32-byte line at 8 B/cycle plus router/DRAM latency.
    cache_miss_penalty: Cycles::new(26),
    lx_syscall_total: Cycles::new(410),
    fft_cycles_per_butterfly: 50,
};

/// The ARM Cortex-A15 used for the cross-check in §5.2.
pub const ARM: CoreModel = CoreModel {
    name: "arm-cortex-a15",
    memcpy_bytes_per_cycle: 4,
    has_prefetcher: true,
    cache_miss_penalty: Cycles::new(26),
    lx_syscall_total: Cycles::new(320),
    fft_cycles_per_butterfly: 35,
};

impl CoreModel {
    /// Cost of copying `bytes` with `misses` cache-line misses among the
    /// accesses.
    ///
    /// Without a prefetcher every miss stalls the copy loop for the full
    /// penalty; with one, the line transfer overlaps the loop and only the
    /// transfer time of the line itself (line/8 B-per-cycle) remains.
    pub fn memcpy_cycles(&self, bytes: u64, misses: u64) -> Cycles {
        let loop_cycles = bytes.div_ceil(self.memcpy_bytes_per_cycle);
        let miss_cycles = misses * self.effective_miss_penalty().as_u64();
        Cycles::new(loop_cycles + miss_cycles)
    }

    /// The per-miss stall this core actually experiences.
    pub fn effective_miss_penalty(&self) -> Cycles {
        if self.has_prefetcher {
            // The prefetcher hides DRAM latency; the line still occupies the
            // memory interface for line_size / 8 cycles.
            Cycles::new((m3_base::cfg::CACHE_LINE_SIZE as u64) / 8)
        } else {
            self.cache_miss_penalty
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_syscall_costs() {
        assert_eq!(XTENSA.lx_syscall_total, Cycles::new(410));
        assert_eq!(ARM.lx_syscall_total, Cycles::new(320));
    }

    #[test]
    fn xtensa_memcpy_cannot_saturate_memory_bandwidth() {
        // 2 MiB all-miss copy: must be far slower than the DTU's 262k cycles.
        let bytes = 2u64 * 1024 * 1024;
        let misses = bytes / m3_base::cfg::CACHE_LINE_SIZE as u64;
        let t = XTENSA.memcpy_cycles(bytes, misses);
        let dtu = bytes / m3_base::cfg::DTU_BYTES_PER_CYCLE;
        assert!(t.as_u64() > 4 * dtu, "memcpy {t:?} vs dtu {dtu}");
    }

    #[test]
    fn prefetcher_reduces_miss_cost() {
        let misses = 1000;
        let with = ARM.memcpy_cycles(32_000, misses);
        let without = XTENSA.memcpy_cycles(32_000, misses);
        assert!(with < without);
        assert_eq!(ARM.effective_miss_penalty(), Cycles::new(4));
        assert_eq!(XTENSA.effective_miss_penalty(), Cycles::new(26));
    }

    #[test]
    fn hit_only_copy_is_bandwidth_bound() {
        assert_eq!(XTENSA.memcpy_cycles(4096, 0), Cycles::new(2048));
        assert_eq!(ARM.memcpy_cycles(4096, 0), Cycles::new(1024));
    }
}
