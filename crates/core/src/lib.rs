//! # M3 — a hardware/operating-system co-design to tame heterogeneous manycores
//!
//! This crate is the front door of a from-scratch Rust reproduction of the
//! ASPLOS'16 paper. The system's idea in three sentences: every processing
//! element (PE) gets a **data transfer unit (DTU)** as its *only* connection
//! to the network-on-chip; the OS kernel runs on its own PE and enforces
//! isolation by remotely configuring the DTUs (**NoC-level isolation**), so
//! applications run bare-metal on arbitrary cores — including accelerators —
//! as first-class citizens; OS services like the m3fs filesystem are
//! ordinary applications reached by core-neutral DTU message protocols.
//!
//! [`System`] boots the whole stack — platform, kernel, filesystem service —
//! and runs programs on it:
//!
//! ```
//! use m3::{System, SystemConfig};
//! use m3_fs::mount_m3fs;
//! use m3_libos::vfs;
//!
//! let sys = System::boot(SystemConfig::default());
//! let job = sys.run_program("hello", |env| async move {
//!     mount_m3fs(&env).await.unwrap();
//!     vfs::write_all(&env, "/greeting", b"hello m3").await.unwrap();
//!     let back = vfs::read_to_vec(&env, "/greeting").await.unwrap();
//!     back.len() as i64
//! });
//! sys.run();
//! assert_eq!(job.try_take().unwrap(), 8);
//! ```

pub mod shard;

use std::future::Future;

use std::rc::Rc;

use m3_base::{Cycles, PeId};
use m3_fault::{FaultPlan, FaultPlane};
use m3_fs::{run_m3fs, SetupNode};
use m3_kernel::Kernel;
use m3_libos::{start_program, Env, ProgramRegistry};
use m3_noc::NocConfig;
use m3_platform::{PeType, Platform, PlatformConfig};
use m3_sim::{JoinHandle, Sim, SimState, Stats};

pub use m3_base as base;
pub use m3_dtu as dtu;
pub use m3_fault as fault;
pub use m3_fs as fs;
pub use m3_kernel as kernel;
pub use m3_libos as libos;
pub use m3_noc as noc;
pub use m3_platform as platform;
pub use m3_sim as sim;

pub use shard::{ShardPlan, ShardSlice, ShardedSystem, ShardedSystemConfig};

/// Configuration of a full M3 system.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of general-purpose (Xtensa) PEs, including the kernel PE and
    /// the filesystem-service PE.
    pub pes: usize,
    /// Number of FFT-accelerator PEs appended after the general-purpose
    /// ones.
    pub accel_pes: usize,
    /// Size of the m3fs data region in 1 KiB blocks.
    pub fs_blocks: u64,
    /// Initial filesystem content.
    pub fs_setup: Vec<SetupNode>,
    /// NoC parameters (disable `contention` to model a perfectly scaling
    /// interconnect, as the §5.7 scalability experiment assumes).
    pub noc: NocConfig,
    /// Deterministic fault schedule injected at boot. `None` (the default)
    /// falls back to the process-ambient plan slot
    /// ([`m3_fault::ambient`]); if that is also empty, the system runs the
    /// exact fault-free code path.
    pub fault_plan: Option<FaultPlan>,
    /// Allow the kernel to admit more VPEs than PEs by time-multiplexing
    /// them (m3-sched). Off by default: without overcommit `CREATE_VPE`
    /// fails with `NoFreePe` when every PE is occupied, exactly as before.
    pub overcommit: bool,
    /// Save only dirty SPM pages on a context switch (m3-vm dirty bitmap)
    /// instead of the full SPM image. Off by default: the legacy full-image
    /// path stays cycle-identical to the pre-vm goldens.
    pub dirty_switches: bool,
    /// Cap on resident DRAM frames per demand-paged address space; beyond
    /// it the kernel pager evicts (clean pages first). `None` (default)
    /// means unlimited — no eviction, no swap traffic.
    pub vm_resident_pages: Option<usize>,
}

impl Default for SystemConfig {
    /// Kernel + fs service + a few application PEs and an 8 MiB filesystem.
    fn default() -> Self {
        SystemConfig {
            pes: 6,
            accel_pes: 0,
            fs_blocks: 8192,
            fs_setup: Vec::new(),
            noc: NocConfig::default(),
            fault_plan: None,
            overcommit: false,
            dirty_switches: false,
            vm_resident_pages: None,
        }
    }
}

/// A booted M3 system: platform + kernel + m3fs, ready to run programs.
#[derive(Clone)]
pub struct System {
    platform: Platform,
    kernel: Kernel,
    registry: ProgramRegistry,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("pes", &self.platform.pe_count())
            .field("kernel", &self.kernel)
            .finish()
    }
}

impl System {
    /// Boots the system: builds the platform, starts the kernel on PE 0
    /// (which downgrades all other DTUs), and starts the m3fs service on
    /// the next PE.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has fewer than three PEs (kernel, fs,
    /// and at least one application).
    pub fn boot(cfg: SystemConfig) -> System {
        System::boot_in(Sim::new(), cfg)
    }

    /// Like [`System::boot`], but inside an existing simulation. The PDES
    /// islands use this to place one full system per island: the island's
    /// windowed executor then drives the kernel, DTUs, and services, while
    /// cross-island traffic travels as timestamped port events.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has fewer than three PEs (kernel, fs,
    /// and at least one application).
    pub fn boot_in(sim: Sim, cfg: SystemConfig) -> System {
        assert!(cfg.pes >= 3, "need kernel + fs + application PEs");
        let mut pcfg = PlatformConfig::xtensa(cfg.pes);
        pcfg.noc = cfg.noc.clone();
        for _ in 0..cfg.accel_pes {
            pcfg = pcfg.with_pe(PeType::FftAccel);
        }
        let platform = Platform::new_in(sim, pcfg);
        let kernel = Kernel::start(&platform, PeId::new(0));
        kernel.set_overcommit(cfg.overcommit);
        kernel.set_dirty_switches(cfg.dirty_switches);
        kernel.set_vm_resident_pages(cfg.vm_resident_pages);
        let registry = ProgramRegistry::new();

        // Arm the fault plane: an explicit plan wins, otherwise the ambient
        // slot (set by chaos harnesses around unmodified entry points).
        // Empty plans still arm the plane so recovery paths use bounded
        // waits, which chaos runs rely on to never hang.
        if let Some(plan) = cfg.fault_plan.clone().or_else(m3_fault::ambient::get) {
            let plane = Rc::new(FaultPlane::new(plan));
            platform.dtu_system().set_faults(plane.clone());
            kernel.attach_faults(&plane);
        }

        let info = kernel.create_root("m3fs", None).expect("PE for m3fs");
        let fs_env = Env::new(&kernel, &info, registry.clone());
        let blocks = cfg.fs_blocks;
        let setup = cfg.fs_setup;
        platform.sim().spawn_daemon("m3fs", async move {
            run_m3fs(fs_env, blocks, setup).await.expect("m3fs failed");
        });

        System {
            platform,
            kernel,
            registry,
        }
    }

    /// The simulation clock and executor.
    pub fn sim(&self) -> &Sim {
        self.platform.sim()
    }

    /// The hardware platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The program registry (register executables for `exec` here).
    pub fn registry(&self) -> &ProgramRegistry {
        &self.registry
    }

    /// Shared statistics counters.
    pub fn stats(&self) -> Stats {
        self.sim().stats()
    }

    /// Starts a program on a free PE; the returned handle yields its exit
    /// code after [`System::run`].
    ///
    /// # Panics
    ///
    /// Panics if no PE is free.
    pub fn run_program<F, Fut>(&self, name: &str, f: F) -> JoinHandle<i64>
    where
        F: FnOnce(Env) -> Fut + 'static,
        Fut: Future<Output = i64> + 'static,
    {
        start_program(&self.kernel, name, None, self.registry.clone(), f)
    }

    /// Runs the simulation until every program finished, then lets the
    /// kernel and services settle in-flight work.
    pub fn run(&self) -> SimState {
        let state = self.sim().run();
        self.sim().settle(Cycles::new(1_000_000));
        state
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        self.sim().now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_fs::mount_m3fs;
    use m3_libos::vfs;

    #[test]
    fn boot_and_run_a_program() {
        let sys = System::boot(SystemConfig::default());
        let h = sys.run_program("t", |env| async move {
            mount_m3fs(&env).await.unwrap();
            vfs::write_all(&env, "/x", &[1, 2, 3]).await.unwrap();
            vfs::stat(&env, "/x").await.unwrap().size as i64
        });
        assert_eq!(sys.run(), SimState::Finished);
        assert_eq!(h.try_take().unwrap(), 3);
    }

    #[test]
    fn accel_pes_are_appended() {
        let sys = System::boot(SystemConfig {
            pes: 4,
            accel_pes: 1,
            ..SystemConfig::default()
        });
        let accels = sys.platform().pes_of_type(PeType::FftAccel);
        assert_eq!(accels.len(), 1);
        assert_eq!(accels[0], PeId::new(4));
    }

    #[test]
    fn preloaded_fs_content() {
        let sys = System::boot(SystemConfig {
            fs_setup: vec![SetupNode::file("/hello", b"world".to_vec())],
            ..SystemConfig::default()
        });
        let h = sys.run_program("t", |env| async move {
            mount_m3fs(&env).await.unwrap();
            let data = vfs::read_to_vec(&env, "/hello").await.unwrap();
            assert_eq!(data, b"world");
            0
        });
        sys.run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "need kernel")]
    fn too_small_system_panics() {
        System::boot(SystemConfig {
            pes: 2,
            ..SystemConfig::default()
        });
    }
}
