//! Sharded multikernel boot (§7).
//!
//! The paper names "multiple kernel instances" as the scalability path for
//! large manycores: one kernel PE saturates long before 1024 application
//! PEs do, so the machine is carved into *shards*, each owning a contiguous
//! slice of PEs and DRAM and running its own kernel plus its own m3fs
//! instance. Shards stay as independent as the two-partition setup this
//! module grew out of — separate capability spaces, PE pools, memory pools,
//! and service registries — but their kernels are wired together by the
//! kernel-to-kernel (ktk) protocol, so a shard whose admission runs out of
//! PEs forwards the request to the least-loaded peer and delegates the
//! resulting capabilities back.
//!
//! [`ShardPlan::carve`] is the pure partitioning function (unit- and
//! property-testable without booting anything); [`ShardedSystem`] boots the
//! whole machine inside one `Sim`. The PDES benchmark (`fig10`) instead
//! boots one [`crate::System`] per island and carries ktk bytes across
//! island boundaries — same protocol, different transport.

use std::future::Future;
use std::rc::Rc;

use m3_base::{Cycles, PeId};
use m3_fault::{FaultPlan, FaultPlane};
use m3_fs::{run_m3fs, SetupNode};
use m3_kernel::{Kernel, PAGE_SIZE};
use m3_libos::{start_program, Env, ProgramRegistry};
use m3_noc::NocConfig;
use m3_platform::{Platform, PlatformConfig};
use m3_sim::{JoinHandle, Sim, SimState};

/// One shard's slice of the machine: a contiguous PE range plus a DRAM
/// range, with the kernel on the slice's first PE.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSlice {
    /// Shard id (position in the plan).
    pub shard: u32,
    /// First PE of the contiguous range.
    pub first_pe: u32,
    /// Number of PEs in the range.
    pub pe_count: u32,
    /// Start of the shard's DRAM range.
    pub dram_base: u64,
    /// Size of the shard's DRAM range.
    pub dram_size: u64,
}

impl ShardSlice {
    /// The shard's kernel PE (first PE of the slice).
    pub fn kernel_pe(&self) -> PeId {
        PeId::new(self.first_pe)
    }

    /// All PEs of the slice, ascending.
    pub fn pes(&self) -> Vec<PeId> {
        (self.first_pe..self.first_pe + self.pe_count)
            .map(PeId::new)
            .collect()
    }

    /// Whether `pe` belongs to this slice.
    pub fn contains(&self, pe: PeId) -> bool {
        (self.first_pe..self.first_pe + self.pe_count).contains(&pe.raw())
    }
}

/// How a machine is carved into shards. Produced by [`ShardPlan::carve`];
/// pure data, so partitioning invariants are testable without booting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// The slices, one per shard, in shard-id order.
    pub slices: Vec<ShardSlice>,
}

impl ShardPlan {
    /// Carves `pes` processing elements and `dram_size` bytes of DRAM into
    /// `shards` contiguous slices.
    ///
    /// PEs split wide-first: with `pes = q·shards + r`, the first `r`
    /// shards get `q + 1` PEs. DRAM splits evenly, rounded down to page
    /// granularity; the last shard absorbs the remainder, so the ranges
    /// tile `[0, dram_size)` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or there are fewer PEs than shards.
    pub fn carve(pes: usize, shards: usize, dram_size: u64) -> ShardPlan {
        assert!(shards >= 1, "need at least one shard");
        assert!(pes >= shards, "need at least one PE per shard");
        let q = (pes / shards) as u32;
        let r = (pes % shards) as u32;
        let dram_each = dram_size / shards as u64 / PAGE_SIZE * PAGE_SIZE;
        let mut slices = Vec::with_capacity(shards);
        let mut first_pe = 0u32;
        let mut dram_base = 0u64;
        for shard in 0..shards as u32 {
            let pe_count = if shard < r { q + 1 } else { q };
            let last = shard == shards as u32 - 1;
            let dram = if last {
                dram_size - dram_base
            } else {
                dram_each
            };
            slices.push(ShardSlice {
                shard,
                first_pe,
                pe_count,
                dram_base,
                dram_size: dram,
            });
            first_pe += pe_count;
            dram_base += dram;
        }
        ShardPlan { slices }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.slices.len()
    }

    /// The shard owning `pe`, if any.
    pub fn shard_of(&self, pe: PeId) -> Option<u32> {
        self.slices.iter().find(|s| s.contains(pe)).map(|s| s.shard)
    }
}

/// Configuration of a sharded M3 system.
#[derive(Clone, Debug)]
pub struct ShardedSystemConfig {
    /// Total number of (Xtensa) PEs across all shards.
    pub pes: usize,
    /// Number of kernel shards. Each shard needs at least three PEs
    /// (kernel, m3fs, and one application PE).
    pub shards: usize,
    /// Size of each shard's m3fs data region in 1 KiB blocks.
    pub fs_blocks: u64,
    /// Initial content of every shard's filesystem.
    pub fs_setup: Vec<SetupNode>,
    /// NoC parameters.
    pub noc: NocConfig,
    /// Deterministic fault schedule injected at boot; `None` falls back to
    /// the process-ambient plan slot exactly like [`crate::SystemConfig`].
    pub fault_plan: Option<FaultPlan>,
    /// Allow each shard's kernel to time-multiplex VPEs (m3-sched).
    pub overcommit: bool,
}

impl Default for ShardedSystemConfig {
    /// Two shards of four PEs each — the layout of the original
    /// two-partition tests.
    fn default() -> Self {
        ShardedSystemConfig {
            pes: 8,
            shards: 2,
            fs_blocks: 4096,
            fs_setup: Vec::new(),
            noc: NocConfig::default(),
            fault_plan: None,
            overcommit: false,
        }
    }
}

/// A booted sharded multikernel: one platform, N kernels wired by ktk,
/// one m3fs per shard.
#[derive(Clone)]
pub struct ShardedSystem {
    platform: Platform,
    kernels: Vec<Kernel>,
    plan: ShardPlan,
    registry: ProgramRegistry,
}

impl std::fmt::Debug for ShardedSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSystem")
            .field("pes", &self.platform.pe_count())
            .field("shards", &self.kernels.len())
            .finish()
    }
}

impl ShardedSystem {
    /// Boots the sharded system in a fresh simulation.
    ///
    /// # Panics
    ///
    /// Panics if any shard would get fewer than three PEs.
    pub fn boot(cfg: ShardedSystemConfig) -> ShardedSystem {
        ShardedSystem::boot_in(Sim::new(), cfg)
    }

    /// Like [`ShardedSystem::boot`], but inside an existing simulation.
    ///
    /// Boot order matters: the fault plane must be armed on the DTU fabric
    /// before [`Kernel::connect_shards`] (the ktk wire captures the crash
    /// schedule to drop messages of dead kernel PEs), and
    /// [`Kernel::attach_faults`] must run after it (the shard watchdog
    /// arms only if the kernel already has its shard context).
    ///
    /// # Panics
    ///
    /// Panics if any shard would get fewer than three PEs.
    pub fn boot_in(sim: Sim, cfg: ShardedSystemConfig) -> ShardedSystem {
        let mut pcfg = PlatformConfig::xtensa(cfg.pes);
        pcfg.noc = cfg.noc.clone();
        let platform = Platform::new_in(sim, pcfg);
        let plan = ShardPlan::carve(cfg.pes, cfg.shards, platform.dram_size() as u64);
        for slice in &plan.slices {
            assert!(
                slice.pe_count >= 3,
                "shard {} needs kernel + fs + application PEs, got {}",
                slice.shard,
                slice.pe_count
            );
        }

        let plane = cfg
            .fault_plan
            .clone()
            .or_else(m3_fault::ambient::get)
            .map(|plan| Rc::new(FaultPlane::new(plan)));
        if let Some(plane) = &plane {
            platform.dtu_system().set_faults(plane.clone());
        }

        let kernels: Vec<Kernel> = plan
            .slices
            .iter()
            .map(|slice| {
                let k = Kernel::start_partition(
                    &platform,
                    slice.kernel_pe(),
                    &slice.pes(),
                    slice.dram_base,
                    slice.dram_size,
                );
                k.set_overcommit(cfg.overcommit);
                k
            })
            .collect();
        Kernel::connect_shards(&kernels);
        if let Some(plane) = &plane {
            for k in &kernels {
                k.attach_faults(plane);
            }
        }

        let registry = ProgramRegistry::new();
        for kernel in &kernels {
            let info = kernel.create_root("m3fs", None).expect("PE for m3fs");
            let env = Env::new(kernel, &info, registry.clone());
            let blocks = cfg.fs_blocks;
            let setup = cfg.fs_setup.clone();
            platform
                .sim()
                .spawn_daemon(format!("m3fs@{}", kernel.pe()), async move {
                    run_m3fs(env, blocks, setup).await.expect("m3fs failed");
                });
        }

        ShardedSystem {
            platform,
            kernels,
            plan,
            registry,
        }
    }

    /// The simulation clock and executor.
    pub fn sim(&self) -> &Sim {
        self.platform.sim()
    }

    /// The hardware platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The shard kernels, in shard-id order.
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// One shard's kernel.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn kernel(&self, shard: usize) -> &Kernel {
        &self.kernels[shard]
    }

    /// How the machine was carved.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The shared program registry.
    pub fn registry(&self) -> &ProgramRegistry {
        &self.registry
    }

    /// Starts a program on shard `shard`; the returned handle yields its
    /// exit code after [`ShardedSystem::run`].
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or has no free PE.
    pub fn run_program_on<F, Fut>(&self, shard: usize, name: &str, f: F) -> JoinHandle<i64>
    where
        F: FnOnce(Env) -> Fut + 'static,
        Fut: Future<Output = i64> + 'static,
    {
        start_program(&self.kernels[shard], name, None, self.registry.clone(), f)
    }

    /// Runs the simulation until every program finished, then lets the
    /// kernels and services settle in-flight work.
    pub fn run(&self) -> SimState {
        let state = self.sim().run();
        self.sim().settle(Cycles::new(1_000_000));
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carve_splits_pes_wide_first() {
        let plan = ShardPlan::carve(10, 3, 1 << 20);
        let counts: Vec<u32> = plan.slices.iter().map(|s| s.pe_count).collect();
        assert_eq!(counts, vec![4, 3, 3]);
        assert_eq!(plan.slices[0].first_pe, 0);
        assert_eq!(plan.slices[1].first_pe, 4);
        assert_eq!(plan.slices[2].first_pe, 7);
    }

    #[test]
    fn carve_dram_tiles_exactly() {
        // A DRAM size that does not divide evenly: last shard absorbs the
        // remainder and the ranges tile [0, size).
        let size = 3 * 4096 * 7 + 1234;
        let plan = ShardPlan::carve(6, 3, size);
        let mut expected_base = 0;
        for s in &plan.slices {
            assert_eq!(s.dram_base, expected_base);
            assert_eq!(s.dram_base % PAGE_SIZE, 0);
            expected_base += s.dram_size;
        }
        assert_eq!(expected_base, size);
    }

    #[test]
    fn shard_of_maps_every_pe() {
        let plan = ShardPlan::carve(11, 4, 1 << 20);
        for pe in 0..11u32 {
            let shard = plan.shard_of(PeId::new(pe)).unwrap();
            assert!(plan.slices[shard as usize].contains(PeId::new(pe)));
        }
        assert_eq!(plan.shard_of(PeId::new(11)), None);
    }

    #[test]
    #[should_panic(expected = "at least one PE per shard")]
    fn carve_rejects_more_shards_than_pes() {
        ShardPlan::carve(3, 4, 1 << 20);
    }
}
