//! The Linux machine: one core, caches, tmpfs, and a cooperative scheduler.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt;
use std::future::Future;
use std::rc::Rc;

use m3_base::Cycles;
use m3_platform::{Cache, CoreModel, ARM, XTENSA};
use m3_sim::{JoinHandle, Notify, Sim, Stats};

use crate::costs;
use crate::proc::LxProc;
use crate::tmpfs::Tmpfs;

/// Configuration of the Linux baseline.
#[derive(Clone, Debug)]
pub struct LxConfig {
    /// The core the system runs on (Xtensa or ARM, §5.2).
    pub core: CoreModel,
    /// Whether cache misses cost anything. `false` reproduces the paper's
    /// `Lx-$` bars ("time on Linux without cache misses").
    pub miss_penalty: bool,
}

impl LxConfig {
    /// Linux on Xtensa with a real cache (the paper's `Lx`).
    pub fn xtensa() -> LxConfig {
        LxConfig {
            core: XTENSA,
            miss_penalty: true,
        }
    }

    /// Linux on Xtensa with the miss penalty removed (the paper's `Lx-$`).
    pub fn xtensa_warm() -> LxConfig {
        LxConfig {
            core: XTENSA,
            miss_penalty: false,
        }
    }

    /// Linux on the ARM Cortex-A15 (§5.2 cross-check).
    pub fn arm() -> LxConfig {
        LxConfig {
            core: ARM,
            miss_penalty: true,
        }
    }
}

/// What a cycle charge is accounted as (for the figure breakdowns).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Charge {
    /// OS overhead (syscall entry, lookups, page-cache work, scheduling).
    Os,
    /// Data transfers (`memcpy`, zeroing).
    Xfer,
    /// Application computation.
    App,
}

struct CpuState {
    held: bool,
    last_pid: Option<u32>,
}

pub(crate) struct Inner {
    pub(crate) sim: Sim,
    pub(crate) cfg: LxConfig,
    pub(crate) cache: RefCell<Cache>,
    pub(crate) fs: RefCell<Tmpfs>,
    cpu: RefCell<CpuState>,
    cpu_free: Notify,
    exits: RefCell<BTreeMap<u32, i64>>,
    exit_notify: Notify,
    next_pid: Cell<u32>,
    pub(crate) next_pipe: Cell<u64>,
    stats: Stats,
}

/// A simulated Linux machine: a single time-shared core with caches and an
/// MMU (§5.1), running processes as cooperative simulation tasks.
///
/// Cheaply cloneable; clones share the machine.
#[derive(Clone)]
pub struct LxMachine {
    pub(crate) inner: Rc<Inner>,
}

impl fmt::Debug for LxMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LxMachine({})", self.inner.cfg.core.name)
    }
}

impl LxMachine {
    /// Creates a machine inside `sim`.
    pub fn new(sim: &Sim, cfg: LxConfig) -> LxMachine {
        LxMachine {
            inner: Rc::new(Inner {
                sim: sim.clone(),
                cfg,
                cache: RefCell::new(Cache::lx_data_cache()),
                fs: RefCell::new(Tmpfs::new()),
                cpu: RefCell::new(CpuState {
                    held: false,
                    last_pid: None,
                }),
                cpu_free: Notify::new(),
                exits: RefCell::new(BTreeMap::new()),
                exit_notify: Notify::new(),
                next_pid: Cell::new(1),
                next_pipe: Cell::new(0),
                stats: sim.stats(),
            }),
        }
    }

    /// The simulation this machine runs in.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// Shared statistics (`lx.os_cycles`, `lx.xfer_cycles`,
    /// `lx.app_cycles`, `lx.ctx_switches`).
    pub fn stats(&self) -> Stats {
        self.inner.stats.clone()
    }

    /// The configuration.
    pub fn config(&self) -> &LxConfig {
        &self.inner.cfg
    }

    /// Direct access to the tmpfs (for test setup / content checks).
    pub fn fs(&self) -> &RefCell<Tmpfs> {
        &self.inner.fs
    }

    /// Spawns a process; it competes for the CPU and runs `f` to an exit
    /// code retrievable via the handle or `waitpid`.
    pub fn spawn_proc<F, Fut>(&self, name: &str, f: F) -> (u32, JoinHandle<i64>)
    where
        F: FnOnce(LxProc) -> Fut + 'static,
        Fut: Future<Output = i64> + 'static,
    {
        let pid = self.inner.next_pid.get();
        self.inner.next_pid.set(pid + 1);
        let machine = self.clone();
        let handle = self.inner.sim.spawn(name.to_string(), async move {
            let proc = LxProc::new(machine.clone(), pid);
            machine.acquire_cpu(pid).await;
            let code = f(proc).await;
            machine.release_cpu();
            machine.inner.exits.borrow_mut().insert(pid, code);
            machine.inner.exit_notify.notify_all();
            code
        });
        (pid, handle)
    }

    /// Takes the CPU for `pid`, charging a context switch if another
    /// process ran last.
    pub(crate) async fn acquire_cpu(&self, pid: u32) {
        loop {
            let switched = {
                let mut cpu = self.inner.cpu.borrow_mut();
                if cpu.held {
                    None
                } else {
                    cpu.held = true;
                    let switched = cpu.last_pid != Some(pid);
                    cpu.last_pid = Some(pid);
                    Some(switched)
                }
            };
            match switched {
                Some(true) => {
                    self.inner.stats.incr("lx.ctx_switches");
                    self.charge(costs::CTX_SWITCH, Charge::Os).await;
                    return;
                }
                Some(false) => return,
                None => self.inner.cpu_free.wait().await,
            }
        }
    }

    /// Releases the CPU for the next runnable process.
    pub(crate) fn release_cpu(&self) {
        self.inner.cpu.borrow_mut().held = false;
        self.inner.cpu_free.notify_one();
    }

    /// Charges simulated cycles under the given accounting bucket.
    pub(crate) async fn charge(&self, cycles: Cycles, kind: Charge) {
        let key = match kind {
            Charge::Os => "lx.os_cycles",
            Charge::Xfer => "lx.xfer_cycles",
            Charge::App => "lx.app_cycles",
        };
        self.inner.stats.add(key, cycles.as_u64());
        self.inner.sim.sleep(cycles).await;
    }

    /// Runs `len` bytes at `base` through the cache; returns the misses
    /// that cost anything under this configuration.
    pub(crate) fn touch(&self, base: u64, len: usize) -> u64 {
        let misses = self.inner.cache.borrow_mut().touch_range(base, len);
        if self.inner.cfg.miss_penalty {
            misses
        } else {
            0
        }
    }

    /// The copy cost of `bytes` with `misses` penalized misses.
    pub(crate) fn memcpy_cycles(&self, bytes: u64, misses: u64) -> Cycles {
        self.inner.cfg.core.memcpy_cycles(bytes, misses)
    }

    /// Waits until process `pid` exits and returns its code.
    pub(crate) async fn wait_exit(&self, pid: u32) -> i64 {
        loop {
            if let Some(code) = self.inner.exits.borrow().get(&pid) {
                return *code;
            }
            self.inner.exit_notify.wait().await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_process_runs_to_exit() {
        let sim = Sim::new();
        let m = LxMachine::new(&sim, LxConfig::xtensa());
        let (_, h) = m.spawn_proc("p", |p| async move {
            p.compute(Cycles::new(100)).await;
            5
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 5);
    }

    #[test]
    fn cpu_serializes_processes() {
        // Two compute-bound processes cannot overlap: total elapsed time is
        // the sum of their compute times (plus switches).
        let sim = Sim::new();
        let m = LxMachine::new(&sim, LxConfig::xtensa());
        for i in 0..2 {
            m.spawn_proc(&format!("p{i}"), |p| async move {
                p.compute(Cycles::new(10_000)).await;
                0
            });
        }
        sim.run();
        assert!(
            sim.now().as_u64() >= 20_000,
            "processes must serialize, elapsed {}",
            sim.now()
        );
    }

    #[test]
    fn warm_config_has_no_miss_penalty() {
        let sim = Sim::new();
        let m = LxMachine::new(&sim, LxConfig::xtensa_warm());
        assert_eq!(m.touch(0, 4096), 0);
        let m2 = LxMachine::new(&sim, LxConfig::xtensa());
        assert_eq!(m2.touch(0, 4096), 128);
    }
}
