//! Processes and system calls of the Linux model.

use std::future::Future;

use m3_base::error::{Code, Error, Result};
use m3_base::Cycles;

use crate::costs;
use crate::machine::{Charge, LxMachine};
use crate::pipe::{lx_pipe, LxPipeReader, LxPipeWriter};
use crate::tmpfs::{Ino, Tmpfs};

/// File metadata returned by `stat`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LxStat {
    /// Size in bytes.
    pub size: u64,
    /// Whether the path is a directory.
    pub is_dir: bool,
    /// Link count.
    pub links: u32,
}

/// A process on the Linux machine. All methods charge calibrated cycle
/// costs; the process must be the one currently scheduled (which the
/// cooperative model guarantees).
#[derive(Clone, Debug)]
pub struct LxProc {
    m: LxMachine,
    pid: u32,
}

impl LxProc {
    pub(crate) fn new(m: LxMachine, pid: u32) -> LxProc {
        LxProc { m, pid }
    }

    /// The process id.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// The machine this process runs on.
    pub fn machine(&self) -> &LxMachine {
        &self.m
    }

    fn user_buf(&self) -> u64 {
        costs::USER_MEM_BASE + self.pid as u64 * costs::USER_MEM_STRIDE
    }

    fn file_addr(ino: Ino, off: u64) -> u64 {
        costs::FILE_MEM_BASE + ino * costs::FILE_MEM_STRIDE + off
    }

    /// Application computation.
    pub async fn compute(&self, cycles: Cycles) {
        self.m.charge(cycles, Charge::App).await;
    }

    /// A null system call (§5.3's micro-benchmark): mode switch + dispatch.
    /// Uses the core model's total (410 cycles on Xtensa, 320 on ARM, §5.2).
    pub async fn syscall_null(&self) {
        let total = self.m.config().core.lx_syscall_total;
        self.m.charge(total, Charge::Os).await;
    }

    async fn syscall_entry(&self) {
        self.m.charge(costs::SYSCALL_ENTRY_EXIT, Charge::Os).await;
    }

    async fn lookup(&self, path: &str) {
        let depth = Tmpfs::depth(path).max(1);
        self.m
            .charge(costs::PATH_LOOKUP_PER_COMP * depth, Charge::Os)
            .await;
    }

    /// Opens a file.
    ///
    /// # Errors
    ///
    /// Standard filesystem errors; `create` creates missing files, `trunc`
    /// empties existing ones.
    pub async fn open(
        &self,
        path: &str,
        writable: bool,
        create: bool,
        trunc: bool,
    ) -> Result<LxFile> {
        self.syscall_entry().await;
        self.lookup(path).await;
        self.m.charge(costs::FD_LOOKUP, Charge::Os).await;
        let ino = {
            let mut fs = self.m.inner.fs.borrow_mut();
            match fs.resolve(path) {
                Ok(ino) => {
                    if fs.is_dir(ino) {
                        return Err(Error::new(Code::IsDir).with_msg(path.to_string()));
                    }
                    if trunc && writable {
                        fs.truncate(ino, 0)?;
                    }
                    ino
                }
                Err(e) if e.code() == Code::NoSuchFile && create => fs.create(path)?,
                Err(e) => return Err(e),
            }
        };
        Ok(LxFile {
            proc: self.clone(),
            ino,
            pos: 0,
            writable,
        })
    }

    /// `stat` — "well optimized on Linux" (§5.6).
    ///
    /// # Errors
    ///
    /// [`Code::NoSuchFile`] for missing paths.
    pub async fn stat(&self, path: &str) -> Result<LxStat> {
        self.syscall_entry().await;
        self.m.charge(costs::SYSCALL_DISPATCH, Charge::Os).await;
        self.lookup(path).await;
        self.m.charge(costs::STAT_FILL, Charge::Os).await;
        let fs = self.m.inner.fs.borrow();
        let ino = fs.resolve(path)?;
        Ok(LxStat {
            size: fs.size(ino),
            is_dir: fs.is_dir(ino),
            links: fs.links(ino),
        })
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// Standard filesystem errors.
    pub async fn mkdir(&self, path: &str) -> Result<()> {
        self.syscall_entry().await;
        self.lookup(path).await;
        self.m.charge(costs::INODE_MUT, Charge::Os).await;
        self.m.inner.fs.borrow_mut().mkdir(path).map(|_| ())
    }

    /// Removes a file name.
    ///
    /// # Errors
    ///
    /// Standard filesystem errors.
    pub async fn unlink(&self, path: &str) -> Result<()> {
        self.syscall_entry().await;
        self.lookup(path).await;
        self.m.charge(costs::INODE_MUT, Charge::Os).await;
        self.m.inner.fs.borrow_mut().unlink(path)
    }

    /// Creates a hard link.
    ///
    /// # Errors
    ///
    /// Standard filesystem errors.
    pub async fn link(&self, old: &str, new: &str) -> Result<()> {
        self.syscall_entry().await;
        self.lookup(old).await;
        self.lookup(new).await;
        self.m.charge(costs::INODE_MUT, Charge::Os).await;
        self.m.inner.fs.borrow_mut().link(old, new)
    }

    /// Lists a directory (`getdents`).
    ///
    /// # Errors
    ///
    /// Standard filesystem errors.
    pub async fn read_dir(&self, path: &str) -> Result<Vec<(String, bool)>> {
        self.syscall_entry().await;
        self.lookup(path).await;
        let entries = self.m.inner.fs.borrow().read_dir(path)?;
        self.m
            .charge(costs::DENTS_PER_ENTRY * entries.len() as u64, Charge::Os)
            .await;
        Ok(entries)
    }

    /// Creates a pipe (64 KiB in-kernel buffer).
    pub async fn pipe(&self) -> (LxPipeReader, LxPipeWriter) {
        self.syscall_entry().await;
        lx_pipe(&self.m)
    }

    /// `fork`: duplicates the process; the child runs `f`. Returns the
    /// child pid (wait for it with [`LxProc::waitpid`]).
    pub async fn fork<F, Fut>(&self, name: &str, f: F) -> u32
    where
        F: FnOnce(LxProc) -> Fut + 'static,
        Fut: Future<Output = i64> + 'static,
    {
        self.m.charge(costs::FORK, Charge::Os).await;
        let (pid, _handle) = self.m.spawn_proc(name, f);
        pid
    }

    /// The load-and-replace part of `exec`: charges image setup plus
    /// reading the executable from the filesystem.
    ///
    /// # Errors
    ///
    /// [`Code::NoSuchFile`] if the executable is missing.
    pub async fn exec_load(&self, path: &str) -> Result<()> {
        self.syscall_entry().await;
        self.lookup(path).await;
        let size = {
            let fs = self.m.inner.fs.borrow();
            let ino = fs.resolve(path)?;
            fs.size(ino).max(16 * 1024) // at least a minimal image
        };
        self.m.charge(costs::EXEC_BASE, Charge::Os).await;
        let misses = self.m.touch(self.user_buf(), size as usize);
        let load = self.m.memcpy_cycles(size, misses);
        self.m.charge(load, Charge::Xfer).await;
        Ok(())
    }

    /// Waits for a child to exit (releasing the CPU meanwhile).
    pub async fn waitpid(&self, pid: u32) -> i64 {
        self.syscall_entry().await;
        self.m.release_cpu();
        let code = self.m.wait_exit(pid).await;
        self.m.acquire_cpu(self.pid).await;
        code
    }

    /// Releases the CPU until `cond` holds again (used by blocking I/O).
    pub(crate) async fn block_on<C: Fn() -> bool>(&self, cond: C, notify: &m3_sim::Notify) {
        self.m.release_cpu();
        while !cond() {
            notify.wait().await;
        }
        self.m.acquire_cpu(self.pid).await;
    }

    /// `sendfile`: copies `len` bytes from `src` to `dst` inside the kernel
    /// (tar/untar use this to avoid user-space copies, §5.6).
    ///
    /// # Errors
    ///
    /// Standard filesystem errors.
    pub async fn sendfile(&self, dst: &mut LxFile, src: &mut LxFile, len: u64) -> Result<u64> {
        self.syscall_entry().await;
        self.m.charge(costs::FD_LOOKUP * 2, Charge::Os).await;
        let mut moved = 0u64;
        while moved < len {
            let chunk = (len - moved).min(costs::PAGE_SIZE as u64) as usize;
            let data = self.m.inner.fs.borrow().read(src.ino, src.pos, chunk)?;
            if data.is_empty() {
                break;
            }
            self.m
                .charge(costs::SENDFILE_PER_PAGE + costs::PAGE_CACHE_OP, Charge::Os)
                .await;
            let new_pages = self
                .m
                .inner
                .fs
                .borrow_mut()
                .write(dst.ino, dst.pos, &data)?;
            // Zero freshly allocated pages (§5.4), then the actual copy.
            if new_pages > 0 {
                let zero_misses = self
                    .m
                    .touch(Self::file_addr(dst.ino, dst.pos), new_pages as usize * 4096);
                let zero = self.m.memcpy_cycles(new_pages * 4096, zero_misses);
                self.m.charge(zero, Charge::Xfer).await;
            }
            let misses = self.m.touch(Self::file_addr(src.ino, src.pos), data.len())
                + self.m.touch(Self::file_addr(dst.ino, dst.pos), data.len());
            let copy = self.m.memcpy_cycles(data.len() as u64, misses);
            self.m.charge(copy, Charge::Xfer).await;
            src.pos += data.len() as u64;
            dst.pos += data.len() as u64;
            moved += data.len() as u64;
        }
        Ok(moved)
    }
}

/// An open file of a Linux process.
#[derive(Debug)]
pub struct LxFile {
    proc: LxProc,
    ino: Ino,
    pos: u64,
    writable: bool,
}

impl LxFile {
    /// The current file position.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Reads up to `len` bytes at the current position.
    ///
    /// Costs: syscall entry/exit + fd lookup + page-cache work per 4 KiB
    /// block + the `memcpy` from the page cache into the user buffer
    /// (§5.4).
    ///
    /// # Errors
    ///
    /// Standard filesystem errors.
    pub async fn read(&mut self, len: usize) -> Result<Vec<u8>> {
        let m = &self.proc.m;
        m.charge(costs::SYSCALL_ENTRY_EXIT, Charge::Os).await;
        m.charge(costs::FD_LOOKUP, Charge::Os).await;
        let data = m.inner.fs.borrow().read(self.ino, self.pos, len)?;
        if data.is_empty() {
            return Ok(data);
        }
        let blocks = (data.len() as u64).div_ceil(costs::PAGE_SIZE as u64);
        m.charge(costs::PAGE_CACHE_OP * blocks, Charge::Os).await;
        let misses = m.touch(LxProc::file_addr(self.ino, self.pos), data.len())
            + m.touch(self.proc.user_buf(), data.len());
        let copy = m.memcpy_cycles(data.len() as u64, misses);
        m.charge(copy, Charge::Xfer).await;
        self.pos += data.len() as u64;
        Ok(data)
    }

    /// Writes `data` at the current position.
    ///
    /// Costs: like `read`, plus zeroing freshly allocated blocks before
    /// they are handed to the application (§5.4).
    ///
    /// # Errors
    ///
    /// [`Code::NoAccess`] if not writable; filesystem errors otherwise.
    pub async fn write(&mut self, data: &[u8]) -> Result<usize> {
        if !self.writable {
            return Err(Error::new(Code::NoAccess));
        }
        let m = &self.proc.m;
        m.charge(costs::SYSCALL_ENTRY_EXIT, Charge::Os).await;
        m.charge(costs::FD_LOOKUP, Charge::Os).await;
        let blocks = (data.len() as u64).div_ceil(costs::PAGE_SIZE as u64);
        m.charge(costs::PAGE_CACHE_OP * blocks, Charge::Os).await;
        let new_pages = m.inner.fs.borrow_mut().write(self.ino, self.pos, data)?;
        if new_pages > 0 {
            let zero_misses = m.touch(
                LxProc::file_addr(self.ino, self.pos),
                new_pages as usize * 4096,
            );
            let zero = m.memcpy_cycles(new_pages * 4096, zero_misses);
            m.charge(zero, Charge::Xfer).await;
        }
        let misses = m.touch(self.proc.user_buf(), data.len())
            + m.touch(LxProc::file_addr(self.ino, self.pos), data.len());
        let copy = m.memcpy_cycles(data.len() as u64, misses);
        m.charge(copy, Charge::Xfer).await;
        self.pos += data.len() as u64;
        Ok(data.len())
    }

    /// Repositions the file offset (absolute).
    pub async fn seek(&mut self, pos: u64) -> u64 {
        self.proc
            .m
            .charge(
                costs::SYSCALL_ENTRY_EXIT + costs::SYSCALL_DISPATCH,
                Charge::Os,
            )
            .await;
        self.pos = pos;
        self.pos
    }

    /// Closes the file (one syscall).
    pub async fn close(self) {
        self.proc
            .m
            .charge(
                costs::SYSCALL_ENTRY_EXIT + costs::SYSCALL_DISPATCH,
                Charge::Os,
            )
            .await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::LxConfig;
    use m3_sim::Sim;

    fn machine() -> (Sim, LxMachine) {
        let sim = Sim::new();
        let m = LxMachine::new(&sim, LxConfig::xtensa());
        (sim, m)
    }

    #[test]
    fn null_syscall_costs_410_cycles() {
        let (sim, m) = machine();
        let (_, h) = m.spawn_proc("p", |p| async move {
            let start = p.machine().sim().now();
            for _ in 0..10 {
                p.syscall_null().await;
            }
            ((p.machine().sim().now() - start).as_u64() / 10) as i64
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 410, "§5.3: 410 cycles on Xtensa");
    }

    #[test]
    fn file_write_read_roundtrip() {
        let (sim, m) = machine();
        let (_, h) = m.spawn_proc("p", |p| async move {
            let mut f = p.open("/data", true, true, false).await.unwrap();
            f.write(b"hello tmpfs").await.unwrap();
            f.seek(0).await;
            let back = f.read(64).await.unwrap();
            assert_eq!(back, b"hello tmpfs");
            f.close().await;
            let st = p.stat("/data").await.unwrap();
            assert_eq!(st.size, 11);
            0
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    fn read_overhead_matches_paper_decomposition() {
        // One 4 KiB read with a warm cache should cost entry/exit + fd
        // lookup + one page-cache op + the raw copy loop.
        let sim = Sim::new();
        let m = LxMachine::new(&sim, LxConfig::xtensa_warm());
        let (_, h) = m.spawn_proc("p", |p| async move {
            let mut f = p.open("/f", true, true, false).await.unwrap();
            f.write(&vec![7u8; 8192]).await.unwrap();
            f.seek(0).await;
            let start = p.machine().sim().now();
            f.read(4096).await.unwrap();
            (p.machine().sim().now() - start).as_u64() as i64
        });
        sim.run();
        let cycles = h.try_take().unwrap() as u64;
        let expect = 380 + 400 + 550 + 4096 / 2; // §5.4 + memcpy at 2 B/cycle
        assert_eq!(cycles, expect);
    }

    #[test]
    fn cold_cache_makes_reads_slower() {
        let run = |cfg: LxConfig| {
            let sim = Sim::new();
            let m = LxMachine::new(&sim, cfg);
            let (_, h) = m.spawn_proc("p", |p| async move {
                let mut f = p.open("/f", true, true, false).await.unwrap();
                let big = vec![1u8; 256 * 1024];
                f.write(&big).await.unwrap();
                f.seek(0).await;
                let start = p.machine().sim().now();
                let mut total = 0;
                loop {
                    let d = f.read(4096).await.unwrap();
                    if d.is_empty() {
                        break;
                    }
                    total += d.len();
                }
                assert_eq!(total, 256 * 1024);
                (p.machine().sim().now() - start).as_u64() as i64
            });
            sim.run();
            h.try_take().unwrap()
        };
        let cold = run(LxConfig::xtensa());
        let warm = run(LxConfig::xtensa_warm());
        assert!(
            cold > warm * 3 / 2,
            "misses must cost: cold={cold} warm={warm}"
        );
    }

    #[test]
    fn fork_and_waitpid() {
        let (sim, m) = machine();
        let (_, h) = m.spawn_proc("parent", |p| async move {
            let child = p
                .fork("child", |c| async move {
                    c.compute(Cycles::new(1000)).await;
                    21
                })
                .await;
            p.waitpid(child).await * 2
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 42);
    }

    #[test]
    fn sendfile_copies_without_user_buffers() {
        let (sim, m) = machine();
        let (_, h) = m.spawn_proc("p", |p| async move {
            let mut src = p.open("/src", true, true, false).await.unwrap();
            src.write(&vec![3u8; 10_000]).await.unwrap();
            src.seek(0).await;
            let mut dst = p.open("/dst", true, true, false).await.unwrap();
            let n = p.sendfile(&mut dst, &mut src, 10_000).await.unwrap();
            assert_eq!(n, 10_000);
            dst.seek(0).await;
            let data = dst.read(10_000).await.unwrap();
            assert!(data.iter().all(|&b| b == 3));
            0
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    fn dir_ops() {
        let (sim, m) = machine();
        let (_, h) = m.spawn_proc("p", |p| async move {
            p.mkdir("/d").await.unwrap();
            let mut f = p.open("/d/f", true, true, false).await.unwrap();
            f.write(b"x").await.unwrap();
            f.close().await;
            p.link("/d/f", "/d/g").await.unwrap();
            assert_eq!(p.stat("/d/g").await.unwrap().links, 2);
            let ls = p.read_dir("/d").await.unwrap();
            assert_eq!(ls.len(), 2);
            p.unlink("/d/f").await.unwrap();
            p.unlink("/d/g").await.unwrap();
            assert!(p.stat("/d/g").await.is_err());
            0
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 0);
    }
}
