//! Pipes on the Linux model: an in-kernel buffer, copies on both sides,
//! and blocking with context switches — the costs M3's direct PE-to-PE
//! pipes avoid (§4.5.7, Figure 3 "Pipe").

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use m3_base::error::{Code, Error, Result};
use m3_sim::Notify;

use crate::costs;
use crate::machine::{Charge, LxMachine};
use crate::proc::LxProc;

/// Kernel pipe buffer capacity (64 KiB, as Linux's default).
pub const PIPE_CAPACITY: usize = 64 * 1024;

#[derive(Debug)]
struct PipeShared {
    id: u64,
    buf: VecDeque<u8>,
    writer_alive: bool,
    reader_alive: bool,
    data: Notify,
    space: Notify,
}

/// The reading end of a Linux pipe.
#[derive(Debug)]
pub struct LxPipeReader {
    m: LxMachine,
    shared: Rc<RefCell<PipeShared>>,
}

/// The writing end of a Linux pipe.
#[derive(Debug)]
pub struct LxPipeWriter {
    m: LxMachine,
    shared: Rc<RefCell<PipeShared>>,
}

pub(crate) fn lx_pipe(m: &LxMachine) -> (LxPipeReader, LxPipeWriter) {
    let id = m.inner.next_pipe.get();
    m.inner.next_pipe.set(id + 1);
    let shared = Rc::new(RefCell::new(PipeShared {
        id,
        buf: VecDeque::with_capacity(PIPE_CAPACITY),
        writer_alive: true,
        reader_alive: true,
        data: Notify::new(),
        space: Notify::new(),
    }));
    (
        LxPipeReader {
            m: m.clone(),
            shared: shared.clone(),
        },
        LxPipeWriter {
            m: m.clone(),
            shared,
        },
    )
}

fn pipe_addr(id: u64) -> u64 {
    costs::PIPE_MEM_BASE + id * costs::PIPE_MEM_STRIDE
}

impl LxPipeWriter {
    /// Writes all of `data`, blocking (and context-switching) when the
    /// kernel buffer is full.
    ///
    /// # Errors
    ///
    /// [`Code::EndOfStream`] when the reader is gone.
    pub async fn write(&mut self, proc: &LxProc, data: &[u8]) -> Result<usize> {
        let mut written = 0;
        while written < data.len() {
            self.m
                .charge(costs::SYSCALL_ENTRY_EXIT + costs::PIPE_OP, Charge::Os)
                .await;
            // Wait for space.
            {
                let shared = self.shared.clone();
                let data_notify = {
                    let s = shared.borrow();
                    if !s.reader_alive {
                        return Err(Error::new(Code::EndOfStream).with_msg("reader gone"));
                    }
                    s.space.clone()
                };
                proc.block_on(
                    || {
                        let s = shared.borrow();
                        s.buf.len() < PIPE_CAPACITY || !s.reader_alive
                    },
                    &data_notify,
                )
                .await;
            }
            let (n, id, off) = {
                let mut s = self.shared.borrow_mut();
                if !s.reader_alive {
                    return Err(Error::new(Code::EndOfStream).with_msg("reader gone"));
                }
                let space = PIPE_CAPACITY - s.buf.len();
                let n = space.min(data.len() - written);
                let off = s.buf.len();
                s.buf.extend(&data[written..written + n]);
                (n, s.id, off)
            };
            // Copy user buffer -> kernel pipe buffer.
            let misses = self.m.touch(pipe_addr(id) + off as u64, n);
            let copy = self.m.memcpy_cycles(n as u64, misses);
            self.m.charge(copy, Charge::Xfer).await;
            written += n;
            self.shared.borrow().data.notify_all();
        }
        Ok(written)
    }

    /// Closes the writing end; the reader sees EOF.
    pub fn close(self) {
        let mut s = self.shared.borrow_mut();
        s.writer_alive = false;
        s.data.notify_all();
    }
}

impl LxPipeReader {
    /// Reads up to `len` bytes, blocking while the pipe is empty. Returns
    /// an empty vector at EOF.
    ///
    /// # Errors
    ///
    /// Currently infallible beyond transport; kept fallible for parity
    /// with the file API.
    pub async fn read(&mut self, proc: &LxProc, len: usize) -> Result<Vec<u8>> {
        self.m
            .charge(costs::SYSCALL_ENTRY_EXIT + costs::PIPE_OP, Charge::Os)
            .await;
        {
            let shared = self.shared.clone();
            let data_notify = shared.borrow().data.clone();
            proc.block_on(
                || {
                    let s = shared.borrow();
                    !s.buf.is_empty() || !s.writer_alive
                },
                &data_notify,
            )
            .await;
        }
        let (out, id) = {
            let mut s = self.shared.borrow_mut();
            let n = len.min(s.buf.len());
            let out: Vec<u8> = s.buf.drain(..n).collect();
            (out, s.id)
        };
        if out.is_empty() {
            return Ok(out); // EOF
        }
        // Copy kernel pipe buffer -> user buffer.
        let misses = self.m.touch(pipe_addr(id), out.len());
        let copy = self.m.memcpy_cycles(out.len() as u64, misses);
        self.m.charge(copy, Charge::Xfer).await;
        self.shared.borrow().space.notify_all();
        Ok(out)
    }

    /// Closes the reading end; further writes fail.
    pub fn close(self) {
        let mut s = self.shared.borrow_mut();
        s.reader_alive = false;
        s.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::LxConfig;
    use m3_sim::Sim;

    #[test]
    fn pipe_between_forked_processes() {
        let sim = Sim::new();
        let m = LxMachine::new(&sim, LxConfig::xtensa());
        let (_, h) = m.spawn_proc("parent", |p| async move {
            let (mut rx, mut tx) = p.pipe().await;
            let child = p
                .fork("child", move |c| async move {
                    let payload = vec![0xabu8; 100_000]; // > pipe capacity
                    tx.write(&c, &payload).await.unwrap();
                    tx.close();
                    0
                })
                .await;
            let mut total = 0usize;
            loop {
                let chunk = rx.read(&p, 4096).await.unwrap();
                if chunk.is_empty() {
                    break;
                }
                assert!(chunk.iter().all(|&b| b == 0xab));
                total += chunk.len();
            }
            rx.close();
            p.waitpid(child).await;
            total as i64
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 100_000);
    }

    #[test]
    fn write_to_closed_reader_fails() {
        let sim = Sim::new();
        let m = LxMachine::new(&sim, LxConfig::xtensa());
        let (_, h) = m.spawn_proc("p", |p| async move {
            let (rx, mut tx) = p.pipe().await;
            rx.close();
            tx.write(&p, b"x").await.unwrap_err().code() as i64
        });
        sim.run();
        assert_eq!(
            h.try_take().unwrap(),
            m3_base::error::Code::EndOfStream.as_raw() as i64
        );
    }

    #[test]
    fn blocking_forces_context_switches() {
        let sim = Sim::new();
        let m = LxMachine::new(&sim, LxConfig::xtensa());
        let stats = m.stats();
        let (_, h) = m.spawn_proc("parent", |p| async move {
            let (mut rx, mut tx) = p.pipe().await;
            let child = p
                .fork("child", move |c| async move {
                    tx.write(&c, &vec![1u8; 200_000]).await.unwrap();
                    tx.close();
                    0
                })
                .await;
            loop {
                let chunk = rx.read(&p, 4096).await.unwrap();
                if chunk.is_empty() {
                    break;
                }
            }
            rx.close();
            p.waitpid(child).await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 0);
        assert!(
            stats.get("lx.ctx_switches") >= 4,
            "pipe blocking must bounce between the processes"
        );
    }
}
