//! Calibrated Linux cost constants, with paper citations.

use m3_base::Cycles;

/// Entering and leaving the kernel: mode switch plus saving/restoring the
/// machine state (§5.4: "read on Linux requires ~380 cycles for
/// entering/leaving the kernel"). The remainder of the 410-cycle null
/// syscall (§5.3) is dispatch.
pub const SYSCALL_ENTRY_EXIT: Cycles = Cycles::new(380);

/// Syscall-table dispatch (the §5.3 410-cycle null syscall minus the ~380
/// entry/exit cycles of §5.4).
pub const SYSCALL_DISPATCH: Cycles = Cycles::new(30);

/// Retrieving the file pointer, security checks, and function
/// prologs/epilogs (§5.4: ~400 cycles).
pub const FD_LOOKUP: Cycles = Cycles::new(400);

/// Page-cache operations (get, put, …) per 4 KiB block (§5.4: ~550 cycles).
pub const PAGE_CACHE_OP: Cycles = Cycles::new(550);

/// Page size the §5.4 per-4-KiB-block page-cache costs apply to.
pub const PAGE_SIZE: usize = 4096;

/// Path lookup per component (dentry walk + permission check). Tuned so
/// `stat` is "well optimized on Linux" and slightly faster than m3fs' RPC
/// (§5.6).
pub const PATH_LOOKUP_PER_COMP: Cycles = Cycles::new(160);

/// Inode operations of a create/unlink/link/mkdir beyond the lookup
/// (calibrated against the §5.6 meta-operation comparison).
pub const INODE_MUT: Cycles = Cycles::new(450);

/// `stat` beyond lookup: inode fetch and `struct stat` fill (§5.6: stat is
/// "well optimized on Linux").
pub const STAT_FILL: Cycles = Cycles::new(250);

/// `getdents` per returned entry (directory listing in the §5.6 find
/// benchmark).
pub const DENTS_PER_ENTRY: Cycles = Cycles::new(60);

/// Direct cost of a context switch (scheduler, register state). The
/// *indirect* cost — refilling caches — emerges from the cache simulator
/// (§5.5: pipes on Linux suffer context switches between producer and
/// consumer).
pub const CTX_SWITCH: Cycles = Cycles::new(1200);

/// `fork`: duplicating mm/fd tables, COW page-table setup. M3's `VPE::run`
/// beats this (§5.6: "VPE::run being faster than fork").
pub const FORK: Cycles = Cycles::new(40_000);

/// `exec` beyond loading the image: ELF parsing, mm teardown/rebuild
/// (counterpart of M3's application loading, §4.5.5/§5.6).
pub const EXEC_BASE: Cycles = Cycles::new(60_000);

/// Pipe bookkeeping per operation beyond the copy (locking, wakeups);
/// Linux side of the §5.5 pipe comparison.
pub const PIPE_OP: Cycles = Cycles::new(300);

/// Kernel-internal per-page cost of `sendfile` (no user copy; tar/untar
/// use it, §5.6).
pub const SENDFILE_PER_PAGE: Cycles = Cycles::new(700);

/// Base address of the tmpfs page cache in the modelled physical address
/// space (feeds the cache simulator used for the §5.5/§5.6 Linux runs).
pub const FILE_MEM_BASE: u64 = 0x4000_0000;

/// Bytes of modelled address space per file (§5.5/§5.6 cache model layout).
pub const FILE_MEM_STRIDE: u64 = 0x0100_0000;

/// Base address of per-process user buffers (§5.5/§5.6 cache model layout).
pub const USER_MEM_BASE: u64 = 0x8000_0000;

/// Bytes of modelled address space per process (§5.5/§5.6 cache model
/// layout).
pub const USER_MEM_STRIDE: u64 = 0x0100_0000;

/// Base address of in-kernel pipe buffers (§5.5 pipe benchmark layout).
pub const PIPE_MEM_BASE: u64 = 0xc000_0000;

/// Bytes of modelled address space per pipe (§5.5 pipe benchmark layout).
pub const PIPE_MEM_STRIDE: u64 = 0x0010_0000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_syscall_total_matches_paper() {
        assert_eq!(
            (SYSCALL_ENTRY_EXIT + SYSCALL_DISPATCH).as_u64(),
            410,
            "§5.3: 410 cycles on Xtensa"
        );
    }

    #[test]
    fn read_block_overhead_matches_paper() {
        // §5.4: ~380 + ~400 + ~550 cycles per 4 KiB block.
        let per_block = SYSCALL_ENTRY_EXIT + FD_LOOKUP + PAGE_CACHE_OP;
        assert_eq!(per_block.as_u64(), 1330);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn address_regions_do_not_overlap() {
        assert!(FILE_MEM_BASE + 64 * FILE_MEM_STRIDE <= USER_MEM_BASE);
        assert!(USER_MEM_BASE + 64 * USER_MEM_STRIDE <= PIPE_MEM_BASE);
    }
}
