//! A tmpfs model: the in-memory filesystem of the Linux baseline (§5.4
//! compares m3fs against Linux's tmpfs).

use std::collections::BTreeMap;

use m3_base::error::{Code, Error, Result};

/// Inode numbers.
pub type Ino = u64;

#[derive(Debug)]
enum Node {
    File { data: Vec<u8>, links: u32 },
    Dir { entries: BTreeMap<String, Ino> },
}

/// The in-memory filesystem backing the Linux model.
#[derive(Debug)]
pub struct Tmpfs {
    nodes: BTreeMap<Ino, Node>,
    next_ino: Ino,
}

/// The root inode.
pub const ROOT: Ino = 1;

impl Default for Tmpfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Tmpfs {
    /// Creates an empty filesystem with a root directory.
    pub fn new() -> Tmpfs {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            ROOT,
            Node::Dir {
                entries: BTreeMap::new(),
            },
        );
        Tmpfs {
            nodes,
            next_ino: ROOT + 1,
        }
    }

    fn components(path: &str) -> impl Iterator<Item = &str> {
        path.split('/').filter(|c| !c.is_empty())
    }

    /// Number of path components (for lookup cost accounting).
    pub fn depth(path: &str) -> u64 {
        Self::components(path).count() as u64
    }

    /// Resolves a path to an inode.
    ///
    /// # Errors
    ///
    /// [`Code::NoSuchFile`] / [`Code::IsNoDir`] like a real lookup.
    pub fn resolve(&self, path: &str) -> Result<Ino> {
        let mut cur = ROOT;
        for comp in Self::components(path) {
            match &self.nodes[&cur] {
                Node::Dir { entries } => {
                    cur = *entries
                        .get(comp)
                        .ok_or_else(|| Error::new(Code::NoSuchFile).with_msg(path.to_string()))?;
                }
                Node::File { .. } => {
                    return Err(Error::new(Code::IsNoDir).with_msg(path.to_string()))
                }
            }
        }
        Ok(cur)
    }

    fn parent_of<'p>(&self, path: &'p str) -> Result<(Ino, &'p str)> {
        let comps: Vec<&str> = Self::components(path).collect();
        let Some((last, dirs)) = comps.split_last() else {
            return Err(Error::new(Code::InvArgs).with_msg("root has no parent"));
        };
        let mut cur = ROOT;
        for comp in dirs {
            match &self.nodes[&cur] {
                Node::Dir { entries } => {
                    cur = *entries
                        .get(*comp)
                        .ok_or_else(|| Error::new(Code::NoSuchFile).with_msg(path.to_string()))?;
                }
                Node::File { .. } => {
                    return Err(Error::new(Code::IsNoDir).with_msg(path.to_string()))
                }
            }
        }
        if !matches!(self.nodes[&cur], Node::Dir { .. }) {
            return Err(Error::new(Code::IsNoDir).with_msg(path.to_string()));
        }
        Ok((cur, last))
    }

    /// Creates an empty file; fails if it exists.
    ///
    /// # Errors
    ///
    /// [`Code::Exists`] and lookup errors.
    pub fn create(&mut self, path: &str) -> Result<Ino> {
        let (parent, name) = self.parent_of(path)?;
        let ino = self.next_ino;
        self.next_ino += 1;
        let Node::Dir { entries } = self.nodes.get_mut(&parent).expect("parent exists") else {
            unreachable!("checked dir")
        };
        if entries.contains_key(name) {
            return Err(Error::new(Code::Exists).with_msg(path.to_string()));
        }
        entries.insert(name.to_string(), ino);
        self.nodes.insert(
            ino,
            Node::File {
                data: Vec::new(),
                links: 1,
            },
        );
        Ok(ino)
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// [`Code::Exists`] and lookup errors.
    pub fn mkdir(&mut self, path: &str) -> Result<Ino> {
        let (parent, name) = self.parent_of(path)?;
        let ino = self.next_ino;
        self.next_ino += 1;
        let Node::Dir { entries } = self.nodes.get_mut(&parent).expect("parent exists") else {
            unreachable!("checked dir")
        };
        if entries.contains_key(name) {
            return Err(Error::new(Code::Exists).with_msg(path.to_string()));
        }
        entries.insert(name.to_string(), ino);
        self.nodes.insert(
            ino,
            Node::Dir {
                entries: BTreeMap::new(),
            },
        );
        Ok(ino)
    }

    /// Whether the inode is a directory.
    pub fn is_dir(&self, ino: Ino) -> bool {
        matches!(self.nodes[&ino], Node::Dir { .. })
    }

    /// File size (0 for directories).
    pub fn size(&self, ino: Ino) -> u64 {
        match &self.nodes[&ino] {
            Node::File { data, .. } => data.len() as u64,
            Node::Dir { .. } => 0,
        }
    }

    /// Link count.
    pub fn links(&self, ino: Ino) -> u32 {
        match &self.nodes[&ino] {
            Node::File { links, .. } => *links,
            Node::Dir { .. } => 1,
        }
    }

    /// Reads up to `len` bytes at `off`.
    ///
    /// # Errors
    ///
    /// [`Code::IsDir`] for directories.
    pub fn read(&self, ino: Ino, off: u64, len: usize) -> Result<Vec<u8>> {
        match &self.nodes[&ino] {
            Node::File { data, .. } => {
                let start = (off as usize).min(data.len());
                let end = (start + len).min(data.len());
                Ok(data[start..end].to_vec())
            }
            Node::Dir { .. } => Err(Error::new(Code::IsDir)),
        }
    }

    /// Writes `bytes` at `off`, growing the file; returns the number of
    /// previously unallocated 4 KiB pages (they must be zeroed, §5.4).
    ///
    /// # Errors
    ///
    /// [`Code::IsDir`] for directories.
    pub fn write(&mut self, ino: Ino, off: u64, bytes: &[u8]) -> Result<u64> {
        match self.nodes.get_mut(&ino).expect("inode exists") {
            Node::File { data, .. } => {
                let old_pages = (data.len() as u64).div_ceil(4096);
                let end = off as usize + bytes.len();
                if end > data.len() {
                    data.resize(end, 0);
                }
                data[off as usize..end].copy_from_slice(bytes);
                let new_pages = (data.len() as u64).div_ceil(4096);
                Ok(new_pages.saturating_sub(old_pages))
            }
            Node::Dir { .. } => Err(Error::new(Code::IsDir)),
        }
    }

    /// Truncates a file.
    ///
    /// # Errors
    ///
    /// [`Code::IsDir`] for directories.
    pub fn truncate(&mut self, ino: Ino, size: u64) -> Result<()> {
        match self.nodes.get_mut(&ino).expect("inode exists") {
            Node::File { data, .. } => {
                data.resize(size as usize, 0);
                Ok(())
            }
            Node::Dir { .. } => Err(Error::new(Code::IsDir)),
        }
    }

    /// Hard link.
    ///
    /// # Errors
    ///
    /// [`Code::IsDir`] when `old` is a directory, [`Code::Exists`] when
    /// `new` exists.
    pub fn link(&mut self, old: &str, new: &str) -> Result<()> {
        let ino = self.resolve(old)?;
        if self.is_dir(ino) {
            return Err(Error::new(Code::IsDir));
        }
        let (parent, name) = self.parent_of(new)?;
        let name = name.to_string();
        let Node::Dir { entries } = self.nodes.get_mut(&parent).expect("parent") else {
            unreachable!()
        };
        if entries.contains_key(&name) {
            return Err(Error::new(Code::Exists));
        }
        entries.insert(name, ino);
        if let Node::File { links, .. } = self.nodes.get_mut(&ino).expect("inode") {
            *links += 1;
        }
        Ok(())
    }

    /// Unlink; frees the file with the last link.
    ///
    /// # Errors
    ///
    /// [`Code::IsDir`] for directories.
    pub fn unlink(&mut self, path: &str) -> Result<()> {
        let ino = self.resolve(path)?;
        if self.is_dir(ino) {
            return Err(Error::new(Code::IsDir));
        }
        let (parent, name) = self.parent_of(path)?;
        let name = name.to_string();
        let Node::Dir { entries } = self.nodes.get_mut(&parent).expect("parent") else {
            unreachable!()
        };
        entries.remove(&name);
        let Node::File { links, .. } = self.nodes.get_mut(&ino).expect("inode") else {
            unreachable!()
        };
        *links -= 1;
        if *links == 0 {
            self.nodes.remove(&ino);
        }
        Ok(())
    }

    /// Lists a directory: (name, is_dir) pairs.
    ///
    /// # Errors
    ///
    /// [`Code::IsNoDir`] for files.
    pub fn read_dir(&self, path: &str) -> Result<Vec<(String, bool)>> {
        let ino = self.resolve(path)?;
        match &self.nodes[&ino] {
            Node::Dir { entries } => Ok(entries
                .iter()
                .map(|(n, &c)| (n.clone(), self.is_dir(c)))
                .collect()),
            Node::File { .. } => Err(Error::new(Code::IsNoDir)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_read() {
        let mut fs = Tmpfs::new();
        let ino = fs.create("/f").unwrap();
        let new_pages = fs.write(ino, 0, &[1, 2, 3]).unwrap();
        assert_eq!(new_pages, 1);
        assert_eq!(fs.read(ino, 1, 2).unwrap(), vec![2, 3]);
        assert_eq!(fs.size(ino), 3);
        // Writing into the same page allocates nothing new.
        assert_eq!(fs.write(ino, 3, &[4]).unwrap(), 0);
        // Crossing into page 2 allocates one page.
        assert_eq!(fs.write(ino, 4095, &[9, 9]).unwrap(), 1);
    }

    #[test]
    fn dirs_links_unlink() {
        let mut fs = Tmpfs::new();
        fs.mkdir("/d").unwrap();
        let ino = fs.create("/d/f").unwrap();
        fs.write(ino, 0, b"x").unwrap();
        fs.link("/d/f", "/d/g").unwrap();
        assert_eq!(fs.links(ino), 2);
        fs.unlink("/d/f").unwrap();
        assert_eq!(fs.resolve("/d/g").unwrap(), ino);
        fs.unlink("/d/g").unwrap();
        assert!(fs.resolve("/d/g").is_err());
        let ls = fs.read_dir("/d").unwrap();
        assert!(ls.is_empty());
    }

    #[test]
    fn read_beyond_eof_is_short() {
        let mut fs = Tmpfs::new();
        let ino = fs.create("/f").unwrap();
        fs.write(ino, 0, &[1, 2]).unwrap();
        assert_eq!(fs.read(ino, 0, 100).unwrap(), vec![1, 2]);
        assert!(fs.read(ino, 10, 4).unwrap().is_empty());
    }

    #[test]
    fn errors() {
        let mut fs = Tmpfs::new();
        fs.mkdir("/d").unwrap();
        assert_eq!(fs.mkdir("/d").unwrap_err().code(), Code::Exists);
        assert_eq!(fs.resolve("/x").unwrap_err().code(), Code::NoSuchFile);
        assert_eq!(fs.link("/d", "/e").unwrap_err().code(), Code::IsDir);
        assert_eq!(fs.unlink("/d").unwrap_err().code(), Code::IsDir);
        let root = fs.resolve("/").unwrap();
        assert!(fs.is_dir(root));
    }
}
