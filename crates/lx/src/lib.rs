//! The Linux baseline model.
//!
//! The paper compares M3 against Linux 3.18 on a cycle-accurate Xtensa
//! simulator with 64 KiB caches and an MMU (§5.1). This crate rebuilds that
//! baseline from the paper's own published cost decomposition rather than
//! porting a kernel:
//!
//! - a null system call costs 410 cycles on Xtensa / 320 on ARM (§5.2/§5.3),
//!   dominated by saving and restoring machine state;
//! - `read` pays ≈ 380 cycles entering/leaving the kernel, ≈ 400 cycles for
//!   fd lookup/security checks/prologs, and ≈ 550 cycles of page-cache
//!   operations per 4 KiB block (§5.4);
//! - data moves by `memcpy`, which — lacking a cache-line prefetcher on
//!   Xtensa — cannot saturate the memory bandwidth (§5.4); misses come from
//!   a real set-associative cache simulator (`m3-platform::Cache`);
//! - Linux zeroes each block before handing it to a writing application
//!   (§5.4);
//! - pipes copy through an in-kernel buffer and block/wake with context
//!   switches;
//! - the `Lx-$` variant removes the cache-miss penalty (paper Figure 3/5).
//!
//! Processes run as simulation tasks sharing one CPU cooperatively; they
//! yield when they block (pipe full/empty, `waitpid`), which is exactly the
//! schedule the paper's single-core benchmarks produce.

pub mod costs;
mod machine;
mod pipe;
mod proc;
mod tmpfs;

pub use machine::{LxConfig, LxMachine};
pub use pipe::{LxPipeReader, LxPipeWriter};
pub use proc::{LxFile, LxProc};
pub use tmpfs::Tmpfs;
