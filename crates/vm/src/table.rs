//! Kernel-owned page tables and the pager's bookkeeping.
//!
//! One [`AddrSpaceObj`] per VPE, owned by the kernel (§3: the kernel makes
//! the final decision of whether an operation is allowed; here, whether a
//! virtual page is backed and by what). Entries record the DRAM frame of a
//! resident page, the swap-region slot of a paged-out page, and
//! accessed/dirty bits. The resident set is bounded (`resident_limit`
//! models memory pressure); the victim policy is **clean-first FIFO**:
//! evicting a clean page costs nothing but a capability revocation, while
//! a dirty victim must be written back to the VPE's swap region first.
//!
//! This module is pure bookkeeping — the kernel performs the actual DRAM
//! copies, capability insertions/revocations, and cycle charges. Keeping
//! the state machine here makes it unit-testable without a simulation and
//! shares the policy with the libos page cache, so both layers evict in
//! the same deterministic order.

use std::collections::{BTreeMap, VecDeque};

use m3_base::{Perm, SelId};

use crate::PAGE_SIZE;

/// One page-table entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageEntry {
    /// Effective permissions of the page (the address space's permissions).
    pub perm: Perm,
    /// DRAM frame base while resident.
    pub frame: Option<u64>,
    /// Swap-region slot index while the page has a swap copy.
    pub swap_slot: Option<u64>,
    /// Whether the frame content diverged from the swap copy (set by
    /// write-access faults; a dirty victim must be written back).
    pub dirty: bool,
    /// Whether the page was faulted on since mapping (clock/debug signal).
    pub accessed: bool,
    /// The client selector the frame capability was handed out at —
    /// recorded so eviction can revoke it and cut the PE off the frame.
    pub cap: Option<SelId>,
}

/// How a fault on a page must be served.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The page is resident: reply with (a capability for) its frame.
    Resident,
    /// The page was evicted to this swap slot: allocate a frame and copy
    /// the slot's content in (page-in).
    SwapIn(u64),
    /// First touch: allocate a zero-filled frame.
    Zero,
}

/// The pager's decision about which resident page to evict.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct VictimPlan {
    /// The chosen victim page number.
    pub page: u64,
    /// Its resident frame.
    pub frame: u64,
    /// Whether the frame must be written back to swap first (dirty victim
    /// — clean pages already match their swap copy, or were never written
    /// and re-fault as zero-filled).
    pub writeback: bool,
}

/// A per-VPE DRAM swap region: a contiguous kernel allocation carved into
/// page-sized slots (§4.5.4: the kernel manages the memories; the swap
/// region is ordinary kernel DRAM dedicated to one VPE's paged-out data).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwapRegion {
    /// DRAM base offset of the region.
    pub base: u64,
    capacity: u64,
    next: u64,
    free: Vec<u64>,
}

impl SwapRegion {
    /// Wraps an allocated DRAM region of `capacity` page slots at `base`.
    pub fn new(base: u64, capacity: u64) -> SwapRegion {
        SwapRegion {
            base,
            capacity,
            next: 0,
            free: Vec::new(),
        }
    }

    /// Region size in bytes for `capacity` slots.
    pub fn bytes_for(capacity: u64) -> u64 {
        capacity * PAGE_SIZE
    }

    /// Region size in bytes.
    pub fn size_bytes(&self) -> u64 {
        SwapRegion::bytes_for(self.capacity)
    }

    /// Allocates a slot, preferring the lowest freed slot (deterministic);
    /// `None` when the region is full.
    pub fn alloc_slot(&mut self) -> Option<u64> {
        if let Some(pos) = self.free.iter().enumerate().min_by_key(|(_, &s)| s) {
            let idx = pos.0;
            return Some(self.free.swap_remove(idx));
        }
        if self.next < self.capacity {
            let slot = self.next;
            self.next += 1;
            return Some(slot);
        }
        None
    }

    /// Returns a slot to the free pool.
    pub fn free_slot(&mut self, slot: u64) {
        debug_assert!(slot < self.next, "freeing a never-allocated slot");
        self.free.push(slot);
    }

    /// DRAM address of a slot.
    pub fn slot_addr(&self, slot: u64) -> u64 {
        self.base + slot * PAGE_SIZE
    }
}

/// The kernel-side address space of one VPE: page table, bounded resident
/// set, swap region, and paging statistics.
#[derive(Clone, Debug, Default)]
pub struct AddrSpaceObj {
    entries: BTreeMap<u64, PageEntry>,
    /// Pages in the order they became resident (FIFO clock).
    resident: VecDeque<u64>,
    /// Maximum resident pages; `None` = unbounded (no eviction — the
    /// pre-paging behaviour, which the golden pins rely on).
    pub resident_limit: Option<usize>,
    /// Lazily created swap region.
    pub swap: Option<SwapRegion>,
    /// Faults served (first-touch + page-ins).
    pub faults: u64,
    /// Faults served by copying a swap slot back into a frame.
    pub page_ins: u64,
    /// Dirty evictions written back to swap.
    pub writebacks: u64,
    /// Bytes those write-backs moved.
    pub writeback_bytes: u64,
}

impl AddrSpaceObj {
    /// Creates an empty address space with the given resident bound.
    pub fn new(resident_limit: Option<usize>) -> AddrSpaceObj {
        AddrSpaceObj {
            resident_limit,
            ..AddrSpaceObj::default()
        }
    }

    /// How a fault on `page` must be served.
    pub fn classify(&self, page: u64) -> FaultKind {
        match self.entries.get(&page) {
            Some(e) if e.frame.is_some() => FaultKind::Resident,
            Some(e) => match e.swap_slot {
                Some(slot) => FaultKind::SwapIn(slot),
                None => FaultKind::Zero,
            },
            None => FaultKind::Zero,
        }
    }

    /// The entry for `page`, if any.
    pub fn entry(&self, page: u64) -> Option<&PageEntry> {
        self.entries.get(&page)
    }

    /// Mutable entry for `page`, if any.
    pub fn entry_mut(&mut self, page: u64) -> Option<&mut PageEntry> {
        self.entries.get_mut(&page)
    }

    /// Number of resident pages.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Whether mapping one more page first requires an eviction.
    pub fn needs_eviction(&self) -> bool {
        matches!(self.resident_limit, Some(limit) if self.resident.len() >= limit)
    }

    /// Chooses the eviction victim: the oldest *clean* resident page, or —
    /// when every resident page is dirty — the oldest page outright.
    /// Deterministic for a given fault history.
    pub fn plan_eviction(&self) -> Option<VictimPlan> {
        let victim = self
            .resident
            .iter()
            .find(|p| self.entries.get(p).is_some_and(|e| !e.dirty))
            .or_else(|| self.resident.front())
            .copied()?;
        let entry = self.entries.get(&victim)?;
        Some(VictimPlan {
            page: victim,
            frame: entry.frame?,
            writeback: entry.dirty,
        })
    }

    /// Completes an eviction after the kernel moved the data: drops the
    /// frame, records the swap slot (required for dirty victims), clears
    /// the dirty bit, and returns the client capability selector to
    /// revoke, if one was handed out.
    pub fn complete_eviction(&mut self, page: u64, slot: Option<u64>) -> Option<SelId> {
        self.resident.retain(|&p| p != page);
        let entry = self.entries.get_mut(&page)?;
        debug_assert!(
            !entry.dirty || slot.is_some(),
            "dirty eviction must record a swap slot"
        );
        entry.frame = None;
        if slot.is_some() {
            entry.swap_slot = slot;
        }
        entry.dirty = false;
        entry.cap.take()
    }

    /// Maps `page` to `frame` (first touch or page-in) and records the
    /// handed-out capability selector.
    pub fn map(&mut self, page: u64, frame: u64, perm: Perm, cap: Option<SelId>) {
        self.resident.push_back(page);
        let entry = self.entries.entry(page).or_insert(PageEntry {
            perm,
            frame: None,
            swap_slot: None,
            dirty: false,
            accessed: false,
            cap: None,
        });
        entry.frame = Some(frame);
        entry.accessed = true;
        entry.cap = cap;
    }

    /// Marks an access on a resident page; write access sets the dirty bit.
    pub fn touch(&mut self, page: u64, write: bool) {
        if let Some(entry) = self.entries.get_mut(&page) {
            entry.accessed = true;
            if write {
                entry.dirty = true;
            }
        }
    }

    /// Removes `page` entirely; the caller frees the frame/slot and
    /// revokes the capability from the returned entry.
    pub fn unmap(&mut self, page: u64) -> Option<PageEntry> {
        self.resident.retain(|&p| p != page);
        self.entries.remove(&page)
    }

    /// All mapped pages (for teardown).
    pub fn pages(&self) -> Vec<u64> {
        self.entries.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapped(aspace: &mut AddrSpaceObj, page: u64, frame: u64) {
        aspace.map(page, frame, Perm::RW, Some(SelId::new(page as u32 + 10)));
    }

    #[test]
    fn classify_walks_the_page_lifecycle() {
        let mut a = AddrSpaceObj::new(Some(2));
        assert_eq!(a.classify(3), FaultKind::Zero);
        mapped(&mut a, 3, 0x1000);
        assert_eq!(a.classify(3), FaultKind::Resident);
        a.touch(3, true);
        let cap = a.complete_eviction(3, Some(7));
        assert_eq!(cap, Some(SelId::new(13)));
        assert_eq!(a.classify(3), FaultKind::SwapIn(7));
    }

    #[test]
    fn clean_first_victim_selection() {
        let mut a = AddrSpaceObj::new(Some(3));
        mapped(&mut a, 0, 0x1000);
        mapped(&mut a, 1, 0x2000);
        mapped(&mut a, 2, 0x3000);
        a.touch(0, true); // oldest is dirty
        let plan = a.plan_eviction().unwrap();
        assert_eq!(plan.page, 1, "oldest *clean* page wins");
        assert!(!plan.writeback);
    }

    #[test]
    fn all_dirty_falls_back_to_fifo_with_writeback() {
        let mut a = AddrSpaceObj::new(Some(2));
        mapped(&mut a, 4, 0x1000);
        mapped(&mut a, 5, 0x2000);
        a.touch(4, true);
        a.touch(5, true);
        let plan = a.plan_eviction().unwrap();
        assert_eq!((plan.page, plan.writeback), (4, true));
    }

    #[test]
    fn needs_eviction_respects_the_limit() {
        let mut a = AddrSpaceObj::new(Some(1));
        assert!(!a.needs_eviction());
        mapped(&mut a, 0, 0x1000);
        assert!(a.needs_eviction());
        let mut unbounded = AddrSpaceObj::new(None);
        for p in 0..100 {
            mapped(&mut unbounded, p, p * 0x1000);
        }
        assert!(!unbounded.needs_eviction());
    }

    #[test]
    fn swap_slots_reuse_the_lowest_freed_slot() {
        let mut swap = SwapRegion::new(0x8000, 3);
        assert_eq!(swap.alloc_slot(), Some(0));
        assert_eq!(swap.alloc_slot(), Some(1));
        assert_eq!(swap.alloc_slot(), Some(2));
        assert_eq!(swap.alloc_slot(), None, "region is full");
        swap.free_slot(2);
        swap.free_slot(0);
        assert_eq!(swap.alloc_slot(), Some(0), "lowest freed slot first");
        assert_eq!(swap.slot_addr(1), 0x8000 + PAGE_SIZE);
    }

    #[test]
    fn unmap_forgets_the_page() {
        let mut a = AddrSpaceObj::new(None);
        mapped(&mut a, 9, 0x9000);
        let entry = a.unmap(9).unwrap();
        assert_eq!(entry.frame, Some(0x9000));
        assert!(a.unmap(9).is_none(), "double unmap yields nothing");
        assert_eq!(a.resident_count(), 0);
    }
}
