//! The SPM dirty-page model.
//!
//! A PE's data SPM is 64 KiB (§2) — 16 pages of 4 KiB. The DTU is the only
//! component that moves data into the SPM from outside (§4.2), so it is
//! the natural place to maintain a dirty bitmap: every deposit of a
//! message into a live ring buffer and every RDMA read that lands in the
//! SPM marks the pages it touches. `m3-sched` then saves *only dirty
//! pages* on a context switch — clean pages already match their DRAM save
//! area and restore lazily from that backing.
//!
//! The simulation does not model SPM addresses of application buffers, so
//! the bitmap uses a *streaming cursor*: incoming bytes are laid out
//! consecutively, wrapping over the SPM, and dirty whatever pages they
//! cover. This is deterministic (same traffic → same bitmap), errs toward
//! marking at most one extra page per transfer, and costs zero simulated
//! time — maintaining it is pure host-side bookkeeping.

use crate::{PAGE_SIZE, SPM_PAGES};

/// Dirty bits for the pages of one SPM-sized working set.
///
/// A fresh bitmap starts **fully dirty**: a newly created context's code
/// and data have never been written to the DRAM save area, so the first
/// save-out must transfer the whole image. After a save the bitmap is
/// clear (SPM == save area), and after a restore it is clear again for the
/// same reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirtyBitmap {
    bits: u64,
    pages: u32,
    cursor: u64,
}

impl Default for DirtyBitmap {
    fn default() -> DirtyBitmap {
        DirtyBitmap::new(SPM_PAGES)
    }
}

impl DirtyBitmap {
    /// Creates a fully-dirty bitmap over `pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero or exceeds 64.
    pub fn new(pages: u32) -> DirtyBitmap {
        assert!(pages > 0 && pages <= 64, "bitmap holds 1..=64 pages");
        let mut b = DirtyBitmap {
            bits: 0,
            pages,
            cursor: 0,
        };
        b.mark_all();
        b
    }

    fn mask(&self) -> u64 {
        if self.pages == 64 {
            u64::MAX
        } else {
            (1u64 << self.pages) - 1
        }
    }

    /// Marks every page dirty (fresh context: the whole image must go out).
    pub fn mark_all(&mut self) {
        self.bits = self.mask();
    }

    /// Clears every bit and rewinds the cursor (SPM now matches the DRAM
    /// save area — right after a save-out or a restore).
    pub fn clear(&mut self) {
        self.bits = 0;
        self.cursor = 0;
    }

    /// Accounts `bytes` of inbound data at the streaming cursor: marks the
    /// pages the bytes cover and advances the cursor (wrapping over the
    /// SPM).
    pub fn touch(&mut self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let spm = self.pages as u64 * PAGE_SIZE;
        if bytes >= spm {
            self.mark_all();
            self.cursor = (self.cursor + bytes) % spm;
            return;
        }
        let first = self.cursor / PAGE_SIZE;
        let last = (self.cursor + bytes - 1) / PAGE_SIZE;
        for page in first..=last {
            self.bits |= 1 << (page % self.pages as u64);
        }
        self.cursor = (self.cursor + bytes) % spm;
    }

    /// Marks one page dirty by index.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn mark(&mut self, page: u32) {
        assert!(page < self.pages, "page {page} out of range");
        self.bits |= 1 << page;
    }

    /// Whether `page` is dirty.
    pub fn is_dirty(&self, page: u32) -> bool {
        page < self.pages && self.bits & (1 << page) != 0
    }

    /// Number of dirty pages.
    pub fn count(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Number of pages tracked.
    pub fn pages(&self) -> u32 {
        self.pages
    }

    /// The raw bits (bit *i* = page *i* dirty).
    pub fn bits(&self) -> u64 {
        self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bitmap_is_fully_dirty() {
        let b = DirtyBitmap::new(16);
        assert_eq!(b.count(), 16);
        assert!(b.is_dirty(0) && b.is_dirty(15));
    }

    #[test]
    fn clear_then_touch_marks_covered_pages_only() {
        let mut b = DirtyBitmap::new(16);
        b.clear();
        assert_eq!(b.count(), 0);
        b.touch(100); // within page 0
        assert_eq!(b.count(), 1);
        assert!(b.is_dirty(0));
        b.touch(PAGE_SIZE); // crosses into page 1
        assert!(b.is_dirty(1));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn touch_wraps_over_the_spm() {
        let mut b = DirtyBitmap::new(4);
        b.clear();
        // Walk the cursor to the last page, then cross the wrap boundary.
        b.touch(3 * PAGE_SIZE);
        b.clear_keep_cursor_for_test();
        b.touch(2 * PAGE_SIZE);
        assert!(b.is_dirty(3) && b.is_dirty(0), "wrap marks both ends");
    }

    impl DirtyBitmap {
        fn clear_keep_cursor_for_test(&mut self) {
            self.bits = 0;
        }
    }

    #[test]
    fn oversized_touch_marks_everything() {
        let mut b = DirtyBitmap::new(8);
        b.clear();
        b.touch(9 * PAGE_SIZE);
        assert_eq!(b.count(), 8);
    }

    #[test]
    fn deterministic_across_identical_traffic() {
        let mut a = DirtyBitmap::new(16);
        let mut b = DirtyBitmap::new(16);
        for bm in [&mut a, &mut b] {
            bm.clear();
            for n in [24u64, 512, 4096, 77, 8000] {
                bm.touch(n);
            }
        }
        assert_eq!(a, b);
    }
}
