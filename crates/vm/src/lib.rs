//! Demand-paged virtual memory for M3 (§7, future work, made first-class).
//!
//! "Moreover, we will add virtual memory support by using the DTU's
//! translation of virtual to physical addresses" — the paper defers paging
//! to future work; this crate supplies the machinery the kernel and libos
//! share to make it real inside the simulation:
//!
//! - [`table`] — per-VPE page tables ([`AddrSpaceObj`]): page entries with
//!   frame/swap backing, accessed/dirty bits, a bounded resident set, and a
//!   deterministic clean-first victim policy,
//! - [`dirty`] — [`DirtyBitmap`], the SPM dirty-page model the DTU keeps
//!   per live context and `m3-sched` consults to transfer only dirty pages
//!   on a context switch,
//! - [`costs`] — §-cited cycle charges for fault handling, page-in, and
//!   write-back.
//!
//! The protocol side (page-fault-as-message) rides the existing syscall
//! channel: the faulting PE's DTU sends a typed `PageFault` message to the
//! kernel PE, the kernel maps or pages-in the frame from DRAM via the DTU
//! and replies with a memory capability for the frame — exactly the shape
//! of the paper's interrupts-as-messages (§4.4.2) applied to translation
//! misses. Everything here is pure bookkeeping: the kernel performs the
//! DRAM copies and capability operations and charges the cycles; this
//! crate only decides *what* must move.

pub mod costs;
pub mod dirty;
pub mod table;

pub use dirty::DirtyBitmap;
pub use table::{AddrSpaceObj, FaultKind, PageEntry, SwapRegion, VictimPlan};

/// Page size of the paging subsystem. 4 KiB, the sweet spot the paper's
/// prototype platform assumes for SPM/DRAM transfers (§2: Xtensa cores
/// with 64 KiB SPMs, i.e. 16 pages of 4 KiB).
pub const PAGE_SIZE: u64 = 4096;

/// Pages in a 64 KiB data SPM (§2): the working set a context switch has
/// to consider.
pub const SPM_PAGES: u32 = (m3_base::cfg::SPM_DATA_SIZE as u64 / PAGE_SIZE) as u32;

/// Default capacity, in pages, of a per-VPE DRAM swap region. Sized like
/// four SPMs so a paged VPE can overcommit its resident budget several
/// times over before the pager reports `OutOfMem` (§4.5.4: the kernel
/// manages all memories in the system; the swap region is ordinary kernel
/// DRAM).
pub const SWAP_PAGES_DEFAULT: u64 = 64;
