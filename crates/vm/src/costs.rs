//! Cycle charges of the paging subsystem.
//!
//! The paper defers virtual memory to future work (§7), so there is no
//! measured fault path to calibrate against. The model below follows the
//! same discipline as every other kernel path in this reproduction: data
//! movement is charged exactly — the DTU copies pages between frames and
//! the swap region at 8 B/cycle like any other transfer (§5.4) — and the
//! software shares are sized from the §5.3 syscall decomposition.

use m3_base::Cycles;

/// Kernel software work to serve a page fault: unmarshal the fault
/// message, walk the page table, and set up or locate the frame. Sized
/// like the old `Translate` prototype — roughly the software share of a
/// null syscall (§5.3) minus dispatch/reply (charged separately).
pub const FAULT_WALK: Cycles = Cycles::new(150);

/// Fixed software work to program the DTU for a swap↔frame page copy
/// (page-in or write-back): like an `Activate`, the kernel validates and
/// writes transfer registers remotely (§4.3.3); the page bytes themselves
/// are charged at the DTU's 8 B/cycle (§5.4).
pub const PAGE_COPY_SETUP: Cycles = Cycles::new(40);

/// Streaming time of one page through the DTU: [`crate::PAGE_SIZE`] bytes
/// at the DTU's 8 B/cycle transfer rate (§5.4).
pub const PAGE_COPY_XFER: Cycles =
    Cycles::new(crate::PAGE_SIZE / m3_base::cfg::DTU_BYTES_PER_CYCLE);

/// Libos-side software share of issuing a page-fault message and
/// installing the returned frame capability in the local cache — the
/// application half of the §5.3 syscall software cycles, same basis as
/// the libos syscall prep/post charges.
pub const FAULT_ISSUE: Cycles = Cycles::new(60);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_costs_stay_syscall_scale() {
        // A fault without data movement must stay in the order of one
        // syscall (≈200 cycles, §5.3): paging gets its win from avoiding
        // transfers, not from magic cheap handlers.
        assert!(FAULT_WALK.as_u64() <= 200);
        assert!(PAGE_COPY_SETUP.as_u64() < FAULT_WALK.as_u64());
        assert!(FAULT_ISSUE.as_u64() < FAULT_WALK.as_u64());
    }
}
