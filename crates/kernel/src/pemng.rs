//! PE allocation.
//!
//! "VPEs are created via a system call to the kernel, which instructs the
//! kernel to select a suitable and unused PE. Thereby, the application can
//! request a specific type of PE — for example a specific accelerator"
//! (§4.5.5).

use m3_base::error::{Code, Error, Result};
use m3_base::PeId;
use m3_platform::{PeDesc, PeType};

use crate::protocol::PeRequest;

/// Tracks which PEs are free and of what type.
#[derive(Debug)]
pub struct PeMng {
    descs: Vec<PeDesc>,
    used: Vec<bool>,
}

impl PeMng {
    /// Creates a manager over the platform's PEs; `kernel_pe` is marked used
    /// from the start.
    pub fn new(descs: Vec<PeDesc>, kernel_pe: PeId) -> PeMng {
        let mut used = vec![false; descs.len()];
        used[kernel_pe.idx()] = true;
        PeMng { descs, used }
    }

    /// Creates a manager that only hands out the PEs in `owned` (multi-
    /// kernel partitioning, paper §7); `kernel_pe` is marked used.
    pub fn new_partition(descs: Vec<PeDesc>, kernel_pe: PeId, owned: &[PeId]) -> PeMng {
        let mut used = vec![true; descs.len()];
        for pe in owned {
            used[pe.idx()] = false;
        }
        used[kernel_pe.idx()] = true;
        PeMng { descs, used }
    }

    /// Allocates a free PE matching `req`; `caller_ty` resolves
    /// [`PeRequest::Same`].
    ///
    /// # Errors
    ///
    /// Returns [`Code::NoFreePe`] if no matching PE is free.
    pub fn alloc(&mut self, req: PeRequest, caller_ty: PeType) -> Result<PeId> {
        let want = match req {
            PeRequest::Any => None,
            PeRequest::Type(ty) => Some(ty),
            PeRequest::Same => Some(caller_ty),
        };
        for (i, desc) in self.descs.iter().enumerate() {
            if self.used[i] {
                continue;
            }
            let matches = match want {
                None => !desc.is_fft_accel(), // "any" means general-purpose
                Some(ty) => desc.ty == ty,
            };
            if matches {
                self.used[i] = true;
                return Ok(PeId::new(i as u32));
            }
        }
        Err(Error::new(Code::NoFreePe).with_msg(format!("request {req:?}")))
    }

    /// Marks a specific PE used (boot-time placement of the first app).
    ///
    /// # Errors
    ///
    /// Returns [`Code::NoFreePe`] if the PE is already used.
    pub fn claim(&mut self, pe: PeId) -> Result<()> {
        if self.used[pe.idx()] {
            return Err(Error::new(Code::NoFreePe).with_msg(format!("{pe} already used")));
        }
        self.used[pe.idx()] = true;
        Ok(())
    }

    /// Releases a PE, "making it available again for others" (§4.5.5).
    pub fn free(&mut self, pe: PeId) {
        self.used[pe.idx()] = false;
    }

    /// The descriptor of a PE.
    pub fn desc(&self, pe: PeId) -> &PeDesc {
        &self.descs[pe.idx()]
    }

    /// Number of free PEs.
    pub fn free_count(&self) -> usize {
        self.used.iter().filter(|&&u| !u).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mng() -> PeMng {
        let descs = vec![
            PeDesc::new(PeType::Xtensa),   // PE0 = kernel
            PeDesc::new(PeType::Xtensa),   // PE1
            PeDesc::new(PeType::Xtensa),   // PE2
            PeDesc::new(PeType::FftAccel), // PE3
        ];
        PeMng::new(descs, PeId::new(0))
    }

    #[test]
    fn any_skips_accelerators() {
        let mut m = mng();
        assert_eq!(
            m.alloc(PeRequest::Any, PeType::Xtensa).unwrap(),
            PeId::new(1)
        );
        assert_eq!(
            m.alloc(PeRequest::Any, PeType::Xtensa).unwrap(),
            PeId::new(2)
        );
        // Only the accelerator is left; Any refuses it.
        assert_eq!(
            m.alloc(PeRequest::Any, PeType::Xtensa).unwrap_err().code(),
            Code::NoFreePe
        );
    }

    #[test]
    fn specific_type_finds_accelerator() {
        let mut m = mng();
        assert_eq!(
            m.alloc(PeRequest::Type(PeType::FftAccel), PeType::Xtensa)
                .unwrap(),
            PeId::new(3)
        );
    }

    #[test]
    fn same_resolves_to_caller_type() {
        let mut m = mng();
        assert_eq!(
            m.alloc(PeRequest::Same, PeType::Xtensa).unwrap(),
            PeId::new(1)
        );
    }

    #[test]
    fn free_makes_pe_reusable() {
        let mut m = mng();
        let pe = m.alloc(PeRequest::Any, PeType::Xtensa).unwrap();
        m.free(pe);
        assert_eq!(m.alloc(PeRequest::Any, PeType::Xtensa).unwrap(), pe);
    }

    #[test]
    fn claim_reserves() {
        let mut m = mng();
        m.claim(PeId::new(1)).unwrap();
        assert_eq!(m.claim(PeId::new(1)).unwrap_err().code(), Code::NoFreePe);
        assert_eq!(
            m.alloc(PeRequest::Any, PeType::Xtensa).unwrap(),
            PeId::new(2)
        );
    }

    #[test]
    fn kernel_pe_never_allocated() {
        let mut m = mng();
        for _ in 0..2 {
            let pe = m.alloc(PeRequest::Any, PeType::Xtensa).unwrap();
            assert_ne!(pe, PeId::new(0));
        }
    }
}
