//! Service and session kernel objects.
//!
//! OS functionality (filesystems, pipes, …) is implemented by applications
//! acting as services (§4.5.1). The kernel keeps a registry of named
//! services; clients open *sessions*, and capability exchanges over a
//! session are forwarded to the service, which may deny them (§4.5.3).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use m3_base::error::{Code, Error, Result};
use m3_base::{EpId, VpeId};

use crate::cap::RGateObj;

/// A registered service.
#[derive(Debug)]
pub struct ServObj {
    /// Global name clients open sessions with.
    pub name: String,
    /// The VPE implementing the service.
    pub owner: VpeId,
    /// The receive gate the service handles kernel requests on.
    pub rgate: Rc<RGateObj>,
    /// The kernel-side send endpoint configured for this service.
    pub kernel_ep: EpId,
}

/// A session between a client VPE and a service.
#[derive(Debug)]
pub struct SessObj {
    /// The service this session belongs to.
    pub serv: Rc<ServObj>,
    /// The service-chosen identifier ("typically the address of the object
    /// that corresponds to the sender", §4.4.2).
    pub ident: u64,
}

/// The kernel's service registry.
#[derive(Default, Debug)]
pub struct ServiceRegistry {
    services: RefCell<BTreeMap<String, Rc<ServObj>>>,
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> ServiceRegistry {
        ServiceRegistry::default()
    }

    /// Registers a service.
    ///
    /// # Errors
    ///
    /// Returns [`Code::Exists`] if the name is taken.
    pub fn register(&self, serv: Rc<ServObj>) -> Result<()> {
        let mut map = self.services.borrow_mut();
        if map.contains_key(&serv.name) {
            return Err(Error::new(Code::Exists).with_msg(format!("service {}", serv.name)));
        }
        map.insert(serv.name.clone(), serv);
        Ok(())
    }

    /// Looks up a service by name.
    ///
    /// # Errors
    ///
    /// Returns [`Code::InvService`] if no such service exists.
    pub fn find(&self, name: &str) -> Result<Rc<ServObj>> {
        self.services
            .borrow()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::new(Code::InvService).with_msg(name.to_string()))
    }

    /// Removes a service (e.g. when its VPE dies).
    pub fn unregister(&self, name: &str) -> Option<Rc<ServObj>> {
        self.services.borrow_mut().remove(name)
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.borrow().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.services.borrow().is_empty()
    }

    /// The registered service names, always in lexicographic order.
    ///
    /// The registry is keyed on a `BTreeMap` precisely so that anything
    /// iterating services (diagnostics, shutdown, future broadcasts) sees
    /// one deterministic order regardless of registration order
    /// (DESIGN.md §4.1).
    pub fn names(&self) -> Vec<String> {
        self.services.borrow().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serv(name: &str) -> Rc<ServObj> {
        Rc::new(ServObj {
            name: name.to_string(),
            owner: VpeId::new(1),
            rgate: RGateObj::new(VpeId::new(1), 8, 512),
            kernel_ep: EpId::new(2),
        })
    }

    #[test]
    fn register_find_unregister() {
        let reg = ServiceRegistry::new();
        reg.register(serv("m3fs")).unwrap();
        assert_eq!(reg.find("m3fs").unwrap().name, "m3fs");
        assert_eq!(reg.find("nope").unwrap_err().code(), Code::InvService);
        assert_eq!(reg.register(serv("m3fs")).unwrap_err().code(), Code::Exists);
        assert!(reg.unregister("m3fs").is_some());
        assert!(reg.is_empty());
    }

    #[test]
    fn listing_order_is_deterministic_and_ignores_registration_order() {
        let forward = ServiceRegistry::new();
        for name in ["pager", "m3fs", "net", "console"] {
            forward.register(serv(name)).unwrap();
        }
        let backward = ServiceRegistry::new();
        for name in ["console", "net", "m3fs", "pager"] {
            backward.register(serv(name)).unwrap();
        }
        let expected = vec!["console", "m3fs", "net", "pager"];
        assert_eq!(forward.names(), expected);
        assert_eq!(
            backward.names(),
            expected,
            "order must not depend on registration order"
        );
    }
}
