//! Wire format of system calls and the kernel-service protocol.
//!
//! A system call on M3 is a DTU message to the kernel PE plus the kernel's
//! reply (§5.3). Everything here is encoded with the `m3-base` marshalling
//! streams, so message lengths — and therefore transfer times — reflect what
//! actually crosses the NoC.

use m3_base::error::{Code, Error, Result};
use m3_base::ids::Label;
use m3_base::marshal::{IStream, OStream};
use m3_base::{EpId, Perm, SelId};
use m3_platform::PeType;

/// Standard endpoint assignment on every application PE.
///
/// EPs 0 and 1 are reserved for the syscall channel; the remaining EPs are
/// managed by libos' endpoint multiplexer (§4.5.4: 8 EPs per DTU, gates are
/// multiplexed onto them).
pub mod std_eps {
    use m3_base::EpId;

    /// Send endpoint for system calls (application -> kernel).
    pub const SYSC_SEND: EpId = EpId::new(0);
    /// Receive endpoint for system-call replies.
    pub const SYSC_REPLY: EpId = EpId::new(1);
    /// First endpoint available to the gate multiplexer.
    pub const FIRST_FREE: u32 = 2;
}

/// Maximum number of capabilities in one session exchange.
pub const MAX_EXCHANGE_CAPS: usize = 4;

/// Maximum payload bytes of a syscall message.
pub const SYSC_MSG_SIZE: usize = 256;

/// Slot count of the kernel's syscall receive buffer.
pub const SYSC_SLOTS: usize = 64;

/// The PE type an application may request for a new VPE (§4.5.5).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PeRequest {
    /// Any general-purpose PE.
    Any,
    /// A PE of this exact type (e.g. the FFT accelerator).
    Type(PeType),
    /// A PE of the same type as the caller's (used by `VPE::run`).
    Same,
}

impl PeRequest {
    pub(crate) fn encode(&self, os: &mut OStream) {
        match self {
            PeRequest::Any => {
                os.push_u8(0);
            }
            PeRequest::Type(ty) => {
                os.push_u8(1);
                os.push_u8(pe_type_to_u8(*ty));
            }
            PeRequest::Same => {
                os.push_u8(2);
            }
        }
    }

    pub(crate) fn decode(is: &mut IStream<'_>) -> Result<PeRequest> {
        match is.pop_u8()? {
            0 => Ok(PeRequest::Any),
            1 => Ok(PeRequest::Type(pe_type_from_u8(is.pop_u8()?)?)),
            2 => Ok(PeRequest::Same),
            _ => Err(Error::new(Code::BadMessage).with_msg("bad PeRequest tag")),
        }
    }
}

fn pe_type_to_u8(ty: PeType) -> u8 {
    match ty {
        PeType::Xtensa => 0,
        PeType::Arm => 1,
        PeType::FftAccel => 2,
    }
}

fn pe_type_from_u8(raw: u8) -> Result<PeType> {
    match raw {
        0 => Ok(PeType::Xtensa),
        1 => Ok(PeType::Arm),
        2 => Ok(PeType::FftAccel),
        _ => Err(Error::new(Code::BadMessage).with_msg("bad PeType tag")),
    }
}

/// A system call, as carried in the DTU message payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Syscall {
    /// Empty-body call used by the §5.3 micro-benchmark.
    Noop,
    /// Creates a receive gate (not yet bound to an endpoint).
    CreateRGate {
        /// Selector the new capability is placed at.
        dst: SelId,
        /// Ring-buffer slots.
        slots: u32,
        /// Slot size in bytes (maximum message size incl. header).
        slot_size: u32,
    },
    /// Creates a send gate to a receive gate the caller holds.
    CreateSGate {
        /// Selector for the new capability.
        dst: SelId,
        /// The receive gate the new gate sends to.
        rgate: SelId,
        /// Label stamped into messages (receiver-chosen).
        label: Label,
        /// Credit budget; `0` encodes unlimited.
        credits: u32,
    },
    /// Allocates a DRAM region and returns it as a memory capability
    /// (§4.5.4: "applications can request a region of the DRAM via a system
    /// call").
    AllocMem {
        /// Selector for the new capability.
        dst: SelId,
        /// Region size in bytes.
        size: u64,
        /// Access permissions.
        perm: Perm,
    },
    /// Creates a sub-range capability of a memory capability.
    DeriveMem {
        /// Selector for the new capability.
        dst: SelId,
        /// The capability to derive from.
        src: SelId,
        /// Offset of the sub-range within the source region.
        offset: u64,
        /// Size of the sub-range.
        size: u64,
        /// Permissions (must be a subset of the source's).
        perm: Perm,
    },
    /// Creates a VPE on a free PE (§4.5.5).
    CreateVpe {
        /// Selector for the VPE capability.
        dst: SelId,
        /// Selector for the memory gate to the VPE's local memory.
        mem_dst: SelId,
        /// Requested PE type.
        pe: PeRequest,
        /// Human-readable VPE name.
        name: String,
    },
    /// Starts a previously created VPE.
    VpeStart {
        /// The VPE capability.
        vpe: SelId,
    },
    /// Waits for a VPE to exit; the reply carries its exit code.
    VpeWait {
        /// The VPE capability.
        vpe: SelId,
    },
    /// Binds a gate capability to an endpoint. Only the kernel can configure
    /// endpoints (§4.5.4), so this is a system call. The endpoint usually
    /// belongs to the caller (`vpe` = selector 0, the self-VPE capability),
    /// but a parent may also pre-configure endpoints of a VPE it holds a
    /// capability for — this is how gates are handed to a child before it
    /// starts.
    Activate {
        /// The VPE whose endpoint is configured (selector 0 = the caller).
        vpe: SelId,
        /// The endpoint to configure.
        ep: EpId,
        /// The gate capability (send, receive, or memory).
        gate: SelId,
    },
    /// Registers a service by name (§4.5.3: the kernel-service channel is
    /// created at service registration).
    CreateSrv {
        /// Selector for the service capability.
        dst: SelId,
        /// The receive gate the service handles requests on.
        rgate: SelId,
        /// Global service name (e.g. `"m3fs"`).
        name: String,
    },
    /// Opens a session with a named service.
    OpenSess {
        /// Selector for the session capability.
        dst: SelId,
        /// Service name.
        name: String,
        /// Service-specific argument.
        arg: u64,
    },
    /// Exchanges capabilities over a session (§4.5.3, second option): the
    /// kernel forwards to the service, which may deny or attach caps.
    ExchangeSess {
        /// The session capability.
        sess: SelId,
        /// `true` = obtain (service -> caller), `false` = delegate.
        obtain: bool,
        /// Caller-side selectors (destinations for obtain, sources for
        /// delegate). At most [`MAX_EXCHANGE_CAPS`].
        caps: Vec<SelId>,
        /// Service-specific request bytes.
        args: Vec<u8>,
    },
    /// Exchanges capabilities directly with another VPE the caller holds a
    /// capability for (§4.5.3, first option).
    Exchange {
        /// The peer VPE capability.
        vpe: SelId,
        /// Caller-side selector.
        own: SelId,
        /// Peer-side selector.
        other: SelId,
        /// `true` = obtain from peer, `false` = delegate to peer.
        obtain: bool,
    },
    /// Revokes a capability and, recursively, everything delegated from it.
    Revoke {
        /// The capability to revoke.
        sel: SelId,
    },
    /// Terminates the calling VPE.
    Exit {
        /// Exit code reported to waiters.
        code: i64,
    },
    /// Reports a page fault at `virt` to the kernel, which resolves it to
    /// a frame capability: allocating a zeroed frame on first touch, or
    /// paging the data back in from the VPE's swap region when the page
    /// was evicted. Page tables live in the kernel and are managed
    /// "similarly to managing the DTU endpoints remotely" (§7); the fault
    /// travels as an ordinary typed message and the mapping comes back in
    /// the reply.
    PageFault {
        /// Selector the frame capability is placed at.
        dst: SelId,
        /// The faulting virtual address (any address within the page).
        virt: u64,
        /// The access that faulted. A write fault marks the page dirty in
        /// the kernel's table; a read fault hands out a read-only view so
        /// a later write must fault again (that second fault is what sets
        /// the dirty bit).
        access: Perm,
    },
    /// Removes a page mapping and frees its frame.
    Unmap {
        /// Any virtual address within the page.
        virt: u64,
    },
}

mod op {
    pub const NOOP: u32 = 0;
    pub const CREATE_RGATE: u32 = 1;
    pub const CREATE_SGATE: u32 = 2;
    pub const ALLOC_MEM: u32 = 3;
    pub const DERIVE_MEM: u32 = 4;
    pub const CREATE_VPE: u32 = 5;
    pub const VPE_START: u32 = 6;
    pub const VPE_WAIT: u32 = 7;
    pub const ACTIVATE: u32 = 8;
    pub const CREATE_SRV: u32 = 9;
    pub const OPEN_SESS: u32 = 10;
    pub const EXCHANGE_SESS: u32 = 11;
    pub const EXCHANGE: u32 = 12;
    pub const REVOKE: u32 = 13;
    pub const EXIT: u32 = 14;
    pub const PAGE_FAULT: u32 = 15;
    pub const UNMAP: u32 = 16;
}

impl Syscall {
    /// The opcode name, for tracing and diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Syscall::Noop => "Noop",
            Syscall::CreateRGate { .. } => "CreateRGate",
            Syscall::CreateSGate { .. } => "CreateSGate",
            Syscall::AllocMem { .. } => "AllocMem",
            Syscall::DeriveMem { .. } => "DeriveMem",
            Syscall::CreateVpe { .. } => "CreateVpe",
            Syscall::VpeStart { .. } => "VpeStart",
            Syscall::VpeWait { .. } => "VpeWait",
            Syscall::Activate { .. } => "Activate",
            Syscall::CreateSrv { .. } => "CreateSrv",
            Syscall::OpenSess { .. } => "OpenSess",
            Syscall::ExchangeSess { .. } => "ExchangeSess",
            Syscall::Exchange { .. } => "Exchange",
            Syscall::Revoke { .. } => "Revoke",
            Syscall::Exit { .. } => "Exit",
            Syscall::PageFault { .. } => "PageFault",
            Syscall::Unmap { .. } => "Unmap",
        }
    }

    /// Marshals the call into message payload bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut os = OStream::with_capacity(64);
        match self {
            Syscall::Noop => {
                os.push_u32(op::NOOP);
            }
            Syscall::CreateRGate {
                dst,
                slots,
                slot_size,
            } => {
                os.push_u32(op::CREATE_RGATE);
                os.push_u32(dst.raw()).push_u32(*slots).push_u32(*slot_size);
            }
            Syscall::CreateSGate {
                dst,
                rgate,
                label,
                credits,
            } => {
                os.push_u32(op::CREATE_SGATE);
                os.push_u32(dst.raw())
                    .push_u32(rgate.raw())
                    .push_u64(*label)
                    .push_u32(*credits);
            }
            Syscall::AllocMem { dst, size, perm } => {
                os.push_u32(op::ALLOC_MEM);
                os.push_u32(dst.raw()).push_u64(*size).push_u8(perm.bits());
            }
            Syscall::DeriveMem {
                dst,
                src,
                offset,
                size,
                perm,
            } => {
                os.push_u32(op::DERIVE_MEM);
                os.push_u32(dst.raw())
                    .push_u32(src.raw())
                    .push_u64(*offset)
                    .push_u64(*size)
                    .push_u8(perm.bits());
            }
            Syscall::CreateVpe {
                dst,
                mem_dst,
                pe,
                name,
            } => {
                os.push_u32(op::CREATE_VPE);
                os.push_u32(dst.raw()).push_u32(mem_dst.raw());
                pe.encode(&mut os);
                os.push_str(name);
            }
            Syscall::VpeStart { vpe } => {
                os.push_u32(op::VPE_START);
                os.push_u32(vpe.raw());
            }
            Syscall::VpeWait { vpe } => {
                os.push_u32(op::VPE_WAIT);
                os.push_u32(vpe.raw());
            }
            Syscall::Activate { vpe, ep, gate } => {
                os.push_u32(op::ACTIVATE);
                os.push_u32(vpe.raw())
                    .push_u32(ep.raw())
                    .push_u32(gate.raw());
            }
            Syscall::CreateSrv { dst, rgate, name } => {
                os.push_u32(op::CREATE_SRV);
                os.push_u32(dst.raw()).push_u32(rgate.raw()).push_str(name);
            }
            Syscall::OpenSess { dst, name, arg } => {
                os.push_u32(op::OPEN_SESS);
                os.push_u32(dst.raw()).push_str(name).push_u64(*arg);
            }
            Syscall::ExchangeSess {
                sess,
                obtain,
                caps,
                args,
            } => {
                os.push_u32(op::EXCHANGE_SESS);
                os.push_u32(sess.raw()).push_bool(*obtain);
                os.push_u32(caps.len() as u32);
                for c in caps {
                    os.push_u32(c.raw());
                }
                os.push_bytes(args);
            }
            Syscall::Exchange {
                vpe,
                own,
                other,
                obtain,
            } => {
                os.push_u32(op::EXCHANGE);
                os.push_u32(vpe.raw())
                    .push_u32(own.raw())
                    .push_u32(other.raw())
                    .push_bool(*obtain);
            }
            Syscall::Revoke { sel } => {
                os.push_u32(op::REVOKE);
                os.push_u32(sel.raw());
            }
            Syscall::Exit { code } => {
                os.push_u32(op::EXIT);
                os.push_i64(*code);
            }
            Syscall::PageFault { dst, virt, access } => {
                os.push_u32(op::PAGE_FAULT);
                os.push_u32(dst.raw())
                    .push_u64(*virt)
                    .push_u8(access.bits());
            }
            Syscall::Unmap { virt } => {
                os.push_u32(op::UNMAP);
                os.push_u64(*virt);
            }
        }
        os.into_bytes()
    }

    /// Unmarshals a call from message payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Code::BadMessage`] on truncated or malformed payloads.
    pub fn from_bytes(bytes: &[u8]) -> Result<Syscall> {
        let mut is = IStream::new(bytes);
        let opcode = is.pop_u32()?;
        let call = match opcode {
            op::NOOP => Syscall::Noop,
            op::CREATE_RGATE => Syscall::CreateRGate {
                dst: SelId::new(is.pop_u32()?),
                slots: is.pop_u32()?,
                slot_size: is.pop_u32()?,
            },
            op::CREATE_SGATE => Syscall::CreateSGate {
                dst: SelId::new(is.pop_u32()?),
                rgate: SelId::new(is.pop_u32()?),
                label: is.pop_u64()?,
                credits: is.pop_u32()?,
            },
            op::ALLOC_MEM => Syscall::AllocMem {
                dst: SelId::new(is.pop_u32()?),
                size: is.pop_u64()?,
                perm: Perm::from_bits(is.pop_u8()?),
            },
            op::DERIVE_MEM => Syscall::DeriveMem {
                dst: SelId::new(is.pop_u32()?),
                src: SelId::new(is.pop_u32()?),
                offset: is.pop_u64()?,
                size: is.pop_u64()?,
                perm: Perm::from_bits(is.pop_u8()?),
            },
            op::CREATE_VPE => Syscall::CreateVpe {
                dst: SelId::new(is.pop_u32()?),
                mem_dst: SelId::new(is.pop_u32()?),
                pe: PeRequest::decode(&mut is)?,
                name: is.pop_str()?,
            },
            op::VPE_START => Syscall::VpeStart {
                vpe: SelId::new(is.pop_u32()?),
            },
            op::VPE_WAIT => Syscall::VpeWait {
                vpe: SelId::new(is.pop_u32()?),
            },
            op::ACTIVATE => Syscall::Activate {
                vpe: SelId::new(is.pop_u32()?),
                ep: EpId::new(is.pop_u32()?),
                gate: SelId::new(is.pop_u32()?),
            },
            op::CREATE_SRV => Syscall::CreateSrv {
                dst: SelId::new(is.pop_u32()?),
                rgate: SelId::new(is.pop_u32()?),
                name: is.pop_str()?,
            },
            op::OPEN_SESS => Syscall::OpenSess {
                dst: SelId::new(is.pop_u32()?),
                name: is.pop_str()?,
                arg: is.pop_u64()?,
            },
            op::EXCHANGE_SESS => {
                let sess = SelId::new(is.pop_u32()?);
                let obtain = is.pop_bool()?;
                let n = is.pop_u32()? as usize;
                if n > MAX_EXCHANGE_CAPS {
                    return Err(Error::new(Code::BadMessage).with_msg("too many caps"));
                }
                let mut caps = Vec::with_capacity(n);
                for _ in 0..n {
                    caps.push(SelId::new(is.pop_u32()?));
                }
                let args = is.pop_bytes()?.to_vec();
                Syscall::ExchangeSess {
                    sess,
                    obtain,
                    caps,
                    args,
                }
            }
            op::EXCHANGE => Syscall::Exchange {
                vpe: SelId::new(is.pop_u32()?),
                own: SelId::new(is.pop_u32()?),
                other: SelId::new(is.pop_u32()?),
                obtain: is.pop_bool()?,
            },
            op::REVOKE => Syscall::Revoke {
                sel: SelId::new(is.pop_u32()?),
            },
            op::EXIT => Syscall::Exit {
                code: is.pop_i64()?,
            },
            op::PAGE_FAULT => Syscall::PageFault {
                dst: SelId::new(is.pop_u32()?),
                virt: is.pop_u64()?,
                access: Perm::from_bits(is.pop_u8()?),
            },
            op::UNMAP => Syscall::Unmap {
                virt: is.pop_u64()?,
            },
            _ => return Err(Error::new(Code::BadMessage).with_msg("unknown syscall opcode")),
        };
        Ok(call)
    }
}

/// A system-call reply: an error code plus call-specific return bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyscallReply {
    /// `None` means success.
    pub error: Option<Code>,
    /// Call-specific return payload (e.g. the exit code for `VpeWait`).
    pub data: Vec<u8>,
}

impl SyscallReply {
    /// A success reply with no payload.
    pub fn ok() -> SyscallReply {
        SyscallReply {
            error: None,
            data: Vec::new(),
        }
    }

    /// A success reply with payload.
    pub fn ok_with(data: Vec<u8>) -> SyscallReply {
        SyscallReply { error: None, data }
    }

    /// An error reply.
    pub fn err(code: Code) -> SyscallReply {
        SyscallReply {
            error: Some(code),
            data: Vec::new(),
        }
    }

    /// Marshals the reply.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut os = OStream::with_capacity(16);
        os.push_u32(self.error.map_or(0, |c| c.as_raw()));
        os.push_bytes(&self.data);
        os.into_bytes()
    }

    /// Unmarshals a reply.
    ///
    /// # Errors
    ///
    /// Returns [`Code::BadMessage`] on malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<SyscallReply> {
        let mut is = IStream::new(bytes);
        let raw = is.pop_u32()?;
        let error = if raw == 0 {
            None
        } else {
            Some(Code::from_raw(raw))
        };
        let data = is.pop_bytes()?.to_vec();
        Ok(SyscallReply { error, data })
    }

    /// Converts the reply into a `Result` over its payload.
    ///
    /// # Errors
    ///
    /// Returns the carried error code, if any.
    pub fn into_result(self) -> Result<Vec<u8>> {
        match self.error {
            None => Ok(self.data),
            Some(code) => Err(Error::new(code)),
        }
    }
}

/// A request the kernel forwards to a service (§4.5.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceRequest {
    /// A client wants to open a session; `arg` is client-chosen.
    Open {
        /// Client-provided argument (e.g. flags).
        arg: u64,
    },
    /// A capability exchange over an existing session.
    Exchange {
        /// The service-chosen session identifier (returned from `Open`).
        ident: u64,
        /// `true` = obtain, `false` = delegate.
        obtain: bool,
        /// Number of capabilities the client offers/requests.
        cap_count: u32,
        /// Service-specific bytes from the client.
        args: Vec<u8>,
    },
    /// The session's VPE exited; the service should drop session state.
    Close {
        /// The session identifier.
        ident: u64,
    },
}

impl ServiceRequest {
    /// Marshals the request.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut os = OStream::with_capacity(32);
        match self {
            ServiceRequest::Open { arg } => {
                os.push_u32(0).push_u64(*arg);
            }
            ServiceRequest::Exchange {
                ident,
                obtain,
                cap_count,
                args,
            } => {
                os.push_u32(1)
                    .push_u64(*ident)
                    .push_bool(*obtain)
                    .push_u32(*cap_count)
                    .push_bytes(args);
            }
            ServiceRequest::Close { ident } => {
                os.push_u32(2).push_u64(*ident);
            }
        }
        os.into_bytes()
    }

    /// Unmarshals a request.
    ///
    /// # Errors
    ///
    /// Returns [`Code::BadMessage`] on malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<ServiceRequest> {
        let mut is = IStream::new(bytes);
        match is.pop_u32()? {
            0 => Ok(ServiceRequest::Open { arg: is.pop_u64()? }),
            1 => Ok(ServiceRequest::Exchange {
                ident: is.pop_u64()?,
                obtain: is.pop_bool()?,
                cap_count: is.pop_u32()?,
                args: is.pop_bytes()?.to_vec(),
            }),
            2 => Ok(ServiceRequest::Close {
                ident: is.pop_u64()?,
            }),
            _ => Err(Error::new(Code::BadMessage).with_msg("unknown service request")),
        }
    }
}

/// A service's reply to a [`ServiceRequest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceReply {
    /// `None` means the service accepted the request.
    pub error: Option<Code>,
    /// For `Open`: the service-chosen session identifier.
    pub ident: u64,
    /// For `Exchange`: the *service-side* selectors of the capabilities to
    /// exchange (the kernel maps them into the client's table).
    pub caps: Vec<SelId>,
    /// Service-specific reply bytes.
    pub args: Vec<u8>,
}

impl ServiceReply {
    /// An acceptance reply.
    pub fn ok() -> ServiceReply {
        ServiceReply {
            error: None,
            ident: 0,
            caps: Vec::new(),
            args: Vec::new(),
        }
    }

    /// A denial (§4.5.3: the service may deny the capability exchange).
    pub fn err(code: Code) -> ServiceReply {
        ServiceReply {
            error: Some(code),
            ident: 0,
            caps: Vec::new(),
            args: Vec::new(),
        }
    }

    /// Marshals the reply.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut os = OStream::with_capacity(32);
        os.push_u32(self.error.map_or(0, |c| c.as_raw()));
        os.push_u64(self.ident);
        os.push_u32(self.caps.len() as u32);
        for c in &self.caps {
            os.push_u32(c.raw());
        }
        os.push_bytes(&self.args);
        os.into_bytes()
    }

    /// Unmarshals a reply.
    ///
    /// # Errors
    ///
    /// Returns [`Code::BadMessage`] on malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<ServiceReply> {
        let mut is = IStream::new(bytes);
        let raw = is.pop_u32()?;
        let error = if raw == 0 {
            None
        } else {
            Some(Code::from_raw(raw))
        };
        let ident = is.pop_u64()?;
        let n = is.pop_u32()? as usize;
        if n > MAX_EXCHANGE_CAPS {
            return Err(Error::new(Code::BadMessage).with_msg("too many caps"));
        }
        let mut caps = Vec::with_capacity(n);
        for _ in 0..n {
            caps.push(SelId::new(is.pop_u32()?));
        }
        let args = is.pop_bytes()?.to_vec();
        Ok(ServiceReply {
            error,
            ident,
            caps,
            args,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(call: Syscall) {
        let bytes = call.to_bytes();
        assert!(bytes.len() <= SYSC_MSG_SIZE, "syscall too large: {call:?}");
        assert_eq!(Syscall::from_bytes(&bytes).unwrap(), call);
    }

    #[test]
    fn all_syscalls_roundtrip() {
        roundtrip(Syscall::Noop);
        roundtrip(Syscall::CreateRGate {
            dst: SelId::new(3),
            slots: 8,
            slot_size: 512,
        });
        roundtrip(Syscall::CreateSGate {
            dst: SelId::new(4),
            rgate: SelId::new(3),
            label: 0xdead,
            credits: 2,
        });
        roundtrip(Syscall::AllocMem {
            dst: SelId::new(5),
            size: 1 << 20,
            perm: Perm::RW,
        });
        roundtrip(Syscall::DeriveMem {
            dst: SelId::new(6),
            src: SelId::new(5),
            offset: 4096,
            size: 8192,
            perm: Perm::R,
        });
        roundtrip(Syscall::CreateVpe {
            dst: SelId::new(7),
            mem_dst: SelId::new(8),
            pe: PeRequest::Type(PeType::FftAccel),
            name: "fft".to_string(),
        });
        roundtrip(Syscall::CreateVpe {
            dst: SelId::new(7),
            mem_dst: SelId::new(8),
            pe: PeRequest::Same,
            name: "clone".to_string(),
        });
        roundtrip(Syscall::VpeStart { vpe: SelId::new(7) });
        roundtrip(Syscall::VpeWait { vpe: SelId::new(7) });
        roundtrip(Syscall::Activate {
            vpe: SelId::new(0),
            ep: EpId::new(3),
            gate: SelId::new(4),
        });
        roundtrip(Syscall::CreateSrv {
            dst: SelId::new(9),
            rgate: SelId::new(3),
            name: "m3fs".to_string(),
        });
        roundtrip(Syscall::OpenSess {
            dst: SelId::new(10),
            name: "m3fs".to_string(),
            arg: 1,
        });
        roundtrip(Syscall::ExchangeSess {
            sess: SelId::new(10),
            obtain: true,
            caps: vec![SelId::new(11), SelId::new(12)],
            args: vec![1, 2, 3],
        });
        roundtrip(Syscall::Exchange {
            vpe: SelId::new(7),
            own: SelId::new(4),
            other: SelId::new(2),
            obtain: false,
        });
        roundtrip(Syscall::Revoke { sel: SelId::new(4) });
        roundtrip(Syscall::Exit { code: -1 });
        roundtrip(Syscall::PageFault {
            dst: SelId::new(20),
            virt: 0x1000_2034,
            access: Perm::RW,
        });
        roundtrip(Syscall::PageFault {
            dst: SelId::new(21),
            virt: 0x7fff_f000,
            access: Perm::R,
        });
        roundtrip(Syscall::Unmap { virt: 0x1000_2000 });
    }

    #[test]
    fn truncated_syscall_is_bad_message() {
        let bytes = Syscall::OpenSess {
            dst: SelId::new(1),
            name: "m3fs".to_string(),
            arg: 0,
        }
        .to_bytes();
        let err = Syscall::from_bytes(&bytes[..bytes.len() - 3]).unwrap_err();
        assert_eq!(err.code(), Code::BadMessage);
    }

    #[test]
    fn unknown_opcode_is_bad_message() {
        let mut os = OStream::new();
        os.push_u32(0xffff);
        assert_eq!(
            Syscall::from_bytes(os.as_bytes()).unwrap_err().code(),
            Code::BadMessage
        );
    }

    #[test]
    fn too_many_caps_rejected() {
        let call = Syscall::ExchangeSess {
            sess: SelId::new(1),
            obtain: true,
            caps: (0..5).map(SelId::new).collect(),
            args: vec![],
        };
        let bytes = call.to_bytes();
        assert_eq!(
            Syscall::from_bytes(&bytes).unwrap_err().code(),
            Code::BadMessage
        );
    }

    #[test]
    fn reply_roundtrip() {
        let ok = SyscallReply::ok_with(vec![1, 2]);
        assert_eq!(SyscallReply::from_bytes(&ok.to_bytes()).unwrap(), ok);
        let err = SyscallReply::err(Code::NoPerm);
        let parsed = SyscallReply::from_bytes(&err.to_bytes()).unwrap();
        assert_eq!(parsed.error, Some(Code::NoPerm));
        assert_eq!(parsed.into_result().unwrap_err().code(), Code::NoPerm);
        assert_eq!(
            SyscallReply::ok_with(vec![9]).into_result().unwrap(),
            vec![9]
        );
    }

    #[test]
    fn service_request_roundtrip() {
        for req in [
            ServiceRequest::Open { arg: 42 },
            ServiceRequest::Exchange {
                ident: 7,
                obtain: true,
                cap_count: 2,
                args: vec![5, 6],
            },
            ServiceRequest::Close { ident: 7 },
        ] {
            assert_eq!(ServiceRequest::from_bytes(&req.to_bytes()).unwrap(), req);
        }
    }

    #[test]
    fn service_reply_roundtrip() {
        let reply = ServiceReply {
            error: None,
            ident: 99,
            caps: vec![SelId::new(1)],
            args: vec![4, 2],
        };
        assert_eq!(ServiceReply::from_bytes(&reply.to_bytes()).unwrap(), reply);
        let denied = ServiceReply::err(Code::NoPerm);
        assert_eq!(
            ServiceReply::from_bytes(&denied.to_bytes()).unwrap().error,
            Some(Code::NoPerm)
        );
    }
}
