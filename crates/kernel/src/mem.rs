//! The kernel's DRAM allocator.
//!
//! "The kernel is responsible for managing the memories in the system. That
//! is, it decides which application can use which parts of which memories"
//! (§4.5.4). This is a first-fit free-list allocator with coalescing —
//! simple, deterministic, and adequate for the region granularity M3 deals
//! in (file extents, pipe buffers, application heaps).

use m3_base::error::{Code, Error, Result};

/// A first-fit free-list allocator over a contiguous memory range.
///
/// # Examples
///
/// ```
/// use m3_kernel::mem::MemAlloc;
///
/// let mut alloc = MemAlloc::new(0, 1024);
/// let a = alloc.alloc(256).unwrap();
/// let b = alloc.alloc(256).unwrap();
/// assert_ne!(a, b);
/// alloc.free(a, 256);
/// alloc.free(b, 256);
/// assert_eq!(alloc.free_bytes(), 1024);
/// ```
#[derive(Clone, Debug)]
pub struct MemAlloc {
    /// Free regions as (offset, size), sorted by offset, non-adjacent.
    free: Vec<(u64, u64)>,
    total: u64,
}

impl MemAlloc {
    /// Creates an allocator over `[base, base + size)`.
    pub fn new(base: u64, size: u64) -> MemAlloc {
        MemAlloc {
            free: if size > 0 {
                vec![(base, size)]
            } else {
                Vec::new()
            },
            total: size,
        }
    }

    /// Allocates `size` bytes, first-fit.
    ///
    /// # Errors
    ///
    /// Returns [`Code::OutOfMem`] if no free region is large enough, and
    /// [`Code::InvArgs`] for zero-sized requests.
    pub fn alloc(&mut self, size: u64) -> Result<u64> {
        if size == 0 {
            return Err(Error::new(Code::InvArgs).with_msg("zero-sized allocation"));
        }
        for i in 0..self.free.len() {
            let (off, len) = self.free[i];
            if len >= size {
                if len == size {
                    self.free.remove(i);
                } else {
                    self.free[i] = (off + size, len - size);
                }
                return Ok(off);
            }
        }
        Err(Error::new(Code::OutOfMem).with_msg(format!("no region of {size} bytes")))
    }

    /// Returns `[offset, offset + size)` to the allocator, coalescing with
    /// adjacent free regions.
    ///
    /// # Panics
    ///
    /// Panics if the region overlaps a free region (double free).
    pub fn free(&mut self, offset: u64, size: u64) {
        if size == 0 {
            return;
        }
        let pos = self.free.partition_point(|&(off, _)| off < offset);
        // Check overlap with neighbours.
        if pos > 0 {
            let (poff, plen) = self.free[pos - 1];
            assert!(poff + plen <= offset, "double free at {offset:#x}");
        }
        if pos < self.free.len() {
            let (noff, _) = self.free[pos];
            assert!(offset + size <= noff, "double free at {offset:#x}");
        }
        self.free.insert(pos, (offset, size));
        // Coalesce with the next region.
        if pos + 1 < self.free.len() && self.free[pos].0 + self.free[pos].1 == self.free[pos + 1].0
        {
            self.free[pos].1 += self.free[pos + 1].1;
            self.free.remove(pos + 1);
        }
        // Coalesce with the previous region.
        if pos > 0 && self.free[pos - 1].0 + self.free[pos - 1].1 == self.free[pos].0 {
            self.free[pos - 1].1 += self.free[pos].1;
            self.free.remove(pos);
        }
    }

    /// Total bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.free.iter().map(|&(_, len)| len).sum()
    }

    /// Total bytes managed.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Number of free fragments (diagnostics; 1 means unfragmented).
    pub fn fragments(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_allocates_lowest() {
        let mut a = MemAlloc::new(0, 1000);
        assert_eq!(a.alloc(100).unwrap(), 0);
        assert_eq!(a.alloc(100).unwrap(), 100);
    }

    #[test]
    fn exhaustion_is_out_of_mem() {
        let mut a = MemAlloc::new(0, 100);
        a.alloc(100).unwrap();
        assert_eq!(a.alloc(1).unwrap_err().code(), Code::OutOfMem);
    }

    #[test]
    fn zero_alloc_rejected() {
        let mut a = MemAlloc::new(0, 100);
        assert_eq!(a.alloc(0).unwrap_err().code(), Code::InvArgs);
    }

    #[test]
    fn free_coalesces_both_sides() {
        let mut a = MemAlloc::new(0, 300);
        let x = a.alloc(100).unwrap();
        let y = a.alloc(100).unwrap();
        let z = a.alloc(100).unwrap();
        a.free(x, 100);
        a.free(z, 100);
        assert_eq!(a.fragments(), 2);
        a.free(y, 100);
        assert_eq!(a.fragments(), 1);
        assert_eq!(a.free_bytes(), 300);
        // The whole range is allocatable again.
        assert_eq!(a.alloc(300).unwrap(), 0);
    }

    #[test]
    fn fills_gap_with_first_fit() {
        let mut a = MemAlloc::new(0, 300);
        let x = a.alloc(100).unwrap();
        let _y = a.alloc(100).unwrap();
        a.free(x, 100);
        // A 50-byte request fits the freed hole at 0.
        assert_eq!(a.alloc(50).unwrap(), 0);
        // A 100-byte request does not fit the remaining 50-byte hole; it
        // goes to the tail region at 200.
        assert_eq!(a.alloc(100).unwrap(), 200);
    }

    #[test]
    fn base_offset_respected() {
        let mut a = MemAlloc::new(4096, 1000);
        assert_eq!(a.alloc(10).unwrap(), 4096);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = MemAlloc::new(0, 100);
        let x = a.alloc(50).unwrap();
        a.free(x, 50);
        a.free(x, 50);
    }

    #[test]
    fn stress_alloc_free_conserves_bytes() {
        let mut a = MemAlloc::new(0, 1 << 16);
        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut rng = m3_base::rand::Rng::new(1234);
        for _ in 0..2000 {
            if rng.next_below(2) == 0 || live.is_empty() {
                let size = rng.next_range(1, 512);
                if let Ok(off) = a.alloc(size) {
                    live.push((off, size));
                }
            } else {
                let idx = rng.next_below(live.len() as u64) as usize;
                let (off, size) = live.swap_remove(idx);
                a.free(off, size);
            }
            let live_bytes: u64 = live.iter().map(|&(_, s)| s).sum();
            assert_eq!(a.free_bytes() + live_bytes, 1 << 16);
        }
        for (off, size) in live.drain(..) {
            a.free(off, size);
        }
        assert_eq!(a.free_bytes(), 1 << 16);
        assert_eq!(a.fragments(), 1, "everything coalesced back");
    }
}
