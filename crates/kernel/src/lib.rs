//! The M3 microkernel.
//!
//! M3 ("microkernel-based system for heterogeneous manycores", §4.5) runs
//! its kernel on a *dedicated PE*; applications run bare-metal on their own
//! PEs and talk to the kernel exclusively through DTU messages. The kernel's
//! main responsibility matches a traditional kernel's — "making the final
//! decision of whether an operation is allowed or not" (§3) — but privilege
//! is defined by the DTU, not a processor mode: the kernel keeps its DTU
//! privileged and downgrades every application PE during boot.
//!
//! This crate provides:
//!
//! - [`protocol`] — the wire format of system calls and of the
//!   kernel-service protocol (both are DTU messages),
//! - [`cap`] — capabilities, per-VPE capability tables, and the delegation
//!   tree used for recursive revoke (§4.5.3),
//! - [`mem`] — the kernel's DRAM allocator (§4.5.4: "the kernel is
//!   responsible for managing the memories in the system"),
//! - [`pemng`] — PE allocation by type (§4.5.5),
//! - [`ktk`] — the kernel-to-kernel protocol of the sharded multikernel
//!   (§7: multiple kernel instances as the scalability path),
//! - [`Kernel`] — boot, the syscall dispatch loop, and service forwarding.

pub mod cap;
pub mod costs;
mod kernel;
pub mod ktk;
pub mod mem;
pub mod pemng;
pub mod protocol;
pub mod service;
pub mod vpe;

pub use kernel::{Kernel, ShardCtx, VpeBootInfo, PAGE_SIZE, RINGBUF_SPM_BUDGET};
