//! The kernel-to-kernel (ktk) protocol of the sharded multikernel.
//!
//! The paper names "multiple kernel instances" as M3's scalability path
//! (§7). This module defines the wire format the shards speak to each
//! other: a shard whose admission hits `NoFreePe` forwards the request to
//! the least-loaded peer, and the peer's reply carries *capability
//! descriptors* — self-contained descriptions of the hardware resource a
//! capability names — that the requesting kernel installs into its own
//! tables. Only capabilities whose hardware address is fully resolved can
//! cross a shard boundary: memory regions and activated send gates.
//! Receive gates stay with their shard, exactly like they cannot be
//! delegated between VPEs (§4.5.4): messages may arrive at any time, so
//! the backing ring buffer cannot move.
//!
//! Every message starts with a fixed header `(src_shard, free_pes)`: the
//! sender piggybacks its current free-PE count on every message, so each
//! kernel maintains a passively refreshed load view of its peers and
//! placement needs no extra round trip.
//!
//! The transport is deliberately abstract (`ShardCtx` carries a send
//! closure): inside one `Sim` the bytes ride the NoC between the kernel
//! PEs; across PDES islands they ride the island boundary ports. Either
//! way the messages are plain timestamped bytes, so determinism is
//! preserved for any worker count.

use m3_base::error::{Code, Error, Result};
use m3_base::marshal::{IStream, OStream};
use m3_base::Perm;

use crate::protocol::{PeRequest, MAX_EXCHANGE_CAPS};

/// A self-contained description of a capability that may cross a shard
/// boundary. The receiving kernel re-wraps the descriptor into a kernel
/// object of its own; the hardware address (PE, offset / endpoint) stays
/// authoritative, so access goes straight over the NoC without involving
/// the owning shard again.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CapDesc {
    /// A memory region on some node (DRAM module or a PE's SPM). Never
    /// marked owned on the receiving side: the region's allocator lives
    /// with the origin shard.
    Mem {
        /// The node whose memory this names.
        pe: u32,
        /// Start offset within that node's memory.
        offset: u64,
        /// Region size in bytes.
        size: u64,
        /// Access permissions.
        perm: Perm,
    },
    /// An *activated* send gate: the receive gate it targets is pinned to
    /// `(pe, ep)`, so a foreign VPE can be given a send endpoint to it
    /// without the origin shard mediating each message.
    SGate {
        /// PE of the activated receive gate.
        pe: u32,
        /// Endpoint of the activated receive gate.
        ep: u32,
        /// Label stamped into every message.
        label: u64,
        /// Credit budget; `0` encodes unlimited.
        credits: u32,
        /// Maximum payload bytes per message.
        max_payload: u32,
    },
}

impl CapDesc {
    fn encode(&self, os: &mut OStream) {
        match self {
            CapDesc::Mem {
                pe,
                offset,
                size,
                perm,
            } => {
                os.push_u8(0);
                os.push_u32(*pe)
                    .push_u64(*offset)
                    .push_u64(*size)
                    .push_u8(perm.bits());
            }
            CapDesc::SGate {
                pe,
                ep,
                label,
                credits,
                max_payload,
            } => {
                os.push_u8(1);
                os.push_u32(*pe)
                    .push_u32(*ep)
                    .push_u64(*label)
                    .push_u32(*credits)
                    .push_u32(*max_payload);
            }
        }
    }

    fn decode(is: &mut IStream<'_>) -> Result<CapDesc> {
        match is.pop_u8()? {
            0 => Ok(CapDesc::Mem {
                pe: is.pop_u32()?,
                offset: is.pop_u64()?,
                size: is.pop_u64()?,
                perm: Perm::from_bits(is.pop_u8()?),
            }),
            1 => Ok(CapDesc::SGate {
                pe: is.pop_u32()?,
                ep: is.pop_u32()?,
                label: is.pop_u64()?,
                credits: is.pop_u32()?,
                max_payload: is.pop_u32()?,
            }),
            _ => Err(Error::new(Code::BadMessage).with_msg("bad CapDesc tag")),
        }
    }
}

/// A peer's reply to a ktk request. `a`/`b` carry the two scalar results a
/// request can produce (e.g. VPE id + PE id for `PlaceVpe`, the exit code
/// for `WaitVpe`, the session ident for `OpenSess`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KtkReply {
    /// `None` means the peer accepted the request.
    pub code: Option<Code>,
    /// First scalar result.
    pub a: u64,
    /// Second scalar result.
    pub b: u64,
    /// Capability descriptors handed back (obtain direction).
    pub caps: Vec<CapDesc>,
    /// Service-specific reply bytes (session exchanges).
    pub args: Vec<u8>,
}

impl KtkReply {
    /// A success reply with two scalar results.
    pub fn ok(a: u64, b: u64) -> KtkReply {
        KtkReply {
            code: None,
            a,
            b,
            caps: Vec::new(),
            args: Vec::new(),
        }
    }

    /// An error reply.
    pub fn err(code: Code) -> KtkReply {
        KtkReply {
            code: Some(code),
            a: 0,
            b: 0,
            caps: Vec::new(),
            args: Vec::new(),
        }
    }

    /// Converts the reply into a `Result` over itself.
    ///
    /// # Errors
    ///
    /// Returns the carried error code, if any.
    pub fn into_result(self) -> Result<KtkReply> {
        match self.code {
            None => Ok(self),
            Some(code) => Err(Error::new(code)),
        }
    }

    fn encode(&self, os: &mut OStream) {
        os.push_u32(self.code.map_or(0, |c| c.as_raw()));
        os.push_u64(self.a).push_u64(self.b);
        os.push_u32(self.caps.len() as u32);
        for c in &self.caps {
            c.encode(os);
        }
        os.push_bytes(&self.args);
    }

    fn decode(is: &mut IStream<'_>) -> Result<KtkReply> {
        let raw = is.pop_u32()?;
        let code = if raw == 0 {
            None
        } else {
            Some(Code::from_raw(raw))
        };
        let a = is.pop_u64()?;
        let b = is.pop_u64()?;
        let caps = decode_descs(is)?;
        let args = is.pop_bytes()?.to_vec();
        Ok(KtkReply {
            code,
            a,
            b,
            caps,
            args,
        })
    }
}

fn encode_descs(os: &mut OStream, descs: &[CapDesc]) {
    os.push_u32(descs.len() as u32);
    for d in descs {
        d.encode(os);
    }
}

fn decode_descs(is: &mut IStream<'_>) -> Result<Vec<CapDesc>> {
    let n = is.pop_u32()? as usize;
    if n > MAX_EXCHANGE_CAPS {
        return Err(Error::new(Code::BadMessage).with_msg("too many cap descriptors"));
    }
    let mut descs = Vec::with_capacity(n);
    for _ in 0..n {
        descs.push(CapDesc::decode(is)?);
    }
    Ok(descs)
}

/// A kernel-to-kernel message. Requests carry a sender-chosen `req_id`;
/// the peer answers with a [`KtkMsg::Reply`] echoing it. `RevokeVpe` and
/// `RevokeCap` are fire-and-forget: revocation is idempotent and the
/// sender holds no state that depends on the answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KtkMsg {
    /// Load announcement; the header's free-PE count is the payload.
    Hello,
    /// Place a VPE on one of the receiver's PEs (cross-shard `CreateVpe`
    /// spill-over). The sender resolves `Same` to a concrete type before
    /// forwarding — the receiver cannot know the caller's PE.
    PlaceVpe {
        /// Request id echoed by the reply.
        req_id: u64,
        /// Human-readable VPE name.
        name: String,
        /// Requested PE type.
        want: PeRequest,
    },
    /// Start a VPE previously placed via `PlaceVpe`.
    StartVpe {
        /// Request id echoed by the reply.
        req_id: u64,
        /// The receiver-side VPE id.
        vpe: u32,
    },
    /// Wait for a remotely placed VPE to exit; the reply's `a` carries the
    /// exit code as `i64` bits.
    WaitVpe {
        /// Request id echoed by the reply.
        req_id: u64,
        /// The receiver-side VPE id.
        vpe: u32,
    },
    /// Destroy a remotely placed VPE (fire-and-forget; the cross-shard
    /// mirror of revoking a VPE capability, §4.5.5).
    RevokeVpe {
        /// The receiver-side VPE id.
        vpe: u32,
    },
    /// Install a capability descriptor into a remotely placed VPE's table
    /// (cross-shard delegation, §4.5.3 first option).
    DelegateCap {
        /// Request id echoed by the reply.
        req_id: u64,
        /// The receiver-side VPE id.
        vpe: u32,
        /// Receiver-side selector to fill.
        sel: u32,
        /// What to install.
        desc: CapDesc,
    },
    /// Remove a previously delegated capability (fire-and-forget leg of a
    /// cross-shard recursive revoke, §4.5.3).
    RevokeCap {
        /// The receiver-side VPE id.
        vpe: u32,
        /// Receiver-side selector to revoke.
        sel: u32,
    },
    /// Open a session with a service registered at the receiver (remote
    /// mount path). The reply's `a` carries the session ident.
    OpenSess {
        /// Request id echoed by the reply.
        req_id: u64,
        /// Global service name (e.g. `"m3fs"`).
        name: String,
        /// Client-provided argument.
        arg: u64,
    },
    /// A capability exchange over a remotely opened session: the receiver
    /// forwards to its local service and descriptor-izes the result.
    ExchangeSess {
        /// Request id echoed by the reply.
        req_id: u64,
        /// Service name (sessions are stateless on the origin side).
        serv: String,
        /// The service-chosen session identifier.
        ident: u64,
        /// `true` = obtain (service -> caller), `false` = delegate.
        obtain: bool,
        /// Number of capabilities the client offers/requests.
        cap_count: u32,
        /// Descriptors of the caller's capabilities (delegate direction).
        descs: Vec<CapDesc>,
        /// Service-specific request bytes.
        args: Vec<u8>,
    },
    /// The answer to a request, echoing its `req_id`.
    Reply {
        /// The request this answers.
        req_id: u64,
        /// The outcome.
        reply: KtkReply,
    },
}

mod op {
    pub const HELLO: u32 = 0;
    pub const PLACE_VPE: u32 = 1;
    pub const START_VPE: u32 = 2;
    pub const WAIT_VPE: u32 = 3;
    pub const REVOKE_VPE: u32 = 4;
    pub const DELEGATE_CAP: u32 = 5;
    pub const REVOKE_CAP: u32 = 6;
    pub const OPEN_SESS: u32 = 7;
    pub const EXCHANGE_SESS: u32 = 8;
    pub const REPLY: u32 = 9;
}

impl KtkMsg {
    /// The operation name, for tracing and diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            KtkMsg::Hello => "hello",
            KtkMsg::PlaceVpe { .. } => "place_vpe",
            KtkMsg::StartVpe { .. } => "start_vpe",
            KtkMsg::WaitVpe { .. } => "wait_vpe",
            KtkMsg::RevokeVpe { .. } => "revoke_vpe",
            KtkMsg::DelegateCap { .. } => "delegate_cap",
            KtkMsg::RevokeCap { .. } => "revoke_cap",
            KtkMsg::OpenSess { .. } => "open_sess",
            KtkMsg::ExchangeSess { .. } => "exchange_sess",
            KtkMsg::Reply { .. } => "reply",
        }
    }

    /// Marshals the message with its shard header: the sending shard's id
    /// and its current free-PE count (the passive load feed).
    pub fn to_bytes(&self, src_shard: u32, free_pes: u32) -> Vec<u8> {
        let mut os = OStream::with_capacity(64);
        os.push_u32(src_shard).push_u32(free_pes);
        match self {
            KtkMsg::Hello => {
                os.push_u32(op::HELLO);
            }
            KtkMsg::PlaceVpe { req_id, name, want } => {
                os.push_u32(op::PLACE_VPE);
                os.push_u64(*req_id);
                want.encode(&mut os);
                os.push_str(name);
            }
            KtkMsg::StartVpe { req_id, vpe } => {
                os.push_u32(op::START_VPE);
                os.push_u64(*req_id).push_u32(*vpe);
            }
            KtkMsg::WaitVpe { req_id, vpe } => {
                os.push_u32(op::WAIT_VPE);
                os.push_u64(*req_id).push_u32(*vpe);
            }
            KtkMsg::RevokeVpe { vpe } => {
                os.push_u32(op::REVOKE_VPE);
                os.push_u32(*vpe);
            }
            KtkMsg::DelegateCap {
                req_id,
                vpe,
                sel,
                desc,
            } => {
                os.push_u32(op::DELEGATE_CAP);
                os.push_u64(*req_id).push_u32(*vpe).push_u32(*sel);
                desc.encode(&mut os);
            }
            KtkMsg::RevokeCap { vpe, sel } => {
                os.push_u32(op::REVOKE_CAP);
                os.push_u32(*vpe).push_u32(*sel);
            }
            KtkMsg::OpenSess { req_id, name, arg } => {
                os.push_u32(op::OPEN_SESS);
                os.push_u64(*req_id).push_str(name).push_u64(*arg);
            }
            KtkMsg::ExchangeSess {
                req_id,
                serv,
                ident,
                obtain,
                cap_count,
                descs,
                args,
            } => {
                os.push_u32(op::EXCHANGE_SESS);
                os.push_u64(*req_id)
                    .push_str(serv)
                    .push_u64(*ident)
                    .push_bool(*obtain)
                    .push_u32(*cap_count);
                encode_descs(&mut os, descs);
                os.push_bytes(args);
            }
            KtkMsg::Reply { req_id, reply } => {
                os.push_u32(op::REPLY);
                os.push_u64(*req_id);
                reply.encode(&mut os);
            }
        }
        os.into_bytes()
    }

    /// Unmarshals a message, returning `(src_shard, free_pes, msg)`.
    ///
    /// # Errors
    ///
    /// Returns [`Code::BadMessage`] on truncated or malformed payloads.
    pub fn from_bytes(bytes: &[u8]) -> Result<(u32, u32, KtkMsg)> {
        let mut is = IStream::new(bytes);
        let src_shard = is.pop_u32()?;
        let free_pes = is.pop_u32()?;
        let msg = match is.pop_u32()? {
            op::HELLO => KtkMsg::Hello,
            op::PLACE_VPE => KtkMsg::PlaceVpe {
                req_id: is.pop_u64()?,
                want: PeRequest::decode(&mut is)?,
                name: is.pop_str()?,
            },
            op::START_VPE => KtkMsg::StartVpe {
                req_id: is.pop_u64()?,
                vpe: is.pop_u32()?,
            },
            op::WAIT_VPE => KtkMsg::WaitVpe {
                req_id: is.pop_u64()?,
                vpe: is.pop_u32()?,
            },
            op::REVOKE_VPE => KtkMsg::RevokeVpe { vpe: is.pop_u32()? },
            op::DELEGATE_CAP => KtkMsg::DelegateCap {
                req_id: is.pop_u64()?,
                vpe: is.pop_u32()?,
                sel: is.pop_u32()?,
                desc: CapDesc::decode(&mut is)?,
            },
            op::REVOKE_CAP => KtkMsg::RevokeCap {
                vpe: is.pop_u32()?,
                sel: is.pop_u32()?,
            },
            op::OPEN_SESS => KtkMsg::OpenSess {
                req_id: is.pop_u64()?,
                name: is.pop_str()?,
                arg: is.pop_u64()?,
            },
            op::EXCHANGE_SESS => KtkMsg::ExchangeSess {
                req_id: is.pop_u64()?,
                serv: is.pop_str()?,
                ident: is.pop_u64()?,
                obtain: is.pop_bool()?,
                cap_count: is.pop_u32()?,
                descs: decode_descs(&mut is)?,
                args: is.pop_bytes()?.to_vec(),
            },
            op::REPLY => KtkMsg::Reply {
                req_id: is.pop_u64()?,
                reply: KtkReply::decode(&mut is)?,
            },
            _ => return Err(Error::new(Code::BadMessage).with_msg("unknown ktk opcode")),
        };
        Ok((src_shard, free_pes, msg))
    }
}

/// Picks the spill-over target among peer shards: the one with the most
/// free PEs, ties going to the earliest candidate (callers pass ascending
/// shard ids, so ties resolve to the lowest id). Implemented on the shared
/// `m3-sched` least-loaded policy by treating occupancy as the complement
/// of the advertised free count, so both levels of placement — VPEs onto
/// PEs and requests onto shards — follow one rule.
pub fn choose_peer(candidates: impl IntoIterator<Item = (u32, usize)>) -> Option<u32> {
    m3_sched::least_loaded(
        candidates
            .into_iter()
            .map(|(shard, free)| (shard, usize::MAX - free)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_platform::PeType;

    fn roundtrip(msg: KtkMsg) {
        let bytes = msg.to_bytes(3, 17);
        let (src, free, parsed) = KtkMsg::from_bytes(&bytes).unwrap();
        assert_eq!(src, 3);
        assert_eq!(free, 17);
        assert_eq!(parsed, msg);
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(KtkMsg::Hello);
        roundtrip(KtkMsg::PlaceVpe {
            req_id: 7,
            name: "worker".to_string(),
            want: PeRequest::Any,
        });
        roundtrip(KtkMsg::PlaceVpe {
            req_id: 8,
            name: "fft".to_string(),
            want: PeRequest::Type(PeType::FftAccel),
        });
        roundtrip(KtkMsg::StartVpe { req_id: 9, vpe: 4 });
        roundtrip(KtkMsg::WaitVpe { req_id: 10, vpe: 4 });
        roundtrip(KtkMsg::RevokeVpe { vpe: 4 });
        roundtrip(KtkMsg::DelegateCap {
            req_id: 11,
            vpe: 4,
            sel: 16,
            desc: CapDesc::Mem {
                pe: 9,
                offset: 0x4000,
                size: 8192,
                perm: Perm::RW,
            },
        });
        roundtrip(KtkMsg::DelegateCap {
            req_id: 12,
            vpe: 4,
            sel: 17,
            desc: CapDesc::SGate {
                pe: 2,
                ep: 3,
                label: 0xfeed,
                credits: 0,
                max_payload: 488,
            },
        });
        roundtrip(KtkMsg::RevokeCap { vpe: 4, sel: 16 });
        roundtrip(KtkMsg::OpenSess {
            req_id: 13,
            name: "m3fs".to_string(),
            arg: 1,
        });
        roundtrip(KtkMsg::ExchangeSess {
            req_id: 14,
            serv: "m3fs".to_string(),
            ident: 42,
            obtain: true,
            cap_count: 1,
            descs: vec![CapDesc::Mem {
                pe: 1,
                offset: 0,
                size: 4096,
                perm: Perm::R,
            }],
            args: vec![1, 2, 3],
        });
        roundtrip(KtkMsg::Reply {
            req_id: 14,
            reply: KtkReply {
                code: None,
                a: 5,
                b: 6,
                caps: vec![CapDesc::SGate {
                    pe: 1,
                    ep: 4,
                    label: 1,
                    credits: 8,
                    max_payload: 232,
                }],
                args: vec![9],
            },
        });
        roundtrip(KtkMsg::Reply {
            req_id: 15,
            reply: KtkReply::err(Code::NoFreePe),
        });
    }

    #[test]
    fn truncated_message_is_bad_message() {
        let bytes = KtkMsg::OpenSess {
            req_id: 1,
            name: "m3fs".to_string(),
            arg: 0,
        }
        .to_bytes(0, 0);
        let err = KtkMsg::from_bytes(&bytes[..bytes.len() - 2]).unwrap_err();
        assert_eq!(err.code(), Code::BadMessage);
    }

    #[test]
    fn unknown_opcode_is_bad_message() {
        let mut os = OStream::new();
        os.push_u32(0).push_u32(0).push_u32(0xffff);
        assert_eq!(
            KtkMsg::from_bytes(os.as_bytes()).unwrap_err().code(),
            Code::BadMessage
        );
    }

    #[test]
    fn too_many_descriptors_rejected() {
        let msg = KtkMsg::ExchangeSess {
            req_id: 1,
            serv: "s".to_string(),
            ident: 0,
            obtain: false,
            cap_count: 5,
            descs: (0..5)
                .map(|i| CapDesc::Mem {
                    pe: i,
                    offset: 0,
                    size: 1,
                    perm: Perm::R,
                })
                .collect(),
            args: vec![],
        };
        assert_eq!(
            KtkMsg::from_bytes(&msg.to_bytes(0, 0)).unwrap_err().code(),
            Code::BadMessage
        );
    }

    #[test]
    fn reply_into_result() {
        assert!(KtkMsg::Hello.name() == "hello");
        assert_eq!(KtkReply::ok(1, 2).into_result().unwrap().a, 1);
        assert_eq!(
            KtkReply::err(Code::VpeGone)
                .into_result()
                .unwrap_err()
                .code(),
            Code::VpeGone
        );
    }

    #[test]
    fn choose_peer_prefers_most_free_then_lowest_id() {
        assert_eq!(choose_peer(Vec::new()), None);
        assert_eq!(choose_peer([(1u32, 0usize)]), Some(1));
        assert_eq!(choose_peer([(1, 2), (2, 5), (3, 4)]), Some(2));
        // Ties go to the earliest candidate (lowest shard id).
        assert_eq!(choose_peer([(1, 3), (2, 3)]), Some(1));
        assert_eq!(choose_peer([(4, 0), (9, 0)]), Some(4));
    }
}
