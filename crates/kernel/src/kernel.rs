//! Kernel boot, the syscall loop, and service forwarding.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use m3_base::cfg::SPM_DATA_SIZE;
use m3_base::error::{Code, Error, Result};
use m3_base::marshal::OStream;
use m3_base::{Cycles, EpId, PeId, Perm, SelId, VpeId};
use m3_dtu::{Dtu, EpConfig, KernelToken, Message};
use m3_platform::{PeType, Platform};
use m3_sched::{Admission, Removal, Scheduler};
use m3_sim::{Component, Event, EventKind, Notify, Sim};
use m3_vm::{AddrSpaceObj, FaultKind, SwapRegion};

use crate::cap::{
    CapTable, Capability, DerivationTree, KObject, MGateObj, RGateObj, RemoteSessObj, RemoteVpeObj,
    SGateObj, XSGateObj,
};
use crate::costs;
use crate::ktk::{self, CapDesc, KtkMsg, KtkReply};
use crate::mem::MemAlloc;
use crate::pemng::PeMng;
use crate::protocol::{
    std_eps, PeRequest, ServiceReply, ServiceRequest, Syscall, SyscallReply, SYSC_MSG_SIZE,
    SYSC_SLOTS,
};
use crate::service::{ServObj, ServiceRegistry, SessObj};
use crate::vpe::{VpeObj, VpeState};

/// Kernel endpoint assignment.
mod keps {
    use m3_base::EpId;

    /// Receive endpoint for system calls.
    pub const SYSC: EpId = EpId::new(0);
    /// Receive endpoint for service replies.
    pub const SERV_REPLY: EpId = EpId::new(1);
    /// First endpoint used for per-service send gates.
    pub const FIRST_SERV: u32 = 2;
}

/// What a freshly created VPE needs to start talking to the kernel.
#[derive(Clone, Debug)]
pub struct VpeBootInfo {
    /// The kernel-wide VPE id (label of the syscall channel).
    pub vpe: VpeId,
    /// The PE the VPE runs on.
    pub pe: PeId,
}

struct PendingReply {
    slot: Rc<RefCell<Option<ServiceReply>>>,
    ready: Notify,
}

struct KtkPending {
    slot: Rc<RefCell<Option<KtkReply>>>,
    ready: Notify,
    /// The shard the request went to, so a shard death can fail it fast.
    to: u32,
}

/// A kernel's view of the sharded multikernel it is part of (§7: "multiple
/// kernel instances" as the scalability path). Each shard owns a disjoint
/// PE/DRAM partition; the shards talk through the kernel-to-kernel (ktk)
/// protocol of [`crate::ktk`] over a transport-agnostic send closure —
/// NoC messages between kernel PEs inside one `Sim`, island-boundary ports
/// across PDES islands. Absent (`None` on the kernel), every cross-shard
/// path is compiled out of the schedule and the kernel is cycle-identical
/// to the single-instance build.
pub struct ShardCtx {
    id: u32,
    count: u32,
    send: Box<dyn Fn(u32, Vec<u8>)>,
    /// Kernel PE of every peer shard (used to map a PE crash to a shard
    /// death).
    peer_pes: BTreeMap<u32, PeId>,
    /// Last advertised free-PE count of each live peer, refreshed
    /// passively from the header of every incoming ktk message.
    peer_free: RefCell<BTreeMap<u32, usize>>,
    /// Peers declared dead by the shard watchdog.
    dead: RefCell<BTreeSet<u32>>,
    next_req: Cell<u64>,
    pending: RefCell<BTreeMap<u64, KtkPending>>,
    /// Cross-shard delegation edges: local capability -> the remote
    /// `(shard, vpe, sel)` copies it spawned, cut on revoke (§4.5.3).
    remote_children: RefCell<BTreeMap<(VpeId, SelId), Vec<RemoteCopy>>>,
}

/// A remote copy a delegated capability spawned: `(shard, vpe, sel)`.
type RemoteCopy = (u32, u32, u32);

impl ShardCtx {
    /// This kernel's shard id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Total number of shards in the multikernel.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether `shard` has been declared dead by the watchdog.
    pub fn is_dead(&self, shard: u32) -> bool {
        self.dead.borrow().contains(&shard)
    }

    /// The last free-PE count `shard` advertised, if it is still alive.
    pub fn peer_free(&self, shard: u32) -> Option<usize> {
        self.peer_free.borrow().get(&shard).copied()
    }

    /// Peers not declared dead, in ascending shard-id order.
    pub fn alive_peers(&self) -> Vec<u32> {
        self.peer_free.borrow().keys().copied().collect()
    }
}

impl std::fmt::Debug for ShardCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShardCtx({}/{})", self.id, self.count)
    }
}

/// Page size of the remotely-managed page tables (§7 prototype).
pub const PAGE_SIZE: u64 = 4096;

/// Share of each PE's data SPM the kernel allows for receive ring buffers
/// (the rest belongs to the application's data). The kernel validates every
/// placement — reply-enabled buffers must live in protected, non-overlapping
/// memory (§4.4.4) — so it also enforces this budget.
pub const RINGBUF_SPM_BUDGET: u64 = (m3_base::cfg::SPM_DATA_SIZE as u64) / 2;

struct KState {
    tables: BTreeMap<VpeId, CapTable>,
    /// Ring-buffer bytes currently placed in each PE's SPM.
    ringbuf_bytes: BTreeMap<PeId, u64>,
    /// Per-VPE address spaces (kernel-owned page tables, bounded resident
    /// sets, swap regions), managed remotely by the kernel like the
    /// endpoints (§7).
    addr_spaces: BTreeMap<VpeId, AddrSpaceObj>,
    tree: DerivationTree,
    vpes: BTreeMap<VpeId, Rc<RefCell<VpeObj>>>,
    next_vpe: u32,
    pemng: PeMng,
    mem: MemAlloc,
    services: ServiceRegistry,
    next_req: u64,
    pending: BTreeMap<u64, PendingReply>,
    next_serv_ep: u32,
}

/// The M3 kernel, running on its dedicated PE.
///
/// [`Kernel::start`] boots it: it configures its own syscall endpoints,
/// downgrades every other DTU (establishing NoC-level isolation), and spawns
/// the syscall dispatch loop as a daemon task.
#[derive(Clone)]
pub struct Kernel {
    sim: Sim,
    platform: Platform,
    dtu: Dtu,
    /// The capability handle over the privileged DTU interface, claimed at
    /// boot while this kernel's PE was still privileged (paper §3).
    ktok: Rc<KernelToken>,
    pe: PeId,
    state: Rc<RefCell<KState>>,
    /// Run queues of the time-multiplexed PEs (overcommit mode, m3-sched).
    sched: Rc<RefCell<Scheduler>>,
    /// Whether `CreateVpe` may admit more VPEs than PEs by
    /// time-multiplexing application PEs.
    overcommit: Rc<Cell<bool>>,
    /// Whether context switches move only the SPM pages the DTU dirtied
    /// since the last save (per the DTU's dirty bitmap) instead of the
    /// whole data image. Off by default: the conservative full-image
    /// transfer the golden pins were recorded with.
    dirty_switches: Rc<Cell<bool>>,
    /// Resident-set bound (in pages) applied to address spaces created by
    /// later `PageFault` syscalls; `None` = unbounded (no eviction).
    vm_resident: Rc<Cell<Option<usize>>>,
    /// PEs that are never multiplexed: boot-time roots (services, drivers)
    /// keep their PE exclusively even in overcommit mode.
    pinned: Rc<RefCell<BTreeSet<PeId>>>,
    /// Cycle at which the current resident of each multiplexed PE was
    /// installed (start of its slice).
    resumed_at: Rc<RefCell<BTreeMap<PeId, Cycles>>>,
    /// Sharded-multikernel context (§7), set by [`Kernel::set_shard`];
    /// `None` for a standalone kernel.
    shard: Rc<RefCell<Option<Rc<ShardCtx>>>>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Kernel(on {})", self.pe)
    }
}

impl Kernel {
    /// Boots the kernel on `kernel_pe`, owning every PE and the whole DRAM.
    ///
    /// # Panics
    ///
    /// Panics if the platform is too small or the kernel PE is invalid.
    pub fn start(platform: &Platform, kernel_pe: PeId) -> Kernel {
        let owned: Vec<PeId> = (0..platform.pe_count())
            .map(|i| PeId::new(i as u32))
            .collect();
        let dram = platform
            .dtu_system()
            .memory(platform.dram_pe())
            // m3lint: allow(no-unwrap): boot-time; the documented panic for a platform without DRAM
            .expect("dram")
            .borrow()
            .len() as u64;
        Self::start_partition(platform, kernel_pe, &owned, 0, dram)
    }

    /// Boots a kernel instance that owns only the PEs in `owned` and the
    /// DRAM range `[dram_base, dram_base + dram_size)` — the partitioned
    /// multi-kernel mode sketched as future work in the paper (§7; no
    /// cross-kernel synchronization: partitions are disjoint). Each
    /// instance has its own capability space, PE pool, memory pool, and
    /// service registry.
    ///
    /// # Panics
    ///
    /// Panics if `kernel_pe` is not in `owned` or the partition is invalid.
    pub fn start_partition(
        platform: &Platform,
        kernel_pe: PeId,
        owned: &[PeId],
        dram_base: u64,
        dram_size: u64,
    ) -> Kernel {
        assert!(
            owned.contains(&kernel_pe),
            "kernel PE must be part of its own partition"
        );
        let sim = platform.sim().clone();
        let dtu = platform.dtu(kernel_pe);
        let ktok = dtu
            .claim_kernel_token()
            // m3lint: allow(no-unwrap): boot-time; every DTU is privileged until this kernel downgrades it below
            .expect("kernel DTU is privileged at boot");

        // Configure the kernel's own endpoints (it is privileged at boot).
        ktok.configure(
            kernel_pe,
            keps::SYSC,
            EpConfig::Receive {
                slots: SYSC_SLOTS,
                slot_size: SYSC_MSG_SIZE + m3_base::cfg::MSG_HEADER_SIZE,
                allow_replies: true,
            },
        )
        // m3lint: allow(no-unwrap): boot-time; the kernel is privileged and its own EP ids are compile-time constants
        .expect("kernel syscall EP");
        ktok.configure(
            kernel_pe,
            keps::SERV_REPLY,
            EpConfig::Receive {
                slots: SYSC_SLOTS,
                slot_size: SYSC_MSG_SIZE + m3_base::cfg::MSG_HEADER_SIZE,
                allow_replies: false,
            },
        )
        // m3lint: allow(no-unwrap): boot-time; same argument as the syscall EP.
        .expect("kernel service-reply EP");

        // NoC-level isolation: downgrade every application PE this kernel
        // owns (paper §3). Other partitions' PEs are left alone.
        for pe in owned {
            if *pe != kernel_pe {
                // m3lint: allow(no-unwrap): boot-time; the booting kernel is still privileged, so the downgrade cannot be refused
                ktok.set_privileged(*pe, false).expect("downgrade");
            }
        }

        let descs: Vec<_> = (0..platform.pe_count())
            .map(|i| platform.desc(PeId::new(i as u32)).clone())
            .collect();

        let kernel = Kernel {
            sim: sim.clone(),
            platform: platform.clone(),
            dtu,
            ktok: Rc::new(ktok),
            pe: kernel_pe,
            state: Rc::new(RefCell::new(KState {
                tables: BTreeMap::new(),
                ringbuf_bytes: BTreeMap::new(),
                addr_spaces: BTreeMap::new(),
                tree: DerivationTree::new(),
                vpes: BTreeMap::new(),
                next_vpe: 1,
                pemng: PeMng::new_partition(descs, kernel_pe, owned),
                mem: MemAlloc::new(dram_base, dram_size),
                services: ServiceRegistry::new(),
                next_req: 1,
                pending: BTreeMap::new(),
                next_serv_ep: keps::FIRST_SERV,
            })),
            sched: Rc::new(RefCell::new(Scheduler::new())),
            overcommit: Rc::new(Cell::new(false)),
            dirty_switches: Rc::new(Cell::new(false)),
            vm_resident: Rc::new(Cell::new(None)),
            pinned: Rc::new(RefCell::new(BTreeSet::new())),
            resumed_at: Rc::new(RefCell::new(BTreeMap::new())),
            shard: Rc::new(RefCell::new(None)),
        };

        let k = kernel.clone();
        sim.spawn_daemon(
            format!("kernel@{kernel_pe}"),
            async move { k.main_loop().await },
        );
        let k = kernel.clone();
        sim.spawn_daemon(format!("kernel-reply-pump@{kernel_pe}"), async move {
            k.reply_pump().await
        });
        kernel
    }

    /// The PE the kernel runs on.
    pub fn pe(&self) -> PeId {
        self.pe
    }

    /// The platform the kernel manages.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Arms the kernel's dead-PE watchdog against an injected fault plane:
    /// for every scheduled PE crash, a daemon wakes one liveness-probe
    /// period after the crash, destroys whichever VPE ran on the dead PE
    /// (revoking all its capabilities and invalidating its endpoints, the
    /// §4.3.1 revoke path), and emits a typed recovery event. Without a
    /// plane there is nothing to watch and the kernel is unchanged.
    pub fn attach_faults(&self, plane: &m3_fault::FaultPlane) {
        for (pe, at) in plane.crash_schedule() {
            if pe == self.pe {
                // A dead kernel PE has no one left to recover it.
                continue;
            }
            let k = self.clone();
            self.sim
                .spawn_daemon(format!("kernel-watchdog@{pe}"), async move {
                    k.sim.sleep_until(at + costs::DEAD_PE_DETECT).await;
                    k.sim.sleep(costs::DISPATCH).await;
                    // Every VPE bound to the dead PE dies with it — not just
                    // the resident: queued and parked VPEs of an
                    // overcommitted PE have no hardware left to run on
                    // either, and their save areas must be reclaimed.
                    let victims: Vec<_> = {
                        let st = k.state.borrow();
                        st.vpes
                            .values()
                            .filter(|v| {
                                let v = v.borrow();
                                v.pe == pe && v.is_alive()
                            })
                            .cloned()
                            .collect()
                    };
                    let now = k.sim.now();
                    k.sim.tracer().record_with(|| Event {
                        at: now,
                        dur: m3_base::Cycles::ZERO,
                        pe: Some(k.pe),
                        comp: Component::Kernel,
                        kind: EventKind::Recovery {
                            action: format!("dead_pe:{pe}"),
                            attempt: 0,
                        },
                    });
                    for victim in victims {
                        k.destroy_vpe(&victim, -2);
                    }
                });
            // A peer kernel dying severs its whole shard: mark it dead,
            // fail the in-flight requests addressed to it, and reap every
            // proxy capability pointing into it. Attach the shard context
            // (`connect_shards`/`set_shard`) before arming the faults, or
            // the multikernel legs of the watchdog stay disarmed.
            if let Some(ctx) = self.shard_ctx() {
                let peer = ctx
                    .peer_pes
                    .iter()
                    .find(|(_, kpe)| **kpe == pe)
                    .map(|(s, _)| *s);
                if let Some(peer) = peer {
                    let k = self.clone();
                    self.sim
                        .spawn_daemon(format!("shard-watchdog@{pe}"), async move {
                            k.sim.sleep_until(at + costs::DEAD_PE_DETECT).await;
                            k.sim.sleep(costs::DISPATCH).await;
                            k.on_peer_shard_dead(peer);
                        });
                }
            }
        }
    }

    /// Creates a root VPE at boot time (no parent): claims a PE (or a
    /// specific one), sets up the syscall channel, and marks it running.
    ///
    /// # Errors
    ///
    /// Returns [`Code::NoFreePe`] if no suitable PE is free.
    pub fn create_root(&self, name: &str, pe: Option<PeId>) -> Result<VpeBootInfo> {
        let mut st = self.state.borrow_mut();
        let pe = match pe {
            Some(p) => {
                st.pemng.claim(p)?;
                p
            }
            None => st.pemng.alloc(PeRequest::Any, PeType::Xtensa)?,
        };
        let id = VpeId::new(st.next_vpe);
        st.next_vpe += 1;
        let vpe = Rc::new(RefCell::new(VpeObj::new(id, name, pe)));
        vpe.borrow_mut().state = VpeState::Running;
        st.vpes.insert(id, vpe.clone());
        let mut table = CapTable::new();
        table.insert(SelId::new(0), Capability::new(KObject::Vpe(vpe)))?;
        st.tables.insert(id, table);
        st.tree.insert_root((id, SelId::new(0)));
        drop(st);
        // Boot-time roots (services, benchmark drivers) are never
        // multiplexed; their PE stays exclusive even in overcommit mode.
        self.pinned.borrow_mut().insert(pe);
        self.setup_sysc_channel(id, pe)?;
        Ok(VpeBootInfo { vpe: id, pe })
    }

    /// Configures EP0/EP1 of `pe` as the syscall channel of VPE `id`.
    fn setup_sysc_channel(&self, id: VpeId, pe: PeId) -> Result<()> {
        self.ktok.configure(
            pe,
            std_eps::SYSC_REPLY,
            EpConfig::Receive {
                slots: 2,
                slot_size: SYSC_MSG_SIZE + m3_base::cfg::MSG_HEADER_SIZE,
                allow_replies: false,
            },
        )?;
        self.ktok.configure(
            pe,
            std_eps::SYSC_SEND,
            EpConfig::Send {
                pe: self.pe,
                ep: keps::SYSC,
                label: id.raw() as u64,
                credits: Some(1),
                max_payload: SYSC_MSG_SIZE,
            },
        )?;
        Ok(())
    }

    /// Like [`Kernel::setup_sysc_channel`], but writes the configuration
    /// into the *save area* of VPE `id` on `pe` — used for VPEs admitted to
    /// an occupied PE, whose endpoints must not clobber the resident's.
    fn stash_sysc_channel(&self, id: VpeId, pe: PeId) -> Result<()> {
        let ctx = u64::from(id.raw());
        self.ktok.stash_config(
            pe,
            ctx,
            std_eps::SYSC_REPLY,
            EpConfig::Receive {
                slots: 2,
                slot_size: SYSC_MSG_SIZE + m3_base::cfg::MSG_HEADER_SIZE,
                allow_replies: false,
            },
        )?;
        self.ktok.stash_config(
            pe,
            ctx,
            std_eps::SYSC_SEND,
            EpConfig::Send {
                pe: self.pe,
                ep: keps::SYSC,
                label: id.raw() as u64,
                credits: Some(1),
                max_payload: SYSC_MSG_SIZE,
            },
        )?;
        Ok(())
    }

    /// Picks the PE a new VPE is time-multiplexed onto when no PE is free:
    /// the least-loaded multiplexed PE matching the request (ties go to the
    /// lowest PE id, keeping placement deterministic). Pinned PEs and
    /// accelerators never multiplex.
    fn pick_overcommit_pe(&self, st: &KState, req: PeRequest, caller_ty: PeType) -> Result<PeId> {
        let want = match req {
            PeRequest::Any => None,
            PeRequest::Type(ty) => Some(ty),
            PeRequest::Same => Some(caller_ty),
        };
        let sched = self.sched.borrow();
        let pinned = self.pinned.borrow();
        // `loads()` iterates PEs in ascending id order, so the shared
        // least-loaded policy resolves ties to the lowest PE id — the same
        // rule the multikernel uses to pick a peer shard.
        m3_sched::least_loaded(sched.loads().into_iter().filter(|(pe, _)| {
            if pinned.contains(pe) {
                return false;
            }
            let desc = st.pemng.desc(*pe);
            match want {
                None => !desc.is_fft_accel(),
                Some(ty) => desc.ty == ty && !desc.is_fft_accel(),
            }
        }))
        .ok_or_else(|| Error::new(Code::NoFreePe).with_msg(format!("request {req:?}")))
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    async fn main_loop(&self) {
        loop {
            let msg = match self.dtu.recv(keps::SYSC).await {
                Ok(m) => m,
                Err(_) => return,
            };
            // Free the slot right away; the reply info lives in `msg`.
            let _ = self.dtu.ack(keps::SYSC);
            self.sim.sleep(costs::DISPATCH).await;
            self.sim.stats().incr("kernel.syscalls");
            // Per-kernel-PE operation counter: local syscalls here, plus
            // ktk requests served for peers in `ktk_deliver` — so a sharded
            // multikernel's throughput sums per shard (fig10).
            self.sim.metrics().incr(self.pe, m3_sim::keys::KERNEL_OPS);

            let caller = VpeId::new(msg.header.label as u32);
            let call = match Syscall::from_bytes(&msg.payload) {
                Ok(c) => c,
                Err(e) => {
                    self.reply_to(&msg, SyscallReply::err(e.code())).await;
                    continue;
                }
            };
            let at = self.sim.now();
            self.sim.tracer().record_with(|| Event {
                at,
                dur: m3_base::Cycles::ZERO,
                pe: Some(self.pe),
                comp: Component::Kernel,
                kind: EventKind::Syscall {
                    opcode: call.name().to_string(),
                },
            });

            match call {
                // Calls that may block detach into their own task so the
                // kernel keeps serving (other syscalls are handled serially,
                // which is what makes a single kernel instance a measurable
                // bottleneck in the §5.7 scalability experiment).
                Syscall::VpeWait { vpe } => {
                    let k = self.clone();
                    self.sim.spawn(format!("kernel-wait-{caller}"), async move {
                        let reply = k.handle_vpe_wait(caller, vpe).await;
                        k.reply_to(&msg, reply).await;
                    });
                }
                Syscall::OpenSess { dst, name, arg } => {
                    let k = self.clone();
                    self.sim.spawn(format!("kernel-open-{caller}"), async move {
                        let reply = k.handle_open_sess(caller, dst, &name, arg).await;
                        k.reply_to(&msg, reply).await;
                    });
                }
                Syscall::ExchangeSess {
                    sess,
                    obtain,
                    caps,
                    args,
                } => {
                    let k = self.clone();
                    self.sim.spawn(format!("kernel-xchg-{caller}"), async move {
                        let reply = k
                            .handle_exchange_sess(caller, sess, obtain, &caps, &args)
                            .await;
                        k.reply_to(&msg, reply).await;
                    });
                }
                Syscall::Activate { vpe, ep, gate } => {
                    // May block until the receive gate is activated (§4.5.4:
                    // the kernel defers the reply until the receiver is
                    // ready).
                    let k = self.clone();
                    self.sim
                        .spawn(format!("kernel-activate-{caller}"), async move {
                            let reply = k.handle_activate(caller, vpe, ep, gate).await;
                            k.reply_to(&msg, reply).await;
                        });
                }
                Syscall::Exit { code } => {
                    self.handle_exit(caller, code);
                    // No reply: the VPE is gone.
                }
                other => {
                    let reply = self.handle_sync(caller, other).await;
                    self.reply_to(&msg, reply).await;
                }
            }
        }
    }

    async fn reply_to(&self, msg: &Message, reply: SyscallReply) {
        self.sim.sleep(costs::REPLY).await;
        let _ = self.dtu.reply(msg, &reply.to_bytes()).await;
    }

    /// Routes service replies (arriving at EP1) to the pending request.
    async fn reply_pump(&self) {
        loop {
            let msg = match self.dtu.recv(keps::SERV_REPLY).await {
                Ok(m) => m,
                Err(_) => return,
            };
            let _ = self.dtu.ack(keps::SERV_REPLY);
            let req_id = msg.header.label;
            let pending = self.state.borrow_mut().pending.remove(&req_id);
            if let Some(p) = pending {
                let reply = ServiceReply::from_bytes(&msg.payload)
                    .unwrap_or_else(|e| ServiceReply::err(e.code()));
                *p.slot.borrow_mut() = Some(reply);
                p.ready.notify_all();
            }
        }
    }

    // ------------------------------------------------------------------
    // Synchronous handlers
    // ------------------------------------------------------------------

    async fn handle_sync(&self, caller: VpeId, call: Syscall) -> SyscallReply {
        let result = match call {
            Syscall::Noop => Ok(Vec::new()),
            Syscall::CreateRGate {
                dst,
                slots,
                slot_size,
            } => self.sys_create_rgate(caller, dst, slots, slot_size).await,
            Syscall::CreateSGate {
                dst,
                rgate,
                label,
                credits,
            } => {
                self.sys_create_sgate(caller, dst, rgate, label, credits)
                    .await
            }
            Syscall::AllocMem { dst, size, perm } => {
                self.sys_alloc_mem(caller, dst, size, perm).await
            }
            Syscall::DeriveMem {
                dst,
                src,
                offset,
                size,
                perm,
            } => {
                self.sys_derive_mem(caller, dst, src, offset, size, perm)
                    .await
            }
            Syscall::CreateVpe {
                dst,
                mem_dst,
                pe,
                name,
            } => self.sys_create_vpe(caller, dst, mem_dst, pe, &name).await,
            Syscall::VpeStart { vpe } => self.sys_vpe_start(caller, vpe).await,
            Syscall::CreateSrv { dst, rgate, name } => {
                self.sys_create_srv(caller, dst, rgate, &name).await
            }
            Syscall::Exchange {
                vpe,
                own,
                other,
                obtain,
            } => self.sys_exchange(caller, vpe, own, other, obtain).await,
            Syscall::Revoke { sel } => self.sys_revoke(caller, sel).await,
            Syscall::PageFault { dst, virt, access } => {
                self.sys_page_fault(caller, dst, virt, access).await
            }
            Syscall::Unmap { virt } => self.sys_unmap(caller, virt).await,
            _ => Err(Error::new(Code::Internal).with_msg("not a sync syscall")),
        };
        match result {
            Ok(data) => SyscallReply::ok_with(data),
            Err(e) => SyscallReply::err(e.code()),
        }
    }

    async fn sys_create_rgate(
        &self,
        caller: VpeId,
        dst: SelId,
        slots: u32,
        slot_size: u32,
    ) -> Result<Vec<u8>> {
        self.sim.sleep(costs::CAP_OP).await;
        if slots == 0 || slot_size as usize <= m3_base::cfg::MSG_HEADER_SIZE {
            return Err(Error::new(Code::InvArgs).with_msg("bad ring buffer geometry"));
        }
        let gate = RGateObj::new(caller, slots, slot_size);
        let mut st = self.state.borrow_mut();
        Self::table(&mut st, caller)?.insert(dst, Capability::new(KObject::RGate(gate)))?;
        st.tree.insert_root((caller, dst));
        Ok(Vec::new())
    }

    async fn sys_create_sgate(
        &self,
        caller: VpeId,
        dst: SelId,
        rgate: SelId,
        label: u64,
        credits: u32,
    ) -> Result<Vec<u8>> {
        self.sim.sleep(costs::CAP_OP).await;
        let mut st = self.state.borrow_mut();
        let rgate_obj = match &Self::table(&mut st, caller)?.get(rgate)?.obj {
            KObject::RGate(g) => g.clone(),
            other => {
                return Err(Error::new(Code::InvCap)
                    .with_msg(format!("expected rgate, found {}", other.kind())))
            }
        };
        let sgate = Rc::new(SGateObj {
            rgate: rgate_obj,
            label,
            credits: if credits == 0 { None } else { Some(credits) },
        });
        Self::table(&mut st, caller)?.insert(dst, Capability::new(KObject::SGate(sgate)))?;
        st.tree.insert_child((caller, rgate), (caller, dst));
        Ok(Vec::new())
    }

    async fn sys_alloc_mem(
        &self,
        caller: VpeId,
        dst: SelId,
        size: u64,
        perm: Perm,
    ) -> Result<Vec<u8>> {
        self.sim.sleep(costs::ALLOC_MEM).await;
        let mut st = self.state.borrow_mut();
        let offset = st.mem.alloc(size)?;
        let mgate = Rc::new(MGateObj {
            pe: self.platform.dram_pe(),
            offset,
            size,
            perm,
            owned: true,
        });
        if let Err(e) =
            Self::table(&mut st, caller)?.insert(dst, Capability::new(KObject::MGate(mgate)))
        {
            st.mem.free(offset, size);
            return Err(e);
        }
        st.tree.insert_root((caller, dst));
        let mut os = OStream::new();
        os.push_u64(offset);
        Ok(os.into_bytes())
    }

    async fn sys_derive_mem(
        &self,
        caller: VpeId,
        dst: SelId,
        src: SelId,
        offset: u64,
        size: u64,
        perm: Perm,
    ) -> Result<Vec<u8>> {
        self.sim.sleep(costs::CAP_OP).await;
        let mut st = self.state.borrow_mut();
        let parent = match &Self::table(&mut st, caller)?.get(src)?.obj {
            KObject::MGate(m) => m.clone(),
            other => {
                return Err(Error::new(Code::InvCap)
                    .with_msg(format!("expected mgate, found {}", other.kind())))
            }
        };
        if !parent.perm.contains(perm) {
            return Err(Error::new(Code::NoPerm).with_msg("derived permissions exceed source"));
        }
        let end = offset
            .checked_add(size)
            .ok_or_else(|| Error::new(Code::InvArgs).with_msg("overflow"))?;
        if end > parent.size {
            return Err(Error::new(Code::InvArgs).with_msg("derived range exceeds source"));
        }
        let child = Rc::new(MGateObj {
            pe: parent.pe,
            offset: parent.offset + offset,
            size,
            perm,
            owned: false,
        });
        Self::table(&mut st, caller)?.insert(dst, Capability::new(KObject::MGate(child)))?;
        st.tree.insert_child((caller, src), (caller, dst));
        Ok(Vec::new())
    }

    async fn sys_create_vpe(
        &self,
        caller: VpeId,
        dst: SelId,
        mem_dst: SelId,
        req: PeRequest,
        name: &str,
    ) -> Result<Vec<u8>> {
        self.sim.sleep(costs::CREATE_VPE).await;
        // Placement and capability setup run under one state borrow; an
        // out-of-PEs outcome breaks out of the block so the ktk spill-over
        // round trip awaits with the borrow released.
        let placed = 'placed: {
            let mut st = self.state.borrow_mut();
            let caller_pe = st
                .vpes
                .get(&caller)
                .ok_or_else(|| Error::new(Code::VpeGone))?
                .borrow()
                .pe;
            let caller_ty = st.pemng.desc(caller_pe).ty;
            let pe = match st.pemng.alloc(req, caller_ty) {
                // Overcommit: with every matching PE taken, time-multiplex
                // the least-loaded one instead of failing (§4.1/§7 future
                // work: the kernel suspends VPEs via DTU state save/restore).
                Err(e) if e.code() == Code::NoFreePe && self.overcommit.get() => {
                    self.pick_overcommit_pe(&st, req, caller_ty)
                }
                other => other,
            };
            let pe = match pe {
                Ok(pe) => pe,
                Err(e) => break 'placed Err((e, caller_ty)),
            };
            let id = VpeId::new(st.next_vpe);
            st.next_vpe += 1;
            let vpe = Rc::new(RefCell::new(VpeObj::new(id, name, pe)));
            st.vpes.insert(id, vpe.clone());

            // The caller owns the root VPE capability; the child's self
            // capability (selector 0) derives from it, so revoking the
            // parent's handle resets the child — not the other way around.
            Self::table(&mut st, caller)?
                .insert(dst, Capability::new(KObject::Vpe(vpe.clone())))?;
            st.tree.insert_root((caller, dst));
            let mut table = CapTable::new();
            table.insert(SelId::new(0), Capability::new(KObject::Vpe(vpe)))?;
            st.tables.insert(id, table);
            st.tree.insert_child((caller, dst), (id, SelId::new(0)));
            let mgate = Rc::new(MGateObj {
                pe,
                offset: 0,
                size: SPM_DATA_SIZE as u64,
                perm: Perm::RW,
                owned: false,
            });
            Self::table(&mut st, caller)?
                .insert(mem_dst, Capability::new(KObject::MGate(mgate)))?;
            st.tree.insert_root((caller, mem_dst));
            // In overcommit mode every multiplexable child joins its PE's
            // run queue (accelerators and pinned PEs stay exclusive). The
            // PE's DTU arrival notify doubles as the scheduler wake signal.
            let mut queued = false;
            if self.overcommit.get()
                && !st.pemng.desc(pe).is_fft_accel()
                && !self.pinned.borrow().contains(&pe)
            {
                let wake = self.ktok.arrival_notify(pe)?;
                if self.sched.borrow_mut().admit(id, pe, wake) == Admission::Queued {
                    queued = true;
                }
            }
            Ok((id, pe, queued))
        };
        let (id, pe, queued) = match placed {
            Ok(t) => t,
            // Sharded multikernel (§7): out of PEs locally, forward the
            // placement to the peer shard with the most free PEs; the
            // returned capabilities are delegated back so the caller's
            // session keeps working transparently.
            Err((e, caller_ty)) => {
                if e.code() == Code::NoFreePe {
                    if let Some(ctx) = self.shard_ctx() {
                        return self
                            .create_vpe_remote(&ctx, caller, dst, mem_dst, req, caller_ty, name)
                            .await;
                    }
                }
                return Err(e);
            }
        };
        if queued {
            // The PE is occupied: the channel goes into the VPE's DTU save
            // area and materializes at its first restore.
            self.stash_sysc_channel(id, pe)?;
        } else {
            self.setup_sysc_channel(id, pe)?;
            if self.sched.borrow().manages(id) {
                self.ktok.set_current_ctx(pe, u64::from(id.raw()))?;
                self.resumed_at.borrow_mut().insert(pe, self.sim.now());
            }
        }
        // Charge the remote EP configuration packets.
        self.charge_ep_config(pe).await;
        let mut os = OStream::new();
        os.push_u32(id.raw()).push_u32(pe.raw());
        Ok(os.into_bytes())
    }

    async fn sys_vpe_start(&self, caller: VpeId, vpe: SelId) -> Result<Vec<u8>> {
        let target = {
            let mut st = self.state.borrow_mut();
            Self::table(&mut st, caller)?.get(vpe)?.obj.clone()
        };
        match target {
            KObject::Vpe(vpe_obj) => {
                let mut v = vpe_obj.borrow_mut();
                match v.state {
                    VpeState::Init => {
                        v.state = VpeState::Running;
                        Ok(Vec::new())
                    }
                    _ => Err(Error::new(Code::InvArgs).with_msg("VPE not in init state")),
                }
            }
            // A remotely placed child is started by its own shard's kernel.
            KObject::RemoteVpe(r) => {
                let ctx = self.shard_ctx_or_err()?;
                self.ktk_request(&ctx, r.shard, |req_id| KtkMsg::StartVpe {
                    req_id,
                    vpe: r.vpe,
                })
                .await?
                .into_result()?;
                Ok(Vec::new())
            }
            other => {
                Err(Error::new(Code::InvCap)
                    .with_msg(format!("expected vpe, found {}", other.kind())))
            }
        }
    }

    async fn handle_vpe_wait(&self, caller: VpeId, vpe: SelId) -> SyscallReply {
        let target = {
            let mut st = self.state.borrow_mut();
            let table = match Self::table(&mut st, caller) {
                Ok(t) => t,
                Err(e) => return SyscallReply::err(e.code()),
            };
            match table.get(vpe).map(|c| c.obj.clone()) {
                Ok(obj) => obj,
                Err(e) => return SyscallReply::err(e.code()),
            }
        };
        let vpe_obj = match target {
            KObject::Vpe(v) => v,
            // Wait on a remotely placed child: its shard's kernel holds
            // the exit code and replies once the VPE is gone.
            KObject::RemoteVpe(r) => {
                let ctx = match self.shard_ctx_or_err() {
                    Ok(c) => c,
                    Err(e) => return SyscallReply::err(e.code()),
                };
                let reply = self
                    .ktk_request(&ctx, r.shard, |req_id| KtkMsg::WaitVpe {
                        req_id,
                        vpe: r.vpe,
                    })
                    .await
                    .and_then(KtkReply::into_result);
                return match reply {
                    Ok(r) => {
                        let mut os = OStream::new();
                        os.push_i64(r.a as i64);
                        SyscallReply::ok_with(os.into_bytes())
                    }
                    Err(e) => SyscallReply::err(e.code()),
                };
            }
            _ => return SyscallReply::err(Code::InvCap),
        };
        loop {
            let (code, exited) = {
                let v = vpe_obj.borrow();
                (v.exit_code(), v.exited.clone())
            };
            if let Some(code) = code {
                let mut os = OStream::new();
                os.push_i64(code);
                return SyscallReply::ok_with(os.into_bytes());
            }
            exited.wait().await;
        }
    }

    async fn sys_create_srv(
        &self,
        caller: VpeId,
        dst: SelId,
        rgate: SelId,
        name: &str,
    ) -> Result<Vec<u8>> {
        self.sim.sleep(costs::CAP_OP).await;
        let (rgate_obj, kernel_ep) = {
            let mut st = self.state.borrow_mut();
            let rgate_obj = match &Self::table(&mut st, caller)?.get(rgate)?.obj {
                KObject::RGate(g) => g.clone(),
                other => {
                    return Err(Error::new(Code::InvCap)
                        .with_msg(format!("expected rgate, found {}", other.kind())))
                }
            };
            let ep = EpId::new(st.next_serv_ep);
            if ep.idx() >= m3_base::cfg::EP_COUNT {
                return Err(Error::new(Code::OutOfMem).with_msg("kernel out of service EPs"));
            }
            st.next_serv_ep += 1;
            (rgate_obj, ep)
        };
        let Some((rpe, rep)) = *rgate_obj.activation.borrow() else {
            return Err(Error::new(Code::InvArgs).with_msg("service rgate not activated"));
        };
        // The kernel-service channel, created at registration (§4.5.3).
        self.ktok.configure(
            self.pe,
            kernel_ep,
            EpConfig::Send {
                pe: rpe,
                ep: rep,
                label: 0,
                credits: None,
                max_payload: rgate_obj.max_payload(),
            },
        )?;
        let serv = Rc::new(ServObj {
            name: name.to_string(),
            owner: caller,
            rgate: rgate_obj,
            kernel_ep,
        });
        let mut st = self.state.borrow_mut();
        st.services.register(serv.clone())?;
        Self::table(&mut st, caller)?.insert(dst, Capability::new(KObject::Serv(serv)))?;
        st.tree.insert_root((caller, dst));
        Ok(Vec::new())
    }

    fn register_pending(&self) -> (u64, Notify, Rc<RefCell<Option<ServiceReply>>>) {
        let mut st = self.state.borrow_mut();
        let req_id = st.next_req;
        st.next_req += 1;
        let slot = Rc::new(RefCell::new(None));
        let ready = Notify::new();
        st.pending.insert(
            req_id,
            PendingReply {
                slot: slot.clone(),
                ready: ready.clone(),
            },
        );
        (req_id, ready, slot)
    }

    async fn forward_to_service(
        &self,
        serv: &Rc<ServObj>,
        req: ServiceRequest,
    ) -> Result<ServiceReply> {
        self.sim.sleep(costs::SERVICE_FORWARD).await;
        // Clean path: with no fault plane armed the kernel trusts the
        // service to answer eventually (it is on-chip and kernel-started),
        // and this code is cycle-identical to the pre-fault kernel.
        if self.dtu.system().faults().is_none() {
            let (req_id, ready, slot) = self.register_pending();
            self.dtu
                .send(
                    serv.kernel_ep,
                    &req.to_bytes(),
                    Some((keps::SERV_REPLY, req_id)),
                )
                .await?;
            loop {
                if let Some(reply) = slot.borrow_mut().take() {
                    return Ok(reply);
                }
                ready.wait().await;
            }
        }
        // Faulted path: bound each attempt, retry a few times, then declare
        // the service unreachable. Each attempt registers a fresh request id
        // so a late reply to an abandoned attempt is simply ignored by the
        // reply pump.
        for attempt in 0..=costs::SERVICE_RETRIES {
            let (req_id, ready, slot) = self.register_pending();
            if let Err(e) = self
                .dtu
                .send(
                    serv.kernel_ep,
                    &req.to_bytes(),
                    Some((keps::SERV_REPLY, req_id)),
                )
                .await
            {
                self.state.borrow_mut().pending.remove(&req_id);
                return Err(e);
            }
            let deadline = self.sim.now() + costs::SERVICE_TIMEOUT;
            let wait = async {
                loop {
                    if let Some(reply) = slot.borrow_mut().take() {
                        return reply;
                    }
                    ready.wait().await;
                }
            };
            match m3_sim::with_deadline(&self.sim, deadline, wait).await {
                Some(reply) => return Ok(reply),
                None => {
                    self.state.borrow_mut().pending.remove(&req_id);
                    let at = self.sim.now();
                    self.sim.tracer().record_with(|| Event {
                        at,
                        dur: m3_base::Cycles::ZERO,
                        pe: Some(self.pe),
                        comp: Component::Kernel,
                        kind: EventKind::Recovery {
                            action: "service_retry".to_string(),
                            attempt,
                        },
                    });
                }
            }
        }
        Err(Error::new(Code::Unreachable).with_msg("service did not reply"))
    }

    async fn handle_open_sess(
        &self,
        caller: VpeId,
        dst: SelId,
        name: &str,
        arg: u64,
    ) -> SyscallReply {
        // Bind before matching: the scrutinee temporary would otherwise
        // keep the state borrowed across the remote-lookup await.
        let found = self.state.borrow().services.find(name);
        let serv = match found {
            Ok(s) => s,
            Err(e) => {
                // Remote mount (§7): a service another shard registered is
                // reachable through that shard's kernel. Unknown locally,
                // try the peers.
                if let Some(ctx) = self.shard_ctx() {
                    return self
                        .open_sess_remote(&ctx, caller, dst, name, arg, &e)
                        .await;
                }
                return SyscallReply::err(e.code());
            }
        };
        let reply = match self
            .forward_to_service(&serv, ServiceRequest::Open { arg })
            .await
        {
            Ok(r) => r,
            Err(e) => return SyscallReply::err(e.code()),
        };
        if let Some(code) = reply.error {
            return SyscallReply::err(code);
        }
        let sess = Rc::new(SessObj {
            serv,
            ident: reply.ident,
        });
        let mut st = self.state.borrow_mut();
        let table = match Self::table(&mut st, caller) {
            Ok(t) => t,
            Err(e) => return SyscallReply::err(e.code()),
        };
        if let Err(e) = table.insert(dst, Capability::new(KObject::Sess(sess))) {
            return SyscallReply::err(e.code());
        }
        st.tree.insert_root((caller, dst));
        SyscallReply::ok()
    }

    async fn handle_exchange_sess(
        &self,
        caller: VpeId,
        sess: SelId,
        obtain: bool,
        caps: &[SelId],
        args: &[u8],
    ) -> SyscallReply {
        let target = {
            let mut st = self.state.borrow_mut();
            let table = match Self::table(&mut st, caller) {
                Ok(t) => t,
                Err(e) => return SyscallReply::err(e.code()),
            };
            match table.get(sess).map(|c| c.obj.clone()) {
                Ok(obj) => obj,
                Err(e) => return SyscallReply::err(e.code()),
            }
        };
        let sess_obj = match target {
            KObject::Sess(s) => s,
            // A remotely opened session: the exchange runs through the
            // kernel of the shard that hosts the service.
            KObject::RemoteSess(r) => {
                return self
                    .exchange_sess_remote(caller, &r, obtain, caps, args)
                    .await;
            }
            _ => return SyscallReply::err(Code::InvCap),
        };
        let reply = match self
            .forward_to_service(
                &sess_obj.serv,
                ServiceRequest::Exchange {
                    ident: sess_obj.ident,
                    obtain,
                    cap_count: caps.len() as u32,
                    args: args.to_vec(),
                },
            )
            .await
        {
            Ok(r) => r,
            Err(e) => return SyscallReply::err(e.code()),
        };
        if let Some(code) = reply.error {
            return SyscallReply::err(code);
        }
        if reply.caps.len() > caps.len() {
            return SyscallReply::err(Code::BadMessage);
        }
        // Move the capabilities between the service owner and the caller.
        let owner = sess_obj.serv.owner;
        for (i, serv_sel) in reply.caps.iter().enumerate() {
            let (src, dst) = if obtain {
                ((owner, *serv_sel), (caller, caps[i]))
            } else {
                ((caller, caps[i]), (owner, *serv_sel))
            };
            if let Err(e) = self.copy_cap(src, dst) {
                return SyscallReply::err(e.code());
            }
        }
        SyscallReply::ok_with(reply.args)
    }

    async fn sys_exchange(
        &self,
        caller: VpeId,
        vpe: SelId,
        own: SelId,
        other: SelId,
        obtain: bool,
    ) -> Result<Vec<u8>> {
        self.sim.sleep(costs::CAP_OP).await;
        let target = {
            let mut st = self.state.borrow_mut();
            Self::table(&mut st, caller)?.get(vpe)?.obj.clone()
        };
        match target {
            KObject::Vpe(v) => {
                let peer = v.borrow().id;
                let (src, dst) = if obtain {
                    ((peer, other), (caller, own))
                } else {
                    ((caller, own), (peer, other))
                };
                self.copy_cap(src, dst)?;
                Ok(Vec::new())
            }
            // Cross-shard delegation (§4.5.3): the capability is converted
            // to a self-contained descriptor and installed by the child's
            // shard. Only delegation is supported — obtaining would need
            // the remote kernel to descriptor-ize an arbitrary capability
            // the child might not even have yet.
            KObject::RemoteVpe(r) => {
                if obtain {
                    return Err(Error::new(Code::NotSup)
                        .with_msg("cannot obtain from a remotely placed VPE"));
                }
                let ctx = self.shard_ctx_or_err()?;
                let desc = {
                    let mut st = self.state.borrow_mut();
                    let obj = Self::table(&mut st, caller)?.get(own)?.obj.clone();
                    Self::desc_of_obj(&obj)?
                };
                self.ktk_request(&ctx, r.shard, |req_id| KtkMsg::DelegateCap {
                    req_id,
                    vpe: r.vpe,
                    sel: other.raw(),
                    desc,
                })
                .await?
                .into_result()?;
                // Remember the edge so revoking the local capability cuts
                // the remote copy too.
                ctx.remote_children
                    .borrow_mut()
                    .entry((caller, own))
                    .or_default()
                    .push((r.shard, r.vpe, other.raw()));
                Ok(Vec::new())
            }
            other_obj => Err(Error::new(Code::InvCap)
                .with_msg(format!("expected vpe, found {}", other_obj.kind()))),
        }
    }

    /// Copies a capability between tables and records the delegation edge.
    fn copy_cap(&self, src: (VpeId, SelId), dst: (VpeId, SelId)) -> Result<()> {
        let mut st = self.state.borrow_mut();
        let obj = Self::table(&mut st, src.0)?.get(src.1)?.obj.clone();
        // Receive gates cannot be delegated (§4.5.4): they may have messages
        // arriving at any time and cannot be moved.
        if matches!(obj, KObject::RGate(_)) {
            return Err(Error::new(Code::NotSup).with_msg("receive capabilities are not delegable"));
        }
        // A delegated memory capability references the region but does not
        // own it: only revoking the root returns it to the allocator.
        let obj = match obj {
            KObject::MGate(mg) if mg.owned => KObject::MGate(Rc::new(MGateObj {
                owned: false,
                ..(*mg).clone()
            })),
            other => other,
        };
        Self::table(&mut st, dst.0)?.insert(dst.1, Capability::new(obj))?;
        st.tree.insert_child(src, dst);
        Ok(())
    }

    async fn handle_activate(
        &self,
        caller: VpeId,
        vpe: SelId,
        ep: EpId,
        gate: SelId,
    ) -> SyscallReply {
        if ep.idx() < std_eps::FIRST_FREE as usize || ep.idx() >= m3_base::cfg::EP_COUNT {
            return SyscallReply::err(Code::InvEp);
        }
        self.sim.sleep(costs::ACTIVATE).await;
        let (caller_pe, obj) = {
            let mut st = self.state.borrow_mut();
            let table = match Self::table(&mut st, caller) {
                Ok(t) => t,
                Err(e) => return SyscallReply::err(e.code()),
            };
            // Resolve the target VPE through the caller's capability.
            let target_pe = match table.get(vpe).map(|c| c.obj.clone()) {
                Ok(KObject::Vpe(v)) => v.borrow().pe,
                // A remote child's endpoints belong to its own shard's
                // kernel; the parent delegates capabilities instead and the
                // child activates them itself.
                Ok(KObject::RemoteVpe(_)) => return SyscallReply::err(Code::NotSup),
                Ok(_) => return SyscallReply::err(Code::InvCap),
                Err(e) => return SyscallReply::err(e.code()),
            };
            match table.get(gate).map(|c| c.obj.clone()) {
                Ok(obj) => (target_pe, obj),
                Err(e) => return SyscallReply::err(e.code()),
            }
        };

        let cfg = match &obj {
            KObject::SGate(sg) => {
                // Defer until the receive gate is activated somewhere
                // (§4.5.4: "defer the reply to the system call until the
                // receiver is ready to receive messages").
                loop {
                    let (act, activated) = {
                        let g = &sg.rgate;
                        (*g.activation.borrow(), g.activated.clone())
                    };
                    if let Some((rpe, rep)) = act {
                        break EpConfig::Send {
                            pe: rpe,
                            ep: rep,
                            label: sg.label,
                            credits: sg.credits,
                            max_payload: sg.rgate.max_payload(),
                        };
                    }
                    activated.wait().await;
                }
            }
            KObject::RGate(rg) => {
                if rg.activation.borrow().is_some() {
                    // Receive gates cannot be moved while senders exist.
                    return SyscallReply::err(Code::NotSup);
                }
                // Validate the buffer placement in the target SPM: the
                // kernel ensures ring buffers do not overlap and fit the
                // protected region before enabling replies (§4.4.4).
                let bytes = rg.slots as u64 * rg.slot_size as u64;
                {
                    let mut st = self.state.borrow_mut();
                    let used = st.ringbuf_bytes.entry(caller_pe).or_insert(0);
                    if *used + bytes > RINGBUF_SPM_BUDGET {
                        return SyscallReply::err(Code::OutOfMem);
                    }
                    *used += bytes;
                }
                *rg.activation.borrow_mut() = Some((caller_pe, ep));
                rg.activated.notify_all();
                EpConfig::Receive {
                    slots: rg.slots as usize,
                    slot_size: rg.slot_size as usize,
                    allow_replies: true,
                }
            }
            // A cross-shard send gate is activated by construction: the
            // descriptor only crossed the boundary because its receive gate
            // was already pinned to `(pe, ep)`, so no deferral is needed.
            KObject::XSGate(x) => EpConfig::Send {
                pe: x.pe,
                ep: x.ep,
                label: x.label,
                credits: x.credits,
                max_payload: x.max_payload,
            },
            KObject::MGate(mg) => EpConfig::Memory {
                pe: mg.pe,
                offset: mg.offset,
                len: mg.size,
                perm: mg.perm,
            },
            _ => return SyscallReply::err(Code::InvCap),
        };

        if let Err(e) = self.ktok.configure(caller_pe, ep, cfg) {
            return SyscallReply::err(e.code());
        }
        self.charge_ep_config(caller_pe).await;
        // Record the activation for invalidation on revoke.
        {
            let mut st = self.state.borrow_mut();
            if let Ok(table) = Self::table(&mut st, caller) {
                if let Ok(cap) = table.get_mut(gate) {
                    cap.activations.push((caller_pe, ep));
                }
            }
        }
        SyscallReply::ok()
    }

    async fn sys_revoke(&self, caller: VpeId, sel: SelId) -> Result<Vec<u8>> {
        let count = self.revoke_cap(caller, sel);
        self.sim
            .sleep(costs::REVOKE_PER_CAP * (count as u64).max(1))
            .await;
        Ok(Vec::new())
    }

    /// Copies `len` bytes between two offsets of the DRAM store — the
    /// page-move primitive of the pager (swap-in, write-back). Pure data
    /// movement; the caller charges the time via
    /// [`Kernel::charge_page_move`].
    fn dram_copy(&self, src: u64, dst: u64, len: usize) {
        if let Some(dram) = self.platform.dtu_system().memory(self.platform.dram_pe()) {
            let mut store = dram.borrow_mut();
            store.copy_within(src as usize..src as usize + len, dst as usize);
        }
    }

    /// Charges one page-sized pager copy: command setup, the page at the
    /// DTU's streaming rate, and one DRAM access.
    async fn charge_page_move(&self) {
        self.sim.sleep(m3_vm::costs::PAGE_COPY_SETUP).await;
        self.sim.sleep(m3_vm::costs::PAGE_COPY_XFER).await;
        self.sim.sleep(m3_dtu::timing::DRAM_LATENCY).await;
    }

    /// The PE `vpe` runs on, for per-PE paging metrics; falls back to the
    /// kernel's own PE for callers it no longer tracks.
    fn vpe_pe(&self, vpe: VpeId) -> PeId {
        self.state
            .borrow()
            .vpes
            .get(&vpe)
            .map_or(self.pe, |v| v.borrow().pe)
    }

    /// Frees resident frames beyond the address space's bound, clean pages
    /// first (they already match their swap copy or were never written);
    /// a dirty victim is written back to the VPE's swap region before its
    /// frame is reused. The victim's frame capability is revoked so the
    /// faulting PE is cut off the frame at the NoC level before the frame
    /// backs someone else's page.
    async fn evict_if_needed(&self, caller: VpeId) -> Result<()> {
        loop {
            let plan = {
                let st = self.state.borrow();
                match st.addr_spaces.get(&caller) {
                    Some(aspace) if aspace.needs_eviction() => aspace.plan_eviction(),
                    _ => return Ok(()),
                }
            };
            let Some(plan) = plan else { return Ok(()) };
            let mut slot = None;
            if plan.writeback {
                let (sl, addr) = {
                    let mut st = self.state.borrow_mut();
                    let st = &mut *st;
                    let aspace = st
                        .addr_spaces
                        .get_mut(&caller)
                        .ok_or_else(|| Error::new(Code::InvArgs).with_msg("no address space"))?;
                    if aspace.swap.is_none() {
                        let bytes = SwapRegion::bytes_for(m3_vm::SWAP_PAGES_DEFAULT);
                        let base = st.mem.alloc(bytes)?;
                        aspace.swap = Some(SwapRegion::new(base, m3_vm::SWAP_PAGES_DEFAULT));
                    }
                    let existing = aspace.entry(plan.page).and_then(|e| e.swap_slot);
                    let swap = aspace
                        .swap
                        .as_mut()
                        .ok_or_else(|| Error::new(Code::Internal).with_msg("swap vanished"))?;
                    let sl = match existing {
                        Some(s) => s,
                        None => swap.alloc_slot().ok_or_else(|| {
                            Error::new(Code::NoSpace).with_msg("swap region full")
                        })?,
                    };
                    (sl, swap.slot_addr(sl))
                };
                self.dram_copy(plan.frame, addr, PAGE_SIZE as usize);
                self.charge_page_move().await;
                let pe = self.vpe_pe(caller);
                self.sim
                    .metrics()
                    .add(pe, m3_sim::keys::WRITEBACK_BYTES, PAGE_SIZE);
                let now = self.sim.now();
                self.sim.tracer().record_with(|| Event {
                    at: now,
                    dur: Cycles::ZERO,
                    pe: Some(pe),
                    comp: Component::Vm,
                    kind: EventKind::WriteBack {
                        virt: plan.page * PAGE_SIZE,
                        bytes: PAGE_SIZE,
                    },
                });
                {
                    let mut st = self.state.borrow_mut();
                    if let Some(aspace) = st.addr_spaces.get_mut(&caller) {
                        aspace.writebacks += 1;
                        aspace.writeback_bytes += PAGE_SIZE;
                    }
                }
                slot = Some(sl);
            }
            let cap = {
                let mut st = self.state.borrow_mut();
                let st = &mut *st;
                let Some(aspace) = st.addr_spaces.get_mut(&caller) else {
                    return Ok(());
                };
                let cap = aspace.complete_eviction(plan.page, slot);
                st.mem.free(plan.frame, PAGE_SIZE);
                cap
            };
            if let Some(sel) = cap {
                let count = self.revoke_cap(caller, sel);
                self.sim
                    .sleep(costs::REVOKE_PER_CAP * (count as u64).max(1))
                    .await;
            }
        }
    }

    /// Fills a freshly allocated `frame` for a non-resident fault — copies
    /// the swap slot back in (page-in) or hands it out zeroed — then maps
    /// it and records the fault. Factored out of [`Kernel::sys_page_fault`]
    /// so every error path can free the frame in one place.
    #[allow(clippy::too_many_arguments)]
    async fn fill_frame(
        &self,
        caller: VpeId,
        kind: FaultKind,
        frame: u64,
        page: u64,
        dst: SelId,
        write: bool,
        pe: PeId,
    ) -> Result<Perm> {
        match kind {
            FaultKind::SwapIn(slot) => {
                let addr = {
                    let st = self.state.borrow();
                    let aspace = st
                        .addr_spaces
                        .get(&caller)
                        .ok_or_else(|| Error::new(Code::Internal).with_msg("lost address space"))?;
                    let swap = aspace.swap.as_ref().ok_or_else(|| {
                        Error::new(Code::Internal).with_msg("swap-in without swap region")
                    })?;
                    swap.slot_addr(slot)
                };
                self.dram_copy(addr, frame, PAGE_SIZE as usize);
                self.charge_page_move().await;
                let now = self.sim.now();
                self.sim.tracer().record_with(|| Event {
                    at: now,
                    dur: Cycles::ZERO,
                    pe: Some(pe),
                    comp: Component::Vm,
                    kind: EventKind::PageIn {
                        virt: page * PAGE_SIZE,
                        bytes: PAGE_SIZE,
                    },
                });
                if let Some(aspace) = self.state.borrow_mut().addr_spaces.get_mut(&caller) {
                    aspace.page_ins += 1;
                }
            }
            _ => {
                // Fresh frames are handed out zeroed (the frame may have
                // been used before; like m3fs, zeroing happens off the
                // application's critical path, §5.4).
                if let Some(dram) = self.platform.dtu_system().memory(self.platform.dram_pe()) {
                    let mut store = dram.borrow_mut();
                    let start = frame as usize;
                    store[start..start + PAGE_SIZE as usize].fill(0);
                }
            }
        }
        let mut st = self.state.borrow_mut();
        let aspace = st
            .addr_spaces
            .get_mut(&caller)
            .ok_or_else(|| Error::new(Code::Internal).with_msg("lost address space"))?;
        aspace.faults += 1;
        aspace.map(page, frame, Perm::RW, Some(dst));
        aspace.touch(page, write);
        let perm = aspace.entry(page).map_or(Perm::RW, |e| e.perm);
        self.sim.stats().incr("kernel.page_faults");
        self.sim.metrics().incr(pe, m3_sim::keys::PAGE_FAULTS);
        let now = self.sim.now();
        self.sim.tracer().record_with(|| Event {
            at: now,
            dur: Cycles::ZERO,
            pe: Some(pe),
            comp: Component::Vm,
            kind: EventKind::PageFault {
                virt: page * PAGE_SIZE,
                write,
            },
        });
        Ok(perm)
    }

    /// Serves a page fault (§7): walks the caller's kernel-owned page
    /// table and replies with a frame capability at `dst` — the resident
    /// frame, a zeroed frame on first touch, or a frame refilled from the
    /// VPE's swap region when the page had been evicted. The handed-out
    /// capability carries only the *faulted* access (intersected with the
    /// page's permissions), so the first write to a read-faulted page
    /// faults again and sets the kernel-side dirty bit.
    async fn sys_page_fault(
        &self,
        caller: VpeId,
        dst: SelId,
        virt: u64,
        access: Perm,
    ) -> Result<Vec<u8>> {
        self.sim.sleep(m3_vm::costs::FAULT_WALK).await;
        let access = access & Perm::RW;
        if access.is_empty() {
            return Err(Error::new(Code::InvArgs).with_msg("empty fault access"));
        }
        let page = virt / PAGE_SIZE;
        let write = access.contains(Perm::W);
        let pe = self.vpe_pe(caller);

        let kind = {
            let mut st = self.state.borrow_mut();
            // The table must exist before classification so a dead caller
            // still errors on the table lookup below, not here.
            Self::table(&mut st, caller)?;
            let aspace = st
                .addr_spaces
                .entry(caller)
                .or_insert_with(|| AddrSpaceObj::new(self.vm_resident.get()));
            aspace.classify(page)
        };

        let (frame, perm, old_cap) = match kind {
            FaultKind::Resident => {
                let mut st = self.state.borrow_mut();
                let aspace = st
                    .addr_spaces
                    .get_mut(&caller)
                    .ok_or_else(|| Error::new(Code::Internal).with_msg("lost address space"))?;
                aspace.touch(page, write);
                let entry = aspace
                    .entry_mut(page)
                    .ok_or_else(|| Error::new(Code::Internal).with_msg("resident without entry"))?;
                let frame = entry
                    .frame
                    .ok_or_else(|| Error::new(Code::Internal).with_msg("resident without frame"))?;
                let perm = entry.perm;
                // One live frame capability per page: the previous one is
                // replaced (and revoked below) so eviction only ever has a
                // single selector to cut.
                let old = entry.cap.replace(dst);
                (frame, perm, old.filter(|s| *s != dst))
            }
            FaultKind::SwapIn(_) | FaultKind::Zero => {
                self.evict_if_needed(caller).await?;
                let frame = self.state.borrow_mut().mem.alloc(PAGE_SIZE)?;
                // Anything failing past this point (typically: the caller
                // crashed during a page-move await and teardown removed its
                // address space) must return the frame, or the crash path
                // leaks DRAM.
                match self
                    .fill_frame(caller, kind, frame, page, dst, write, pe)
                    .await
                {
                    Ok(perm) => (frame, perm, None),
                    Err(e) => {
                        self.state.borrow_mut().mem.free(frame, PAGE_SIZE);
                        return Err(e);
                    }
                }
            }
        };

        if let Some(old) = old_cap {
            self.revoke_cap(caller, old);
        }
        let mgate = Rc::new(MGateObj {
            pe: self.platform.dram_pe(),
            offset: frame,
            size: PAGE_SIZE,
            perm: access & perm,
            owned: false, // the page table owns the frame
        });
        let mut st = self.state.borrow_mut();
        Self::table(&mut st, caller)?.insert(dst, Capability::new(KObject::MGate(mgate)))?;
        st.tree.insert_root((caller, dst));
        let mut os = OStream::new();
        os.push_u64(page * PAGE_SIZE);
        Ok(os.into_bytes())
    }

    /// Removes a mapping: frees its frame (if resident) and swap slot (if
    /// any) and revokes the handed-out frame capability.
    async fn sys_unmap(&self, caller: VpeId, virt: u64) -> Result<Vec<u8>> {
        self.sim.sleep(m3_vm::costs::FAULT_WALK).await;
        let page = virt / PAGE_SIZE;
        let cap = {
            let mut st = self.state.borrow_mut();
            let st = &mut *st;
            let aspace = st
                .addr_spaces
                .get_mut(&caller)
                .ok_or_else(|| Error::new(Code::InvArgs).with_msg("page not mapped"))?;
            let entry = aspace
                .unmap(page)
                .ok_or_else(|| Error::new(Code::InvArgs).with_msg("page not mapped"))?;
            if let Some(frame) = entry.frame {
                st.mem.free(frame, PAGE_SIZE);
            }
            if let Some(slot) = entry.swap_slot {
                if let Some(swap) = aspace.swap.as_mut() {
                    swap.free_slot(slot);
                }
            }
            entry.cap
        };
        if let Some(sel) = cap {
            self.revoke_cap(caller, sel);
        }
        Ok(Vec::new())
    }

    /// Revokes `(vpe, sel)` recursively; returns the number of removed caps.
    fn revoke_cap(&self, vpe: VpeId, sel: SelId) -> usize {
        let removed = self.state.borrow_mut().tree.revoke((vpe, sel));
        let shard = self.shard_ctx();
        let mut freed_regions = Vec::new();
        let mut dead_vpes = Vec::new();
        for (v, s) in &removed {
            let cap = {
                let mut st = self.state.borrow_mut();
                st.tables.get_mut(v).and_then(|t| t.remove(*s))
            };
            let Some(cap) = cap else { continue };
            // Cross-shard legs of the recursive revoke (§4.5.3): copies
            // this capability spawned in peer shards are cut with
            // fire-and-forget revokes, and a remote-VPE proxy takes its
            // VPE down with it (§4.5.5).
            if let Some(ctx) = &shard {
                let edges = ctx.remote_children.borrow_mut().remove(&(*v, *s));
                for (peer, rvpe, rsel) in edges.into_iter().flatten() {
                    self.ktk_send(
                        ctx,
                        peer,
                        &KtkMsg::RevokeCap {
                            vpe: rvpe,
                            sel: rsel,
                        },
                    );
                }
                if let KObject::RemoteVpe(r) = &cap.obj {
                    self.ktk_send(ctx, r.shard, &KtkMsg::RevokeVpe { vpe: r.vpe });
                }
            }
            // Invalidate all endpoints configured from this capability.
            for (pe, ep) in &cap.activations {
                let _ = self.ktok.configure(*pe, *ep, EpConfig::Invalid);
                if let KObject::RGate(rg) = &cap.obj {
                    if rg.activation.borrow_mut().take().is_some() {
                        // Return the ring buffer's SPM bytes.
                        let bytes = rg.slots as u64 * rg.slot_size as u64;
                        let mut st = self.state.borrow_mut();
                        if let Some(used) = st.ringbuf_bytes.get_mut(pe) {
                            *used = used.saturating_sub(bytes);
                        }
                    }
                }
            }
            // Owned memory regions return to the allocator.
            if let KObject::MGate(mg) = &cap.obj {
                if mg.owned {
                    freed_regions.push((mg.offset, mg.size));
                }
            }
            // Revoking a VPE capability resets the PE (§4.5.5: "the owner
            // of the VPE capability could revoke it to let the kernel reset
            // the associated PE").
            if let KObject::Vpe(vobj) = &cap.obj {
                dead_vpes.push(vobj.clone());
            }
        }
        {
            let mut st = self.state.borrow_mut();
            for (off, size) in freed_regions {
                st.mem.free(off, size);
            }
        }
        for vobj in dead_vpes {
            self.destroy_vpe(&vobj, -1);
        }
        removed.len()
    }

    /// Tears a VPE down: marks it dead, revokes everything it held, frees
    /// its PE, and invalidates its syscall channel. Idempotent.
    fn destroy_vpe(&self, vpe_obj: &Rc<RefCell<VpeObj>>, code: i64) {
        let (id, pe) = {
            let mut v = vpe_obj.borrow_mut();
            if !v.is_alive() {
                return;
            }
            v.state = VpeState::Dead(code);
            (v.id, v.pe)
        };
        let sels = {
            let st = self.state.borrow();
            st.tables
                .get(&id)
                .map(|t| t.selectors())
                .unwrap_or_default()
        };
        for sel in sels {
            self.revoke_cap(id, sel);
        }
        let removal = self.sched.borrow_mut().remove(id);
        {
            let mut st = self.state.borrow_mut();
            st.tables.remove(&id);
            match removal {
                // Exclusive owner: the PE is free again immediately.
                Removal::NotManaged => {
                    st.pemng.free(pe);
                    self.pinned.borrow_mut().remove(&pe);
                }
                // Multiplexed: the PE stays busy until its last VPE is gone.
                Removal::Removed { now_empty, .. } => {
                    if now_empty {
                        st.pemng.free(pe);
                    }
                }
            }
            // Free the VPE's address space: resident frames and the swap
            // region go back to the allocator (§7 prototype).
            if let Some(mut aspace) = st.addr_spaces.remove(&id) {
                for page in aspace.pages() {
                    if let Some(entry) = aspace.unmap(page) {
                        if let Some(frame) = entry.frame {
                            st.mem.free(frame, PAGE_SIZE);
                        }
                    }
                }
                if let Some(swap) = aspace.swap.take() {
                    st.mem.free(swap.base, swap.size_bytes());
                }
            }
        }
        match removal {
            Removal::Removed {
                was_resident: false,
                ..
            } => {
                // Switched out: its endpoints live in the save area, not on
                // the PE — discard the area instead of the live registers.
                let _ = self.ktok.drop_saved(pe, u64::from(id.raw()));
            }
            _ => {
                if let Removal::Removed { .. } = removal {
                    if let Some(t0) = self.resumed_at.borrow_mut().remove(&pe) {
                        self.sim.metrics().observe(
                            pe,
                            m3_sim::keys::SLICE_CYCLES,
                            (self.sim.now() - t0).as_u64(),
                        );
                    }
                }
                let _ = self
                    .ktok
                    .configure(pe, std_eps::SYSC_SEND, EpConfig::Invalid);
                let _ = self
                    .ktok
                    .configure(pe, std_eps::SYSC_REPLY, EpConfig::Invalid);
            }
        }
        vpe_obj.borrow().exited.notify_all();
        self.sim.stats().incr("kernel.vpe_exits");
    }

    fn handle_exit(&self, caller: VpeId, code: i64) {
        let vpe_obj = {
            let st = self.state.borrow();
            st.vpes.get(&caller).cloned()
        };
        if let Some(vpe_obj) = vpe_obj {
            self.destroy_vpe(&vpe_obj, code);
        }
    }

    // ------------------------------------------------------------------
    // Sharded multikernel (ktk, §7)
    // ------------------------------------------------------------------

    /// The shard context, if this kernel is part of a sharded multikernel.
    pub fn shard_ctx(&self) -> Option<Rc<ShardCtx>> {
        self.shard.borrow().clone()
    }

    fn shard_ctx_or_err(&self) -> Result<Rc<ShardCtx>> {
        self.shard_ctx().ok_or_else(|| {
            Error::new(Code::Internal).with_msg("remote capability without a shard context")
        })
    }

    /// Joins this kernel to a sharded multikernel as shard `id` of `count`:
    /// `peers` lists every other shard's kernel PE and `send` delivers raw
    /// ktk bytes to a peer shard. [`Kernel::connect_shards`] wires the
    /// kernels of one `Sim` together over the NoC; PDES-island deployments
    /// pass a closure that writes to the island boundary port instead.
    /// Call before [`Kernel::attach_faults`] so the shard watchdog arms.
    pub fn set_shard(
        &self,
        id: u32,
        count: u32,
        peers: &[(u32, PeId)],
        send: Box<dyn Fn(u32, Vec<u8>)>,
    ) {
        let peer_free = peers.iter().map(|(s, _)| (*s, 0usize)).collect();
        *self.shard.borrow_mut() = Some(Rc::new(ShardCtx {
            id,
            count,
            send,
            peer_pes: peers.iter().copied().collect(),
            peer_free: RefCell::new(peer_free),
            dead: RefCell::new(BTreeSet::new()),
            next_req: Cell::new(1),
            pending: RefCell::new(BTreeMap::new()),
            remote_children: RefCell::new(BTreeMap::new()),
        }));
    }

    /// Wires `kernels` (one per shard, all inside one `Sim`) into a sharded
    /// multikernel: shard ids follow slice order, and ktk messages ride the
    /// NoC between the kernel PEs, charged like any other transfer. With a
    /// fault plane armed, messages to or from a crashed kernel PE are
    /// dropped on the floor — what a dead router port does — so the
    /// timeout/watchdog recovery paths are exercised, not bypassed.
    pub fn connect_shards(kernels: &[Kernel]) {
        if kernels.len() < 2 {
            // One kernel is not a multikernel: attach no shard context so
            // the single-shard path stays cycle-identical to a standalone
            // kernel.
            return;
        }
        let n = kernels.len() as u32;
        let all: Vec<(u32, PeId)> = kernels
            .iter()
            .enumerate()
            .map(|(i, k)| (i as u32, k.pe))
            .collect();
        for (i, k) in kernels.iter().enumerate() {
            let id = i as u32;
            let peers: Vec<(u32, PeId)> = all.iter().filter(|(s, _)| *s != id).copied().collect();
            let by_shard: BTreeMap<u32, Kernel> = kernels
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(j, other)| (j as u32, other.clone()))
                .collect();
            let schedule = k
                .dtu
                .system()
                .faults()
                .map(|f| f.crash_schedule())
                .unwrap_or_default();
            let src_crash = schedule.iter().find(|(p, _)| *p == k.pe).map(|(_, at)| *at);
            let crash_of: BTreeMap<u32, Cycles> = all
                .iter()
                .filter_map(|(s, pe)| {
                    schedule
                        .iter()
                        .find(|(p, _)| p == pe)
                        .map(|(_, at)| (*s, *at))
                })
                .collect();
            let src = k.clone();
            let send = Box::new(move |dst: u32, bytes: Vec<u8>| {
                let Some(dst_k) = by_shard.get(&dst) else {
                    return;
                };
                let sim = src.sim.clone();
                // A crashed kernel PE neither sends nor receives.
                if src_crash.is_some_and(|at| sim.now() >= at) {
                    return;
                }
                let t = src.dtu.system().noc().schedule(
                    sim.now(),
                    src.pe,
                    dst_k.pe,
                    bytes.len() as u64,
                );
                let dst_crash = crash_of.get(&dst).copied();
                let dst_k = dst_k.clone();
                let sim2 = sim.clone();
                sim.spawn(format!("ktk-wire-{}-{}", src.pe, dst_k.pe), async move {
                    sim2.sleep_until(t.completes_at).await;
                    if dst_crash.is_some_and(|at| sim2.now() >= at) {
                        return;
                    }
                    dst_k.ktk_deliver(&bytes);
                });
            });
            k.set_shard(id, n, &peers, send);
        }
        // Announce the initial loads so spill-over placement starts from
        // real free-PE counts instead of zeros.
        for k in kernels {
            k.ktk_hello();
        }
    }

    /// Announces this shard's current free-PE count to every live peer.
    pub fn ktk_hello(&self) {
        if let Some(ctx) = self.shard_ctx() {
            for peer in ctx.alive_peers() {
                self.ktk_send(&ctx, peer, &KtkMsg::Hello);
            }
        }
    }

    /// Sends one ktk message, stamping the shard header (id + free-PE
    /// count) and emitting the sending-side `ShardOp` trace event.
    /// Messages to shards the watchdog declared dead are dropped silently:
    /// every ktk send is either fire-and-forget or tracked by a pending
    /// request that the watchdog already failed.
    fn ktk_send(&self, ctx: &ShardCtx, dst: u32, msg: &KtkMsg) {
        if ctx.dead.borrow().contains(&dst) {
            return;
        }
        let free = self.state.borrow().pemng.free_count() as u32;
        let at = self.sim.now();
        self.sim.tracer().record_with(|| Event {
            at,
            dur: m3_base::Cycles::ZERO,
            pe: Some(self.pe),
            comp: Component::Kernel,
            kind: EventKind::ShardOp {
                shard: ctx.id,
                peer: dst,
                op: msg.name().to_string(),
            },
        });
        (ctx.send)(dst, msg.to_bytes(ctx.id, free));
    }

    /// Sends a request to shard `dst` and waits for its reply. Mirrors
    /// [`Kernel::forward_to_service`]: with no fault plane armed the wait
    /// is unbounded (the peer kernel is on-chip and answers eventually)
    /// and the path is cycle-identical to a fault-free build; with faults
    /// armed, one bounded attempt converts silence into `Unreachable` —
    /// no retry, because cross-shard requests are not idempotent
    /// (placement allocates).
    async fn ktk_request(
        &self,
        ctx: &Rc<ShardCtx>,
        dst: u32,
        build: impl FnOnce(u64) -> KtkMsg,
    ) -> Result<KtkReply> {
        if ctx.dead.borrow().contains(&dst) {
            return Err(Error::new(Code::Unreachable).with_msg(format!("shard {dst} is dead")));
        }
        self.sim.sleep(costs::KTK_FORWARD).await;
        let req_id = ctx.next_req.get();
        ctx.next_req.set(req_id + 1);
        let slot = Rc::new(RefCell::new(None));
        let ready = Notify::new();
        ctx.pending.borrow_mut().insert(
            req_id,
            KtkPending {
                slot: slot.clone(),
                ready: ready.clone(),
                to: dst,
            },
        );
        self.ktk_send(ctx, dst, &build(req_id));
        if self.dtu.system().faults().is_none() {
            loop {
                if let Some(reply) = slot.borrow_mut().take() {
                    return Ok(reply);
                }
                ready.wait().await;
            }
        }
        let deadline = self.sim.now() + costs::KTK_TIMEOUT;
        let wait = async {
            loop {
                if let Some(reply) = slot.borrow_mut().take() {
                    return reply;
                }
                ready.wait().await;
            }
        };
        match m3_sim::with_deadline(&self.sim, deadline, wait).await {
            Some(reply) => Ok(reply),
            None => {
                ctx.pending.borrow_mut().remove(&req_id);
                Err(Error::new(Code::Unreachable).with_msg("peer kernel did not reply"))
            }
        }
    }

    /// Feeds one raw ktk message into this kernel. Transports call this on
    /// the receiving side: requests are dispatched to detached handler
    /// tasks — the serial syscall loop never blocks on a peer, so two
    /// shards forwarding to each other cannot deadlock — and replies are
    /// routed straight to the waiting request.
    pub fn ktk_deliver(&self, bytes: &[u8]) {
        let Some(ctx) = self.shard_ctx() else { return };
        let Ok((src, free, msg)) = KtkMsg::from_bytes(bytes) else {
            self.sim.stats().incr("kernel.ktk_bad_messages");
            return;
        };
        // Piggybacked load feed: every message refreshes the sender's
        // advertised free-PE count (unless the watchdog declared it dead).
        if !ctx.dead.borrow().contains(&src) {
            ctx.peer_free.borrow_mut().insert(src, free as usize);
        }
        match msg {
            KtkMsg::Hello => {}
            KtkMsg::Reply { req_id, reply } => {
                let pending = ctx.pending.borrow_mut().remove(&req_id);
                if let Some(p) = pending {
                    *p.slot.borrow_mut() = Some(reply);
                    p.ready.notify_all();
                }
            }
            msg => {
                let at = self.sim.now();
                self.sim.tracer().record_with(|| Event {
                    at,
                    dur: m3_base::Cycles::ZERO,
                    pe: Some(self.pe),
                    comp: Component::Kernel,
                    kind: EventKind::ShardOp {
                        shard: ctx.id,
                        peer: src,
                        op: msg.name().to_string(),
                    },
                });
                let k = self.clone();
                let name = format!("ktk-{}@{}", msg.name(), self.pe);
                self.sim.spawn(name, async move {
                    k.ktk_handle(&ctx, src, msg).await;
                });
            }
        }
    }

    /// Handles one peer request: counted as a kernel operation of this
    /// shard, charged the dispatch share, and answered with a `Reply`
    /// (unless fire-and-forget).
    async fn ktk_handle(&self, ctx: &Rc<ShardCtx>, src: u32, msg: KtkMsg) {
        self.sim.sleep(costs::KTK_DISPATCH).await;
        self.sim.stats().incr("kernel.ktk_requests");
        self.sim.metrics().incr(self.pe, m3_sim::keys::KERNEL_OPS);
        let outcome = match msg {
            KtkMsg::PlaceVpe { req_id, name, want } => {
                Some((req_id, self.ktk_place_vpe(&name, want).await))
            }
            KtkMsg::StartVpe { req_id, vpe } => Some((req_id, self.ktk_start_vpe(vpe))),
            KtkMsg::WaitVpe { req_id, vpe } => Some((req_id, self.ktk_wait_vpe(vpe).await)),
            KtkMsg::RevokeVpe { vpe } => {
                self.ktk_revoke_vpe(vpe);
                None
            }
            KtkMsg::DelegateCap {
                req_id,
                vpe,
                sel,
                desc,
            } => Some((req_id, self.ktk_delegate_cap(vpe, sel, &desc).await)),
            KtkMsg::RevokeCap { vpe, sel } => {
                self.ktk_revoke_cap(vpe, sel).await;
                None
            }
            KtkMsg::OpenSess { req_id, name, arg } => {
                Some((req_id, self.ktk_open_sess(&name, arg).await))
            }
            KtkMsg::ExchangeSess {
                req_id,
                serv,
                ident,
                obtain,
                cap_count,
                descs,
                args,
            } => Some((
                req_id,
                self.ktk_exchange_sess(&serv, ident, obtain, cap_count, &descs, &args)
                    .await,
            )),
            // Routed in `ktk_deliver`, never dispatched here.
            KtkMsg::Hello | KtkMsg::Reply { .. } => None,
        };
        if let Some((req_id, result)) = outcome {
            let reply = result.unwrap_or_else(|e| KtkReply::err(e.code()));
            self.ktk_send(ctx, src, &KtkMsg::Reply { req_id, reply });
        }
    }

    /// Places a VPE for a peer shard (`PlaceVpe`): allocation, object
    /// setup, and the syscall channel work exactly like a local
    /// `CreateVpe`, but the parent lives in the requesting shard, so the
    /// child's self capability is a local root — the parent edge is the
    /// requester's `RemoteVpe` proxy, cut via `RevokeVpe`.
    async fn ktk_place_vpe(&self, name: &str, want: PeRequest) -> Result<KtkReply> {
        self.sim.sleep(costs::CREATE_VPE).await;
        let (id, pe) = {
            let mut st = self.state.borrow_mut();
            // `Same` cannot cross shards (the sender resolves it first); a
            // stray one falls back to the base compute type.
            let pe = st.pemng.alloc(want, PeType::Xtensa)?;
            let id = VpeId::new(st.next_vpe);
            st.next_vpe += 1;
            let vpe = Rc::new(RefCell::new(VpeObj::new(id, name, pe)));
            st.vpes.insert(id, vpe.clone());
            let mut table = CapTable::new();
            table.insert(SelId::new(0), Capability::new(KObject::Vpe(vpe)))?;
            st.tables.insert(id, table);
            st.tree.insert_root((id, SelId::new(0)));
            (id, pe)
        };
        self.setup_sysc_channel(id, pe)?;
        self.charge_ep_config(pe).await;
        Ok(KtkReply::ok(u64::from(id.raw()), u64::from(pe.raw())))
    }

    fn ktk_start_vpe(&self, vpe: u32) -> Result<KtkReply> {
        let vpe_obj = self
            .state
            .borrow()
            .vpes
            .get(&VpeId::new(vpe))
            .cloned()
            .ok_or_else(|| Error::new(Code::VpeGone).with_msg("unknown remote VPE"))?;
        let mut v = vpe_obj.borrow_mut();
        match v.state {
            VpeState::Init => {
                v.state = VpeState::Running;
                Ok(KtkReply::ok(0, 0))
            }
            _ => Err(Error::new(Code::InvArgs).with_msg("VPE not in init state")),
        }
    }

    async fn ktk_wait_vpe(&self, vpe: u32) -> Result<KtkReply> {
        let vpe_obj = self
            .state
            .borrow()
            .vpes
            .get(&VpeId::new(vpe))
            .cloned()
            .ok_or_else(|| Error::new(Code::VpeGone).with_msg("unknown remote VPE"))?;
        loop {
            let (code, exited) = {
                let v = vpe_obj.borrow();
                (v.exit_code(), v.exited.clone())
            };
            if let Some(code) = code {
                // The exit code travels as its i64 bit pattern.
                return Ok(KtkReply::ok(code as u64, 0));
            }
            exited.wait().await;
        }
    }

    fn ktk_revoke_vpe(&self, vpe: u32) {
        let vpe_obj = self.state.borrow().vpes.get(&VpeId::new(vpe)).cloned();
        if let Some(v) = vpe_obj {
            self.destroy_vpe(&v, -1);
        }
    }

    async fn ktk_delegate_cap(&self, vpe: u32, sel: u32, desc: &CapDesc) -> Result<KtkReply> {
        self.sim.sleep(costs::CAP_OP).await;
        self.install_desc(VpeId::new(vpe), SelId::new(sel), desc)?;
        Ok(KtkReply::ok(0, 0))
    }

    async fn ktk_revoke_cap(&self, vpe: u32, sel: u32) {
        let count = self.revoke_cap(VpeId::new(vpe), SelId::new(sel));
        self.sim
            .sleep(costs::REVOKE_PER_CAP * (count as u64).max(1))
            .await;
    }

    async fn ktk_open_sess(&self, name: &str, arg: u64) -> Result<KtkReply> {
        let serv = self.state.borrow().services.find(name)?;
        let reply = self
            .forward_to_service(&serv, ServiceRequest::Open { arg })
            .await?;
        if let Some(code) = reply.error {
            return Err(Error::new(code));
        }
        Ok(KtkReply::ok(reply.ident, 0))
    }

    /// A capability exchange forwarded by a peer shard: runs the local
    /// service protocol and converts the capability legs to descriptors —
    /// obtain hands the service's capabilities back as descriptors,
    /// delegate installs the carried descriptors into the service owner's
    /// table.
    async fn ktk_exchange_sess(
        &self,
        serv_name: &str,
        ident: u64,
        obtain: bool,
        cap_count: u32,
        descs: &[CapDesc],
        args: &[u8],
    ) -> Result<KtkReply> {
        let serv = self.state.borrow().services.find(serv_name)?;
        let reply = self
            .forward_to_service(
                &serv,
                ServiceRequest::Exchange {
                    ident,
                    obtain,
                    cap_count,
                    args: args.to_vec(),
                },
            )
            .await?;
        if let Some(code) = reply.error {
            return Err(Error::new(code));
        }
        if reply.caps.len() as u32 > cap_count {
            return Err(Error::new(Code::BadMessage));
        }
        let owner = serv.owner;
        if obtain {
            let mut out = Vec::new();
            {
                let mut st = self.state.borrow_mut();
                for serv_sel in &reply.caps {
                    let obj = Self::table(&mut st, owner)?
                        .get(*serv_sel)
                        .map(|c| c.obj.clone())?;
                    out.push(Self::desc_of_obj(&obj)?);
                }
            }
            Ok(KtkReply {
                code: None,
                a: 0,
                b: 0,
                caps: out,
                args: reply.args,
            })
        } else {
            if reply.caps.len() > descs.len() {
                return Err(Error::new(Code::BadMessage));
            }
            for (i, serv_sel) in reply.caps.iter().enumerate() {
                self.install_desc(owner, *serv_sel, &descs[i])?;
            }
            Ok(KtkReply {
                code: None,
                a: 0,
                b: 0,
                caps: Vec::new(),
                args: reply.args,
            })
        }
    }

    /// Cross-shard `CreateVpe` spill-over (requesting side): tries peer
    /// shards most-free-first until one admits the VPE, then installs a
    /// `RemoteVpe` proxy plus the child-SPM memory gate — the same two
    /// capabilities a local `CreateVpe` yields, so the caller's session
    /// keeps working transparently.
    #[allow(clippy::too_many_arguments)]
    async fn create_vpe_remote(
        &self,
        ctx: &Rc<ShardCtx>,
        caller: VpeId,
        dst: SelId,
        mem_dst: SelId,
        req: PeRequest,
        caller_ty: PeType,
        name: &str,
    ) -> Result<Vec<u8>> {
        let want = match req {
            PeRequest::Same => PeRequest::Type(caller_ty),
            other => other,
        };
        let mut tried: BTreeSet<u32> = BTreeSet::new();
        loop {
            let peer = {
                let free = ctx.peer_free.borrow();
                ktk::choose_peer(
                    free.iter()
                        .filter(|(s, _)| !tried.contains(*s))
                        .map(|(s, f)| (*s, *f)),
                )
            };
            let Some(peer) = peer else {
                return Err(Error::new(Code::NoFreePe)
                    .with_msg(format!("no shard can place request {req:?}")));
            };
            tried.insert(peer);
            let reply = self
                .ktk_request(ctx, peer, |req_id| KtkMsg::PlaceVpe {
                    req_id,
                    name: name.to_string(),
                    want,
                })
                .await?;
            match reply.into_result() {
                Ok(r) => {
                    let vpe_raw = r.a as u32;
                    let pe = PeId::new(r.b as u32);
                    let install = {
                        let mut st = self.state.borrow_mut();
                        (|| -> Result<()> {
                            let robj = Rc::new(RemoteVpeObj {
                                shard: peer,
                                vpe: vpe_raw,
                                pe,
                            });
                            Self::table(&mut st, caller)?
                                .insert(dst, Capability::new(KObject::RemoteVpe(robj)))?;
                            st.tree.insert_root((caller, dst));
                            let mgate = Rc::new(MGateObj {
                                pe,
                                offset: 0,
                                size: SPM_DATA_SIZE as u64,
                                perm: Perm::RW,
                                owned: false,
                            });
                            if let Err(e) = Self::table(&mut st, caller)?
                                .insert(mem_dst, Capability::new(KObject::MGate(mgate)))
                            {
                                // Roll the proxy back out so the caller's
                                // table is unchanged on failure.
                                st.tree.revoke((caller, dst));
                                if let Some(t) = st.tables.get_mut(&caller) {
                                    t.remove(dst);
                                }
                                return Err(e);
                            }
                            st.tree.insert_root((caller, mem_dst));
                            Ok(())
                        })()
                    };
                    if let Err(e) = install {
                        // The placement would leak on the peer; take it back.
                        self.ktk_send(ctx, peer, &KtkMsg::RevokeVpe { vpe: vpe_raw });
                        return Err(e);
                    }
                    self.sim.stats().incr("kernel.remote_placements");
                    let mut os = OStream::new();
                    os.push_u32(vpe_raw).push_u32(pe.raw());
                    return Ok(os.into_bytes());
                }
                // The peer's advertised load was stale; try the next one.
                Err(e) if e.code() == Code::NoFreePe => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Remote-mount leg of `OpenSess` (requesting side): asks each live
    /// peer shard, ascending, for the named service and installs a
    /// `RemoteSess` proxy on the first hit.
    async fn open_sess_remote(
        &self,
        ctx: &Rc<ShardCtx>,
        caller: VpeId,
        dst: SelId,
        name: &str,
        arg: u64,
        local_err: &Error,
    ) -> SyscallReply {
        for peer in ctx.alive_peers() {
            let reply = self
                .ktk_request(ctx, peer, |req_id| KtkMsg::OpenSess {
                    req_id,
                    name: name.to_string(),
                    arg,
                })
                .await
                .and_then(KtkReply::into_result);
            match reply {
                Ok(r) => {
                    let sess = Rc::new(RemoteSessObj {
                        shard: peer,
                        serv: name.to_string(),
                        ident: r.a,
                    });
                    let mut st = self.state.borrow_mut();
                    let table = match Self::table(&mut st, caller) {
                        Ok(t) => t,
                        Err(e) => return SyscallReply::err(e.code()),
                    };
                    if let Err(e) = table.insert(dst, Capability::new(KObject::RemoteSess(sess))) {
                        return SyscallReply::err(e.code());
                    }
                    st.tree.insert_root((caller, dst));
                    return SyscallReply::ok();
                }
                // This peer does not host it either; keep looking.
                Err(e) if e.code() == Code::InvService => {}
                Err(e) => return SyscallReply::err(e.code()),
            }
        }
        SyscallReply::err(local_err.code())
    }

    /// Cross-shard `ExchangeSess` (requesting side): ships the exchange to
    /// the shard hosting the service; obtained capabilities come back as
    /// descriptors and are installed into the caller's chosen selectors,
    /// delegated ones are descriptor-ized here and installed remotely.
    async fn exchange_sess_remote(
        &self,
        caller: VpeId,
        rs: &Rc<RemoteSessObj>,
        obtain: bool,
        caps: &[SelId],
        args: &[u8],
    ) -> SyscallReply {
        let ctx = match self.shard_ctx_or_err() {
            Ok(c) => c,
            Err(e) => return SyscallReply::err(e.code()),
        };
        let mut descs = Vec::new();
        if !obtain {
            let mut st = self.state.borrow_mut();
            for sel in caps {
                let obj = match Self::table(&mut st, caller)
                    .and_then(|t| t.get(*sel).map(|c| c.obj.clone()))
                {
                    Ok(o) => o,
                    Err(e) => return SyscallReply::err(e.code()),
                };
                match Self::desc_of_obj(&obj) {
                    Ok(d) => descs.push(d),
                    Err(e) => return SyscallReply::err(e.code()),
                }
            }
        }
        let reply = self
            .ktk_request(&ctx, rs.shard, |req_id| KtkMsg::ExchangeSess {
                req_id,
                serv: rs.serv.clone(),
                ident: rs.ident,
                obtain,
                cap_count: caps.len() as u32,
                descs,
                args: args.to_vec(),
            })
            .await
            .and_then(KtkReply::into_result);
        let reply = match reply {
            Ok(r) => r,
            Err(e) => return SyscallReply::err(e.code()),
        };
        if reply.caps.len() > caps.len() {
            return SyscallReply::err(Code::BadMessage);
        }
        // Obtain direction: install what the service handed back.
        for (i, desc) in reply.caps.iter().enumerate() {
            if let Err(e) = self.install_desc(caller, caps[i], desc) {
                return SyscallReply::err(e.code());
            }
        }
        SyscallReply::ok_with(reply.args)
    }

    /// Converts a local capability into a descriptor that can cross a
    /// shard boundary. Only fully hardware-resolved objects qualify:
    /// memory regions and activated send gates. Receive gates are refused
    /// exactly like in VPE-to-VPE delegation (§4.5.4).
    fn desc_of_obj(obj: &KObject) -> Result<CapDesc> {
        match obj {
            KObject::MGate(mg) => Ok(CapDesc::Mem {
                pe: mg.pe.raw(),
                offset: mg.offset,
                size: mg.size,
                perm: mg.perm,
            }),
            KObject::SGate(sg) => {
                let Some((rpe, rep)) = *sg.rgate.activation.borrow() else {
                    return Err(Error::new(Code::NotSup)
                        .with_msg("only activated send gates can cross shards"));
                };
                Ok(CapDesc::SGate {
                    pe: rpe.raw(),
                    ep: rep.raw(),
                    label: sg.label,
                    credits: sg.credits.unwrap_or(0),
                    max_payload: sg.rgate.max_payload() as u32,
                })
            }
            KObject::XSGate(x) => Ok(CapDesc::SGate {
                pe: x.pe.raw(),
                ep: x.ep.raw(),
                label: x.label,
                credits: x.credits.unwrap_or(0),
                max_payload: x.max_payload as u32,
            }),
            KObject::RGate(_) => {
                Err(Error::new(Code::NotSup).with_msg("receive capabilities are not delegable"))
            }
            other => Err(Error::new(Code::NotSup)
                .with_msg(format!("a {} capability cannot cross shards", other.kind()))),
        }
    }

    /// Installs a descriptor received from a peer shard as a root
    /// capability in `(vpe, sel)`.
    fn install_desc(&self, vpe: VpeId, sel: SelId, desc: &CapDesc) -> Result<()> {
        let obj = match desc {
            CapDesc::Mem {
                pe,
                offset,
                size,
                perm,
            } => KObject::MGate(Rc::new(MGateObj {
                pe: PeId::new(*pe),
                offset: *offset,
                size: *size,
                perm: *perm,
                // The region's allocator lives with the origin shard.
                owned: false,
            })),
            CapDesc::SGate {
                pe,
                ep,
                label,
                credits,
                max_payload,
            } => KObject::XSGate(Rc::new(XSGateObj {
                pe: PeId::new(*pe),
                ep: EpId::new(*ep),
                label: *label,
                credits: if *credits == 0 { None } else { Some(*credits) },
                max_payload: *max_payload as usize,
            })),
        };
        let mut st = self.state.borrow_mut();
        Self::table(&mut st, vpe)?.insert(sel, Capability::new(obj))?;
        st.tree.insert_root((vpe, sel));
        Ok(())
    }

    /// Severs a dead peer shard: marks it dead, fails the in-flight
    /// requests addressed to it with `Unreachable`, drops its delegation
    /// edges, and revokes every proxy capability pointing into it (so
    /// cross-shard access is actually cut, not just orphaned).
    fn on_peer_shard_dead(&self, peer: u32) {
        let Some(ctx) = self.shard_ctx() else { return };
        if !ctx.dead.borrow_mut().insert(peer) {
            return;
        }
        ctx.peer_free.borrow_mut().remove(&peer);
        let stuck: Vec<KtkPending> = {
            let mut pending = ctx.pending.borrow_mut();
            let ids: Vec<u64> = pending
                .iter()
                .filter(|(_, p)| p.to == peer)
                .map(|(id, _)| *id)
                .collect();
            ids.into_iter()
                .filter_map(|id| pending.remove(&id))
                .collect()
        };
        for p in stuck {
            *p.slot.borrow_mut() = Some(KtkReply::err(Code::Unreachable));
            p.ready.notify_all();
        }
        ctx.remote_children
            .borrow_mut()
            .values_mut()
            .for_each(|edges| edges.retain(|(s, _, _)| *s != peer));
        let refs: Vec<(VpeId, SelId)> = {
            let st = self.state.borrow();
            let mut refs = Vec::new();
            for (vid, table) in &st.tables {
                for sel in table.selectors() {
                    let hits = table.get(sel).is_ok_and(|cap| match &cap.obj {
                        KObject::RemoteVpe(r) => r.shard == peer,
                        KObject::RemoteSess(r) => r.shard == peer,
                        _ => false,
                    });
                    if hits {
                        refs.push((*vid, sel));
                    }
                }
            }
            refs
        };
        let at = self.sim.now();
        self.sim.tracer().record_with(|| Event {
            at,
            dur: m3_base::Cycles::ZERO,
            pe: Some(self.pe),
            comp: Component::Kernel,
            kind: EventKind::Recovery {
                action: format!("dead_shard:{peer}"),
                attempt: 0,
            },
        });
        for (v, s) in refs {
            self.revoke_cap(v, s);
        }
    }

    // ------------------------------------------------------------------
    // VPE time-multiplexing (m3-sched)
    // ------------------------------------------------------------------

    /// Enables (or disables) PE overcommit: with it on, `CreateVpe` admits
    /// more VPEs than PEs by time-multiplexing application PEs — round-robin
    /// with blocked-on-receive parking; switches move the suspended VPE's
    /// DTU state to a DRAM save area through the DTU itself (§4.1/§7
    /// future work). Off (the default) preserves the paper's one-VPE-per-PE
    /// model bit for bit.
    pub fn set_overcommit(&self, on: bool) {
        self.overcommit.set(on);
    }

    /// Enables (or disables) dirty-tracked context switches: with it on,
    /// the SPM data transfer of a switch covers only the pages the DTU
    /// dirtied since the context's last save (its dirty bitmap) instead of
    /// the full [`SPM_DATA_SIZE`] image. Off (the default) charges the
    /// full image — the behaviour the golden pins were recorded with.
    pub fn set_dirty_switches(&self, on: bool) {
        self.dirty_switches.set(on);
    }

    /// Bounds the resident set of address spaces created by *later*
    /// `PageFault` syscalls to `pages` frames, forcing the pager to evict
    /// (clean-first) beyond that. `None` (the default) leaves address
    /// spaces unbounded — first-touch allocation only, no eviction.
    pub fn set_vm_resident_pages(&self, pages: Option<usize>) {
        self.vm_resident.set(pages);
    }

    /// Whether `vpe` is under scheduler control (time-multiplexed).
    pub fn sched_manages(&self, vpe: VpeId) -> bool {
        self.sched.borrow().manages(vpe)
    }

    /// Number of context switches performed so far on `pe` (diagnostics).
    pub fn ctx_switches(&self, pe: PeId) -> u64 {
        self.sim.metrics().get(pe, m3_sim::keys::CTX_SWITCHES)
    }

    /// Parks `vpe` until a message can be fetched from its endpoint `ep`,
    /// running another VPE of the PE in the meantime (the blocked-receive
    /// funnel of the cooperative multiplexing model).
    ///
    /// Returns when `vpe` is resident with a message pending at `ep`, or —
    /// mirroring one iteration of the [`Dtu::recv`] poll loop — after a
    /// single arrival wake while it stays resident, so the caller re-polls
    /// with exactly the cycle pattern of the unmanaged path. Unmanaged VPEs
    /// return immediately.
    ///
    /// # Errors
    ///
    /// Propagates DTU errors from the save/restore transfers.
    pub async fn sched_wait_msg(&self, vpe: VpeId, ep: EpId) -> Result<()> {
        enum Act {
            Return,
            Switch(VpeId),
            Restore,
            WaitOnce,
            Wait,
        }
        loop {
            let (pe, act) = {
                let mut sched = self.sched.borrow_mut();
                let Some(pe) = sched.pe_of(vpe) else {
                    return Ok(());
                };
                let act = if sched.is_resident(vpe) {
                    if self.ktok.has_message(pe, ep) {
                        sched.mark_active(vpe);
                        Act::Return
                    } else if let Some(next) = sched.park_resident(vpe) {
                        Act::Switch(next)
                    } else {
                        // Nobody ready: blocked in place, zero switch cost.
                        Act::WaitOnce
                    }
                } else if sched.resident_of(pe).is_none() && sched.claim_vacant(vpe) {
                    Act::Restore
                } else {
                    // Switched out: a message in the save area makes this
                    // VPE runnable again.
                    if self.ktok.saved_has_message(pe, u64::from(vpe.raw()), ep) {
                        sched.unpark(vpe);
                    }
                    Act::Wait
                };
                (pe, act)
            };
            match act {
                Act::Return => return Ok(()),
                Act::Switch(next) => self.spawn_switch(pe, Some(vpe), next),
                Act::Restore => self.spawn_switch(pe, None, vpe),
                Act::WaitOnce => {
                    self.ktok.arrival_notify(pe)?.wait().await;
                    return Ok(());
                }
                Act::Wait => self.ktok.arrival_notify(pe)?.wait().await,
            }
        }
    }

    /// Forces a parked `vpe` back onto the ready queue and waits for
    /// residency — the recovery step after a timed-out receive abandoned its
    /// wait mid-park, so the caller never touches the DTU while another
    /// VPE's state is live.
    ///
    /// # Errors
    ///
    /// Propagates DTU errors from the restore transfer.
    pub async fn sched_interrupt(&self, vpe: VpeId) -> Result<()> {
        self.sched.borrow_mut().unpark(vpe);
        self.sched_acquire(vpe).await
    }

    /// Blocks until `vpe` holds its PE, restoring it if the PE is vacant
    /// (used before a freshly started VPE runs, and after a yield).
    /// Unmanaged VPEs return immediately.
    ///
    /// # Errors
    ///
    /// Propagates DTU errors from the restore transfer.
    pub async fn sched_acquire(&self, vpe: VpeId) -> Result<()> {
        enum Act {
            Ready,
            Restore,
            Wait,
        }
        loop {
            let (pe, act) = {
                let mut sched = self.sched.borrow_mut();
                let Some(pe) = sched.pe_of(vpe) else {
                    return Ok(());
                };
                let act = if sched.is_resident(vpe) {
                    sched.mark_active(vpe);
                    Act::Ready
                } else if sched.resident_of(pe).is_none() && sched.claim_vacant(vpe) {
                    Act::Restore
                } else {
                    Act::Wait
                };
                (pe, act)
            };
            match act {
                Act::Ready => return Ok(()),
                Act::Restore => self.spawn_switch(pe, None, vpe),
                Act::Wait => self.ktok.arrival_notify(pe)?.wait().await,
            }
        }
    }

    /// Voluntarily offers `vpe`'s slice (`Env::yield_now`): if another VPE
    /// of the PE is ready, the caller moves to the tail of the ready queue
    /// and this returns once it is resident again. A no-op when nobody
    /// waits or the VPE is unmanaged.
    ///
    /// # Errors
    ///
    /// Propagates DTU errors from the save/restore transfers.
    pub async fn sched_yield(&self, vpe: VpeId) -> Result<()> {
        let (pe, next) = {
            let mut sched = self.sched.borrow_mut();
            let Some(pe) = sched.pe_of(vpe) else {
                return Ok(());
            };
            match sched.yield_resident(vpe) {
                Some(next) => (pe, next),
                None => return Ok(()),
            }
        };
        self.spawn_switch(pe, Some(vpe), next);
        self.sched_acquire(vpe).await
    }

    /// Runs [`Kernel::perform_switch`] in a detached kernel task, so the
    /// switch always completes even if the waiter that triggered it is
    /// cancelled (e.g. a timed-out receive dropping its future mid-wait).
    fn spawn_switch(&self, pe: PeId, from: Option<VpeId>, to: VpeId) {
        let k = self.clone();
        self.sim.spawn(format!("kernel-ctxsw@{pe}"), async move {
            let _ = k.perform_switch(pe, from, to).await;
        });
    }

    /// Performs one context switch on `pe`: saves `from` (when the PE is
    /// not vacant) and restores `to`, moving each VPE's architectural state
    /// — endpoint registers, ring-buffer contents, unspent credits, and the
    /// SPM data image — between the PE and its DRAM save area *through the
    /// DTU*, charged at 8 B/cycle (§5.4) plus the fixed per-direction costs
    /// in `m3-sched::costs`.
    async fn perform_switch(&self, pe: PeId, from: Option<VpeId>, to: VpeId) -> Result<()> {
        let started = self.sim.now();
        let dram = self.platform.dram_pe();
        let spm = SPM_DATA_SIZE as u64;
        let mut bytes = 0u64;
        if from.is_some() {
            let (saved, dirty) = self.ktok.save_state(pe)?;
            // Dirty-tracked switches move only the SPM pages the DTU
            // dirtied since the last save; the conservative default moves
            // the whole data image (what the golden pins were recorded
            // with — the two are identical when every page is dirty).
            let data = if self.dirty_switches.get() {
                self.sim
                    .metrics()
                    .add(pe, m3_sim::keys::DIRTY_PAGES_SAVED, u64::from(dirty));
                u64::from(dirty) * m3_vm::PAGE_SIZE
            } else {
                spm
            };
            let t = self
                .dtu
                .system()
                .noc()
                .schedule(self.sim.now(), pe, dram, saved + data);
            self.sim.sleep_until(t.completes_at).await;
            self.sim.sleep(m3_dtu::timing::DRAM_LATENCY).await;
            self.sim.sleep(m3_sched::costs::CTX_SAVE_FIXED).await;
            bytes += saved + data;
            if let Some(t0) = self.resumed_at.borrow_mut().remove(&pe) {
                self.sim.metrics().observe(
                    pe,
                    m3_sim::keys::SLICE_CYCLES,
                    (self.sim.now() - t0).as_u64(),
                );
            }
        }
        match self.ktok.restore_state(pe, u64::from(to.raw())) {
            Ok((restored, dirty)) => {
                // Restores mirror saves: only the pages the save-out
                // actually transferred come back eagerly.
                let data = if self.dirty_switches.get() {
                    u64::from(dirty) * m3_vm::PAGE_SIZE
                } else {
                    spm
                };
                let t = self
                    .dtu
                    .system()
                    .noc()
                    .schedule(self.sim.now(), dram, pe, restored + data);
                self.sim.sleep_until(t.completes_at).await;
                self.sim.sleep(m3_sched::costs::CTX_RESTORE_FIXED).await;
                bytes += restored + data;
            }
            Err(_) => {
                // The target died mid-switch (its save area is gone): the
                // PE stays vacant for the next claimant.
                self.sched.borrow_mut().abort_switch(pe, Some(to));
                return Ok(());
            }
        }
        if self.sched.borrow_mut().finish_switch(pe, to) {
            self.resumed_at.borrow_mut().insert(pe, self.sim.now());
        }
        let now = self.sim.now();
        self.sim.tracer().record_with(|| Event {
            at: started,
            dur: now - started,
            pe: Some(pe),
            comp: Component::Kernel,
            kind: EventKind::CtxSwitch {
                from: from.map_or(0, |v| v.raw()),
                to: to.raw(),
                bytes,
            },
        });
        let metrics = self.sim.metrics();
        metrics.incr(pe, m3_sim::keys::CTX_SWITCHES);
        metrics.add(
            pe,
            m3_sim::keys::CTX_SWITCH_CYCLES,
            (now - started).as_u64(),
        );
        let depth = self.sched.borrow().ready_depth(pe) as u64;
        metrics.observe(pe, m3_sim::keys::RUN_QUEUE_DEPTH, depth);
        Ok(())
    }

    /// Charges the NoC time of one remote endpoint-configuration packet.
    async fn charge_ep_config(&self, target: PeId) {
        let t = self.dtu.system().noc().schedule(
            self.sim.now(),
            self.pe,
            target,
            costs::EP_CONFIG_BYTES,
        );
        self.sim.sleep_until(t.completes_at).await;
    }

    fn table(st: &mut KState, vpe: VpeId) -> Result<&mut CapTable> {
        st.tables
            .get_mut(&vpe)
            .ok_or_else(|| Error::new(Code::VpeGone).with_msg(format!("{vpe} has no table")))
    }

    /// Looks up a VPE object (used by libos glue to spawn programs).
    pub fn vpe_obj(&self, vpe: VpeId) -> Option<Rc<RefCell<VpeObj>>> {
        self.state.borrow().vpes.get(&vpe).cloned()
    }

    /// Number of currently free PEs (diagnostics).
    pub fn free_pes(&self) -> usize {
        self.state.borrow().pemng.free_count()
    }

    /// Free DRAM bytes (diagnostics).
    pub fn free_mem(&self) -> u64 {
        self.state.borrow().mem.free_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_platform::PlatformConfig;

    /// Boot a kernel and one root VPE; send raw syscalls from the root PE.
    fn boot() -> (Platform, Kernel, VpeBootInfo) {
        let platform = Platform::new(PlatformConfig::xtensa(4));
        let kernel = Kernel::start(&platform, PeId::new(0));
        let root = kernel.create_root("root", None).unwrap();
        (platform, kernel, root)
    }

    async fn syscall(dtu: &Dtu, call: Syscall) -> SyscallReply {
        dtu.send(
            std_eps::SYSC_SEND,
            &call.to_bytes(),
            Some((std_eps::SYSC_REPLY, 0)),
        )
        .await
        .unwrap();
        let msg = dtu.recv(std_eps::SYSC_REPLY).await.unwrap();
        dtu.ack(std_eps::SYSC_REPLY).unwrap();
        SyscallReply::from_bytes(&msg.payload).unwrap()
    }

    #[test]
    fn boot_downgrades_application_dtus() {
        let (platform, kernel, root) = boot();
        assert!(platform.dtu(kernel.pe()).is_privileged());
        assert!(!platform.dtu(root.pe).is_privileged());
        for i in 1..platform.pe_count() {
            assert!(!platform.dtu(PeId::new(i as u32)).is_privileged());
        }
    }

    #[test]
    fn noop_syscall_replies_ok() {
        let (platform, _kernel, root) = boot();
        let sim = platform.sim().clone();
        let dtu = platform.dtu(root.pe);
        let h = sim.spawn("app", async move { syscall(&dtu, Syscall::Noop).await });
        sim.run();
        assert_eq!(h.try_take().unwrap(), SyscallReply::ok());
    }

    #[test]
    fn alloc_and_derive_mem() {
        let (platform, _kernel, root) = boot();
        let sim = platform.sim().clone();
        let dtu = platform.dtu(root.pe);
        let h = sim.spawn("app", async move {
            let r = syscall(
                &dtu,
                Syscall::AllocMem {
                    dst: SelId::new(1),
                    size: 8192,
                    perm: Perm::RW,
                },
            )
            .await;
            assert_eq!(r.error, None);
            // Derive a read-only sub-range.
            let r = syscall(
                &dtu,
                Syscall::DeriveMem {
                    dst: SelId::new(2),
                    src: SelId::new(1),
                    offset: 4096,
                    size: 4096,
                    perm: Perm::R,
                },
            )
            .await;
            assert_eq!(r.error, None);
            // Deriving beyond the region fails.
            let r = syscall(
                &dtu,
                Syscall::DeriveMem {
                    dst: SelId::new(3),
                    src: SelId::new(1),
                    offset: 8000,
                    size: 4096,
                    perm: Perm::R,
                },
            )
            .await;
            assert_eq!(r.error, Some(Code::InvArgs));
            // Escalating permissions fails.
            let r = syscall(
                &dtu,
                Syscall::DeriveMem {
                    dst: SelId::new(3),
                    src: SelId::new(2),
                    offset: 0,
                    size: 10,
                    perm: Perm::RW,
                },
            )
            .await;
            assert_eq!(r.error, Some(Code::NoPerm));
        });
        sim.run();
        h.try_take().unwrap();
    }

    #[test]
    fn activate_mem_gate_and_use_it() {
        let (platform, _kernel, root) = boot();
        let sim = platform.sim().clone();
        let dtu = platform.dtu(root.pe);
        let h = sim.spawn("app", async move {
            let r = syscall(
                &dtu,
                Syscall::AllocMem {
                    dst: SelId::new(1),
                    size: 4096,
                    perm: Perm::RW,
                },
            )
            .await;
            assert_eq!(r.error, None);
            let r = syscall(
                &dtu,
                Syscall::Activate {
                    vpe: SelId::new(0),
                    ep: EpId::new(2),
                    gate: SelId::new(1),
                },
            )
            .await;
            assert_eq!(r.error, None);
            dtu.write_mem(EpId::new(2), 0, &[7, 8, 9]).await.unwrap();
            dtu.read_mem(EpId::new(2), 0, 3).await.unwrap()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), vec![7, 8, 9]);
    }

    #[test]
    fn revoke_invalidates_endpoint() {
        let (platform, _kernel, root) = boot();
        let sim = platform.sim().clone();
        let dtu = platform.dtu(root.pe);
        let h = sim.spawn("app", async move {
            syscall(
                &dtu,
                Syscall::AllocMem {
                    dst: SelId::new(1),
                    size: 4096,
                    perm: Perm::RW,
                },
            )
            .await;
            syscall(
                &dtu,
                Syscall::Activate {
                    vpe: SelId::new(0),
                    ep: EpId::new(2),
                    gate: SelId::new(1),
                },
            )
            .await;
            dtu.write_mem(EpId::new(2), 0, &[1]).await.unwrap();
            let r = syscall(&dtu, Syscall::Revoke { sel: SelId::new(1) }).await;
            assert_eq!(r.error, None);
            dtu.write_mem(EpId::new(2), 0, &[1])
                .await
                .unwrap_err()
                .code()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Code::InvEp);
    }

    #[test]
    fn revoked_mem_returns_to_allocator() {
        let (platform, kernel, root) = boot();
        let sim = platform.sim().clone();
        let dtu = platform.dtu(root.pe);
        let before = kernel.free_mem();
        let h = sim.spawn("app", async move {
            syscall(
                &dtu,
                Syscall::AllocMem {
                    dst: SelId::new(1),
                    size: 1 << 20,
                    perm: Perm::RW,
                },
            )
            .await;
            syscall(&dtu, Syscall::Revoke { sel: SelId::new(1) }).await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap().error, None);
        assert_eq!(kernel.free_mem(), before);
    }

    #[test]
    fn create_vpe_allocates_pe_and_sysc_channel() {
        let (platform, kernel, root) = boot();
        let sim = platform.sim().clone();
        let dtu = platform.dtu(root.pe);
        let free_before = kernel.free_pes();
        let h = sim.spawn("app", async move {
            let r = syscall(
                &dtu,
                Syscall::CreateVpe {
                    dst: SelId::new(1),
                    mem_dst: SelId::new(2),
                    pe: PeRequest::Same,
                    name: "child".to_string(),
                },
            )
            .await;
            assert_eq!(r.error, None);
            let mut is = m3_base::marshal::IStream::new(&r.data);
            let _vpe = is.pop_u32().unwrap();
            is.pop_u32().unwrap()
        });
        sim.run();
        let child_pe = PeId::new(h.try_take().unwrap());
        assert_eq!(kernel.free_pes(), free_before - 1);
        // The child can immediately issue syscalls over its new channel.
        let sim2 = platform.sim().clone();
        let child_dtu = platform.dtu(child_pe);
        let h2 = sim2.spawn(
            "child",
            async move { syscall(&child_dtu, Syscall::Noop).await },
        );
        sim2.run();
        assert_eq!(h2.try_take().unwrap().error, None);
    }

    #[test]
    fn exit_frees_pe_and_wakes_waiter() {
        let (platform, kernel, root) = boot();
        let sim = platform.sim().clone();
        let dtu = platform.dtu(root.pe);
        let kernel2 = kernel.clone();
        let h = sim.spawn("app", async move {
            let r = syscall(
                &dtu,
                Syscall::CreateVpe {
                    dst: SelId::new(1),
                    mem_dst: SelId::new(2),
                    pe: PeRequest::Same,
                    name: "child".to_string(),
                },
            )
            .await;
            let mut is = m3_base::marshal::IStream::new(&r.data);
            let _ = is.pop_u32().unwrap();
            let child_pe = PeId::new(is.pop_u32().unwrap());
            syscall(&dtu, Syscall::VpeStart { vpe: SelId::new(1) }).await;

            // The child runs, then exits with code 42.
            let child_dtu = kernel2.platform().dtu(child_pe);
            let sim = kernel2.platform().sim().clone();
            sim.spawn("child", async move {
                child_dtu
                    .send(
                        std_eps::SYSC_SEND,
                        &Syscall::Exit { code: 42 }.to_bytes(),
                        None,
                    )
                    .await
                    .unwrap();
            });

            let r = syscall(&dtu, Syscall::VpeWait { vpe: SelId::new(1) }).await;
            let mut is = m3_base::marshal::IStream::new(&r.data);
            is.pop_i64().unwrap()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 42);
        assert_eq!(kernel.free_pes(), 2); // 4 PEs - kernel - root
    }

    #[test]
    fn rgates_are_not_delegable() {
        let (platform, _kernel, root) = boot();
        let sim = platform.sim().clone();
        let dtu = platform.dtu(root.pe);
        let h = sim.spawn("app", async move {
            syscall(
                &dtu,
                Syscall::CreateRGate {
                    dst: SelId::new(1),
                    slots: 4,
                    slot_size: 256,
                },
            )
            .await;
            syscall(
                &dtu,
                Syscall::CreateVpe {
                    dst: SelId::new(2),
                    mem_dst: SelId::new(3),
                    pe: PeRequest::Same,
                    name: "child".to_string(),
                },
            )
            .await;
            // Delegating the rgate must fail.
            syscall(
                &dtu,
                Syscall::Exchange {
                    vpe: SelId::new(2),
                    own: SelId::new(1),
                    other: SelId::new(10),
                    obtain: false,
                },
            )
            .await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap().error, Some(Code::NotSup));
    }

    #[test]
    fn sgate_activation_defers_until_rgate_activated() {
        // Two VPEs: receiver creates rgate, sender obtains an sgate to it.
        // The sender activates first; the kernel must defer its reply until
        // the receiver activates the rgate (§4.5.4).
        let (platform, kernel, root) = boot();
        let sim = platform.sim().clone();
        let dtu = platform.dtu(root.pe);
        let kernel2 = kernel.clone();
        let h = sim.spawn("receiver", async move {
            // Create rgate + sgate, then a child VPE; delegate the sgate.
            syscall(
                &dtu,
                Syscall::CreateRGate {
                    dst: SelId::new(1),
                    slots: 4,
                    slot_size: 256,
                },
            )
            .await;
            syscall(
                &dtu,
                Syscall::CreateSGate {
                    dst: SelId::new(2),
                    rgate: SelId::new(1),
                    label: 0x77,
                    credits: 2,
                },
            )
            .await;
            let r = syscall(
                &dtu,
                Syscall::CreateVpe {
                    dst: SelId::new(3),
                    mem_dst: SelId::new(4),
                    pe: PeRequest::Same,
                    name: "sender".to_string(),
                },
            )
            .await;
            let mut is = m3_base::marshal::IStream::new(&r.data);
            let _ = is.pop_u32().unwrap();
            let sender_pe = PeId::new(is.pop_u32().unwrap());
            syscall(
                &dtu,
                Syscall::Exchange {
                    vpe: SelId::new(3),
                    own: SelId::new(2),
                    other: SelId::new(1),
                    obtain: false,
                },
            )
            .await;

            // The sender starts now and activates its sgate immediately.
            let sender_dtu = kernel2.platform().dtu(sender_pe);
            let sim2 = kernel2.platform().sim().clone();
            let sent = sim2.spawn("sender", async move {
                let r = syscall(
                    &sender_dtu,
                    Syscall::Activate {
                        vpe: SelId::new(0),
                        ep: EpId::new(2),
                        gate: SelId::new(1),
                    },
                )
                .await;
                assert_eq!(r.error, None);
                sender_dtu
                    .send(EpId::new(2), b"deferred", None)
                    .await
                    .unwrap();
            });

            // Wait a while before activating the rgate: the sender's
            // activate syscall must be pending all along.
            let sim3 = kernel2.platform().sim().clone();
            sim3.sleep(m3_base::Cycles::new(5000)).await;
            let r = syscall(
                &dtu,
                Syscall::Activate {
                    vpe: SelId::new(0),
                    ep: EpId::new(2),
                    gate: SelId::new(1),
                },
            )
            .await;
            assert_eq!(r.error, None);
            let msg = dtu.recv(EpId::new(2)).await.unwrap();
            dtu.ack(EpId::new(2)).unwrap();
            sent.join().await;
            (msg.header.label, msg.payload)
        });
        sim.run();
        let (label, payload) = h.try_take().unwrap();
        assert_eq!(label, 0x77);
        assert_eq!(payload, b"deferred");
    }

    #[test]
    fn watchdog_destroys_vpe_on_crashed_pe() {
        use m3_fault::{FaultPlan, FaultPlane};

        let (platform, kernel, root) = boot();
        let sim = platform.sim().clone();
        let plane = Rc::new(FaultPlane::new(
            FaultPlan::new().crash_pe(root.pe, m3_base::Cycles::new(10_000)),
        ));
        platform.dtu_system().set_faults(plane.clone());
        kernel.attach_faults(&plane);

        let vpe_obj = kernel.vpe_obj(root.vpe).unwrap();
        assert!(vpe_obj.borrow().is_alive());
        let sim2 = sim.clone();
        let h = sim.spawn("observer", async move {
            sim2.sleep_until(m3_base::Cycles::new(30_000)).await;
        });
        sim.run();
        h.try_take().unwrap();
        // One probe period after the crash, the watchdog tore the VPE down:
        // dead state, capabilities revoked, syscall channel invalidated.
        assert!(!vpe_obj.borrow().is_alive());
        assert_eq!(kernel.free_pes(), 3); // 4 PEs - kernel; root's was freed
    }

    #[test]
    fn unresponsive_service_yields_unreachable_under_faults() {
        use m3_fault::{FaultPlan, FaultPlane};

        let (platform, _kernel, root) = boot();
        let sim = platform.sim().clone();
        // An armed (even empty) plane switches the kernel to bounded waits.
        platform
            .dtu_system()
            .set_faults(Rc::new(FaultPlane::new(FaultPlan::new())));
        let dtu = platform.dtu(root.pe);
        let h = sim.spawn("app", async move {
            let r = syscall(
                &dtu,
                Syscall::CreateRGate {
                    dst: SelId::new(1),
                    slots: 4,
                    slot_size: 256,
                },
            )
            .await;
            assert_eq!(r.error, None);
            let r = syscall(
                &dtu,
                Syscall::Activate {
                    vpe: SelId::new(0),
                    ep: EpId::new(2),
                    gate: SelId::new(1),
                },
            )
            .await;
            assert_eq!(r.error, None);
            let r = syscall(
                &dtu,
                Syscall::CreateSrv {
                    dst: SelId::new(2),
                    rgate: SelId::new(1),
                    name: "mute".to_string(),
                },
            )
            .await;
            assert_eq!(r.error, None);
            // The service never serves its gate: the kernel must give up
            // after its bounded retries instead of hanging the opener.
            syscall(
                &dtu,
                Syscall::OpenSess {
                    dst: SelId::new(3),
                    name: "mute".to_string(),
                    arg: 0,
                },
            )
            .await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap().error, Some(Code::Unreachable));
        // All retries were spent before the error came back.
        assert!(sim.now().as_u64() >= 3 * costs::SERVICE_TIMEOUT.as_u64());
    }
}
