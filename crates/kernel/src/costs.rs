//! Kernel-side cycle charges.
//!
//! Calibrated against §5.3: a null system call takes ≈ 200 cycles on M3 —
//! ≈ 30 cycles of message transfers and ≈ 170 cycles of software
//! (marshalling, programming the DTU registers, unmarshalling, and "figuring
//! out the system call function to call"). The 170 software cycles are split
//! between libos (`m3-libos::costs`) and the kernel side here.

use m3_base::Cycles;

/// Unmarshal the syscall message and dispatch to the handler (kernel share
/// of the ≈170 software cycles of a null syscall, §5.3).
pub const DISPATCH: Cycles = Cycles::new(40);

/// Marshal and send the reply (kernel share of the §5.3 software cycles).
pub const REPLY: Cycles = Cycles::new(20);

/// Extra work of capability-table manipulation (insert/lookup) on top of a
/// null syscall (§4.3.1 capability model; baseline from §5.3).
pub const CAP_OP: Cycles = Cycles::new(30);

/// Extra work of creating a VPE (PE selection, object setup; §4.3.2, with
/// the VPE-creation path measured in §5.4.5).
pub const CREATE_VPE: Cycles = Cycles::new(120);

/// Extra work of an `Activate`: validating the gate and remotely writing the
/// endpoint registers (the NoC packet itself is charged separately);
/// remote EP configuration per §4.3.3.
pub const ACTIVATE: Cycles = Cycles::new(40);

/// Extra work of memory allocation (free-list walk) behind the §4.3.1
/// memory capabilities; baseline from §5.3.
pub const ALLOC_MEM: Cycles = Cycles::new(60);

/// Extra work of forwarding a request to a service and matching its reply
/// (kernel-mediated `Exchange`/obtain path, §4.3.2).
pub const SERVICE_FORWARD: Cycles = Cycles::new(60);

/// Extra work per revoked capability (tree walk, EP invalidation) in the
/// recursive revoke of §4.3.1.
pub const REVOKE_PER_CAP: Cycles = Cycles::new(25);

/// Size in bytes of a remote endpoint-configuration packet (the kernel
/// writes EP registers via the NoC, §4.3.3).
pub const EP_CONFIG_BYTES: u64 = 32;

/// Latency between a PE dying and the kernel's watchdog noticing. The paper
/// treats PEs as untrusted-but-monitorable from the kernel PE (§3, §4.3.2);
/// the prototype has no measured detection path, so this models a periodic
/// remote liveness probe at a few syscall-times' granularity.
pub const DEAD_PE_DETECT: Cycles = Cycles::new(1_000);

/// How long a kernel-forwarded service request (§4.3.2 obtain/delegate path)
/// may wait for the service's reply before the kernel retries. Meta requests
/// complete in hundreds of cycles (§5.3), so a 50k-cycle silence means loss,
/// not load.
pub const SERVICE_TIMEOUT: Cycles = Cycles::new(50_000);

/// Kernel-side resend budget for a forwarded service request before the
/// service is declared unreachable (bounded so a dead service PE, §4.3.2,
/// converts to an error instead of an infinite retry loop).
pub const SERVICE_RETRIES: u32 = 2;

/// Extra work of forwarding a request to a peer kernel shard and matching
/// its reply (marshalling the ktk message plus the request bookkeeping).
/// The §7 multikernel has no measured path; modelled like the kernel's
/// service forwarding (§4.5.3), which performs the same marshal/route/match
/// steps.
pub const KTK_FORWARD: Cycles = Cycles::new(60);

/// Extra work on the receiving shard to unmarshal and dispatch a ktk
/// request — the peer-kernel analogue of the §5.3 syscall dispatch share.
pub const KTK_DISPATCH: Cycles = Cycles::new(40);

/// How long a ktk request may wait for the peer kernel's reply once a fault
/// plane is armed. Kernel PEs answer in syscall-scale time (§5.3), so like
/// [`SERVICE_TIMEOUT`] a long silence means the peer is dead, not busy.
/// Cross-shard requests are not idempotent (placement allocates), so there
/// is no retry: a timeout converts to `Unreachable`.
pub const KTK_TIMEOUT: Cycles = Cycles::new(50_000);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_syscall_kernel_share_is_modest() {
        // Kernel share of the 170 software cycles (§5.3); libos carries the
        // rest. Keep it well under the total.
        assert!((DISPATCH + REPLY).as_u64() <= 80);
    }
}
