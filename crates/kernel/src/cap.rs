//! Capabilities, capability tables, and the delegation tree.
//!
//! A capability is "a pair consisting of a kernel object and permissions for
//! this object"; the kernel maintains one table per VPE, "similar to the file
//! descriptor table in UNIX systems" (§4.5.3). Delegations are recorded in a
//! tree — the mapping database of L4 microkernels — so that revoke can undo
//! all grants recursively.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use m3_base::error::{Code, Error, Result};
use m3_base::ids::Label;
use m3_base::{EpId, PeId, Perm, SelId, VpeId};
use m3_sim::Notify;

use crate::service::{ServObj, SessObj};
use crate::vpe::VpeObj;

/// A receive-gate kernel object.
#[derive(Debug)]
pub struct RGateObj {
    /// VPE that created (and receives on) the gate.
    pub owner: VpeId,
    /// Ring-buffer slots.
    pub slots: u32,
    /// Slot size in bytes.
    pub slot_size: u32,
    /// Where the gate is currently activated, if anywhere. Send gates can
    /// only be resolved once this is set (§4.5.4: the kernel defers the
    /// reply until the receiver is ready).
    pub activation: RefCell<Option<(PeId, EpId)>>,
    /// Notified when the gate becomes activated.
    pub activated: Notify,
}

impl RGateObj {
    /// Creates an unactivated receive gate.
    pub fn new(owner: VpeId, slots: u32, slot_size: u32) -> Rc<RGateObj> {
        Rc::new(RGateObj {
            owner,
            slots,
            slot_size,
            activation: RefCell::new(None),
            activated: Notify::new(),
        })
    }

    /// The maximum payload of messages through this gate.
    pub fn max_payload(&self) -> usize {
        self.slot_size as usize - m3_base::cfg::MSG_HEADER_SIZE
    }
}

/// A send-gate kernel object.
#[derive(Debug)]
pub struct SGateObj {
    /// The receive gate this gate sends to.
    pub rgate: Rc<RGateObj>,
    /// The (receiver-chosen) label stamped into every message.
    pub label: Label,
    /// Credit budget (`None` = unlimited).
    pub credits: Option<u32>,
}

/// A memory-gate kernel object: a region of some node's memory.
#[derive(Debug, Clone)]
pub struct MGateObj {
    /// The node whose memory this names (DRAM module or a PE's SPM).
    pub pe: PeId,
    /// Start offset within that node's memory.
    pub offset: u64,
    /// Region size in bytes.
    pub size: u64,
    /// Access permissions.
    pub perm: Perm,
    /// Whether the kernel allocator owns the region (freed on revoke of the
    /// root capability).
    pub owned: bool,
}

/// A proxy for a VPE placed on a peer kernel shard: the local kernel holds
/// the shard/VPE coordinates and forwards lifecycle operations over the
/// kernel-to-kernel gate (§7 multikernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteVpeObj {
    /// The shard whose kernel manages the VPE.
    pub shard: u32,
    /// The VPE id *in that shard's* namespace.
    pub vpe: u32,
    /// The PE the VPE runs on (globally unique, so memory gates to its SPM
    /// work from any shard).
    pub pe: PeId,
}

/// A send gate installed from a cross-shard capability descriptor: the
/// target receive gate lives with a peer shard and is already activated at
/// `(pe, ep)`, so the local kernel can configure send endpoints directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XSGateObj {
    /// PE of the activated receive gate.
    pub pe: PeId,
    /// Endpoint of the activated receive gate.
    pub ep: EpId,
    /// Label stamped into every message.
    pub label: Label,
    /// Credit budget (`None` = unlimited).
    pub credits: Option<u32>,
    /// Maximum payload bytes per message.
    pub max_payload: usize,
}

/// A session opened with a service registered at a peer shard: exchanges
/// are forwarded over the kernel-to-kernel gate; the owning shard keeps no
/// per-session kernel state for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteSessObj {
    /// The shard whose kernel hosts the service.
    pub shard: u32,
    /// Global service name (sessions are stateless on the origin side).
    pub serv: String,
    /// The service-chosen session identifier.
    pub ident: u64,
}

/// The kernel object behind a capability.
#[derive(Clone, Debug)]
pub enum KObject {
    /// A receive gate.
    RGate(Rc<RGateObj>),
    /// A send gate.
    SGate(Rc<SGateObj>),
    /// A memory gate.
    MGate(Rc<MGateObj>),
    /// A virtual PE.
    Vpe(Rc<RefCell<VpeObj>>),
    /// A registered service.
    Serv(Rc<ServObj>),
    /// A session with a service.
    Sess(Rc<SessObj>),
    /// A VPE managed by a peer kernel shard.
    RemoteVpe(Rc<RemoteVpeObj>),
    /// A send gate whose receive side lives with a peer shard.
    XSGate(Rc<XSGateObj>),
    /// A session with a service registered at a peer shard.
    RemoteSess(Rc<RemoteSessObj>),
}

impl KObject {
    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            KObject::RGate(_) => "rgate",
            KObject::SGate(_) => "sgate",
            KObject::MGate(_) => "mgate",
            KObject::Vpe(_) => "vpe",
            KObject::Serv(_) => "serv",
            KObject::Sess(_) => "sess",
            KObject::RemoteVpe(_) => "remote-vpe",
            KObject::XSGate(_) => "xsgate",
            KObject::RemoteSess(_) => "remote-sess",
        }
    }
}

/// One entry of a VPE's capability table.
#[derive(Clone, Debug)]
pub struct Capability {
    /// The kernel object.
    pub obj: KObject,
    /// Endpoints the kernel has configured from this capability; invalidated
    /// when the capability is revoked.
    pub activations: Vec<(PeId, EpId)>,
}

impl Capability {
    /// Wraps a kernel object into a capability.
    pub fn new(obj: KObject) -> Capability {
        Capability {
            obj,
            activations: Vec::new(),
        }
    }
}

/// A per-VPE capability table.
#[derive(Default, Debug)]
pub struct CapTable {
    caps: BTreeMap<SelId, Capability>,
}

impl CapTable {
    /// Creates an empty table.
    pub fn new() -> CapTable {
        CapTable::default()
    }

    /// Inserts a capability at `sel`.
    ///
    /// # Errors
    ///
    /// Returns [`Code::Exists`] if the selector is already in use.
    pub fn insert(&mut self, sel: SelId, cap: Capability) -> Result<()> {
        if self.caps.contains_key(&sel) {
            return Err(Error::new(Code::Exists).with_msg(format!("{sel} already in use")));
        }
        self.caps.insert(sel, cap);
        Ok(())
    }

    /// Looks up a capability.
    ///
    /// # Errors
    ///
    /// Returns [`Code::InvCap`] if the selector is empty.
    pub fn get(&self, sel: SelId) -> Result<&Capability> {
        self.caps
            .get(&sel)
            .ok_or_else(|| Error::new(Code::InvCap).with_msg(format!("{sel} is empty")))
    }

    /// Looks up a capability mutably.
    ///
    /// # Errors
    ///
    /// Returns [`Code::InvCap`] if the selector is empty.
    pub fn get_mut(&mut self, sel: SelId) -> Result<&mut Capability> {
        self.caps
            .get_mut(&sel)
            .ok_or_else(|| Error::new(Code::InvCap).with_msg(format!("{sel} is empty")))
    }

    /// Removes and returns the capability at `sel`, if present.
    pub fn remove(&mut self, sel: SelId) -> Option<Capability> {
        self.caps.remove(&sel)
    }

    /// All occupied selectors (for teardown).
    pub fn selectors(&self) -> Vec<SelId> {
        self.caps.keys().copied().collect()
    }

    /// Number of capabilities in the table.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }
}

/// A capability's global address: (VPE, selector).
pub type CapRef = (VpeId, SelId);

/// The delegation tree recording all delegate/obtain operations, "similar to
/// the mapping database found in some L4 microkernels" (§4.5.3).
#[derive(Default, Debug)]
pub struct DerivationTree {
    nodes: BTreeMap<CapRef, TreeNode>,
}

#[derive(Default, Debug)]
struct TreeNode {
    parent: Option<CapRef>,
    children: Vec<CapRef>,
}

impl DerivationTree {
    /// Creates an empty tree.
    pub fn new() -> DerivationTree {
        DerivationTree::default()
    }

    /// Records a freshly created (root) capability.
    pub fn insert_root(&mut self, cap: CapRef) {
        self.nodes.entry(cap).or_default();
    }

    /// Records that `child` was delegated/obtained from `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `child` is already in the tree (a selector can only be
    /// filled once) — the kernel checks table occupancy first.
    pub fn insert_child(&mut self, parent: CapRef, child: CapRef) {
        assert!(
            !self.nodes.contains_key(&child),
            "{child:?} already tracked"
        );
        self.nodes.entry(parent).or_default().children.push(child);
        self.nodes.insert(
            child,
            TreeNode {
                parent: Some(parent),
                children: Vec::new(),
            },
        );
    }

    /// Removes `cap` and its entire subtree, returning every removed
    /// reference (including `cap` itself), parents before children.
    pub fn revoke(&mut self, cap: CapRef) -> Vec<CapRef> {
        if !self.nodes.contains_key(&cap) {
            return Vec::new();
        }
        // Unlink from the parent.
        if let Some(parent) = self.nodes[&cap].parent {
            if let Some(p) = self.nodes.get_mut(&parent) {
                p.children.retain(|&c| c != cap);
            }
        }
        let mut removed = Vec::new();
        let mut stack = vec![cap];
        while let Some(cur) = stack.pop() {
            if let Some(node) = self.nodes.remove(&cur) {
                removed.push(cur);
                stack.extend(node.children);
            }
        }
        removed
    }

    /// Whether `cap` is tracked.
    pub fn contains(&self, cap: CapRef) -> bool {
        self.nodes.contains_key(&cap)
    }

    /// Number of tracked capabilities.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

impl fmt::Display for DerivationTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DerivationTree({} caps)", self.nodes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(vpe: u32, sel: u32) -> CapRef {
        (VpeId::new(vpe), SelId::new(sel))
    }

    fn mgate() -> Capability {
        Capability::new(KObject::MGate(Rc::new(MGateObj {
            pe: PeId::new(0),
            offset: 0,
            size: 4096,
            perm: Perm::RW,
            owned: false,
        })))
    }

    #[test]
    fn table_insert_get_remove() {
        let mut t = CapTable::new();
        t.insert(SelId::new(1), mgate()).unwrap();
        assert_eq!(t.get(SelId::new(1)).unwrap().obj.kind(), "mgate");
        assert_eq!(
            t.insert(SelId::new(1), mgate()).unwrap_err().code(),
            Code::Exists
        );
        assert!(t.remove(SelId::new(1)).is_some());
        assert_eq!(t.get(SelId::new(1)).unwrap_err().code(), Code::InvCap);
        assert!(t.is_empty());
    }

    #[test]
    fn revoke_removes_whole_subtree() {
        let mut tree = DerivationTree::new();
        // v0:1 -> v1:1 -> v2:1, and v0:1 -> v1:2
        tree.insert_root(r(0, 1));
        tree.insert_child(r(0, 1), r(1, 1));
        tree.insert_child(r(1, 1), r(2, 1));
        tree.insert_child(r(0, 1), r(1, 2));
        let removed = tree.revoke(r(0, 1));
        assert_eq!(removed.len(), 4);
        assert!(tree.is_empty());
    }

    #[test]
    fn revoke_of_inner_node_keeps_ancestors() {
        let mut tree = DerivationTree::new();
        tree.insert_root(r(0, 1));
        tree.insert_child(r(0, 1), r(1, 1));
        tree.insert_child(r(1, 1), r(2, 1));
        let removed = tree.revoke(r(1, 1));
        assert_eq!(removed.len(), 2);
        assert!(tree.contains(r(0, 1)));
        assert!(!tree.contains(r(1, 1)));
        assert!(!tree.contains(r(2, 1)));
        // Parent's child list was cleaned up: revoking the root removes 1.
        assert_eq!(tree.revoke(r(0, 1)).len(), 1);
    }

    #[test]
    fn revoke_unknown_is_noop() {
        let mut tree = DerivationTree::new();
        assert!(tree.revoke(r(9, 9)).is_empty());
    }

    #[test]
    fn parents_come_before_children() {
        let mut tree = DerivationTree::new();
        tree.insert_root(r(0, 1));
        tree.insert_child(r(0, 1), r(1, 1));
        tree.insert_child(r(1, 1), r(2, 1));
        let removed = tree.revoke(r(0, 1));
        let pos = |c: CapRef| removed.iter().position(|&x| x == c).unwrap();
        assert!(pos(r(0, 1)) < pos(r(1, 1)));
        assert!(pos(r(1, 1)) < pos(r(2, 1)));
    }

    #[test]
    fn rgate_max_payload() {
        let g = RGateObj::new(VpeId::new(0), 8, 512);
        assert_eq!(g.max_payload(), 512 - m3_base::cfg::MSG_HEADER_SIZE);
        assert!(g.activation.borrow().is_none());
    }

    #[test]
    #[should_panic(expected = "already tracked")]
    fn double_insert_child_panics() {
        let mut tree = DerivationTree::new();
        tree.insert_root(r(0, 1));
        tree.insert_child(r(0, 1), r(1, 1));
        tree.insert_child(r(0, 1), r(1, 1));
    }
}
