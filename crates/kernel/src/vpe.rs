//! Virtual processing elements (VPEs).
//!
//! A VPE is the kernel's abstraction for a PE: "applications consist of at
//! least one VPE, whereas each VPE is assigned to exactly one PE at any point
//! in time" (§4.3). Each VPE represents a single activity; parallelism means
//! creating more VPEs (§4.5.5).

use m3_base::{PeId, VpeId};
use m3_sim::Notify;

/// Lifecycle state of a VPE.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum VpeState {
    /// Created; the PE is reserved but the program has not started.
    Init,
    /// The program is running on the PE.
    Running,
    /// The program exited with the carried code; the PE has been released.
    Dead(i64),
}

/// A VPE kernel object.
#[derive(Debug)]
pub struct VpeObj {
    /// Kernel-wide VPE identifier (also the label of its syscall channel).
    pub id: VpeId,
    /// Human-readable name (diagnostics).
    pub name: String,
    /// The PE this VPE is bound to.
    pub pe: PeId,
    /// Current lifecycle state.
    pub state: VpeState,
    /// Notified when the VPE dies (used by `VpeWait`).
    pub exited: Notify,
}

impl VpeObj {
    /// Creates a VPE bound to `pe` in [`VpeState::Init`].
    pub fn new(id: VpeId, name: impl Into<String>, pe: PeId) -> VpeObj {
        VpeObj {
            id,
            name: name.into(),
            pe,
            state: VpeState::Init,
            exited: Notify::new(),
        }
    }

    /// The exit code, if the VPE has died.
    pub fn exit_code(&self) -> Option<i64> {
        match self.state {
            VpeState::Dead(code) => Some(code),
            _ => None,
        }
    }

    /// Whether the VPE is still alive (init or running).
    pub fn is_alive(&self) -> bool {
        !matches!(self.state, VpeState::Dead(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut vpe = VpeObj::new(VpeId::new(1), "test", PeId::new(2));
        assert_eq!(vpe.state, VpeState::Init);
        assert!(vpe.is_alive());
        assert_eq!(vpe.exit_code(), None);
        vpe.state = VpeState::Running;
        assert!(vpe.is_alive());
        vpe.state = VpeState::Dead(3);
        assert!(!vpe.is_alive());
        assert_eq!(vpe.exit_code(), Some(3));
    }
}
