//! libm3 — the application-side library of M3.
//!
//! "The library libm3 provides abstractions for communicating with the
//! kernel or OS services, accessing files, using the DTU etc." (§4.5.2).
//! Because the prototype's SPMs are small, libm3 provides *lightweight*
//! abstractions rather than a POSIX-compliant environment — a choice the
//! paper credits with part of M3's performance advantage.
//!
//! The pieces:
//!
//! - [`Env`] — a VPE's execution environment: selector allocation, typed
//!   system calls, the endpoint multiplexer,
//! - [`gate`] — send/receive/memory gates, the software side of DTU
//!   endpoints (§4.5.4),
//! - [`vpe::Vpe`] — creating VPEs, `run` (clone) and `exec` (§4.5.5),
//! - [`serv`]/[`session`] — the service/session machinery (§4.5.3),
//! - [`vfs`] — the virtual filesystem with POSIX-like `open`/`read`/
//!   `write`/`seek`/`close` (§4.5.8),
//! - [`pipe`] — unidirectional pipes over a DRAM ring buffer, synchronized
//!   by messages (§4.5.7).

pub mod addrspace;
pub mod costs;
mod env;
pub mod epmux;
pub mod gate;
pub mod pagecache;
pub mod pipe;
pub mod serv;
pub mod session;
pub mod vfs;
pub mod vpe;

pub use env::{start_program, Env, ProgramRegistry};
pub use gate::{MemGate, RecvGate, SendGate};
pub use pagecache::PageCache;
pub use session::ClientSession;
pub use vpe::Vpe;

/// A boxed, non-`Send` future, used where async trait objects are needed.
pub type BoxFuture<'a, T> = std::pin::Pin<Box<dyn std::future::Future<Output = T> + 'a>>;
