//! Client side of the service protocol (§4.5.3).

use std::fmt;

use m3_base::error::Result;
use m3_base::SelId;
use m3_kernel::protocol::Syscall;

use crate::env::Env;

/// A session with a named service, opened through the kernel.
pub struct ClientSession {
    env: Env,
    sel: SelId,
}

impl fmt::Debug for ClientSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClientSession({})", self.sel)
    }
}

impl ClientSession {
    /// Opens a session with service `name`, waiting briefly for the service
    /// to register if it has not yet (services and their clients boot in
    /// parallel on different PEs).
    ///
    /// # Errors
    ///
    /// Returns [`m3_base::error::Code::InvService`] if the service never
    /// appears, or the service's denial code.
    pub async fn connect(env: &Env, name: &str, arg: u64) -> Result<ClientSession> {
        // Services may spend a while initializing before they register
        // (m3fs writes its initial tree first); wait up to ~2.5M cycles.
        const RETRIES: u32 = 256;
        const BACKOFF: m3_base::Cycles = m3_base::Cycles::new(10_000);
        let sel = env.alloc_sel();
        let mut attempt = 0;
        loop {
            match env
                .syscall(Syscall::OpenSess {
                    dst: sel,
                    name: name.to_string(),
                    arg,
                })
                .await
            {
                Ok(_) => {
                    return Ok(ClientSession {
                        env: env.clone(),
                        sel,
                    })
                }
                Err(e) if e.code() == m3_base::error::Code::InvService && attempt < RETRIES => {
                    attempt += 1;
                    env.compute(BACKOFF).await;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The session capability selector.
    pub fn sel(&self) -> SelId {
        self.sel
    }

    /// Obtains up to `n` capabilities from the service; returns the local
    /// selectors that were filled and the service's reply bytes. The service
    /// may grant fewer than `n` capabilities.
    ///
    /// # Errors
    ///
    /// Returns the service's denial code, or transport errors.
    pub async fn obtain(&self, n: usize, args: &[u8]) -> Result<(Vec<SelId>, Vec<u8>)> {
        let caps: Vec<SelId> = (0..n).map(|_| self.env.alloc_sel()).collect();
        let reply = self
            .env
            .syscall(Syscall::ExchangeSess {
                sess: self.sel,
                obtain: true,
                caps: caps.clone(),
                args: args.to_vec(),
            })
            .await?;
        Ok((caps, reply))
    }

    /// Delegates the given capabilities to the service; returns the
    /// service's reply bytes.
    ///
    /// # Errors
    ///
    /// Returns the service's denial code, or transport errors.
    pub async fn delegate(&self, caps: &[SelId], args: &[u8]) -> Result<Vec<u8>> {
        self.env
            .syscall(Syscall::ExchangeSess {
                sess: self.sel,
                obtain: false,
                caps: caps.to_vec(),
                args: args.to_vec(),
            })
            .await
    }

    /// Revokes the session capability.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub async fn close(self) -> Result<()> {
        self.env.syscall(Syscall::Revoke { sel: self.sel }).await?;
        Ok(())
    }
}
