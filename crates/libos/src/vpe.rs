//! Creating and controlling VPEs (§4.5.5).
//!
//! `run` models the clone operation: libm3 "transfers the code, static data,
//! the used portion of the heap and the stack to the corresponding locations
//! of the memory denoted by the memory gate"; `exec` loads an executable
//! from the filesystem instead. Both then start the VPE and run the program
//! asynchronously; `wait` retrieves the exit code.

use std::cell::Cell;
use std::fmt;
use std::future::Future;

use m3_base::error::Result;
use m3_base::marshal::IStream;
use m3_base::{EpId, PeId, Perm, SelId, VpeId};
use m3_kernel::protocol::{PeRequest, Syscall};
use m3_kernel::VpeBootInfo;

use crate::costs;
use crate::env::Env;
use crate::gate::MemGate;
use crate::vfs::{self, OpenFlags};

/// A handle to a VPE created by this VPE.
pub struct Vpe {
    env: Env,
    sel: SelId,
    mem: MemGate,
    id: VpeId,
    pe: PeId,
    name: String,
    /// Child-side selectors the parent assigns (1..16 are reserved).
    next_child_sel: Cell<u32>,
}

impl fmt::Debug for Vpe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vpe({} \"{}\" on {})", self.id, self.name, self.pe)
    }
}

impl Vpe {
    /// Creates a VPE on a free PE of the requested type.
    ///
    /// # Errors
    ///
    /// Returns [`m3_base::error::Code::NoFreePe`] if no matching PE is free.
    pub async fn new(env: &Env, name: &str, pe: PeRequest) -> Result<Vpe> {
        env.compute(costs::VPE_SETUP).await;
        let sel = env.alloc_sel();
        let mem_sel = env.alloc_sel();
        let data = env
            .syscall(Syscall::CreateVpe {
                dst: sel,
                mem_dst: mem_sel,
                pe,
                name: name.to_string(),
            })
            .await?;
        let mut is = IStream::new(&data);
        let id = VpeId::new(is.pop_u32()?);
        let pe = PeId::new(is.pop_u32()?);
        Ok(Vpe {
            env: env.clone(),
            sel,
            mem: MemGate::bind(env, mem_sel),
            id,
            pe,
            name: name.to_string(),
            next_child_sel: Cell::new(1),
        })
    }

    /// The VPE capability selector.
    pub fn sel(&self) -> SelId {
        self.sel
    }

    /// The kernel-wide VPE id.
    pub fn id(&self) -> VpeId {
        self.id
    }

    /// The PE the VPE is bound to.
    pub fn pe(&self) -> PeId {
        self.pe
    }

    /// The memory gate covering the VPE's local memory (for loading).
    pub fn mem(&self) -> &MemGate {
        &self.mem
    }

    /// Reserves the next child-side selector (1..16).
    ///
    /// # Panics
    ///
    /// Panics if the reserved range is exhausted.
    pub fn alloc_child_sel(&self) -> SelId {
        let raw = self.next_child_sel.get();
        assert!(
            raw < crate::env::FIRST_USER_SEL,
            "out of parent-assigned selectors"
        );
        self.next_child_sel.set(raw + 1);
        SelId::new(raw)
    }

    /// Delegates the caller's capability `own` to the child; returns the
    /// child-side selector (§4.5.3, first exchange option).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (e.g. receive gates are not delegable).
    pub async fn delegate(&self, own: SelId) -> Result<SelId> {
        let child_sel = self.alloc_child_sel();
        self.env
            .syscall(Syscall::Exchange {
                vpe: self.sel,
                own,
                other: child_sel,
                obtain: false,
            })
            .await?;
        Ok(child_sel)
    }

    /// Obtains the child's capability `other` into the caller's space.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors ([`m3_base::error::Code::InvCap`] if the child has not
    /// created the capability yet).
    pub async fn obtain(&self, other: SelId) -> Result<SelId> {
        let own = self.env.alloc_sel();
        self.env
            .syscall(Syscall::Exchange {
                vpe: self.sel,
                own,
                other,
                obtain: true,
            })
            .await?;
        Ok(own)
    }

    /// Configures endpoint `ep` *of the child* from the caller's gate
    /// capability — used to hand a child communication channels before it
    /// starts.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub async fn activate_on(&self, gate: SelId, ep: EpId) -> Result<()> {
        self.env
            .syscall(Syscall::Activate {
                vpe: self.sel,
                ep,
                gate,
            })
            .await?;
        Ok(())
    }

    /// Clones onto the VPE, like `fork` (§4.5.5): copies the caller's image
    /// to the child's local memory, starts the VPE, and runs `f` there.
    ///
    /// # Errors
    ///
    /// Propagates transfer and kernel errors.
    pub async fn run<F, Fut>(&self, f: F) -> Result<()>
    where
        F: FnOnce(Env) -> Fut + 'static,
        Fut: Future<Output = i64> + 'static,
    {
        self.env.compute(costs::VPE_SETUP).await;
        // Code, static data, used heap and stack are copied to the same
        // addresses on the other PE (no virtual memory needed, §4.5.5).
        let image = vec![0u8; costs::CLONE_IMAGE_BYTES];
        self.mem.write(0, &image).await?;
        self.start_program(move |env, _argv| f(env), Vec::new())
            .await
    }

    /// Loads `path` from the filesystem onto the VPE and runs it, like
    /// `exec` (§4.5.5). Works for heterogeneous PEs: only the executable
    /// must match the target.
    ///
    /// # Errors
    ///
    /// Returns [`m3_base::error::Code::NoSuchFile`] if the path is not a registered
    /// program or cannot be read.
    pub async fn exec(&self, path: &str, argv: Vec<String>) -> Result<()> {
        self.env.compute(costs::VPE_SETUP).await;
        let program = self.env.programs().find(path)?;
        // Read the executable through the VFS and copy it to the child's
        // memory, charging the real transfers.
        let mut file = vfs::open(&self.env, path, OpenFlags::R).await?;
        let mut offset = 0u64;
        let mut buf = vec![0u8; 8192];
        loop {
            let n = file.read(&mut buf).await?;
            if n == 0 {
                break;
            }
            self.mem.write(offset, &buf[..n]).await?;
            offset += n as u64;
        }
        file.close().await?;
        self.start_program(move |env, argv| program(env, argv), argv)
            .await
    }

    async fn start_program<F, Fut>(&self, f: F, argv: Vec<String>) -> Result<()>
    where
        F: FnOnce(Env, Vec<String>) -> Fut + 'static,
        Fut: Future<Output = i64> + 'static,
    {
        self.env
            .syscall(Syscall::VpeStart { vpe: self.sel })
            .await?;
        let child_env = Env::new(
            self.env.kernel(),
            &VpeBootInfo {
                vpe: self.id,
                pe: self.pe,
            },
            self.env.programs().clone(),
        );
        let name = self.name.clone();
        self.env.sim().spawn(name, async move {
            // A time-multiplexed child may start queued behind the PE's
            // resident: wait for its first slice before running (a no-op
            // for exclusively-owned PEs).
            if child_env
                .kernel()
                .sched_acquire(child_env.vpe_id())
                .await
                .is_err()
            {
                return -1;
            }
            let code = f(child_env.clone(), argv).await;
            child_env.exit(code).await;
            code
        });
        Ok(())
    }

    /// Waits until the VPE exits and returns its exit code (§4.5.5).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub async fn wait(&self) -> Result<i64> {
        let data = self.env.syscall(Syscall::VpeWait { vpe: self.sel }).await?;
        let mut is = IStream::new(&data);
        is.pop_i64()
    }

    /// Revokes the VPE capability; the kernel resets the PE, "making it
    /// available again for others" (§4.5.5).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub async fn revoke(self) -> Result<()> {
        self.env.syscall(Syscall::Revoke { sel: self.sel }).await?;
        Ok(())
    }
}

/// Allocates a DRAM-backed scratch memory and delegates it to the child,
/// returning (parent gate, child selector) — a common setup step.
///
/// # Errors
///
/// Propagates allocation and delegation errors.
pub async fn alloc_shared_mem(
    env: &Env,
    child: &Vpe,
    size: u64,
    perm: Perm,
) -> Result<(MemGate, SelId)> {
    let mem = MemGate::alloc(env, size, perm).await?;
    let child_sel = child.delegate(mem.sel()).await?;
    Ok((mem, child_sel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{start_program, ProgramRegistry};
    use m3_base::error::Code;
    use m3_kernel::Kernel;
    use m3_platform::{Platform, PlatformConfig};

    fn boot(pes: usize) -> (Platform, Kernel) {
        let platform = Platform::new(PlatformConfig::xtensa(pes));
        let kernel = Kernel::start(&platform, PeId::new(0));
        (platform, kernel)
    }

    #[test]
    fn run_lambda_on_another_pe_and_wait() {
        let (platform, kernel) = boot(4);
        let h = start_program(
            &kernel,
            "parent",
            None,
            ProgramRegistry::new(),
            |env| async move {
                // The paper's §4.5.5 example: run a lambda on a same-type PE.
                let a = 4i64;
                let b = 5i64;
                let vpe = Vpe::new(&env, "test", PeRequest::Same).await.unwrap();
                vpe.run(move |_child_env| async move { a + b })
                    .await
                    .unwrap();
                vpe.wait().await.unwrap()
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 9);
    }

    #[test]
    fn child_runs_on_a_different_pe() {
        let (platform, kernel) = boot(4);
        let h = start_program(
            &kernel,
            "parent",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let vpe = Vpe::new(&env, "child", PeRequest::Same).await.unwrap();
                let parent_pe = env.pe();
                let child_pe = vpe.pe();
                assert_ne!(parent_pe, child_pe);
                vpe.run(|child_env| async move { child_env.pe().raw() as i64 })
                    .await
                    .unwrap();
                let reported = vpe.wait().await.unwrap();
                assert_eq!(reported, child_pe.raw() as i64);
                0
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    fn delegate_memory_to_child() {
        let (platform, kernel) = boot(4);
        let h = start_program(
            &kernel,
            "parent",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let vpe = Vpe::new(&env, "child", PeRequest::Same).await.unwrap();
                let (mem, child_sel) = alloc_shared_mem(&env, &vpe, 4096, Perm::RW).await.unwrap();
                mem.write(0, b"from-parent").await.unwrap();
                vpe.run(move |child_env| async move {
                    let mem = MemGate::bind(&child_env, child_sel);
                    let data = mem.read(0, 11).await.unwrap();
                    assert_eq!(&data, b"from-parent");
                    mem.write(100, b"from-child").await.unwrap();
                    0
                })
                .await
                .unwrap();
                vpe.wait().await.unwrap();
                let back = mem.read(100, 10).await.unwrap();
                assert_eq!(&back, b"from-child");
                0
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    fn no_free_pe_is_reported() {
        let (platform, kernel) = boot(2); // kernel + parent = all PEs
        let h = start_program(
            &kernel,
            "parent",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let err = Vpe::new(&env, "child", PeRequest::Same).await.unwrap_err();
                assert_eq!(err.code(), Code::NoFreePe);
                0
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    fn exit_code_propagates_through_wait() {
        let (platform, kernel) = boot(4);
        let h = start_program(
            &kernel,
            "parent",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let vpe = Vpe::new(&env, "failing", PeRequest::Same).await.unwrap();
                vpe.run(|_env| async { -17 }).await.unwrap();
                vpe.wait().await.unwrap()
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), -17);
    }
}
