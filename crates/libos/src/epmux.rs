//! The endpoint multiplexer.
//!
//! "Since the DTU provides only a limited number of endpoints (8 in our
//! prototype platform) and applications might need more send gates or memory
//! gates than endpoints are available, multiplexing is used to share the
//! endpoints among these gates. This is done by libm3, which checks before
//! the usage of a gate whether the endpoint is appropriately configured. If
//! not, the corresponding system call is performed." (§4.5.4)
//!
//! Receive gates are pinned: they cannot be moved while senders exist.

use std::cell::Cell;
use std::rc::Rc;

use m3_base::cfg::EP_COUNT;
use m3_base::EpId;
use m3_kernel::protocol::std_eps;

/// The shared handle a gate uses to learn which EP it currently occupies
/// (cleared by the multiplexer when the gate is evicted).
pub type EpCell = Rc<Cell<Option<EpId>>>;

#[derive(Clone, Debug, Default)]
struct Slot {
    /// The evictable gate currently occupying the slot.
    occupant: Option<EpCell>,
    /// Pinned slots (receive gates, parent-assigned EPs) are never victims.
    pinned: bool,
    /// LRU stamp.
    last_use: u64,
}

/// Multiplexes gates onto the free endpoints (EP 2..8).
#[derive(Debug)]
pub struct EpMux {
    slots: Vec<Slot>,
    clock: u64,
}

impl Default for EpMux {
    fn default() -> Self {
        Self::new()
    }
}

impl EpMux {
    /// Creates a multiplexer with all non-syscall EPs free.
    pub fn new() -> EpMux {
        EpMux {
            slots: vec![Slot::default(); EP_COUNT - std_eps::FIRST_FREE as usize],
            clock: 0,
        }
    }

    fn ep_of(idx: usize) -> EpId {
        EpId::new(idx as u32 + std_eps::FIRST_FREE)
    }

    fn idx_of(ep: EpId) -> usize {
        (ep.raw() - std_eps::FIRST_FREE) as usize
    }

    /// Permanently reserves a free endpoint (for a receive gate). Returns
    /// `None` if every slot is pinned.
    pub fn reserve(&mut self) -> Option<EpId> {
        // Prefer a completely free slot; otherwise evict an occupant.
        let idx = self
            .slots
            .iter()
            .position(|s| !s.pinned && s.occupant.is_none())
            .or_else(|| self.victim_idx())?;
        if let Some(cell) = self.slots[idx].occupant.take() {
            cell.set(None);
        }
        self.slots[idx].pinned = true;
        Some(Self::ep_of(idx))
    }

    /// Marks an endpoint as pinned because someone else (the parent VPE)
    /// configured it before this program started.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint is a syscall EP or out of range.
    pub fn pin_existing(&mut self, ep: EpId) {
        assert!(
            ep.raw() >= std_eps::FIRST_FREE && ep.idx() < EP_COUNT,
            "{ep} is not a multiplexable endpoint"
        );
        let idx = Self::idx_of(ep);
        if let Some(cell) = self.slots[idx].occupant.take() {
            cell.set(None);
        }
        self.slots[idx].pinned = true;
    }

    fn victim_idx(&self) -> Option<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.pinned)
            .min_by_key(|(_, s)| s.last_use)
            .map(|(i, _)| i)
    }

    /// Finds an endpoint for a gate that currently has none. Returns the
    /// endpoint; any evicted gate's [`EpCell`] has been cleared, so the
    /// victim re-activates on next use.
    ///
    /// Returns `None` if every slot is pinned (the caller then fails with
    /// an out-of-endpoints error).
    pub fn acquire(&mut self, cell: &EpCell) -> Option<EpId> {
        self.clock += 1;
        let idx = self
            .slots
            .iter()
            .position(|s| !s.pinned && s.occupant.is_none())
            .or_else(|| self.victim_idx())?;
        if let Some(old) = self.slots[idx].occupant.take() {
            old.set(None);
        }
        self.slots[idx].occupant = Some(cell.clone());
        self.slots[idx].last_use = self.clock;
        let ep = Self::ep_of(idx);
        cell.set(Some(ep));
        Some(ep)
    }

    /// Refreshes the LRU stamp of an endpoint a gate just used.
    pub fn touch(&mut self, ep: EpId) {
        self.clock += 1;
        let idx = Self::idx_of(ep);
        self.slots[idx].last_use = self.clock;
    }

    /// Releases a slot (gate dropped or receive gate torn down).
    pub fn release(&mut self, ep: EpId) {
        let idx = Self::idx_of(ep);
        if let Some(cell) = self.slots[idx].occupant.take() {
            cell.set(None);
        }
        self.slots[idx].pinned = false;
        self.slots[idx].last_use = 0;
    }

    /// Number of slots with no occupant and no pin.
    pub fn free_slots(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !s.pinned && s.occupant.is_none())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> EpCell {
        Rc::new(Cell::new(None))
    }

    #[test]
    fn acquire_until_full_then_evict_lru() {
        let mut mux = EpMux::new();
        let cells: Vec<EpCell> = (0..6).map(|_| cell()).collect();
        let mut eps = Vec::new();
        for c in &cells {
            eps.push(mux.acquire(c).unwrap());
        }
        assert_eq!(mux.free_slots(), 0);
        // Touch all but the first, making cells[0] the LRU.
        for ep in &eps[1..] {
            mux.touch(*ep);
        }
        let newcomer = cell();
        let ep = mux.acquire(&newcomer).unwrap();
        assert_eq!(ep, eps[0], "LRU slot reused");
        assert_eq!(cells[0].get(), None, "victim's cell cleared");
        assert_eq!(newcomer.get(), Some(ep));
    }

    #[test]
    fn reserve_pins_and_survives_pressure() {
        let mut mux = EpMux::new();
        let pinned = mux.reserve().unwrap();
        // Fill the rest and keep allocating: the pinned slot never moves.
        for _ in 0..20 {
            let c = cell();
            let ep = mux.acquire(&c).unwrap();
            assert_ne!(ep, pinned);
        }
    }

    #[test]
    fn all_pinned_means_no_endpoint() {
        let mut mux = EpMux::new();
        for _ in 0..6 {
            mux.reserve().unwrap();
        }
        assert!(mux.reserve().is_none());
        assert!(mux.acquire(&cell()).is_none());
    }

    #[test]
    fn pin_existing_evicts_occupant() {
        let mut mux = EpMux::new();
        let c = cell();
        let ep = mux.acquire(&c).unwrap();
        mux.pin_existing(ep);
        assert_eq!(c.get(), None);
        // The pinned slot is not handed out again.
        for _ in 0..10 {
            assert_ne!(mux.acquire(&cell()).unwrap(), ep);
        }
    }

    #[test]
    fn release_frees_slot() {
        let mut mux = EpMux::new();
        let ep = mux.reserve().unwrap();
        mux.release(ep);
        assert_eq!(mux.free_slots(), 6);
    }

    #[test]
    #[should_panic(expected = "not a multiplexable")]
    fn pinning_syscall_ep_panics() {
        EpMux::new().pin_existing(EpId::new(0));
    }
}
