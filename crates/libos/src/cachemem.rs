//! Cached access to PE-external memory (paper §7, future work).
//!
//! "We plan to add caches to the PEs or replace the SPM with caches. The
//! cache will use the DTU to load/store cache lines from/into DRAM. In this
//! way, the DTU remains the only component with access to PE-external
//! resources and it thus suffices to control the DTU."
//!
//! [`CachedMem`] prototypes exactly that: a write-back, write-allocate cache
//! in front of a [`MemGate`]. Loads and stores hit the local line store;
//! misses fetch whole lines through the DTU (paying the real transfer), and
//! evictions write dirty lines back. Because every fill and write-back goes
//! through the memory gate, revoking the capability still cuts off the PE —
//! the isolation story is unchanged.

use std::collections::BTreeMap;

use m3_base::error::Result;
use m3_platform::Cache;

use crate::gate::MemGate;

/// Cache line size used by the prototype (one DRAM burst).
pub const LINE_SIZE: usize = 64;

struct Line {
    data: [u8; LINE_SIZE],
    dirty: bool,
}

/// A write-back cache over a region of PE-external memory.
///
/// Sequential or re-used access patterns hit locally; the DTU is only
/// involved on misses and write-backs — turning many small accesses into
/// few line-sized transfers, which is what makes caches attractive for
/// feature-rich PEs (§7).
pub struct CachedMem {
    mem: MemGate,
    tags: Cache,
    lines: BTreeMap<u64, Line>,
    fills: u64,
    writebacks: u64,
}

impl std::fmt::Debug for CachedMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedMem")
            .field("resident_lines", &self.lines.len())
            .field("fills", &self.fills)
            .field("writebacks", &self.writebacks)
            .finish()
    }
}

impl CachedMem {
    /// Wraps `mem` with a cache of `capacity` bytes, `ways`-way associative.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent cache geometry.
    pub fn new(mem: MemGate, capacity: usize, ways: usize) -> CachedMem {
        CachedMem {
            mem,
            tags: Cache::new(capacity, LINE_SIZE, ways),
            lines: BTreeMap::new(),
            fills: 0,
            writebacks: 0,
        }
    }

    /// Lines fetched from memory so far.
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// Dirty lines written back so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    async fn ensure_line(&mut self, line_no: u64) -> Result<()> {
        if self.lines.contains_key(&line_no) {
            // Refresh LRU state.
            self.tags.access(line_no * LINE_SIZE as u64);
            return Ok(());
        }
        // Install the tag; whatever the tag array evicted must leave the
        // line store too (writing back if dirty).
        self.tags.access(line_no * LINE_SIZE as u64);
        let resident: Vec<u64> = self.lines.keys().copied().collect();
        for old in resident {
            if !self.tags.contains(old * LINE_SIZE as u64) {
                if let Some(line) = self.lines.remove(&old) {
                    if line.dirty {
                        self.mem.write(old * LINE_SIZE as u64, &line.data).await?;
                        self.writebacks += 1;
                    }
                }
            }
        }
        let bytes = self.mem.read(line_no * LINE_SIZE as u64, LINE_SIZE).await?;
        let mut data = [0u8; LINE_SIZE];
        data.copy_from_slice(&bytes);
        self.lines.insert(line_no, Line { data, dirty: false });
        self.fills += 1;
        Ok(())
    }

    /// Reads `buf.len()` bytes at `offset` through the cache.
    ///
    /// # Errors
    ///
    /// Propagates DTU errors (permissions, bounds, revoked capability).
    pub async fn read(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let mut pos = 0usize;
        while pos < buf.len() {
            let addr = offset + pos as u64;
            let line_no = addr / LINE_SIZE as u64;
            let line_off = (addr % LINE_SIZE as u64) as usize;
            self.ensure_line(line_no).await?;
            let line = &self.lines[&line_no];
            let n = (LINE_SIZE - line_off).min(buf.len() - pos);
            buf[pos..pos + n].copy_from_slice(&line.data[line_off..line_off + n]);
            pos += n;
        }
        Ok(())
    }

    /// Writes `data` at `offset` through the cache (write-back,
    /// write-allocate).
    ///
    /// # Errors
    ///
    /// Propagates DTU errors.
    pub async fn write(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        let mut pos = 0usize;
        while pos < data.len() {
            let addr = offset + pos as u64;
            let line_no = addr / LINE_SIZE as u64;
            let line_off = (addr % LINE_SIZE as u64) as usize;
            self.ensure_line(line_no).await?;
            let line = self.lines.get_mut(&line_no).expect("just ensured");
            let n = (LINE_SIZE - line_off).min(data.len() - pos);
            line.data[line_off..line_off + n].copy_from_slice(&data[pos..pos + n]);
            line.dirty = true;
            pos += n;
        }
        Ok(())
    }

    /// Writes every dirty line back (like a cache flush before handing the
    /// region to someone else).
    ///
    /// # Errors
    ///
    /// Propagates DTU errors.
    pub async fn flush(&mut self) -> Result<()> {
        let mut dirty: Vec<u64> = self
            .lines
            .iter()
            .filter(|(_, l)| l.dirty)
            .map(|(&n, _)| n)
            .collect();
        dirty.sort_unstable();
        for line_no in dirty {
            let line = self.lines.get_mut(&line_no).expect("listed above");
            self.mem
                .write(line_no * LINE_SIZE as u64, &line.data)
                .await?;
            line.dirty = false;
            self.writebacks += 1;
        }
        Ok(())
    }

    /// Gives the underlying gate back (flush first!).
    pub fn into_inner(self) -> MemGate {
        self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{start_program, ProgramRegistry};
    use m3_base::{PeId, Perm};
    use m3_kernel::Kernel;
    use m3_platform::{Platform, PlatformConfig};

    fn boot() -> (Platform, Kernel) {
        let platform = Platform::new(PlatformConfig::xtensa(3));
        let kernel = Kernel::start(&platform, PeId::new(0));
        (platform, kernel)
    }

    #[test]
    fn reads_and_writes_roundtrip_through_the_cache() {
        let (platform, kernel) = boot();
        let h = start_program(
            &kernel,
            "t",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let mem = crate::gate::MemGate::alloc(&env, 8192, Perm::RW)
                    .await
                    .unwrap();
                let mut cached = CachedMem::new(mem, 1024, 4);
                cached.write(100, b"cached hello").await.unwrap();
                let mut buf = [0u8; 12];
                cached.read(100, &mut buf).await.unwrap();
                assert_eq!(&buf, b"cached hello");
                // The data is only in the cache until flushed.
                cached.flush().await.unwrap();
                let mem = cached.into_inner();
                assert_eq!(mem.read(100, 12).await.unwrap(), b"cached hello");
                0
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    fn hits_avoid_the_dtu() {
        let (platform, kernel) = boot();
        let h = start_program(
            &kernel,
            "t",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let mem = crate::gate::MemGate::alloc(&env, 8192, Perm::RW)
                    .await
                    .unwrap();
                let mut cached = CachedMem::new(mem, 2048, 4);
                // 64 single-byte reads of the same line: one fill.
                let mut b = [0u8; 1];
                for i in 0..64 {
                    cached.read(i, &mut b).await.unwrap();
                }
                assert_eq!(cached.fills(), 1);
                // Timing: the warm accesses must be far cheaper than cold ones.
                let t0 = env.sim().now();
                for i in 0..64 {
                    cached.read(i, &mut b).await.unwrap();
                }
                let warm = (env.sim().now() - t0).as_u64();
                let t1 = env.sim().now();
                cached.read(4096, &mut b).await.unwrap(); // cold line
                let cold = (env.sim().now() - t1).as_u64();
                assert!(warm == 0, "warm hits must not touch the DTU: {warm}");
                assert!(cold > 20, "a miss pays a real transfer: {cold}");
                0
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    fn eviction_writes_dirty_lines_back() {
        let (platform, kernel) = boot();
        let h = start_program(
            &kernel,
            "t",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let mem = crate::gate::MemGate::alloc(&env, 1 << 16, Perm::RW)
                    .await
                    .unwrap();
                // A tiny cache: 4 lines, direct-ish (2-way).
                let mut cached = CachedMem::new(mem, 4 * LINE_SIZE, 2);
                // Dirty many distinct lines so evictions must write back.
                for i in 0..16u64 {
                    cached
                        .write(i * LINE_SIZE as u64, &[i as u8])
                        .await
                        .unwrap();
                }
                assert!(cached.writebacks() > 0, "evictions must write back");
                cached.flush().await.unwrap();
                let mem = cached.into_inner();
                for i in 0..16u64 {
                    let v = mem.read(i * LINE_SIZE as u64, 1).await.unwrap();
                    assert_eq!(v[0], i as u8, "line {i} lost");
                }
                0
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    fn revoked_capability_cuts_off_the_cache_too() {
        let (platform, kernel) = boot();
        let h = start_program(
            &kernel,
            "t",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let mem = crate::gate::MemGate::alloc(&env, 8192, Perm::RW)
                    .await
                    .unwrap();
                let sel = mem.sel();
                let mut cached = CachedMem::new(mem, 1024, 4);
                cached.write(0, b"x").await.unwrap();
                env.syscall(m3_kernel::protocol::Syscall::Revoke { sel })
                    .await
                    .unwrap();
                // The resident line still reads (it is local), but any miss or
                // write-back fails: the DTU is the only path to memory.
                let mut b = [0u8; 1];
                cached.read(0, &mut b).await.unwrap();
                let err = cached.read(4096, &mut b).await.unwrap_err();
                assert!(matches!(
                    err.code(),
                    m3_base::error::Code::InvEp | m3_base::error::Code::InvCap
                ));
                0
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }
}
