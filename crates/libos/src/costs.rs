//! libm3-side cycle charges.
//!
//! Calibration (paper §5.3/§5.4): a null syscall totals ≈ 200 cycles, of
//! which ≈ 170 are software; `read` needs ≈ 70 cycles "to get to the read
//! function" and ≈ 90 cycles "to determine the location for reading".

use m3_base::Cycles;

/// Marshal the syscall message and program the DTU registers (libos share
/// of the ≈170 software cycles of a null syscall, §5.3).
pub const SYSC_PREP: Cycles = Cycles::new(45);

/// Unmarshal the syscall reply (libos share of the §5.3 software cycles).
pub const SYSC_POST: Cycles = Cycles::new(45);

/// Reach the `read`/`write` entry point through the VFS (§5.4: ~70 cycles).
pub const FILE_OP_ENTRY: Cycles = Cycles::new(70);

/// Determine the read/write location within the obtained extents (§5.4:
/// ~90 cycles).
pub const FILE_LOCATE: Cycles = Cycles::new(90);

/// Per-operation overhead of the pipe abstraction (ring-buffer bookkeeping
/// and message marshalling; §5.4.4 pipe evaluation).
pub const PIPE_OP: Cycles = Cycles::new(60);

/// Marshal/unmarshal one service RPC on the client side (client/server
/// communication via send/receive gates, §4.4).
pub const RPC_PREP: Cycles = Cycles::new(40);

/// Service-side cost to unmarshal a request and marshal a reply (§4.4
/// server loop).
pub const SERV_DISPATCH: Cycles = Cycles::new(50);

/// Bytes copied to the target SPM by `VPE::run` (code, static data, used
/// heap and stack, §4.5.5).
pub const CLONE_IMAGE_BYTES: usize = 24 * 1024;

/// Local bookkeeping of `VPE::run`/`exec` besides the image transfer
/// (§4.5.5 application loading).
pub const VPE_SETUP: Cycles = Cycles::new(150);

/// Re-marshal and re-issue an RPC after a timeout: the same software path
/// as the initial send (§5.3 marshalling share), charged once per retry.
pub const RETRY_PREP: Cycles = Cycles::new(45);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syscall_software_share_matches_paper() {
        // libos + kernel software share should land near the ~170 cycles of
        // §5.3 (kernel side adds DISPATCH + REPLY = 60).
        let libos = SYSC_PREP + SYSC_POST;
        assert!(libos.as_u64() >= 80 && libos.as_u64() <= 120);
    }

    #[test]
    fn file_costs_match_paper() {
        assert_eq!(FILE_OP_ENTRY, Cycles::new(70));
        assert_eq!(FILE_LOCATE, Cycles::new(90));
    }
}
