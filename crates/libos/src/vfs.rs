//! The virtual filesystem (§4.5.8).
//!
//! "To support multiple filesystems, libm3 offers a virtual filesystem
//! (VFS) that allows to mount filesystems at specific paths." The POSIX-like
//! abstractions (`open`, `read`, `write`, `seek`, `close`) relieve
//! applications from obtaining memory capabilities and tracking extents
//! themselves.

use std::fmt;
use std::rc::Rc;

use m3_base::error::{Code, Error, Result};

use crate::env::Env;
use crate::gate::MemGate;
use crate::pagecache::PageCache;
use crate::BoxFuture;

/// Open flags.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct OpenFlags(u32);

impl OpenFlags {
    /// Open for reading.
    pub const R: OpenFlags = OpenFlags(0b0001);
    /// Open for writing.
    pub const W: OpenFlags = OpenFlags(0b0010);
    /// Open for reading and writing.
    pub const RW: OpenFlags = OpenFlags(0b0011);
    /// Create the file if it does not exist (implies writing).
    pub const CREATE: OpenFlags = OpenFlags(0b0110);
    /// Truncate to zero length on open (implies writing).
    pub const TRUNC: OpenFlags = OpenFlags(0b1010);

    /// Union of two flag sets.
    pub fn or(self, other: OpenFlags) -> OpenFlags {
        OpenFlags(self.0 | other.0)
    }

    /// Whether reads are permitted.
    pub fn readable(self) -> bool {
        self.0 & 0b0001 != 0
    }

    /// Whether writes are permitted.
    pub fn writable(self) -> bool {
        self.0 & 0b0010 != 0
    }

    /// Whether the file should be created if missing.
    pub fn create(self) -> bool {
        self.0 & 0b0100 != 0
    }

    /// Whether the file should be truncated on open.
    pub fn trunc(self) -> bool {
        self.0 & 0b1000 != 0
    }
}

/// Metadata of a file or directory.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct FileInfo {
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// Whether this is a directory.
    pub is_dir: bool,
    /// Number of extents the file consists of (fragmentation, §5.5).
    pub extents: u32,
    /// Link count.
    pub links: u32,
}

/// One directory entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (no path components).
    pub name: String,
    /// Whether the entry is a directory.
    pub is_dir: bool,
}

/// Origin of a seek.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SeekMode {
    /// From the start of the file.
    Set,
    /// From the current position.
    Cur,
    /// From the end of the file.
    End,
}

/// A contiguous extent of a mapped file: `len` bytes of file content
/// starting at file offset `file_off`, backed directly by a memory
/// capability — the M3 way of mmap: instead of copying file data through
/// `read`, the application obtains the extents' memory capabilities once
/// and accesses the bytes through the DTU (§4.5.8).
#[derive(Debug)]
pub struct MapExtent {
    /// File offset the extent starts at.
    pub file_off: u64,
    /// Extent length in bytes.
    pub len: u64,
    /// The extent's memory capability.
    pub mem: MemGate,
}

/// An open file (or pipe end, through the pipe filesystem).
pub trait File {
    /// Reads into `buf`; returns the number of bytes read (0 at EOF).
    fn read<'a>(&'a mut self, buf: &'a mut [u8]) -> BoxFuture<'a, Result<usize>>;

    /// Writes `data`; returns the number of bytes written.
    fn write<'a>(&'a mut self, data: &'a [u8]) -> BoxFuture<'a, Result<usize>>;

    /// Moves the file position; returns the new absolute position.
    fn seek<'a>(&'a mut self, offset: i64, whence: SeekMode) -> BoxFuture<'a, Result<u64>>;

    /// Flushes and closes the file.
    fn close<'a>(&'a mut self) -> BoxFuture<'a, Result<()>>;

    /// Maps the whole file: returns its extents as memory capabilities for
    /// direct DTU access (the mmap-style path; see [`MappedFile`]).
    /// Supported by filesystems whose files live in capability-addressable
    /// memory (m3fs regular files); pipes and friends return
    /// [`Code::NotSup`].
    fn map<'a>(&'a mut self) -> BoxFuture<'a, Result<Vec<MapExtent>>> {
        Box::pin(async { Err(Error::new(Code::NotSup).with_msg("file is not mappable")) })
    }
}

/// A file mapped for demand-paged reads: each extent's memory capability
/// sits behind a [`PageCache`], so bytes are faulted in page-wise through
/// the DTU on first access and re-reads stay local (§7: DTU-fed caches).
pub struct MappedFile {
    /// `(file_off, len, cache)` per extent, sorted by file offset.
    extents: Vec<(u64, u64, PageCache)>,
    size: u64,
}

impl fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MappedFile({} extents, {} bytes)",
            self.extents.len(),
            self.size
        )
    }
}

impl MappedFile {
    /// Maps `file` with a page cache of `cache_pages` pages per extent.
    ///
    /// # Errors
    ///
    /// Propagates [`File::map`] errors ([`Code::NotSup`] for unmappable
    /// files).
    pub async fn map(file: &mut dyn File, cache_pages: usize) -> Result<MappedFile> {
        let mut extents: Vec<(u64, u64, PageCache)> = file
            .map()
            .await?
            .into_iter()
            .map(|e| {
                let cache = PageCache::new(e.mem, cache_pages).bounded(e.len);
                (e.file_off, e.len, cache)
            })
            .collect();
        extents.sort_by_key(|&(off, _, _)| off);
        let size = extents.last().map_or(0, |&(off, len, _)| off + len);
        Ok(MappedFile { extents, size })
    }

    /// The mapped file's size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Pages faulted in so far, across all extents.
    pub fn fills(&self) -> u64 {
        self.extents.iter().map(|(_, _, c)| c.fills()).sum()
    }

    /// Reads up to `buf.len()` bytes at file offset `off` through the page
    /// caches; returns the number of bytes read (0 at EOF). Position-based
    /// like `pread` — a mapping has no cursor.
    ///
    /// # Errors
    ///
    /// Propagates DTU errors (e.g. a revoked extent capability).
    pub async fn read(&mut self, off: u64, buf: &mut [u8]) -> Result<usize> {
        let mut pos = 0usize;
        while pos < buf.len() {
            let addr = off + pos as u64;
            let Some(ext) = self
                .extents
                .iter_mut()
                .find(|&&mut (eoff, elen, _)| addr >= eoff && addr < eoff + elen)
            else {
                break; // EOF or hole
            };
            let (eoff, elen, cache) = ext;
            let rel = addr - *eoff;
            let n = ((*elen - rel) as usize).min(buf.len() - pos);
            cache.read(rel, &mut buf[pos..pos + n]).await?;
            pos += n;
        }
        Ok(pos)
    }
}

/// A mounted filesystem implementation.
pub trait FileSystem {
    /// Opens `path` relative to the mount point.
    fn open<'a>(
        &'a self,
        env: &'a Env,
        path: &'a str,
        flags: OpenFlags,
    ) -> BoxFuture<'a, Result<Box<dyn File>>>;

    /// Stats `path`.
    fn stat<'a>(&'a self, env: &'a Env, path: &'a str) -> BoxFuture<'a, Result<FileInfo>>;

    /// Creates a directory.
    fn mkdir<'a>(&'a self, env: &'a Env, path: &'a str) -> BoxFuture<'a, Result<()>>;

    /// Removes an empty directory.
    fn rmdir<'a>(&'a self, env: &'a Env, path: &'a str) -> BoxFuture<'a, Result<()>>;

    /// Creates a hard link `new` to `old`.
    fn link<'a>(&'a self, env: &'a Env, old: &'a str, new: &'a str) -> BoxFuture<'a, Result<()>>;

    /// Removes a file.
    fn unlink<'a>(&'a self, env: &'a Env, path: &'a str) -> BoxFuture<'a, Result<()>>;

    /// Lists a directory.
    fn read_dir<'a>(&'a self, env: &'a Env, path: &'a str) -> BoxFuture<'a, Result<Vec<DirEntry>>>;
}

/// The per-VPE mount table.
#[derive(Default)]
pub struct Vfs {
    mounts: Vec<(String, Rc<dyn FileSystem>)>,
}

impl fmt::Debug for Vfs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let paths: Vec<&str> = self.mounts.iter().map(|(p, _)| p.as_str()).collect();
        write!(f, "Vfs(mounts: {paths:?})")
    }
}

impl Vfs {
    /// Creates an empty mount table.
    pub fn new() -> Vfs {
        Vfs::default()
    }

    /// Mounts `fs` at `prefix` (e.g. `"/"`).
    pub fn mount(&mut self, prefix: &str, fs: Rc<dyn FileSystem>) {
        let mut prefix = prefix.to_string();
        if !prefix.ends_with('/') {
            prefix.push('/');
        }
        self.mounts.push((prefix, fs));
        // Longest prefix first.
        self.mounts
            .sort_by_key(|(prefix, _)| std::cmp::Reverse(prefix.len()));
    }

    /// Resolves `path` to (filesystem, path relative to the mount point).
    ///
    /// # Errors
    ///
    /// Returns [`Code::NoSuchFile`] if no mount covers the path.
    pub fn resolve(&self, path: &str) -> Result<(Rc<dyn FileSystem>, String)> {
        for (prefix, fs) in &self.mounts {
            if let Some(rest) = path.strip_prefix(prefix.trim_end_matches('/')) {
                let rel = rest.trim_start_matches('/');
                return Ok((fs.clone(), format!("/{rel}")));
            }
        }
        Err(Error::new(Code::NoSuchFile).with_msg(format!("no filesystem for {path}")))
    }

    /// Number of mounts.
    pub fn mount_count(&self) -> usize {
        self.mounts.len()
    }
}

/// Opens `path` through the environment's mount table.
///
/// # Errors
///
/// Propagates resolution and filesystem errors.
pub async fn open(env: &Env, path: &str, flags: OpenFlags) -> Result<Box<dyn File>> {
    let (fs, rel) = env.vfs().borrow().resolve(path)?;
    fs.open(env, &rel, flags).await
}

/// Stats `path`.
///
/// # Errors
///
/// Propagates resolution and filesystem errors.
pub async fn stat(env: &Env, path: &str) -> Result<FileInfo> {
    let (fs, rel) = env.vfs().borrow().resolve(path)?;
    fs.stat(env, &rel).await
}

/// Creates a directory at `path`.
///
/// # Errors
///
/// Propagates resolution and filesystem errors.
pub async fn mkdir(env: &Env, path: &str) -> Result<()> {
    let (fs, rel) = env.vfs().borrow().resolve(path)?;
    fs.mkdir(env, &rel).await
}

/// Removes the empty directory at `path`.
///
/// # Errors
///
/// Propagates resolution and filesystem errors.
pub async fn rmdir(env: &Env, path: &str) -> Result<()> {
    let (fs, rel) = env.vfs().borrow().resolve(path)?;
    fs.rmdir(env, &rel).await
}

/// Creates a hard link (both paths must live on the same mount).
///
/// # Errors
///
/// Returns [`Code::NotSup`] for cross-mount links.
pub async fn link(env: &Env, old: &str, new: &str) -> Result<()> {
    let (fs_old, rel_old) = env.vfs().borrow().resolve(old)?;
    let (fs_new, rel_new) = env.vfs().borrow().resolve(new)?;
    if !Rc::ptr_eq(&fs_old, &fs_new) {
        return Err(Error::new(Code::NotSup).with_msg("cross-mount link"));
    }
    fs_old.link(env, &rel_old, &rel_new).await
}

/// Removes the file at `path`.
///
/// # Errors
///
/// Propagates resolution and filesystem errors.
pub async fn unlink(env: &Env, path: &str) -> Result<()> {
    let (fs, rel) = env.vfs().borrow().resolve(path)?;
    fs.unlink(env, &rel).await
}

/// Lists the directory at `path`.
///
/// # Errors
///
/// Propagates resolution and filesystem errors.
pub async fn read_dir(env: &Env, path: &str) -> Result<Vec<DirEntry>> {
    let (fs, rel) = env.vfs().borrow().resolve(path)?;
    fs.read_dir(env, &rel).await
}

/// Reads a whole file into memory (convenience for tests and tools).
///
/// # Errors
///
/// Propagates open/read errors.
pub async fn read_to_vec(env: &Env, path: &str) -> Result<Vec<u8>> {
    let mut file = open(env, path, OpenFlags::R).await?;
    let mut out = Vec::new();
    let mut buf = vec![0u8; m3_base::cfg::BENCH_BUF_SIZE];
    loop {
        let n = file.read(&mut buf).await?;
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    file.close().await?;
    Ok(out)
}

/// Writes a whole buffer to a (created/truncated) file.
///
/// # Errors
///
/// Propagates open/write errors.
pub async fn write_all(env: &Env, path: &str, data: &[u8]) -> Result<()> {
    let mut file = open(env, path, OpenFlags::CREATE.or(OpenFlags::TRUNC)).await?;
    let mut pos = 0;
    while pos < data.len() {
        let n = file.write(&data[pos..]).await?;
        if n == 0 {
            return Err(Error::new(Code::NoSpace));
        }
        pos += n;
    }
    file.close().await
}

#[cfg(test)]
mod tests {
    use super::*;

    struct DummyFs(&'static str);

    impl FileSystem for DummyFs {
        fn open<'a>(
            &'a self,
            _env: &'a Env,
            _path: &'a str,
            _flags: OpenFlags,
        ) -> BoxFuture<'a, Result<Box<dyn File>>> {
            Box::pin(async { Err(Error::new(Code::NotSup).with_msg(self.0)) })
        }
        fn stat<'a>(&'a self, _env: &'a Env, _path: &'a str) -> BoxFuture<'a, Result<FileInfo>> {
            Box::pin(async { Ok(FileInfo::default()) })
        }
        fn mkdir<'a>(&'a self, _env: &'a Env, _path: &'a str) -> BoxFuture<'a, Result<()>> {
            Box::pin(async { Ok(()) })
        }
        fn rmdir<'a>(&'a self, _env: &'a Env, _path: &'a str) -> BoxFuture<'a, Result<()>> {
            Box::pin(async { Ok(()) })
        }
        fn link<'a>(
            &'a self,
            _env: &'a Env,
            _old: &'a str,
            _new: &'a str,
        ) -> BoxFuture<'a, Result<()>> {
            Box::pin(async { Ok(()) })
        }
        fn unlink<'a>(&'a self, _env: &'a Env, _path: &'a str) -> BoxFuture<'a, Result<()>> {
            Box::pin(async { Ok(()) })
        }
        fn read_dir<'a>(
            &'a self,
            _env: &'a Env,
            _path: &'a str,
        ) -> BoxFuture<'a, Result<Vec<DirEntry>>> {
            Box::pin(async { Ok(Vec::new()) })
        }
    }

    #[test]
    fn resolve_prefers_longest_prefix() {
        let mut vfs = Vfs::new();
        let root: Rc<dyn FileSystem> = Rc::new(DummyFs("root"));
        let pipes: Rc<dyn FileSystem> = Rc::new(DummyFs("pipes"));
        vfs.mount("/", root.clone());
        vfs.mount("/pipes", pipes.clone());

        let (fs, rel) = vfs.resolve("/pipes/p0").unwrap();
        assert!(Rc::ptr_eq(&fs, &pipes));
        assert_eq!(rel, "/p0");

        let (fs, rel) = vfs.resolve("/data/file.txt").unwrap();
        assert!(Rc::ptr_eq(&fs, &root));
        assert_eq!(rel, "/data/file.txt");
    }

    #[test]
    fn resolve_without_mount_fails() {
        let vfs = Vfs::new();
        let err = vfs.resolve("/x").map(|_| ()).unwrap_err();
        assert_eq!(err.code(), Code::NoSuchFile);
    }

    #[test]
    fn flags() {
        assert!(OpenFlags::R.readable());
        assert!(!OpenFlags::R.writable());
        assert!(OpenFlags::CREATE.writable() && OpenFlags::CREATE.create());
        assert!(OpenFlags::TRUNC.trunc());
        let rw = OpenFlags::R.or(OpenFlags::W);
        assert!(rw.readable() && rw.writable());
    }
}
