//! Gates: the software abstraction for communication and memory access over
//! the DTU (§4.5.4).
//!
//! - [`RecvGate`] — receives messages (pins an endpoint; receive gates
//!   cannot be moved),
//! - [`SendGate`] — sends messages to a receive gate,
//! - [`MemGate`] — accesses remote memory.
//!
//! Send and memory gates go through the endpoint multiplexer: before each
//! use, libm3 checks whether the gate still owns an endpoint and performs
//! the `Activate` system call if not.

use std::cell::Cell;
use std::rc::Rc;

use m3_base::error::{Code, Error, Result};
use m3_base::ids::Label;
use m3_base::marshal::IStream;
use m3_base::{Perm, SelId};
use m3_dtu::Message;
use m3_kernel::protocol::Syscall;

use crate::env::Env;
use crate::epmux::EpCell;

/// The self-VPE capability selector (used as the `vpe` of `Activate`).
const SELF_VPE: SelId = SelId::new(0);

/// A receive gate bound to a dedicated endpoint.
#[derive(Debug)]
pub struct RecvGate {
    env: Env,
    sel: SelId,
    ep: m3_base::EpId,
    slot_size: u32,
}

impl RecvGate {
    /// Creates a receive gate with `slots` slots of `slot_size` bytes and
    /// binds it to a reserved endpoint.
    ///
    /// # Errors
    ///
    /// Fails if the kernel rejects the geometry or no endpoint is free.
    pub async fn new(env: &Env, slots: u32, slot_size: u32) -> Result<RecvGate> {
        let sel = env.alloc_sel();
        env.syscall(Syscall::CreateRGate {
            dst: sel,
            slots,
            slot_size,
        })
        .await?;
        let ep = env
            .epmux()
            .borrow_mut()
            .reserve()
            .ok_or_else(|| Error::new(Code::InvEp).with_msg("out of endpoints"))?;
        env.syscall(Syscall::Activate {
            vpe: SELF_VPE,
            ep,
            gate: sel,
        })
        .await?;
        Ok(RecvGate {
            env: env.clone(),
            sel,
            ep,
            slot_size,
        })
    }

    /// The gate's capability selector.
    pub fn sel(&self) -> SelId {
        self.sel
    }

    /// The endpoint the gate is bound to.
    pub fn ep(&self) -> m3_base::EpId {
        self.ep
    }

    /// Maximum payload of messages through this gate.
    pub fn max_payload(&self) -> usize {
        self.slot_size as usize - m3_base::cfg::MSG_HEADER_SIZE
    }

    /// Waits for the next message (slot is freed immediately).
    ///
    /// # Errors
    ///
    /// Propagates DTU errors.
    pub async fn recv(&self) -> Result<Message> {
        let msg = self.env.recv_on(self.ep).await?;
        self.env.dtu().ack(self.ep)?;
        Ok(msg)
    }

    /// Waits for the next message, giving up at the absolute simulated-cycle
    /// `deadline`.
    ///
    /// # Errors
    ///
    /// Returns [`Code::Timeout`] when the deadline passes with no message,
    /// and propagates DTU errors (including [`Code::Unreachable`] when this
    /// PE has crashed under an injected fault plane).
    pub async fn recv_timeout(&self, deadline: m3_base::Cycles) -> Result<Message> {
        let msg = self.env.recv_timeout_on(self.ep, deadline).await?;
        self.env.dtu().ack(self.ep)?;
        Ok(msg)
    }

    /// Fetches a message if one is waiting.
    ///
    /// # Errors
    ///
    /// Propagates DTU errors.
    pub fn fetch(&self) -> Result<Option<Message>> {
        match self.env.dtu().fetch(self.ep)? {
            Some(msg) => {
                self.env.dtu().ack(self.ep)?;
                Ok(Some(msg))
            }
            None => Ok(None),
        }
    }

    /// Replies to a message received through this gate.
    ///
    /// # Errors
    ///
    /// Fails with [`Code::NoPerm`] if the message permits no reply.
    pub async fn reply(&self, msg: &Message, payload: &[u8]) -> Result<()> {
        self.env.dtu().reply(msg, payload).await
    }
}

impl Drop for RecvGate {
    fn drop(&mut self) {
        self.env.epmux().borrow_mut().release(self.ep);
    }
}

/// A send gate, multiplexed onto endpoints on demand.
#[derive(Debug)]
pub struct SendGate {
    env: Env,
    sel: SelId,
    ep: EpCell,
}

impl SendGate {
    /// Creates a send gate to a receive gate the caller owns. `credits = 0`
    /// means unlimited.
    ///
    /// # Errors
    ///
    /// Fails if `rgate` is not a receive gate of this VPE.
    pub async fn new(env: &Env, rgate: &RecvGate, label: Label, credits: u32) -> Result<SendGate> {
        let sel = env.alloc_sel();
        env.syscall(Syscall::CreateSGate {
            dst: sel,
            rgate: rgate.sel(),
            label,
            credits,
        })
        .await?;
        Ok(Self::bind(env, sel))
    }

    /// Wraps an existing (e.g. delegated or obtained) send capability.
    pub fn bind(env: &Env, sel: SelId) -> SendGate {
        SendGate {
            env: env.clone(),
            sel,
            ep: Rc::new(Cell::new(None)),
        }
    }

    /// The gate's capability selector.
    pub fn sel(&self) -> SelId {
        self.sel
    }

    async fn ensure_ep(&self) -> Result<m3_base::EpId> {
        if let Some(ep) = self.ep.get() {
            self.env.epmux().borrow_mut().touch(ep);
            return Ok(ep);
        }
        let ep = self
            .env
            .epmux()
            .borrow_mut()
            .acquire(&self.ep)
            .ok_or_else(|| Error::new(Code::InvEp).with_msg("out of endpoints"))?;
        self.env
            .syscall(Syscall::Activate {
                vpe: SELF_VPE,
                ep,
                gate: self.sel,
            })
            .await?;
        Ok(ep)
    }

    /// Sends `payload`; `reply` names a local receive gate (and label) the
    /// receiver may reply to.
    ///
    /// # Errors
    ///
    /// Propagates DTU errors ([`Code::NoCredits`] when the budget is used
    /// up) and activation failures.
    pub async fn send(&self, payload: &[u8], reply: Option<(&RecvGate, Label)>) -> Result<()> {
        let ep = self.ensure_ep().await?;
        self.env
            .dtu()
            .send(ep, payload, reply.map(|(rg, l)| (rg.ep(), l)))
            .await
    }

    /// Like [`SendGate::send`], but gives up at the absolute simulated-cycle
    /// `deadline` — e.g. when the target PE is stalled under an injected
    /// fault plane and the DTU command would otherwise block.
    ///
    /// # Errors
    ///
    /// Returns [`Code::Timeout`] when the deadline passes before the send
    /// completes, and propagates DTU errors.
    pub async fn send_with_deadline(
        &self,
        payload: &[u8],
        reply: Option<(&RecvGate, Label)>,
        deadline: m3_base::Cycles,
    ) -> Result<()> {
        match m3_sim::with_deadline(self.env.sim(), deadline, self.send(payload, reply)).await {
            Some(r) => r,
            None => Err(Error::new(Code::Timeout).with_msg("send deadline passed")),
        }
    }

    /// Remote procedure call: send and wait for the reply on the
    /// environment's shared reply gate.
    ///
    /// With a [`RecoveryPolicy`](m3_fault::RecoveryPolicy) installed via
    /// [`crate::env::Env::set_recovery`], each attempt is bounded by the
    /// policy's timeout and re-sent (after a deterministic exponential
    /// backoff) up to its retry budget; exhausting the budget yields
    /// [`Code::Unreachable`]. Note the resulting at-least-once semantics: a
    /// retried request may execute twice at the server if only its reply was
    /// lost, and a late reply to an abandoned attempt can surface as the
    /// next call's answer — callers in faulted runs should make requests
    /// idempotent or sequence-tolerant.
    ///
    /// # Errors
    ///
    /// Propagates send errors and transport failures.
    pub async fn call(&self, payload: &[u8]) -> Result<Message> {
        let rgate = self.env.reply_gate().await?;
        let Some(policy) = self.env.recovery() else {
            self.send(payload, Some((&rgate, 0))).await?;
            return rgate.recv().await;
        };
        for attempt in 0..=policy.max_retries {
            if attempt > 0 {
                self.env.compute(crate::costs::RETRY_PREP).await;
                self.env
                    .sim()
                    .sleep(policy.backoff.delay(attempt - 1))
                    .await;
                let at = self.env.sim().now();
                let pe = self.env.pe();
                self.env.sim().tracer().record_with(|| m3_sim::Event {
                    at,
                    dur: m3_base::Cycles::ZERO,
                    pe: Some(pe),
                    comp: m3_sim::Component::App,
                    kind: m3_sim::EventKind::Recovery {
                        action: "rpc_retry".to_string(),
                        attempt,
                    },
                });
            }
            // Discard replies of abandoned earlier attempts that arrived
            // while we were backing off.
            while rgate.fetch()?.is_some() {}
            self.send(payload, Some((&rgate, 0))).await?;
            let deadline = self.env.sim().now() + policy.timeout;
            match rgate.recv_timeout(deadline).await {
                Ok(msg) => return Ok(msg),
                Err(e) if e.code() == Code::Timeout => continue,
                Err(e) => return Err(e),
            }
        }
        Err(Error::new(Code::Unreachable).with_msg("rpc retries exhausted"))
    }
}

impl Drop for SendGate {
    fn drop(&mut self) {
        if let Some(ep) = self.ep.get() {
            self.env.epmux().borrow_mut().release(ep);
        }
    }
}

/// A memory gate: RDMA access to a region of PE-external memory.
#[derive(Debug)]
pub struct MemGate {
    env: Env,
    sel: SelId,
    ep: EpCell,
    size: Option<u64>,
}

impl MemGate {
    /// Allocates a DRAM region of `size` bytes through the kernel and wraps
    /// it (§4.5.4).
    ///
    /// # Errors
    ///
    /// Returns [`Code::OutOfMem`] when the DRAM is exhausted.
    pub async fn alloc(env: &Env, size: u64, perm: Perm) -> Result<MemGate> {
        let sel = env.alloc_sel();
        let data = env
            .syscall(Syscall::AllocMem {
                dst: sel,
                size,
                perm,
            })
            .await?;
        let mut is = IStream::new(&data);
        let _global_offset = is.pop_u64()?;
        Ok(MemGate {
            env: env.clone(),
            sel,
            ep: Rc::new(Cell::new(None)),
            size: Some(size),
        })
    }

    /// Wraps an existing (delegated or obtained) memory capability.
    pub fn bind(env: &Env, sel: SelId) -> MemGate {
        MemGate {
            env: env.clone(),
            sel,
            ep: Rc::new(Cell::new(None)),
            size: None,
        }
    }

    /// The gate's capability selector.
    pub fn sel(&self) -> SelId {
        self.sel
    }

    /// The region size, if known locally.
    pub fn size(&self) -> Option<u64> {
        self.size
    }

    /// Creates a sub-range capability.
    ///
    /// # Errors
    ///
    /// Fails if the range or permissions exceed this gate's.
    pub async fn derive(&self, offset: u64, size: u64, perm: Perm) -> Result<MemGate> {
        let sel = self.env.alloc_sel();
        self.env
            .syscall(Syscall::DeriveMem {
                dst: sel,
                src: self.sel,
                offset,
                size,
                perm,
            })
            .await?;
        Ok(MemGate {
            env: self.env.clone(),
            sel,
            ep: Rc::new(Cell::new(None)),
            size: Some(size),
        })
    }

    async fn ensure_ep(&self) -> Result<m3_base::EpId> {
        if let Some(ep) = self.ep.get() {
            self.env.epmux().borrow_mut().touch(ep);
            return Ok(ep);
        }
        let ep = self
            .env
            .epmux()
            .borrow_mut()
            .acquire(&self.ep)
            .ok_or_else(|| Error::new(Code::InvEp).with_msg("out of endpoints"))?;
        self.env
            .syscall(Syscall::Activate {
                vpe: SELF_VPE,
                ep,
                gate: self.sel,
            })
            .await?;
        Ok(ep)
    }

    /// Reads `len` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// Propagates permission and bounds errors from the DTU.
    pub async fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let ep = self.ensure_ep().await?;
        self.env.dtu().read_mem(ep, offset, len).await
    }

    /// Reads `buf.len()` bytes at `offset` into `buf`, without allocating —
    /// the form chunked readers use to reuse one buffer across chunks.
    ///
    /// # Errors
    ///
    /// Propagates permission and bounds errors from the DTU.
    pub async fn read_into(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let ep = self.ensure_ep().await?;
        self.env.dtu().read_mem_into(ep, offset, buf).await
    }

    /// Writes `data` at `offset`.
    ///
    /// # Errors
    ///
    /// Propagates permission and bounds errors from the DTU.
    pub async fn write(&self, offset: u64, data: &[u8]) -> Result<()> {
        let ep = self.ensure_ep().await?;
        self.env.dtu().write_mem(ep, offset, data).await
    }

    /// Revokes the capability (and everything derived from it).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub async fn revoke(self) -> Result<()> {
        self.env.syscall(Syscall::Revoke { sel: self.sel }).await?;
        Ok(())
    }
}

impl Drop for MemGate {
    fn drop(&mut self) {
        if let Some(ep) = self.ep.get() {
            self.env.epmux().borrow_mut().release(ep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{start_program, ProgramRegistry};
    use m3_base::PeId;
    use m3_kernel::Kernel;
    use m3_platform::{Platform, PlatformConfig};

    fn boot(pes: usize) -> (Platform, Kernel) {
        let platform = Platform::new(PlatformConfig::xtensa(pes));
        let kernel = Kernel::start(&platform, PeId::new(0));
        (platform, kernel)
    }

    #[test]
    fn memgate_alloc_read_write() {
        let (platform, kernel) = boot(3);
        let h = start_program(
            &kernel,
            "app",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let mem = MemGate::alloc(&env, 8192, Perm::RW).await.unwrap();
                mem.write(100, &[1, 2, 3, 4]).await.unwrap();
                let back = mem.read(100, 4).await.unwrap();
                assert_eq!(back, vec![1, 2, 3, 4]);
                // Derive a read-only window and check enforcement.
                let ro = mem.derive(0, 256, Perm::R).await.unwrap();
                assert_eq!(ro.write(0, &[9]).await.unwrap_err().code(), Code::NoPerm);
                0
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    fn endpoint_multiplexing_under_pressure() {
        // More memory gates than endpoints: the multiplexer must swap them
        // transparently (§4.5.4).
        let (platform, kernel) = boot(3);
        let h = start_program(
            &kernel,
            "app",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let mut gates = Vec::new();
                for i in 0..10u64 {
                    let g = MemGate::alloc(&env, 4096, Perm::RW).await.unwrap();
                    g.write(0, &[i as u8]).await.unwrap();
                    gates.push(g);
                }
                // Use them all again in order; every gate still works.
                for (i, g) in gates.iter().enumerate() {
                    let v = g.read(0, 1).await.unwrap();
                    assert_eq!(v[0], i as u8);
                }
                let syscalls = env.sim().stats().get("kernel.syscalls");
                assert!(syscalls > 20, "re-activations must go through the kernel");
                0
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    fn send_and_receive_between_two_programs() {
        let (platform, kernel) = boot(4);
        // Receiver program creates an rgate + sgate; we pass the sgate's
        // selector to the sender through a shared cell (simulation-level
        // plumbing; capability-level delegation is exercised in the vpe
        // tests).
        let reg = ProgramRegistry::new();
        let h = start_program(&kernel, "recv", None, reg.clone(), {
            let kernel = kernel.clone();
            move |env| async move {
                let rgate = RecvGate::new(&env, 4, 256).await.unwrap();
                let _sgate = SendGate::new(&env, &rgate, 0x42, 2).await.unwrap();
                // Second program on another PE sends via a bound gate after
                // obtaining it through a VPE exchange — here we shortcut by
                // letting it reuse our selector via Exchange in vpe tests;
                // this test only checks the local call path.
                let sgate_local = SendGate::new(&env, &rgate, 0x43, 2).await.unwrap();
                let _ = kernel; // silence unused in this closure
                sgate_local.send(b"loopback", None).await.unwrap();
                let msg = rgate.recv().await.unwrap();
                assert_eq!(msg.payload, b"loopback");
                assert_eq!(msg.header.label, 0x43);
                0
            }
        });
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    fn rpc_call_roundtrip() {
        let (platform, kernel) = boot(4);
        let h = start_program(
            &kernel,
            "rpc",
            None,
            ProgramRegistry::new(),
            |env| async move {
                // A local echo server on the same VPE: create the service gate
                // pair, spawn a server task, call it.
                let rgate = Rc::new(RecvGate::new(&env, 4, 256).await.unwrap());
                let sgate = SendGate::new(&env, &rgate, 7, 1).await.unwrap();
                let server_gate = rgate.clone();
                let env2 = env.clone();
                env.sim().spawn_daemon("echo", async move {
                    loop {
                        let Ok(msg) = server_gate.recv().await else {
                            return;
                        };
                        let _ = env2.dtu().reply(&msg, &msg.payload).await;
                    }
                });
                let reply = sgate.call(b"ping").await.unwrap();
                assert_eq!(reply.payload, b"ping");
                0
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    fn policy_call_retries_through_a_dropped_request() {
        use m3_fault::{CycleWindow, FaultPlan, FaultPlane, RecoveryPolicy};

        let (platform, kernel) = boot(3);
        // The echo server lives on the same VPE/PE as the caller, so both
        // the request and its reply cross the pe→pe loop link. A one-message
        // drop budget kills exactly the first request; the policy-driven
        // resend must then succeed.
        let app_pe = m3_base::PeId::new(1);
        let window = CycleWindow::new(m3_base::Cycles::ZERO, m3_base::Cycles::new(u64::MAX));
        platform.dtu_system().set_faults(Rc::new(FaultPlane::new(
            FaultPlan::new().drop_msgs(app_pe, app_pe, window, 1),
        )));
        let h = start_program(
            &kernel,
            "rpc",
            Some(app_pe),
            ProgramRegistry::new(),
            |env| async move {
                env.set_recovery(Some(RecoveryPolicy::standard(0xC4A0)));
                let rgate = Rc::new(RecvGate::new(&env, 4, 256).await.unwrap());
                let sgate = SendGate::new(&env, &rgate, 7, 0).await.unwrap();
                let server_gate = rgate.clone();
                let env2 = env.clone();
                env.sim().spawn_daemon("echo", async move {
                    loop {
                        let Ok(msg) = server_gate.recv().await else {
                            return;
                        };
                        let _ = env2.dtu().reply(&msg, &msg.payload).await;
                    }
                });
                let start = env.sim().now();
                let reply = sgate.call(b"ping").await.unwrap();
                assert_eq!(reply.payload, b"ping");
                // One full timeout plus a backoff elapsed before the retry.
                let waited = (env.sim().now() - start).as_u64();
                assert!(waited >= 200_000, "no timed-out attempt: {waited}");
                0
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    fn policy_call_reports_unreachable_when_every_attempt_is_lost() {
        use m3_fault::{CycleWindow, FaultPlan, FaultPlane, RecoveryPolicy};

        let (platform, kernel) = boot(3);
        let app_pe = m3_base::PeId::new(1);
        let window = CycleWindow::new(m3_base::Cycles::ZERO, m3_base::Cycles::new(u64::MAX));
        platform
            .dtu_system()
            .set_faults(Rc::new(FaultPlane::new(FaultPlan::new().drop_msgs(
                app_pe,
                app_pe,
                window,
                u32::MAX,
            ))));
        let h = start_program(
            &kernel,
            "rpc",
            Some(app_pe),
            ProgramRegistry::new(),
            |env| async move {
                env.set_recovery(Some(RecoveryPolicy::standard(0xC4A1)));
                let rgate = Rc::new(RecvGate::new(&env, 4, 256).await.unwrap());
                let sgate = SendGate::new(&env, &rgate, 7, 0).await.unwrap();
                let err = sgate.call(b"void").await.unwrap_err();
                assert_eq!(err.code(), Code::Unreachable);
                0
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }
}
