//! Server side of the service protocol (§4.5.3).
//!
//! A service registers a receive gate with the kernel ([`serve`]); the
//! kernel forwards session opens and capability exchanges to it and the
//! service may deny them. Client-facing request channels (e.g. the m3fs
//! meta channel) are ordinary gates the service hands out via `obtain`.

use m3_base::error::{Code, Result};
use m3_base::SelId;
use m3_kernel::protocol::{ServiceReply, ServiceRequest, Syscall};

use crate::costs;
use crate::env::Env;
use crate::gate::RecvGate;

/// What a service implements to handle kernel-forwarded requests.
pub trait Handler: 'static {
    /// A client opens a session; returns the service-chosen identifier.
    ///
    /// # Errors
    ///
    /// Any error denies the session.
    fn open(&mut self, env: &Env, arg: u64) -> Result<u64>;

    /// A capability exchange over a session. For obtains, returns the
    /// *service-side* selectors to map to the client (at most `cap_count`)
    /// plus reply bytes; for delegates, returns the selectors where the
    /// client's capabilities should land.
    ///
    /// # Errors
    ///
    /// Any error denies the exchange (§4.5.3: the service can deny).
    fn exchange(
        &mut self,
        env: &Env,
        ident: u64,
        obtain: bool,
        cap_count: u32,
        args: &[u8],
    ) -> impl std::future::Future<Output = Result<(Vec<SelId>, Vec<u8>)>>;

    /// The session's VPE exited; drop its state.
    fn close(&mut self, env: &Env, ident: u64);
}

/// Registers service `name` and serves kernel requests forever.
///
/// Spawn this with [`m3_sim::Sim::spawn_daemon`]; it only returns on
/// transport failure.
///
/// # Errors
///
/// Fails if registration is rejected (e.g. duplicate name).
pub async fn serve<H: Handler>(env: Env, name: &str, mut handler: H) -> Result<()> {
    let rgate = RecvGate::new(&env, 32, 512).await?;
    let dst = env.alloc_sel();
    env.syscall(Syscall::CreateSrv {
        dst,
        rgate: rgate.sel(),
        name: name.to_string(),
    })
    .await?;

    loop {
        let msg = rgate.recv().await?;
        env.compute(costs::SERV_DISPATCH).await;
        let reply = match ServiceRequest::from_bytes(&msg.payload) {
            Err(e) => ServiceReply::err(e.code()),
            Ok(ServiceRequest::Open { arg }) => match handler.open(&env, arg) {
                Ok(ident) => {
                    let mut r = ServiceReply::ok();
                    r.ident = ident;
                    r
                }
                Err(e) => ServiceReply::err(e.code()),
            },
            Ok(ServiceRequest::Exchange {
                ident,
                obtain,
                cap_count,
                args,
            }) => match handler
                .exchange(&env, ident, obtain, cap_count, &args)
                .await
            {
                Ok((caps, args)) => {
                    if caps.len() > cap_count as usize {
                        ServiceReply::err(Code::InvArgs)
                    } else {
                        let mut r = ServiceReply::ok();
                        r.caps = caps;
                        r.args = args;
                        r
                    }
                }
                Err(e) => ServiceReply::err(e.code()),
            },
            Ok(ServiceRequest::Close { ident }) => {
                handler.close(&env, ident);
                ServiceReply::ok()
            }
        };
        rgate.reply(&msg, &reply.to_bytes()).await?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{start_program, ProgramRegistry};
    use crate::session::ClientSession;
    use m3_base::PeId;
    use m3_kernel::Kernel;
    use m3_platform::{Platform, PlatformConfig};

    /// A toy service: sessions are counters; obtain increments and echoes.
    struct Counter {
        next_ident: u64,
        opened: Vec<u64>,
    }

    impl Handler for Counter {
        fn open(&mut self, _env: &Env, arg: u64) -> Result<u64> {
            if arg == 666 {
                return Err(m3_base::Error::new(Code::NoPerm));
            }
            let ident = self.next_ident;
            self.next_ident += 1;
            self.opened.push(ident);
            Ok(ident)
        }

        async fn exchange(
            &mut self,
            _env: &Env,
            ident: u64,
            obtain: bool,
            _cap_count: u32,
            args: &[u8],
        ) -> Result<(Vec<SelId>, Vec<u8>)> {
            if !obtain {
                return Err(m3_base::Error::new(Code::NotSup));
            }
            let mut reply = vec![ident as u8];
            reply.extend_from_slice(args);
            Ok((Vec::new(), reply))
        }

        fn close(&mut self, _env: &Env, ident: u64) {
            self.opened.retain(|&i| i != ident);
        }
    }

    #[test]
    fn open_exchange_and_deny() {
        let platform = Platform::new(PlatformConfig::xtensa(4));
        let kernel = Kernel::start(&platform, PeId::new(0));
        let reg = ProgramRegistry::new();

        // The service runs as its own program on its own PE.
        let info = kernel.create_root("counter-srv", None).unwrap();
        let srv_env = Env::new(&kernel, &info, reg.clone());
        platform.sim().spawn_daemon("counter-srv", async move {
            serve(
                srv_env,
                "counter",
                Counter {
                    next_ident: 10,
                    opened: Vec::new(),
                },
            )
            .await
            .unwrap();
        });

        let h = start_program(&kernel, "client", None, reg, |env| async move {
            // Denied session.
            let err = ClientSession::connect(&env, "counter", 666)
                .await
                .unwrap_err();
            assert_eq!(err.code(), Code::NoPerm);
            // Unknown service.
            let err = ClientSession::connect(&env, "nope", 0).await.unwrap_err();
            assert_eq!(err.code(), Code::InvService);
            // Successful open + obtain round trip.
            let sess = ClientSession::connect(&env, "counter", 1).await.unwrap();
            let (_, reply) = sess.obtain(0, &[5, 6]).await.unwrap();
            assert_eq!(reply, vec![10, 5, 6]);
            // Delegation is denied by this handler.
            let err = sess.delegate(&[], &[]).await.unwrap_err();
            assert_eq!(err.code(), Code::NotSup);
            0
        });
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }
}
