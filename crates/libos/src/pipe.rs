//! Pipes (§4.5.7).
//!
//! A pipe is a unidirectional channel between exactly one writer and one
//! reader. The data travels through a software-managed ring buffer in DRAM
//! (large buffers maximize reader/writer parallelism); messages synchronize
//! the two sides: the writer notifies the reader after writing, the reader's
//! *reply* returns the space — and, through the DTU credit system, throttles
//! the writer. After setup, the kernel is not involved: reader and writer
//! PEs communicate directly.

use std::collections::VecDeque;

use m3_base::error::{Code, Error, Result};
use m3_base::marshal::{IStream, OStream};
use m3_base::{EpId, Perm, SelId};
use m3_dtu::Message;
use m3_kernel::protocol::Syscall;
use m3_sim::{Component, Event, EventKind};

use crate::costs;
use crate::env::Env;
use crate::gate::{MemGate, RecvGate, SendGate};
use crate::vpe::Vpe;

/// Default ring-buffer size in DRAM.
pub const DEF_BUF_SIZE: u64 = 64 * 1024;

/// Default number of in-flight chunks (notification slots/credits).
pub const DEF_SLOTS: u32 = 8;

/// Size of one notification message slot.
const NOTIFY_SLOT: u32 = 64;

/// The endpoint a parent pre-configures on the child for pipe
/// notifications when the child is the reader.
pub const CHILD_NOTIFY_EP: EpId = EpId::new(7);

/// Which end of the pipe the child VPE gets.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PipeRole {
    /// The child reads from the pipe.
    Reader,
    /// The child writes into the pipe.
    Writer,
}

/// Plain-data descriptor the child uses to attach to its end of the pipe
/// (capturable by the `run` closure, like the capability exchange in
/// §4.5.5).
#[derive(Copy, Clone, Debug)]
pub struct PipeDesc {
    /// The role the child plays.
    pub role: PipeRole,
    /// Child-side selector of the ring-buffer memory capability.
    pub mem_sel: SelId,
    /// Child-side selector of the notification send gate (writer role).
    pub sgate_sel: Option<SelId>,
    /// Pre-configured notification endpoint (reader role).
    pub notify_ep: Option<EpId>,
    /// Ring-buffer size.
    pub buf_size: u64,
    /// Number of notification slots (= writer credits).
    pub slots: u32,
}

impl PipeDesc {
    /// Encodes the descriptor as a string, so it can travel in the argv of
    /// an `exec`ed program (the paper's FFT child "merely receives a
    /// different path to the executable", §5.8 — plus its channel).
    pub fn encode(&self) -> String {
        format!(
            "pipe:{},{},{},{},{},{}",
            match self.role {
                PipeRole::Reader => "r",
                PipeRole::Writer => "w",
            },
            self.mem_sel.raw(),
            self.sgate_sel.map_or(-1, |s| s.raw() as i64),
            self.notify_ep.map_or(-1, |e| e.raw() as i64),
            self.buf_size,
            self.slots,
        )
    }

    /// Decodes a descriptor produced by [`PipeDesc::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`Code::InvArgs`] on malformed input.
    pub fn decode(s: &str) -> Result<PipeDesc> {
        let bad = || Error::new(Code::InvArgs).with_msg(format!("bad pipe descriptor: {s}"));
        let rest = s.strip_prefix("pipe:").ok_or_else(bad)?;
        let parts: Vec<&str> = rest.split(',').collect();
        if parts.len() != 6 {
            return Err(bad());
        }
        let role = match parts[0] {
            "r" => PipeRole::Reader,
            "w" => PipeRole::Writer,
            _ => return Err(bad()),
        };
        let parse_i64 = |p: &str| p.parse::<i64>().map_err(|_| bad());
        let mem_sel = SelId::new(parse_i64(parts[1])? as u32);
        let sgate = parse_i64(parts[2])?;
        let notify = parse_i64(parts[3])?;
        Ok(PipeDesc {
            role,
            mem_sel,
            sgate_sel: (sgate >= 0).then(|| SelId::new(sgate as u32)),
            notify_ep: (notify >= 0).then(|| EpId::new(notify as u32)),
            buf_size: parse_i64(parts[4])? as u64,
            slots: parse_i64(parts[5])? as u32,
        })
    }
}

/// One end of a created pipe, held by the parent.
#[derive(Debug)]
pub enum ParentEnd {
    /// The parent reads.
    Reader(PipeReader),
    /// The parent writes.
    Writer(PipeWriter),
}

/// Creates a pipe between the caller and `child`, giving the child the
/// `child_role` end. Returns the parent's end and the descriptor the child
/// attaches with.
///
/// # Errors
///
/// Propagates allocation, delegation, and activation errors.
pub async fn create(
    env: &Env,
    child: &Vpe,
    child_role: PipeRole,
    buf_size: u64,
) -> Result<(ParentEnd, PipeDesc)> {
    create_with(env, child, child_role, buf_size, DEF_SLOTS).await
}

/// Like [`create`], with an explicit number of notification slots (= the
/// writer's credit budget and thus the number of in-flight chunks). Used by
/// the credit-depth ablation bench.
///
/// # Errors
///
/// Propagates allocation, delegation, and activation errors.
pub async fn create_with(
    env: &Env,
    child: &Vpe,
    child_role: PipeRole,
    buf_size: u64,
    slots: u32,
) -> Result<(ParentEnd, PipeDesc)> {
    let mem = MemGate::alloc(env, buf_size, Perm::RW).await?;
    let mem_child_sel = child.delegate(mem.sel()).await?;

    match child_role {
        PipeRole::Writer => {
            // Parent is the reader: it owns the notification rgate locally
            // and hands the child a send gate to it.
            let rgate = RecvGate::new(env, slots, NOTIFY_SLOT).await?;
            let sgate = SendGate::new(env, &rgate, 0, slots).await?;
            let sgate_child_sel = child.delegate(sgate.sel()).await?;
            let desc = PipeDesc {
                role: PipeRole::Writer,
                mem_sel: mem_child_sel,
                sgate_sel: Some(sgate_child_sel),
                notify_ep: None,
                buf_size,
                slots,
            };
            let reader = PipeReader::from_parts(env.clone(), mem, ReaderSource::Own(rgate));
            Ok((ParentEnd::Reader(reader), desc))
        }
        PipeRole::Reader => {
            // Parent is the writer: it creates the rgate capability and
            // activates it on the *child's* notification endpoint before
            // the child starts; receiving needs no capability.
            let rgate_sel = env.alloc_sel();
            env.syscall(Syscall::CreateRGate {
                dst: rgate_sel,
                slots,
                slot_size: NOTIFY_SLOT,
            })
            .await?;
            child.activate_on(rgate_sel, CHILD_NOTIFY_EP).await?;
            let sgate_sel = env.alloc_sel();
            env.syscall(Syscall::CreateSGate {
                dst: sgate_sel,
                rgate: rgate_sel,
                label: 0,
                credits: slots,
            })
            .await?;
            let sgate = SendGate::bind(env, sgate_sel);
            let desc = PipeDesc {
                role: PipeRole::Reader,
                mem_sel: mem_child_sel,
                sgate_sel: None,
                notify_ep: Some(CHILD_NOTIFY_EP),
                buf_size,
                slots,
            };
            let writer = PipeWriter::from_parts(env, mem, sgate, buf_size, slots).await?;
            Ok((ParentEnd::Writer(writer), desc))
        }
    }
}

#[derive(Debug)]
enum ReaderSource {
    /// A receive gate this VPE created itself.
    Own(RecvGate),
    /// An endpoint a parent pre-configured.
    Ep(EpId),
}

/// The reading end of a pipe.
#[derive(Debug)]
pub struct PipeReader {
    env: Env,
    mem: MemGate,
    source: ReaderSource,
    /// Chunk currently being consumed: (message, ring offset, len, consumed).
    cur: Option<(Message, u64, u64, u64)>,
    eof: bool,
}

impl PipeReader {
    fn from_parts(env: Env, mem: MemGate, source: ReaderSource) -> PipeReader {
        PipeReader {
            env,
            mem,
            source,
            cur: None,
            eof: false,
        }
    }

    /// Attaches the child's reading end described by `desc`.
    ///
    /// # Panics
    ///
    /// Panics if `desc` is not a reader-role descriptor.
    pub fn attach(env: &Env, desc: PipeDesc) -> PipeReader {
        assert_eq!(
            desc.role,
            PipeRole::Reader,
            "descriptor is not a reader end"
        );
        let ep = desc.notify_ep.expect("reader descriptor without EP");
        env.epmux().borrow_mut().pin_existing(ep);
        PipeReader::from_parts(
            env.clone(),
            MemGate::bind(env, desc.mem_sel),
            ReaderSource::Ep(ep),
        )
    }

    async fn next_msg(&mut self) -> Result<Message> {
        // With a recovery policy installed, a silent writer (crashed PE,
        // partitioned link) becomes a typed error instead of a hang.
        let deadline = self
            .env
            .recovery()
            .map(|p| self.env.sim().now() + p.timeout);
        let r = match (&self.source, deadline) {
            (ReaderSource::Own(rgate), None) => rgate.recv().await,
            (ReaderSource::Own(rgate), Some(d)) => rgate.recv_timeout(d).await,
            (ReaderSource::Ep(ep), deadline) => {
                let recvd = match deadline {
                    None => self.env.recv_on(*ep).await,
                    Some(d) => self.env.recv_timeout_on(*ep, d).await,
                };
                match recvd {
                    Ok(msg) => {
                        self.env.dtu().ack(*ep)?;
                        Ok(msg)
                    }
                    Err(e) => Err(e),
                }
            }
        };
        match r {
            Err(e) if e.code() == Code::Timeout && deadline.is_some() => {
                Err(Error::new(Code::Unreachable).with_msg("pipe writer went silent"))
            }
            other => other,
        }
    }

    /// Reads up to `buf.len()` bytes; returns 0 at end of stream.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub async fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        self.env.compute(costs::PIPE_OP).await;
        if buf.is_empty() {
            return Ok(0);
        }
        if self.cur.is_none() {
            if self.eof {
                return Ok(0);
            }
            let msg = self.next_msg().await?;
            let mut is = IStream::new(&msg.payload);
            let pos = is.pop_u64()?;
            let len = is.pop_u64()?;
            if len == 0 {
                // EOF marker; acknowledge it so the writer can finish.
                self.eof = true;
                self.env.dtu().reply(&msg, &[]).await?;
                return Ok(0);
            }
            self.cur = Some((msg, pos, len, 0));
        }
        let (msg, pos, len, consumed) = self.cur.take().expect("chunk state");
        let n = (buf.len() as u64).min(len - consumed);
        self.mem
            .read_into(pos + consumed, &mut buf[..n as usize])
            .await?;
        let at = self.env.sim().now();
        self.env.sim().tracer().record_with(|| Event {
            at,
            dur: m3_base::Cycles::ZERO,
            pe: Some(self.env.pe()),
            comp: Component::Pipe,
            kind: EventKind::PipeXfer {
                write: false,
                bytes: n,
            },
        });
        let consumed = consumed + n;
        if consumed == len {
            // Chunk done: the reply returns the space and refills one
            // writer credit.
            self.env.dtu().reply(&msg, &[]).await?;
        } else {
            self.cur = Some((msg, pos, len, consumed));
        }
        Ok(n as usize)
    }

    /// Drains the pipe until EOF, discarding data; returns total bytes.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub async fn drain(&mut self) -> Result<u64> {
        let mut buf = vec![0u8; m3_base::cfg::BENCH_BUF_SIZE];
        let mut total = 0;
        loop {
            let n = self.read(&mut buf).await?;
            if n == 0 {
                return Ok(total);
            }
            total += n as u64;
        }
    }
}

/// The writing end of a pipe.
#[derive(Debug)]
pub struct PipeWriter {
    env: Env,
    mem: MemGate,
    sgate: SendGate,
    /// Replies from the reader arrive here.
    reply_gate: RecvGate,
    buf_size: u64,
    slots: u32,
    /// Absolute write position (ring offset = `wpos % buf_size`).
    wpos: u64,
    /// In-flight chunks: lengths in send order.
    outstanding: VecDeque<u64>,
    in_flight: u64,
    closed: bool,
}

impl PipeWriter {
    async fn from_parts(
        env: &Env,
        mem: MemGate,
        sgate: SendGate,
        buf_size: u64,
        slots: u32,
    ) -> Result<PipeWriter> {
        let reply_gate = RecvGate::new(env, slots, NOTIFY_SLOT).await?;
        Ok(PipeWriter {
            env: env.clone(),
            mem,
            sgate,
            reply_gate,
            buf_size,
            slots,
            wpos: 0,
            outstanding: VecDeque::new(),
            in_flight: 0,
            closed: false,
        })
    }

    /// Attaches the child's writing end described by `desc`.
    ///
    /// # Errors
    ///
    /// Propagates gate-creation errors.
    ///
    /// # Panics
    ///
    /// Panics if `desc` is not a writer-role descriptor.
    pub async fn attach(env: &Env, desc: PipeDesc) -> Result<PipeWriter> {
        assert_eq!(
            desc.role,
            PipeRole::Writer,
            "descriptor is not a writer end"
        );
        let sgate_sel = desc.sgate_sel.expect("writer descriptor without sgate");
        PipeWriter::from_parts(
            env,
            MemGate::bind(env, desc.mem_sel),
            SendGate::bind(env, sgate_sel),
            desc.buf_size,
            desc.slots,
        )
        .await
    }

    fn pop_replies(&mut self) -> Result<()> {
        while let Some(_msg) = self.reply_gate.fetch()? {
            let len = self
                .outstanding
                .pop_front()
                .ok_or_else(|| Error::new(Code::Internal).with_msg("reply without chunk"))?;
            self.in_flight -= len;
        }
        Ok(())
    }

    async fn wait_reply(&mut self) -> Result<()> {
        // Bounded under a recovery policy: a reader that died holding our
        // buffer space surfaces as `Unreachable` instead of blocking the
        // writer forever.
        let _ = match self.env.recovery() {
            None => self.reply_gate.recv().await?,
            Some(p) => {
                let deadline = self.env.sim().now() + p.timeout;
                match self.reply_gate.recv_timeout(deadline).await {
                    Err(e) if e.code() == Code::Timeout => {
                        return Err(
                            Error::new(Code::Unreachable).with_msg("pipe reader went silent")
                        );
                    }
                    other => other?,
                }
            }
        };
        let len = self
            .outstanding
            .pop_front()
            .ok_or_else(|| Error::new(Code::Internal).with_msg("reply without chunk"))?;
        self.in_flight -= len;
        Ok(())
    }

    /// Writes all of `data` into the pipe, blocking on back-pressure.
    ///
    /// # Errors
    ///
    /// Returns [`Code::EndOfStream`] after [`PipeWriter::close`], and
    /// propagates transport errors.
    pub async fn write(&mut self, data: &[u8]) -> Result<usize> {
        if self.closed {
            return Err(Error::new(Code::EndOfStream).with_msg("pipe closed"));
        }
        self.env.compute(costs::PIPE_OP).await;
        let mut sent = 0;
        while sent < data.len() {
            self.pop_replies()?;
            // Respect both the notification credits and the ring space.
            while self.outstanding.len() as u32 >= self.slots || self.in_flight >= self.buf_size {
                self.wait_reply().await?;
            }
            let ring_off = self.wpos % self.buf_size;
            let space = self.buf_size - self.in_flight;
            let to_ring_end = self.buf_size - ring_off;
            let n = ((data.len() - sent) as u64).min(space).min(to_ring_end);
            self.mem
                .write(ring_off, &data[sent..sent + n as usize])
                .await?;
            let mut os = OStream::with_capacity(16);
            os.push_u64(ring_off).push_u64(n);
            self.sgate
                .send(os.as_bytes(), Some((&self.reply_gate, 0)))
                .await?;
            let at = self.env.sim().now();
            self.env.sim().tracer().record_with(|| Event {
                at,
                dur: m3_base::Cycles::ZERO,
                pe: Some(self.env.pe()),
                comp: Component::Pipe,
                kind: EventKind::PipeXfer {
                    write: true,
                    bytes: n,
                },
            });
            self.outstanding.push_back(n);
            self.in_flight += n;
            self.wpos += n;
            sent += n as usize;
        }
        Ok(sent)
    }

    /// Signals end-of-stream and waits until the reader saw every chunk.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; closing twice is a no-op.
    pub async fn close(&mut self) -> Result<()> {
        if self.closed {
            return Ok(());
        }
        self.closed = true;
        self.pop_replies()?;
        while self.outstanding.len() as u32 >= self.slots {
            self.wait_reply().await?;
        }
        let mut os = OStream::with_capacity(16);
        os.push_u64(0).push_u64(0);
        self.sgate
            .send(os.as_bytes(), Some((&self.reply_gate, 0)))
            .await?;
        self.outstanding.push_back(0);
        // Drain every acknowledgement, including the EOF's.
        while !self.outstanding.is_empty() {
            self.wait_reply().await?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// VFS integration: pipes as files (§4.5.8: "a pipe filesystem to integrate
// pipes into the VFS, making it transparent for applications whether they
// access a pipe or a file in m3fs").
// ---------------------------------------------------------------------

impl crate::vfs::File for PipeReader {
    fn read<'a>(&'a mut self, buf: &'a mut [u8]) -> crate::BoxFuture<'a, Result<usize>> {
        Box::pin(PipeReader::read(self, buf))
    }

    fn write<'a>(&'a mut self, _data: &'a [u8]) -> crate::BoxFuture<'a, Result<usize>> {
        Box::pin(async { Err(Error::new(Code::NoAccess).with_msg("read end of a pipe")) })
    }

    fn seek<'a>(
        &'a mut self,
        _offset: i64,
        _whence: crate::vfs::SeekMode,
    ) -> crate::BoxFuture<'a, Result<u64>> {
        Box::pin(async { Err(Error::new(Code::NotSup).with_msg("pipes are not seekable")) })
    }

    fn close<'a>(&'a mut self) -> crate::BoxFuture<'a, Result<()>> {
        // Reading ends passively: the writer's EOF marker closes the stream.
        Box::pin(async { Ok(()) })
    }
}

impl crate::vfs::File for PipeWriter {
    fn read<'a>(&'a mut self, _buf: &'a mut [u8]) -> crate::BoxFuture<'a, Result<usize>> {
        Box::pin(async { Err(Error::new(Code::NoAccess).with_msg("write end of a pipe")) })
    }

    fn write<'a>(&'a mut self, data: &'a [u8]) -> crate::BoxFuture<'a, Result<usize>> {
        Box::pin(PipeWriter::write(self, data))
    }

    fn seek<'a>(
        &'a mut self,
        _offset: i64,
        _whence: crate::vfs::SeekMode,
    ) -> crate::BoxFuture<'a, Result<u64>> {
        Box::pin(async { Err(Error::new(Code::NotSup).with_msg("pipes are not seekable")) })
    }

    fn close<'a>(&'a mut self) -> crate::BoxFuture<'a, Result<()>> {
        Box::pin(PipeWriter::close(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{start_program, ProgramRegistry};
    use m3_base::PeId;
    use m3_kernel::protocol::PeRequest;
    use m3_kernel::Kernel;
    use m3_platform::{Platform, PlatformConfig};

    fn boot(pes: usize) -> (Platform, Kernel) {
        let platform = Platform::new(PlatformConfig::xtensa(pes));
        let kernel = Kernel::start(&platform, PeId::new(0));
        (platform, kernel)
    }

    #[test]
    fn desc_encode_decode_roundtrip() {
        let desc = PipeDesc {
            role: PipeRole::Reader,
            mem_sel: SelId::new(3),
            sgate_sel: None,
            notify_ep: Some(CHILD_NOTIFY_EP),
            buf_size: 4096,
            slots: 8,
        };
        let decoded = PipeDesc::decode(&desc.encode()).unwrap();
        assert_eq!(decoded.role, desc.role);
        assert_eq!(decoded.mem_sel, desc.mem_sel);
        assert_eq!(decoded.sgate_sel, desc.sgate_sel);
        assert_eq!(decoded.notify_ep, desc.notify_ep);
        assert_eq!(decoded.buf_size, desc.buf_size);
        assert_eq!(decoded.slots, desc.slots);

        let w = PipeDesc {
            role: PipeRole::Writer,
            mem_sel: SelId::new(5),
            sgate_sel: Some(SelId::new(6)),
            notify_ep: None,
            buf_size: 65536,
            slots: 4,
        };
        let decoded = PipeDesc::decode(&w.encode()).unwrap();
        assert_eq!(decoded.sgate_sel, Some(SelId::new(6)));
        assert_eq!(decoded.notify_ep, None);

        assert!(PipeDesc::decode("nonsense").is_err());
        assert!(PipeDesc::decode("pipe:r,1,2").is_err());
    }

    #[test]
    fn child_writes_parent_reads() {
        let (platform, kernel) = boot(4);
        let h = start_program(
            &kernel,
            "parent",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let child = Vpe::new(&env, "writer", PeRequest::Same).await.unwrap();
                let (end, desc) = create(&env, &child, PipeRole::Writer, 4096).await.unwrap();
                let ParentEnd::Reader(mut reader) = end else {
                    panic!("expected reader end")
                };
                child
                    .run(move |cenv| async move {
                        let mut w = PipeWriter::attach(&cenv, desc).await.unwrap();
                        for i in 0..16u8 {
                            let chunk = vec![i; 1024];
                            w.write(&chunk).await.unwrap();
                        }
                        w.close().await.unwrap();
                        0
                    })
                    .await
                    .unwrap();

                let mut total = Vec::new();
                let mut buf = vec![0u8; 512];
                loop {
                    let n = reader.read(&mut buf).await.unwrap();
                    if n == 0 {
                        break;
                    }
                    total.extend_from_slice(&buf[..n]);
                }
                child.wait().await.unwrap();
                assert_eq!(total.len(), 16 * 1024);
                for (i, chunk) in total.chunks(1024).enumerate() {
                    assert!(chunk.iter().all(|&b| b == i as u8), "chunk {i} corrupt");
                }
                0
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    fn parent_writes_child_reads() {
        let (platform, kernel) = boot(4);
        let h = start_program(
            &kernel,
            "parent",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let child = Vpe::new(&env, "reader", PeRequest::Same).await.unwrap();
                let (end, desc) = create(&env, &child, PipeRole::Reader, 4096).await.unwrap();
                let ParentEnd::Writer(mut writer) = end else {
                    panic!("expected writer end")
                };
                child
                    .run(move |cenv| async move {
                        let mut r = PipeReader::attach(&cenv, desc);
                        r.drain().await.unwrap() as i64
                    })
                    .await
                    .unwrap();

                // Write more than the ring size to exercise back-pressure.
                let data = vec![0x5a; 10 * 1024];
                writer.write(&data).await.unwrap();
                writer.close().await.unwrap();
                child.wait().await.unwrap()
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 10 * 1024);
    }

    #[test]
    fn write_after_close_fails() {
        let (platform, kernel) = boot(4);
        let h = start_program(
            &kernel,
            "parent",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let child = Vpe::new(&env, "reader", PeRequest::Same).await.unwrap();
                let (end, desc) = create(&env, &child, PipeRole::Reader, 1024).await.unwrap();
                let ParentEnd::Writer(mut writer) = end else {
                    panic!("expected writer end")
                };
                child
                    .run(move |cenv| async move {
                        let mut r = PipeReader::attach(&cenv, desc);
                        r.drain().await.unwrap() as i64
                    })
                    .await
                    .unwrap();
                writer.write(b"x").await.unwrap();
                writer.close().await.unwrap();
                let err = writer.write(b"y").await.unwrap_err();
                child.wait().await.unwrap();
                err.code() as i64
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), Code::EndOfStream.as_raw() as i64);
    }

    #[test]
    fn pipes_are_files_through_the_vfs_traits() {
        // §4.5.8: transparent for applications whether they access a pipe
        // or a file — both ends work behind `dyn File`.
        use crate::vfs::{File, SeekMode};
        let (platform, kernel) = boot(4);
        let h = start_program(
            &kernel,
            "parent",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let child = Vpe::new(&env, "reader", PeRequest::Same).await.unwrap();
                let (end, desc) = create(&env, &child, PipeRole::Reader, 4096).await.unwrap();
                let ParentEnd::Writer(writer) = end else {
                    panic!("expected writer end")
                };
                child
                    .run(move |cenv| async move {
                        let mut file: Box<dyn File> = Box::new(PipeReader::attach(&cenv, desc));
                        // A pipe behind the File trait: reads work, seeks do not.
                        assert_eq!(
                            file.seek(0, SeekMode::Set).await.unwrap_err().code(),
                            Code::NotSup
                        );
                        assert_eq!(file.write(&[1]).await.unwrap_err().code(), Code::NoAccess);
                        let mut total = 0usize;
                        let mut buf = [0u8; 256];
                        loop {
                            let n = file.read(&mut buf).await.unwrap();
                            if n == 0 {
                                break;
                            }
                            total += n;
                        }
                        file.close().await.unwrap();
                        total as i64
                    })
                    .await
                    .unwrap();
                let mut file: Box<dyn File> = Box::new(writer);
                assert_eq!(
                    file.read(&mut [0u8; 4]).await.unwrap_err().code(),
                    Code::NoAccess
                );
                file.write(&[9u8; 3000]).await.unwrap();
                file.close().await.unwrap();
                child.wait().await.unwrap()
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 3000);
    }

    #[test]
    fn small_ring_forces_many_chunks() {
        let (platform, kernel) = boot(4);
        let h = start_program(
            &kernel,
            "parent",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let child = Vpe::new(&env, "reader", PeRequest::Same).await.unwrap();
                let (end, desc) = create(&env, &child, PipeRole::Reader, 256).await.unwrap();
                let ParentEnd::Writer(mut writer) = end else {
                    panic!("expected writer end")
                };
                child
                    .run(move |cenv| async move {
                        let mut r = PipeReader::attach(&cenv, desc);
                        let mut buf = [0u8; 64];
                        let mut sum: i64 = 0;
                        loop {
                            let n = r.read(&mut buf).await.unwrap();
                            if n == 0 {
                                break;
                            }
                            sum += buf[..n].iter().map(|&b| b as i64).sum::<i64>();
                        }
                        sum
                    })
                    .await
                    .unwrap();
                let data: Vec<u8> = (0..2048u64).map(|i| (i % 251) as u8).collect();
                let expect: i64 = data.iter().map(|&b| b as i64).sum();
                writer.write(&data).await.unwrap();
                writer.close().await.unwrap();
                let got = child.wait().await.unwrap();
                assert_eq!(got, expect);
                0
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }
}
