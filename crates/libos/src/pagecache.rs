//! A DTU-fed page cache over PE-external memory (paper §7, future work).
//!
//! "We plan to add caches to the PEs or replace the SPM with caches. The
//! cache will use the DTU to load/store cache lines from/into DRAM. In this
//! way, the DTU remains the only component with access to PE-external
//! resources and it thus suffices to control the DTU."
//!
//! [`PageCache`] is that design at page granularity, grown out of the
//! earlier line-sized `CachedMem` prototype: a write-back, write-allocate
//! cache in front of a [`MemGate`], with per-page accessed/dirty bits and
//! a bounded resident set evicted in deterministic LRU order. Hits stay in
//! the local page store; misses fill whole pages through the DTU (paying
//! the real transfer) and evictions write dirty pages back. Because every
//! fill and write-back goes through the memory gate, revoking the
//! capability still cuts off the PE — the isolation story is unchanged.
//! The same full-page granularity feeds [`crate::vfs`]'s mmap-style read
//! path and mirrors the kernel pager's unit, so a page is always moved or
//! cached whole and never partially stale.

use std::collections::{BTreeMap, VecDeque};

use m3_base::error::Result;

use crate::gate::MemGate;

/// Default page size of the cache: the kernel pager's page (§7 prototype).
pub const PAGE_SIZE: usize = m3_kernel::PAGE_SIZE as usize;

struct PageBuf {
    data: Vec<u8>,
    dirty: bool,
    accessed: bool,
}

/// A write-back, page-granular cache over a region of PE-external memory.
///
/// Sequential or re-used access patterns hit locally; the DTU is only
/// involved on misses and write-backs — turning many small accesses into
/// few page-sized transfers, which is what makes caches attractive for
/// feature-rich PEs (§7).
pub struct PageCache {
    mem: MemGate,
    page_size: usize,
    /// Resident bound in pages.
    capacity: usize,
    /// Region size, when known — the last page of a non-page-multiple
    /// region fills and writes back short.
    limit: Option<u64>,
    pages: BTreeMap<u64, PageBuf>,
    /// Pages in least-recently-used order (front = next victim).
    lru: VecDeque<u64>,
    fills: u64,
    writebacks: u64,
}

impl std::fmt::Debug for PageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("resident_pages", &self.pages.len())
            .field("fills", &self.fills)
            .field("writebacks", &self.writebacks)
            .finish()
    }
}

impl PageCache {
    /// Wraps `mem` with a cache of `capacity` pages of [`PAGE_SIZE`] bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(mem: MemGate, capacity: usize) -> PageCache {
        PageCache::with_page_size(mem, capacity, PAGE_SIZE)
    }

    /// Wraps `mem` with a cache of `capacity` pages of `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `page_size` is zero.
    pub fn with_page_size(mem: MemGate, capacity: usize, page_size: usize) -> PageCache {
        assert!(capacity > 0, "cache needs at least one page");
        assert!(page_size > 0, "pages need at least one byte");
        let limit = mem.size();
        PageCache {
            mem,
            page_size,
            capacity,
            limit,
            pages: BTreeMap::new(),
            lru: VecDeque::new(),
            fills: 0,
            writebacks: 0,
        }
    }

    /// Bounds the cached region to `limit` bytes — for gates whose size is
    /// not locally known (e.g. session-obtained file extents), so the last
    /// page of a non-page-multiple region fills and writes back short
    /// instead of overrunning the capability.
    pub fn bounded(mut self, limit: u64) -> PageCache {
        self.limit = Some(limit);
        self
    }

    /// Pages fetched from memory so far.
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// Dirty pages written back so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Currently resident pages.
    pub fn resident(&self) -> usize {
        self.pages.len()
    }

    /// Currently resident *dirty* pages (diverged from memory).
    pub fn dirty(&self) -> usize {
        self.pages.values().filter(|p| p.dirty).count()
    }

    /// Bytes a page starting at `base` actually covers (short at the
    /// region end).
    fn page_len(&self, base: u64) -> usize {
        match self.limit {
            Some(limit) => (limit.saturating_sub(base)).min(self.page_size as u64) as usize,
            None => self.page_size,
        }
    }

    async fn write_back(&mut self, page_no: u64, buf: &PageBuf) -> Result<()> {
        let base = page_no * self.page_size as u64;
        self.mem.write(base, &buf.data).await?;
        self.writebacks += 1;
        Ok(())
    }

    async fn ensure_page(&mut self, page_no: u64) -> Result<()> {
        if self.pages.contains_key(&page_no) {
            // Refresh LRU order.
            self.lru.retain(|&p| p != page_no);
            self.lru.push_back(page_no);
            return Ok(());
        }
        // Make room first: the oldest page leaves, writing back if dirty.
        while self.pages.len() >= self.capacity {
            let Some(victim) = self.lru.pop_front() else {
                break;
            };
            if let Some(buf) = self.pages.remove(&victim) {
                if buf.dirty {
                    self.write_back(victim, &buf).await?;
                }
            }
        }
        let base = page_no * self.page_size as u64;
        let data = self.mem.read(base, self.page_len(base)).await?;
        self.pages.insert(
            page_no,
            PageBuf {
                data,
                dirty: false,
                accessed: false,
            },
        );
        self.lru.push_back(page_no);
        self.fills += 1;
        Ok(())
    }

    /// Reads `buf.len()` bytes at `offset` through the cache.
    ///
    /// # Errors
    ///
    /// Propagates DTU errors (permissions, bounds, revoked capability).
    pub async fn read(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let mut pos = 0usize;
        while pos < buf.len() {
            let addr = offset + pos as u64;
            let page_no = addr / self.page_size as u64;
            let page_off = (addr % self.page_size as u64) as usize;
            self.ensure_page(page_no).await?;
            let page = self.pages.get_mut(&page_no).expect("just ensured");
            page.accessed = true;
            let n = (page.data.len() - page_off).min(buf.len() - pos);
            buf[pos..pos + n].copy_from_slice(&page.data[page_off..page_off + n]);
            pos += n;
        }
        Ok(())
    }

    /// Writes `data` at `offset` through the cache (write-back,
    /// write-allocate).
    ///
    /// # Errors
    ///
    /// Propagates DTU errors.
    pub async fn write(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        let mut pos = 0usize;
        while pos < data.len() {
            let addr = offset + pos as u64;
            let page_no = addr / self.page_size as u64;
            let page_off = (addr % self.page_size as u64) as usize;
            self.ensure_page(page_no).await?;
            let page = self.pages.get_mut(&page_no).expect("just ensured");
            page.accessed = true;
            page.dirty = true;
            let n = (page.data.len() - page_off).min(data.len() - pos);
            page.data[page_off..page_off + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
        Ok(())
    }

    /// Writes every dirty page back (like a cache flush before handing the
    /// region to someone else).
    ///
    /// # Errors
    ///
    /// Propagates DTU errors.
    pub async fn flush(&mut self) -> Result<()> {
        let dirty: Vec<u64> = self
            .pages
            .iter()
            .filter(|(_, p)| p.dirty)
            .map(|(&n, _)| n)
            .collect();
        for page_no in dirty {
            let mut buf = self.pages.remove(&page_no).expect("listed above");
            self.write_back(page_no, &buf).await?;
            buf.dirty = false;
            self.pages.insert(page_no, buf);
        }
        Ok(())
    }

    /// Gives the underlying gate back (flush first!).
    pub fn into_inner(self) -> MemGate {
        self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{start_program, ProgramRegistry};
    use m3_base::{PeId, Perm};
    use m3_kernel::Kernel;
    use m3_platform::{Platform, PlatformConfig};

    fn boot() -> (Platform, Kernel) {
        let platform = Platform::new(PlatformConfig::xtensa(3));
        let kernel = Kernel::start(&platform, PeId::new(0));
        (platform, kernel)
    }

    #[test]
    fn reads_and_writes_roundtrip_through_the_cache() {
        let (platform, kernel) = boot();
        let h = start_program(
            &kernel,
            "t",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let mem = crate::gate::MemGate::alloc(&env, 8192, Perm::RW)
                    .await
                    .unwrap();
                let mut cached = PageCache::new(mem, 2);
                cached.write(100, b"cached hello").await.unwrap();
                let mut buf = [0u8; 12];
                cached.read(100, &mut buf).await.unwrap();
                assert_eq!(&buf, b"cached hello");
                // The data is only in the cache until flushed.
                assert_eq!(cached.dirty(), 1);
                cached.flush().await.unwrap();
                assert_eq!(cached.dirty(), 0);
                let mem = cached.into_inner();
                assert_eq!(mem.read(100, 12).await.unwrap(), b"cached hello");
                0
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    fn hits_avoid_the_dtu() {
        let (platform, kernel) = boot();
        let h = start_program(
            &kernel,
            "t",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let mem = crate::gate::MemGate::alloc(&env, 8192, Perm::RW)
                    .await
                    .unwrap();
                let mut cached = PageCache::new(mem, 2);
                // 64 single-byte reads within one page: one fill.
                let mut b = [0u8; 1];
                for i in 0..64 {
                    cached.read(i, &mut b).await.unwrap();
                }
                assert_eq!(cached.fills(), 1);
                // Timing: the warm accesses must be far cheaper than cold ones.
                let t0 = env.sim().now();
                for i in 0..64 {
                    cached.read(i, &mut b).await.unwrap();
                }
                let warm = (env.sim().now() - t0).as_u64();
                let t1 = env.sim().now();
                cached.read(4096, &mut b).await.unwrap(); // cold page
                let cold = (env.sim().now() - t1).as_u64();
                assert!(warm == 0, "warm hits must not touch the DTU: {warm}");
                assert!(cold > 20, "a miss pays a real transfer: {cold}");
                0
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    fn eviction_writes_dirty_pages_back() {
        let (platform, kernel) = boot();
        let h = start_program(
            &kernel,
            "t",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let mem = crate::gate::MemGate::alloc(&env, 1 << 17, Perm::RW)
                    .await
                    .unwrap();
                // A tiny cache: 4 resident pages.
                let mut cached = PageCache::new(mem, 4);
                // Dirty many distinct pages so evictions must write back.
                for i in 0..16u64 {
                    cached
                        .write(i * PAGE_SIZE as u64, &[i as u8])
                        .await
                        .unwrap();
                }
                assert!(cached.writebacks() > 0, "evictions must write back");
                assert!(cached.resident() <= 4, "the resident set is bounded");
                cached.flush().await.unwrap();
                let mem = cached.into_inner();
                for i in 0..16u64 {
                    let v = mem.read(i * PAGE_SIZE as u64, 1).await.unwrap();
                    assert_eq!(v[0], i as u8, "page {i} lost");
                }
                0
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }

    #[test]
    fn revoked_capability_cuts_off_the_cache_too() {
        let (platform, kernel) = boot();
        let h = start_program(
            &kernel,
            "t",
            None,
            ProgramRegistry::new(),
            |env| async move {
                let mem = crate::gate::MemGate::alloc(&env, 8192, Perm::RW)
                    .await
                    .unwrap();
                let sel = mem.sel();
                let mut cached = PageCache::new(mem, 2);
                cached.write(0, b"x").await.unwrap();
                env.syscall(m3_kernel::protocol::Syscall::Revoke { sel })
                    .await
                    .unwrap();
                // The resident page still reads (it is local), but any miss or
                // write-back fails: the DTU is the only path to memory.
                let mut b = [0u8; 1];
                cached.read(0, &mut b).await.unwrap();
                let err = cached.read(4096, &mut b).await.unwrap_err();
                assert!(matches!(
                    err.code(),
                    m3_base::error::Code::InvEp | m3_base::error::Code::InvCap
                ));
                0
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 0);
    }
}
