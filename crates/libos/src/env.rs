//! A VPE's execution environment.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt;
use std::future::Future;
use std::rc::Rc;

use m3_base::error::{Code, Error, Result};
use m3_base::{Cycles, PeId, SelId, VpeId};
use m3_dtu::Dtu;
use m3_fault::RecoveryPolicy;
use m3_kernel::protocol::{std_eps, Syscall, SyscallReply};
use m3_kernel::{Kernel, VpeBootInfo};
use m3_sim::{JoinHandle, Sim};

use crate::epmux::EpMux;
use crate::gate::RecvGate;
use crate::vfs::Vfs;
use crate::BoxFuture;

/// First selector handed out by [`Env::alloc_sel`]. Selector 0 is the
/// self-VPE capability; selectors 1..16 are reserved for capabilities a
/// parent delegates before start.
pub const FIRST_USER_SEL: u32 = 16;

/// A program: takes the fresh environment and argv, returns the exit code.
pub type ProgramFn = dyn Fn(Env, Vec<String>) -> BoxFuture<'static, i64>;

/// Registry of loadable programs, keyed by filesystem path.
///
/// This is the simulation's stand-in for executable files: `exec` still
/// *reads* the named file through the VFS (charging the load transfer), then
/// runs the registered entry point.
#[derive(Clone, Default)]
pub struct ProgramRegistry {
    map: Rc<RefCell<BTreeMap<String, Rc<ProgramFn>>>>,
}

impl fmt::Debug for ProgramRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProgramRegistry({} entries)", self.map.borrow().len())
    }
}

impl ProgramRegistry {
    /// Creates an empty registry.
    pub fn new() -> ProgramRegistry {
        ProgramRegistry::default()
    }

    /// Registers `path` as a runnable program.
    pub fn register<F, Fut>(&self, path: &str, f: F)
    where
        F: Fn(Env, Vec<String>) -> Fut + 'static,
        Fut: Future<Output = i64> + 'static,
    {
        self.map.borrow_mut().insert(
            path.to_string(),
            Rc::new(move |env, argv| Box::pin(f(env, argv))),
        );
    }

    /// Looks up a program.
    ///
    /// # Errors
    ///
    /// Returns [`Code::NoSuchFile`] if nothing is registered at `path`.
    pub fn find(&self, path: &str) -> Result<Rc<ProgramFn>> {
        self.map
            .borrow()
            .get(path)
            .cloned()
            .ok_or_else(|| Error::new(Code::NoSuchFile).with_msg(path.to_string()))
    }
}

struct EnvInner {
    kernel: Kernel,
    sim: Sim,
    dtu: Dtu,
    vpe: VpeId,
    pe: PeId,
    next_sel: Cell<u32>,
    epmux: RefCell<EpMux>,
    vfs: RefCell<Vfs>,
    programs: ProgramRegistry,
    reply_gate: RefCell<Option<Rc<RecvGate>>>,
    recovery: RefCell<Option<RecoveryPolicy>>,
}

/// The environment of one running VPE: its DTU, selector space, endpoint
/// multiplexer, VFS, and typed access to the kernel.
///
/// Cheaply cloneable; clones share the VPE's state.
#[derive(Clone)]
pub struct Env {
    inner: Rc<EnvInner>,
}

impl fmt::Debug for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Env({} on {})", self.inner.vpe, self.inner.pe)
    }
}

impl Env {
    /// Creates the environment of a VPE from its boot info.
    pub fn new(kernel: &Kernel, info: &VpeBootInfo, programs: ProgramRegistry) -> Env {
        let platform = kernel.platform();
        Env {
            inner: Rc::new(EnvInner {
                kernel: kernel.clone(),
                sim: platform.sim().clone(),
                dtu: platform.dtu(info.pe),
                vpe: info.vpe,
                pe: info.pe,
                next_sel: Cell::new(FIRST_USER_SEL),
                epmux: RefCell::new(EpMux::new()),
                vfs: RefCell::new(Vfs::new()),
                programs,
                reply_gate: RefCell::new(None),
                recovery: RefCell::new(None),
            }),
        }
    }

    /// The simulation this VPE runs in.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// The VPE's DTU.
    pub fn dtu(&self) -> &Dtu {
        &self.inner.dtu
    }

    /// The kernel (simulation glue: program spawning uses it).
    pub fn kernel(&self) -> &Kernel {
        &self.inner.kernel
    }

    /// This VPE's id.
    pub fn vpe_id(&self) -> VpeId {
        self.inner.vpe
    }

    /// The PE this VPE runs on.
    pub fn pe(&self) -> PeId {
        self.inner.pe
    }

    /// The program registry (for `exec`).
    pub fn programs(&self) -> &ProgramRegistry {
        &self.inner.programs
    }

    /// The endpoint multiplexer.
    pub(crate) fn epmux(&self) -> &RefCell<EpMux> {
        &self.inner.epmux
    }

    /// The VPE's mount table.
    pub fn vfs(&self) -> &RefCell<Vfs> {
        &self.inner.vfs
    }

    /// Installs (or clears) the VPE's [`RecoveryPolicy`]. With a policy set,
    /// RPC calls and pipe waits bound their blocking and surface
    /// [`Code::Unreachable`] instead of hanging on a dead peer; without one
    /// (the default) every communication path is the unchanged clean path.
    pub fn set_recovery(&self, policy: Option<RecoveryPolicy>) {
        *self.inner.recovery.borrow_mut() = policy;
    }

    /// The currently installed recovery policy, if any.
    pub fn recovery(&self) -> Option<RecoveryPolicy> {
        self.inner.recovery.borrow().clone()
    }

    /// Allocates a fresh capability selector.
    pub fn alloc_sel(&self) -> SelId {
        let raw = self.inner.next_sel.get();
        self.inner.next_sel.set(raw + 1);
        SelId::new(raw)
    }

    /// Models `cycles` of local computation (OS/library work; not shown as
    /// application time in the figure breakdowns).
    pub async fn compute(&self, cycles: Cycles) {
        self.inner
            .sim
            .metrics()
            .add(self.pe(), m3_sim::keys::PE_BUSY, cycles.as_u64());
        self.inner.sim.sleep(cycles).await;
    }

    /// Models `cycles` of *application* computation; accounted under
    /// `m3.app_cycles` for the Figure 5/7 breakdowns.
    pub async fn compute_app(&self, cycles: Cycles) {
        self.inner.sim.stats().add("m3.app_cycles", cycles.as_u64());
        self.inner
            .sim
            .metrics()
            .add(self.pe(), m3_sim::keys::PE_BUSY, cycles.as_u64());
        self.inner.sim.sleep(cycles).await;
    }

    /// Drops an application-level phase marker into the trace (free when
    /// tracing is disabled; never advances simulated time).
    pub fn trace_mark(&self, what: &str) {
        let at = self.inner.sim.now();
        let tracer = self.inner.sim.tracer();
        tracer.record_with(|| m3_sim::Event {
            at,
            dur: Cycles::ZERO,
            pe: Some(self.pe()),
            comp: m3_sim::Component::App,
            kind: m3_sim::EventKind::AppMark {
                what: what.to_string(),
            },
        });
    }

    /// Performs a system call: marshal, send to the kernel PE, wait for the
    /// reply, unmarshal (§5.3).
    ///
    /// # Errors
    ///
    /// Returns the kernel's error code, or a transport error.
    pub async fn syscall(&self, call: Syscall) -> Result<Vec<u8>> {
        self.compute(crate::costs::SYSC_PREP).await;
        let policy = self.recovery();
        if policy.is_some() {
            // Discard stale replies of earlier timed-out syscalls so they
            // are never mistaken for this call's answer.
            while self.inner.dtu.fetch(std_eps::SYSC_REPLY)?.is_some() {
                self.inner.dtu.ack(std_eps::SYSC_REPLY)?;
            }
        }
        self.inner
            .dtu
            .send(
                std_eps::SYSC_SEND,
                &call.to_bytes(),
                Some((std_eps::SYSC_REPLY, 0)),
            )
            .await?;
        // Syscalls are not retried — many are not idempotent (CreateVpe,
        // AllocMem) — so under a recovery policy a lost request or reply
        // surfaces as a typed error after one bounded wait.
        let msg = match &policy {
            None => self.inner.dtu.recv(std_eps::SYSC_REPLY).await?,
            Some(p) => {
                let deadline = self.inner.sim.now() + p.timeout;
                match self
                    .inner
                    .dtu
                    .recv_timeout(std_eps::SYSC_REPLY, deadline)
                    .await
                {
                    Err(e) if e.code() == Code::Timeout => {
                        return Err(
                            Error::new(Code::Unreachable).with_msg("syscall reply never arrived")
                        );
                    }
                    other => other?,
                }
            }
        };
        self.inner.dtu.ack(std_eps::SYSC_REPLY)?;
        self.compute(crate::costs::SYSC_POST).await;
        SyscallReply::from_bytes(&msg.payload)?.into_result()
    }

    /// Waits for and fetches the next message from receive endpoint `ep`
    /// (without acknowledging it) — [`Dtu::recv`] with kernel-multiplexing
    /// awareness. For a VPE outside scheduler control this *is* `Dtu::recv`,
    /// cycle for cycle. A time-multiplexed VPE parks in the kernel while no
    /// message is pending, letting another VPE of its PE run; the kernel
    /// only returns control while the VPE is resident, so the DTU polls
    /// below never read another context's live registers.
    ///
    /// # Errors
    ///
    /// Propagates DTU errors (including [`Code::Unreachable`] when this PE
    /// has crashed under an injected fault plane).
    pub async fn recv_on(&self, ep: m3_base::EpId) -> Result<m3_dtu::Message> {
        if !self.inner.kernel.sched_manages(self.vpe_id()) {
            return self.inner.dtu.recv(ep).await;
        }
        loop {
            self.inner.dtu.fault_gate().await?;
            self.inner.sim.sleep(m3_dtu::timing::FETCH_POLL).await;
            if let Some(msg) = self.inner.dtu.fetch(ep)? {
                return Ok(msg);
            }
            self.inner.kernel.sched_wait_msg(self.vpe_id(), ep).await?;
        }
    }

    /// Like [`Env::recv_on`], but gives up once the simulated clock reaches
    /// `deadline`. A time-multiplexed VPE that times out is made resident
    /// again before this returns, so the caller can safely keep using the
    /// DTU.
    ///
    /// # Errors
    ///
    /// Returns [`Code::Timeout`] when the deadline passes with no message,
    /// and propagates DTU errors.
    pub async fn recv_timeout_on(
        &self,
        ep: m3_base::EpId,
        deadline: Cycles,
    ) -> Result<m3_dtu::Message> {
        if !self.inner.kernel.sched_manages(self.vpe_id()) {
            return self.inner.dtu.recv_timeout(ep, deadline).await;
        }
        match m3_sim::with_deadline(&self.inner.sim, deadline, self.recv_on(ep)).await {
            Some(result) => result,
            None => {
                // The wait was abandoned mid-park: regain residency before
                // the caller touches the DTU again.
                self.inner.kernel.sched_interrupt(self.vpe_id()).await?;
                Err(Error::new(Code::Timeout).with_msg(format!("recv on {ep}")))
            }
        }
    }

    /// Voluntarily offers this VPE's time slice to the next ready VPE of
    /// its PE (cooperative multiplexing). A no-op — costing zero cycles —
    /// for VPEs that own their PE exclusively or when nobody is waiting.
    ///
    /// # Errors
    ///
    /// Propagates DTU errors from the context-switch transfers.
    pub async fn yield_now(&self) -> Result<()> {
        self.inner.kernel.sched_yield(self.vpe_id()).await
    }

    /// The lazily created reply gate used for RPC calls ([`crate::gate::SendGate::call`]).
    ///
    /// # Errors
    ///
    /// Fails if no endpoint can be reserved for it.
    pub async fn reply_gate(&self) -> Result<Rc<RecvGate>> {
        if let Some(g) = self.inner.reply_gate.borrow().clone() {
            return Ok(g);
        }
        let gate = Rc::new(RecvGate::new(self, 4, 512).await?);
        *self.inner.reply_gate.borrow_mut() = Some(gate.clone());
        Ok(gate)
    }

    /// Terminates this VPE with `code` (the `Exit` system call; no reply).
    pub async fn exit(&self, code: i64) {
        let _ = self
            .inner
            .dtu
            .send(std_eps::SYSC_SEND, &Syscall::Exit { code }.to_bytes(), None)
            .await;
    }
}

/// Boots a root program: creates a root VPE, builds its [`Env`], runs `f`,
/// and issues the `Exit` syscall when it returns. Returns a handle to the
/// exit code.
///
/// # Panics
///
/// Panics if no PE is free for the root VPE.
pub fn start_program<F, Fut>(
    kernel: &Kernel,
    name: &str,
    pe: Option<PeId>,
    programs: ProgramRegistry,
    f: F,
) -> JoinHandle<i64>
where
    F: FnOnce(Env) -> Fut + 'static,
    Fut: Future<Output = i64> + 'static,
{
    let info = kernel.create_root(name, pe).expect("no free PE for root");
    let env = Env::new(kernel, &info, programs);
    let sim = env.sim().clone();
    sim.spawn(name.to_string(), async move {
        let code = f(env.clone()).await;
        env.exit(code).await;
        code
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_platform::{Platform, PlatformConfig};

    #[test]
    fn program_registry_roundtrip() {
        let reg = ProgramRegistry::new();
        reg.register("/bin/true", |_env, _argv| async { 0 });
        assert!(reg.find("/bin/true").is_ok());
        let err = reg.find("/bin/false").map(|_| ()).unwrap_err();
        assert_eq!(err.code(), Code::NoSuchFile);
    }

    #[test]
    fn sel_allocation_is_monotonic_and_reserved() {
        let platform = Platform::new(PlatformConfig::xtensa(3));
        let kernel = Kernel::start(&platform, PeId::new(0));
        let info = kernel.create_root("t", None).unwrap();
        let env = Env::new(&kernel, &info, ProgramRegistry::new());
        let a = env.alloc_sel();
        let b = env.alloc_sel();
        assert_eq!(a.raw(), FIRST_USER_SEL);
        assert_eq!(b.raw(), FIRST_USER_SEL + 1);
    }

    #[test]
    fn start_program_runs_and_exits() {
        let platform = Platform::new(PlatformConfig::xtensa(3));
        let kernel = Kernel::start(&platform, PeId::new(0));
        let h = start_program(
            &kernel,
            "hello",
            None,
            ProgramRegistry::new(),
            |env| async move {
                env.syscall(Syscall::Noop).await.unwrap();
                7
            },
        );
        platform.sim().run();
        assert_eq!(h.try_take().unwrap(), 7);
        // Let the kernel process the in-flight Exit message.
        platform.sim().settle(m3_base::Cycles::new(10_000));
        assert_eq!(kernel.free_pes(), 2);
    }

    #[test]
    fn compute_drives_pe_busy_and_utilization() {
        let platform = Platform::new(PlatformConfig::xtensa(3));
        let kernel = Kernel::start(&platform, PeId::new(0));
        let h = start_program(
            &kernel,
            "worker",
            None,
            ProgramRegistry::new(),
            |env| async move {
                env.trace_mark("phase1");
                env.compute_app(Cycles::new(600)).await;
                // Idle for a stretch so utilisation is strictly below 1.
                env.sim().sleep(Cycles::new(600)).await;
                env.pe().raw() as i64
            },
        );
        platform.sim().run();
        let pe = PeId::new(h.try_take().unwrap() as u32);
        let metrics = platform.sim().metrics();
        assert!(metrics.get(pe, m3_sim::keys::PE_BUSY) >= 600);
        let util = metrics.utilization(pe, platform.sim().now());
        assert!(util > 0.0 && util < 1.0, "utilization {util}");
    }

    #[test]
    fn null_syscall_costs_about_200_cycles() {
        let platform = Platform::new(PlatformConfig::xtensa(3));
        let kernel = Kernel::start(&platform, PeId::new(0));
        let h = start_program(
            &kernel,
            "bench",
            None,
            ProgramRegistry::new(),
            |env| async move {
                // Warm up (first call may include setup effects).
                env.syscall(Syscall::Noop).await.unwrap();
                let start = env.sim().now();
                for _ in 0..10 {
                    env.syscall(Syscall::Noop).await.unwrap();
                }
                let per_call = (env.sim().now() - start).as_u64() / 10;
                per_call as i64
            },
        );
        platform.sim().run();
        let per_call = h.try_take().unwrap();
        // Paper §5.3: ≈ 200 cycles on M3. Accept a generous band.
        assert!(
            (150..=260).contains(&per_call),
            "null syscall took {per_call} cycles"
        );
    }
}
