//! Demand-paged virtual memory with remotely-managed page tables (paper
//! §7, future work).
//!
//! "Furthermore, we want to support virtual memory to enable copy-on-write,
//! demand paging, etc. This can be done by managing the page tables
//! remotely, similarly to managing the DTU endpoints remotely."
//!
//! [`AddrSpace`] is the application half of the m3-vm design: the kernel
//! owns the page table (`m3_vm::AddrSpaceObj`); a load or store to an
//! unmapped virtual address raises a *page fault* — a typed `PageFault`
//! message to the kernel — and the kernel allocates a zeroed DRAM frame on
//! first touch, or pages the data back in from the VPE's swap region, and
//! replies with a frame capability. The application caches translations in
//! a small software TLB; eviction just drops the local capability handle,
//! exactly as a hardware TLB forgets an entry.
//!
//! Faults are permission-precise: a read fault yields a read-only view, so
//! the first *write* to a page faults again — that second fault is what
//! sets the kernel-side dirty bit the pager's clean-first eviction policy
//! feeds on. And because the kernel may evict a page under memory pressure
//! (revoking the frame capability at the NoC level), every access retries
//! through a fresh fault when its cached capability has been cut.

use std::collections::VecDeque;

use m3_base::error::{Code, Error, Result};
use m3_base::marshal::IStream;
use m3_base::Perm;
use m3_kernel::protocol::Syscall;
use m3_kernel::PAGE_SIZE;

use crate::env::Env;
use crate::gate::MemGate;

/// Entries the software TLB holds before evicting the least recent.
pub const TLB_ENTRIES: usize = 8;

/// Re-fault attempts per access before giving up: one for a kernel-evicted
/// page (capability revoked between translate and access) plus one slack.
const FAULT_RETRIES: usize = 2;

struct TlbEntry {
    page: u64,
    /// The access the frame capability was faulted for; an access needing
    /// more re-faults (e.g. first write to a read-faulted page).
    perm: Perm,
    frame: MemGate,
}

/// A demand-paged virtual address space.
///
/// # Examples
///
/// See `tests/virtual_memory.rs` for end-to-end usage.
pub struct AddrSpace {
    env: Env,
    perm: Perm,
    tlb: VecDeque<TlbEntry>,
    faults: u64,
    tlb_misses: u64,
}

impl std::fmt::Debug for AddrSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AddrSpace")
            .field("tlb_entries", &self.tlb.len())
            .field("tlb_misses", &self.tlb_misses)
            .finish()
    }
}

impl AddrSpace {
    /// Creates an address space with the given access permissions.
    pub fn new(env: &Env, perm: Perm) -> AddrSpace {
        AddrSpace {
            env: env.clone(),
            perm,
            tlb: VecDeque::new(),
            faults: 0,
            tlb_misses: 0,
        }
    }

    /// Software-TLB misses so far (each one is a kernel round trip).
    pub fn tlb_misses(&self) -> u64 {
        self.tlb_misses
    }

    /// Page-fault messages sent (TLB misses that reached the kernel).
    pub fn page_faults(&self) -> u64 {
        self.faults
    }

    /// Drops the cached translation of `page`, if any — after the kernel
    /// revoked the frame capability (eviction) the stale handle is useless.
    fn forget(&mut self, page: u64) {
        self.tlb.retain(|e| e.page != page);
    }

    /// Resolves `virt` for `access`, faulting to the kernel when the TLB
    /// has no (sufficient) translation. Returns the TLB index of the entry.
    async fn translate(&mut self, virt: u64, access: Perm) -> Result<usize> {
        let page = virt / PAGE_SIZE;
        if let Some(pos) = self
            .tlb
            .iter()
            .position(|e| e.page == page && e.perm.contains(access))
        {
            // Move to MRU.
            let entry = self.tlb.remove(pos).expect("position valid");
            self.tlb.push_back(entry);
            return Ok(self.tlb.len() - 1);
        }
        self.tlb_misses += 1;
        // A present-but-too-weak entry (read-faulted, now written) is
        // replaced: the kernel hands out a wider capability and revokes
        // the old one.
        self.forget(page);
        // The libos software share of assembling the fault message and
        // installing the returned capability.
        self.env.sim().sleep(m3_vm::costs::FAULT_ISSUE).await;
        let dst = self.env.alloc_sel();
        let data = self
            .env
            .syscall(Syscall::PageFault { dst, virt, access })
            .await?;
        let mut is = IStream::new(&data);
        let _page_base = is.pop_u64()?;
        self.faults += 1;
        if self.tlb.len() == TLB_ENTRIES {
            self.tlb.pop_front(); // capability handle dropped, like a TLB evict
        }
        self.tlb.push_back(TlbEntry {
            page,
            perm: access,
            frame: MemGate::bind(&self.env, dst),
        });
        Ok(self.tlb.len() - 1)
    }

    /// Whether an access failure means the kernel evicted the page under
    /// memory pressure (frame capability revoked / endpoint invalidated) —
    /// the re-fault-and-retry signal.
    fn evicted(e: &Error) -> bool {
        matches!(e.code(), Code::InvEp | Code::InvCap)
    }

    /// Reads `buf.len()` bytes at virtual address `virt`, faulting pages in
    /// as needed (unmapped pages read as zeros, as freshly allocated frames
    /// are zeroed; evicted pages page back in from swap).
    ///
    /// # Errors
    ///
    /// Returns [`Code::NoPerm`] if the address space is not readable, and
    /// propagates kernel and DTU errors.
    pub async fn read(&mut self, virt: u64, buf: &mut [u8]) -> Result<()> {
        if !self.perm.contains(Perm::R) {
            return Err(Error::new(Code::NoPerm).with_msg("address space not readable"));
        }
        let mut pos = 0usize;
        while pos < buf.len() {
            let addr = virt + pos as u64;
            let off = addr % PAGE_SIZE;
            let n = ((PAGE_SIZE - off) as usize).min(buf.len() - pos);
            let mut attempt = 0;
            let data = loop {
                let idx = self.translate(addr, Perm::R).await?;
                match self.tlb[idx].frame.read(off, n).await {
                    Ok(data) => break data,
                    Err(e) if Self::evicted(&e) && attempt < FAULT_RETRIES => {
                        attempt += 1;
                        self.forget(addr / PAGE_SIZE);
                    }
                    Err(e) => return Err(e),
                }
            };
            buf[pos..pos + n].copy_from_slice(&data);
            pos += n;
        }
        Ok(())
    }

    /// Writes `data` at virtual address `virt`, faulting pages in as
    /// needed. The first write to a page faults even if it was read before
    /// — the write fault is what marks the page dirty in the kernel's
    /// table.
    ///
    /// # Errors
    ///
    /// Returns [`Code::NoPerm`] if the address space is not writable, and
    /// propagates kernel and DTU errors.
    pub async fn write(&mut self, virt: u64, data: &[u8]) -> Result<()> {
        if !self.perm.contains(Perm::W) {
            return Err(Error::new(Code::NoPerm).with_msg("address space not writable"));
        }
        let mut pos = 0usize;
        while pos < data.len() {
            let addr = virt + pos as u64;
            let off = addr % PAGE_SIZE;
            let n = ((PAGE_SIZE - off) as usize).min(data.len() - pos);
            let mut attempt = 0;
            loop {
                let idx = self.translate(addr, Perm::RW).await?;
                match self.tlb[idx].frame.write(off, &data[pos..pos + n]).await {
                    Ok(()) => break,
                    Err(e) if Self::evicted(&e) && attempt < FAULT_RETRIES => {
                        attempt += 1;
                        self.forget(addr / PAGE_SIZE);
                    }
                    Err(e) => return Err(e),
                }
            }
            pos += n;
        }
        Ok(())
    }

    /// Unmaps the page containing `virt`, freeing its frame (and swap
    /// slot) and dropping any TLB entry.
    ///
    /// # Errors
    ///
    /// Returns [`m3_base::error::Code::InvArgs`] if the page was never
    /// touched.
    pub async fn unmap(&mut self, virt: u64) -> Result<()> {
        let page = virt / PAGE_SIZE;
        self.tlb.retain(|e| e.page != page);
        self.env.syscall(Syscall::Unmap { virt }).await?;
        Ok(())
    }
}
