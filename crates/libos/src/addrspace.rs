//! Virtual memory with remotely-managed page tables (paper §7, future
//! work).
//!
//! "Furthermore, we want to support virtual memory to enable copy-on-write,
//! demand paging, etc. This can be done by managing the page tables
//! remotely, similarly to managing the DTU endpoints remotely."
//!
//! [`AddrSpace`] prototypes the demand-paging half: the kernel owns the
//! page table; a load or store to an unmapped virtual address raises a
//! "page fault" — a `Translate` system call — and the kernel allocates a
//! zeroed DRAM frame on first touch and hands back a frame capability. The
//! application caches translations in a small software TLB; eviction just
//! drops the local capability handle, exactly as a hardware TLB forgets an
//! entry.

use std::collections::VecDeque;

use m3_base::error::Result;
use m3_base::marshal::IStream;
use m3_base::Perm;
use m3_kernel::protocol::Syscall;
use m3_kernel::PAGE_SIZE;

use crate::env::Env;
use crate::gate::MemGate;

/// Entries the software TLB holds before evicting the least recent.
pub const TLB_ENTRIES: usize = 8;

struct TlbEntry {
    page: u64,
    frame: MemGate,
}

/// A demand-paged virtual address space.
///
/// # Examples
///
/// See `tests/virtual_memory.rs` for end-to-end usage.
pub struct AddrSpace {
    env: Env,
    perm: Perm,
    tlb: VecDeque<TlbEntry>,
    faults: u64,
    tlb_misses: u64,
}

impl std::fmt::Debug for AddrSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AddrSpace")
            .field("tlb_entries", &self.tlb.len())
            .field("tlb_misses", &self.tlb_misses)
            .finish()
    }
}

impl AddrSpace {
    /// Creates an address space with the given access permissions.
    pub fn new(env: &Env, perm: Perm) -> AddrSpace {
        AddrSpace {
            env: env.clone(),
            perm,
            tlb: VecDeque::new(),
            faults: 0,
            tlb_misses: 0,
        }
    }

    /// Software-TLB misses so far (each one is a kernel round trip).
    pub fn tlb_misses(&self) -> u64 {
        self.tlb_misses
    }

    /// Translate syscalls performed (TLB misses that reached the kernel).
    pub fn page_faults(&self) -> u64 {
        self.faults
    }

    async fn translate(&mut self, virt: u64) -> Result<usize> {
        let page = virt / PAGE_SIZE;
        if let Some(pos) = self.tlb.iter().position(|e| e.page == page) {
            // Move to MRU.
            let entry = self.tlb.remove(pos).expect("position valid");
            self.tlb.push_back(entry);
            return Ok(self.tlb.len() - 1);
        }
        self.tlb_misses += 1;
        let dst = self.env.alloc_sel();
        let data = self
            .env
            .syscall(Syscall::Translate {
                dst,
                virt,
                perm: self.perm,
            })
            .await?;
        let mut is = IStream::new(&data);
        let _page_base = is.pop_u64()?;
        self.faults += 1;
        if self.tlb.len() == TLB_ENTRIES {
            self.tlb.pop_front(); // capability handle dropped, like a TLB evict
        }
        self.tlb.push_back(TlbEntry {
            page,
            frame: MemGate::bind(&self.env, dst),
        });
        Ok(self.tlb.len() - 1)
    }

    /// Reads `buf.len()` bytes at virtual address `virt`, faulting pages in
    /// as needed (unmapped pages read as zeros, as freshly allocated frames
    /// are zeroed).
    ///
    /// # Errors
    ///
    /// Propagates kernel and DTU errors.
    pub async fn read(&mut self, virt: u64, buf: &mut [u8]) -> Result<()> {
        let mut pos = 0usize;
        while pos < buf.len() {
            let addr = virt + pos as u64;
            let off = addr % PAGE_SIZE;
            let n = ((PAGE_SIZE - off) as usize).min(buf.len() - pos);
            let idx = self.translate(addr).await?;
            let data = self.tlb[idx].frame.read(off, n).await?;
            buf[pos..pos + n].copy_from_slice(&data);
            pos += n;
        }
        Ok(())
    }

    /// Writes `data` at virtual address `virt`, faulting pages in as
    /// needed.
    ///
    /// # Errors
    ///
    /// Propagates kernel and DTU errors.
    pub async fn write(&mut self, virt: u64, data: &[u8]) -> Result<()> {
        let mut pos = 0usize;
        while pos < data.len() {
            let addr = virt + pos as u64;
            let off = addr % PAGE_SIZE;
            let n = ((PAGE_SIZE - off) as usize).min(data.len() - pos);
            let idx = self.translate(addr).await?;
            self.tlb[idx].frame.write(off, &data[pos..pos + n]).await?;
            pos += n;
        }
        Ok(())
    }

    /// Unmaps the page containing `virt`, freeing its frame and dropping
    /// any TLB entry.
    ///
    /// # Errors
    ///
    /// Returns [`m3_base::error::Code::InvArgs`] if the page was never
    /// touched.
    pub async fn unmap(&mut self, virt: u64) -> Result<()> {
        let page = virt / PAGE_SIZE;
        self.tlb.retain(|e| e.page != page);
        self.env.syscall(Syscall::Unmap { virt }).await?;
        Ok(())
    }
}
