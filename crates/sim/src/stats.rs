//! Shared statistics counters for instrumenting simulated components.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// An index-based handle to one counter, resolved once via
/// [`Stats::handle`]. Incrementing through a handle is a vector index, not a
/// string-keyed map lookup — use it on hot paths (the DTU bumps several
/// counters per message).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StatHandle(usize);

#[derive(Default)]
struct Inner {
    /// Counter name → index into `values`. Only consulted by the string API
    /// and when resolving handles; the dump order stays name-sorted.
    index: BTreeMap<String, usize>,
    values: Vec<u64>,
}

impl Inner {
    fn slot(&mut self, key: &str) -> usize {
        if let Some(&i) = self.index.get(key) {
            return i;
        }
        let i = self.values.len();
        self.values.push(0);
        self.index.insert(key.to_string(), i);
        i
    }
}

/// A bag of named counters shared across a simulation.
///
/// Components increment counters (messages sent, bytes transferred, cache
/// misses, …); benchmarks and tests read them afterwards. Values live in a
/// flat vector; a name index keeps the dump order stable and lets hot paths
/// pre-resolve a [`StatHandle`] so per-increment cost is an array index.
///
/// # Examples
///
/// ```
/// use m3_sim::Stats;
///
/// let stats = Stats::new();
/// stats.add("noc.bytes", 4096);
/// stats.incr("noc.packets");
/// assert_eq!(stats.get("noc.bytes"), 4096);
/// assert_eq!(stats.get("noc.packets"), 1);
/// assert_eq!(stats.get("unknown"), 0);
///
/// // Hot paths resolve the name once:
/// let h = stats.handle("noc.bytes");
/// stats.add_handle(h, 4096);
/// assert_eq!(stats.get("noc.bytes"), 8192);
/// ```
#[derive(Clone, Default)]
pub struct Stats {
    inner: Rc<RefCell<Inner>>,
}

impl Stats {
    /// Creates an empty counter bag.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Registers (or finds) the counter `key` and returns its handle.
    ///
    /// Handles stay valid for the lifetime of the `Stats` bag and all its
    /// clones; [`Stats::clear`] invalidates them.
    pub fn handle(&self, key: &str) -> StatHandle {
        StatHandle(self.inner.borrow_mut().slot(key))
    }

    /// Adds `n` to the counter behind `h`. Saturates at `u64::MAX`.
    pub fn add_handle(&self, h: StatHandle, n: u64) {
        let mut inner = self.inner.borrow_mut();
        let slot = &mut inner.values[h.0];
        *slot = slot.saturating_add(n);
    }

    /// Increments the counter behind `h` by one.
    pub fn incr_handle(&self, h: StatHandle) {
        self.add_handle(h, 1);
    }

    /// Adds `n` to the counter `key`, creating it at zero if absent.
    /// Saturates at `u64::MAX` instead of wrapping (or panicking in debug
    /// builds) on overflow.
    pub fn add(&self, key: &str, n: u64) {
        let mut inner = self.inner.borrow_mut();
        let i = inner.slot(key);
        let slot = &mut inner.values[i];
        *slot = slot.saturating_add(n);
    }

    /// Increments the counter `key` by one.
    pub fn incr(&self, key: &str) {
        self.add(key, 1);
    }

    /// Reads a counter; absent counters read as zero.
    pub fn get(&self, key: &str) -> u64 {
        let inner = self.inner.borrow();
        inner.index.get(key).map(|&i| inner.values[i]).unwrap_or(0)
    }

    /// Resets all counters and forgets their names. Previously issued
    /// [`StatHandle`]s are invalidated.
    pub fn clear(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.index.clear();
        inner.values.clear();
    }

    /// Returns a snapshot of all counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let inner = self.inner.borrow();
        inner
            .index
            .iter()
            .map(|(k, &i)| (k.clone(), inner.values[i]))
            .collect()
    }
}

impl fmt::Debug for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_map()
            .entries(inner.index.iter().map(|(k, &i)| (k, inner.values[i])))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = Stats::new();
        stats.add("x", 3);
        stats.add("x", 4);
        stats.incr("x");
        assert_eq!(stats.get("x"), 8);
    }

    #[test]
    fn add_saturates_instead_of_panicking() {
        let stats = Stats::new();
        stats.add("near-max", u64::MAX - 1);
        stats.add("near-max", 5);
        assert_eq!(stats.get("near-max"), u64::MAX);
        stats.incr("near-max");
        assert_eq!(stats.get("near-max"), u64::MAX);
    }

    #[test]
    fn clones_share_state() {
        let a = Stats::new();
        let b = a.clone();
        a.incr("shared");
        assert_eq!(b.get("shared"), 1);
    }

    #[test]
    fn snapshot_is_sorted() {
        let stats = Stats::new();
        stats.incr("b");
        stats.incr("a");
        stats.incr("c");
        let snap = stats.snapshot();
        let keys: Vec<&str> = snap.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }

    #[test]
    fn clear_resets() {
        let stats = Stats::new();
        stats.incr("x");
        stats.clear();
        assert_eq!(stats.get("x"), 0);
        assert!(stats.snapshot().is_empty());
    }

    #[test]
    fn handles_alias_the_named_counter() {
        let stats = Stats::new();
        stats.add("dtu.bytes", 10);
        let h = stats.handle("dtu.bytes");
        stats.add_handle(h, 5);
        stats.incr_handle(h);
        assert_eq!(stats.get("dtu.bytes"), 16);
        // Handles resolve before first use too.
        let h2 = stats.handle("fresh");
        stats.incr_handle(h2);
        assert_eq!(stats.get("fresh"), 1);
        // Same name, same slot.
        assert_eq!(stats.handle("dtu.bytes"), h);
    }

    #[test]
    fn handle_add_saturates() {
        let stats = Stats::new();
        let h = stats.handle("h");
        stats.add_handle(h, u64::MAX - 1);
        stats.add_handle(h, 7);
        assert_eq!(stats.get("h"), u64::MAX);
    }
}
