//! Shared statistics counters for instrumenting simulated components.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// A bag of named counters shared across a simulation.
///
/// Components increment counters (messages sent, bytes transferred, cache
/// misses, …); benchmarks and tests read them afterwards. A `BTreeMap` keeps
/// the dump order stable.
///
/// # Examples
///
/// ```
/// use m3_sim::Stats;
///
/// let stats = Stats::new();
/// stats.add("noc.bytes", 4096);
/// stats.incr("noc.packets");
/// assert_eq!(stats.get("noc.bytes"), 4096);
/// assert_eq!(stats.get("noc.packets"), 1);
/// assert_eq!(stats.get("unknown"), 0);
/// ```
#[derive(Clone, Default)]
pub struct Stats {
    counters: Rc<RefCell<BTreeMap<String, u64>>>,
}

impl Stats {
    /// Creates an empty counter bag.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Adds `n` to the counter `key`, creating it at zero if absent.
    /// Saturates at `u64::MAX` instead of wrapping (or panicking in debug
    /// builds) on overflow.
    pub fn add(&self, key: &str, n: u64) {
        let mut counters = self.counters.borrow_mut();
        let slot = counters.entry(key.to_string()).or_insert(0);
        *slot = slot.saturating_add(n);
    }

    /// Increments the counter `key` by one.
    pub fn incr(&self, key: &str) {
        self.add(key, 1);
    }

    /// Reads a counter; absent counters read as zero.
    pub fn get(&self, key: &str) -> u64 {
        self.counters.borrow().get(key).copied().unwrap_or(0)
    }

    /// Resets all counters.
    pub fn clear(&self) {
        self.counters.borrow_mut().clear();
    }

    /// Returns a snapshot of all counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

impl fmt::Debug for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.counters.borrow().iter())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = Stats::new();
        stats.add("x", 3);
        stats.add("x", 4);
        stats.incr("x");
        assert_eq!(stats.get("x"), 8);
    }

    #[test]
    fn add_saturates_instead_of_panicking() {
        let stats = Stats::new();
        stats.add("near-max", u64::MAX - 1);
        stats.add("near-max", 5);
        assert_eq!(stats.get("near-max"), u64::MAX);
        stats.incr("near-max");
        assert_eq!(stats.get("near-max"), u64::MAX);
    }

    #[test]
    fn clones_share_state() {
        let a = Stats::new();
        let b = a.clone();
        a.incr("shared");
        assert_eq!(b.get("shared"), 1);
    }

    #[test]
    fn snapshot_is_sorted() {
        let stats = Stats::new();
        stats.incr("b");
        stats.incr("a");
        stats.incr("c");
        let snap = stats.snapshot();
        let keys: Vec<&str> = snap.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }

    #[test]
    fn clear_resets() {
        let stats = Stats::new();
        stats.incr("x");
        stats.clear();
        assert_eq!(stats.get("x"), 0);
        assert!(stats.snapshot().is_empty());
    }
}
