//! A deterministic discrete-event simulation engine.
//!
//! The paper evaluates M3 on a cycle-accurate SystemC simulator of the
//! Tomahawk MPSoC. This crate is the Rust substitute: simulated components
//! (PE programs, DTUs, the kernel, services) are ordinary `async fn`s that
//! suspend on simulated time ([`Sim::sleep`]) or on events ([`Notify`]), and a
//! single-threaded executor advances a global cycle clock in
//! (time, scheduling-sequence) order. Every run is bit-for-bit deterministic,
//! which is what makes simulated cycle counts usable as measurements.
//!
//! # Examples
//!
//! ```
//! use m3_base::cycles::Cycles;
//! use m3_sim::Sim;
//!
//! let sim = Sim::new();
//! let handle = sim.spawn("worker", {
//!     let sim = sim.clone();
//!     async move {
//!         sim.sleep(Cycles::new(100)).await;
//!         sim.now()
//!     }
//! });
//! sim.run();
//! assert_eq!(handle.try_take().unwrap(), Cycles::new(100));
//! ```

mod channel;
mod deadline;
mod executor;
pub mod gauges;
mod notify;
pub mod pdes;
mod stats;

pub use channel::{channel, Receiver, Sender};
pub use deadline::with_deadline;
pub use executor::{JoinHandle, Sim, SimState};
pub use m3_trace::{
    keys, Component, Event, EventKind, Histogram, LatencyHistogram, Metrics, Recorder,
};
pub use notify::Notify;
pub use stats::{StatHandle, Stats};
