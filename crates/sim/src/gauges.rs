//! Process-global executor gauges for host-performance tracking.
//!
//! Each [`crate::Sim`] keeps plain per-run counters on its hot paths (no
//! atomics per poll) and merges the unreported delta here after every
//! run/settle call and when the simulation is dropped (daemon tasks keep
//! many `Sim`s alive through reference cycles, so drop alone would miss
//! them). The perf harness snapshots the globals before and after a figure
//! to attribute executor work to it; the atomics make that safe even when
//! scenarios run on worker threads.

use std::sync::atomic::{AtomicU64, Ordering};

static TASKS_SPAWNED: AtomicU64 = AtomicU64::new(0);
static TASK_POLLS: AtomicU64 = AtomicU64::new(0);
static TIMERS_SCHEDULED: AtomicU64 = AtomicU64::new(0);
static TIMERS_DEDUPED: AtomicU64 = AtomicU64::new(0);
static PEAK_LIVE_TASKS: AtomicU64 = AtomicU64::new(0);
static PEAK_PENDING_TIMERS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of (or contribution to) the executor gauges.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Gauges {
    /// Total tasks ever spawned.
    pub tasks_spawned: u64,
    /// Total future polls.
    pub task_polls: u64,
    /// Total timers registered.
    pub timers_scheduled: u64,
    /// Timer registrations skipped because an identical (deadline, waker)
    /// entry was already armed — churn the dedupe in
    /// [`crate::Sim::schedule_wake`] absorbed.
    pub timers_deduped: u64,
    /// Highest number of concurrently live tasks in any single `Sim`.
    pub peak_live_tasks: u64,
    /// Highest number of pending timers in any single `Sim`.
    pub peak_pending_timers: u64,
}

impl Gauges {
    /// Component-wise difference against an earlier snapshot. Totals
    /// subtract; peaks are already per-`Sim` maxima, so the later value is
    /// kept as-is.
    #[must_use]
    pub fn since(&self, earlier: &Gauges) -> Gauges {
        Gauges {
            tasks_spawned: self.tasks_spawned.wrapping_sub(earlier.tasks_spawned),
            task_polls: self.task_polls.wrapping_sub(earlier.task_polls),
            timers_scheduled: self.timers_scheduled.wrapping_sub(earlier.timers_scheduled),
            timers_deduped: self.timers_deduped.wrapping_sub(earlier.timers_deduped),
            peak_live_tasks: self.peak_live_tasks,
            peak_pending_timers: self.peak_pending_timers,
        }
    }
}

/// Merges one finished simulation's counters into the process totals.
pub(crate) fn merge(g: Gauges) {
    TASKS_SPAWNED.fetch_add(g.tasks_spawned, Ordering::Relaxed);
    TASK_POLLS.fetch_add(g.task_polls, Ordering::Relaxed);
    TIMERS_SCHEDULED.fetch_add(g.timers_scheduled, Ordering::Relaxed);
    TIMERS_DEDUPED.fetch_add(g.timers_deduped, Ordering::Relaxed);
    PEAK_LIVE_TASKS.fetch_max(g.peak_live_tasks, Ordering::Relaxed);
    PEAK_PENDING_TIMERS.fetch_max(g.peak_pending_timers, Ordering::Relaxed);
}

/// Reads the current process-wide gauge values.
///
/// Includes every simulation that has finished a run/settle call or been
/// dropped; work done since a `Sim`'s last run call appears once it runs
/// again or goes away.
pub fn snapshot() -> Gauges {
    Gauges {
        tasks_spawned: TASKS_SPAWNED.load(Ordering::Relaxed),
        task_polls: TASK_POLLS.load(Ordering::Relaxed),
        timers_scheduled: TIMERS_SCHEDULED.load(Ordering::Relaxed),
        timers_deduped: TIMERS_DEDUPED.load(Ordering::Relaxed),
        peak_live_tasks: PEAK_LIVE_TASKS.load(Ordering::Relaxed),
        peak_pending_timers: PEAK_PENDING_TIMERS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;
    use m3_base::cycles::Cycles;

    #[test]
    fn dropped_sim_contributes_to_globals() {
        let before = snapshot();
        {
            let sim = Sim::new();
            for i in 0..5u64 {
                let sim2 = sim.clone();
                sim.spawn(format!("g{i}"), async move {
                    sim2.sleep(Cycles::new(i)).await;
                });
            }
            sim.run();
        } // drop merges
        let delta = snapshot().since(&before);
        assert_eq!(delta.tasks_spawned, 5);
        assert!(delta.task_polls >= 10, "each task polls at least twice");
        assert_eq!(delta.timers_scheduled, 5);
        assert!(snapshot().peak_live_tasks >= 5);
        assert!(snapshot().peak_pending_timers >= 1);
    }
}
