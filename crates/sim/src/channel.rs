//! An unbounded, single-threaded channel between simulated tasks.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use m3_base::error::{Code, Error, Result};

use crate::notify::Notify;

#[derive(Debug)]
struct Shared<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

/// Sending half of a [`channel`].
#[derive(Debug)]
pub struct Sender<T> {
    shared: Rc<RefCell<Shared<T>>>,
    cond: Notify,
}

/// Receiving half of a [`channel`].
#[derive(Debug)]
pub struct Receiver<T> {
    shared: Rc<RefCell<Shared<T>>>,
    cond: Notify,
}

/// Creates an unbounded channel.
///
/// Mostly a convenience for tests and tooling; the OS-level communication in
/// this workspace goes through the DTU model instead.
///
/// # Examples
///
/// ```
/// use m3_sim::{channel, Sim};
///
/// let sim = Sim::new();
/// let (tx, rx) = channel::<u32>();
/// let consumer = sim.spawn("rx", async move { rx.recv().await });
/// sim.spawn("tx", async move {
///     tx.send(5).unwrap();
/// });
/// sim.run();
/// assert_eq!(consumer.try_take().unwrap().unwrap(), 5);
/// ```
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Rc::new(RefCell::new(Shared {
        queue: VecDeque::new(),
        senders: 1,
        receiver_alive: true,
    }));
    let cond = Notify::new();
    (
        Sender {
            shared: shared.clone(),
            cond: cond.clone(),
        },
        Receiver { shared, cond },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.borrow_mut().senders += 1;
        Sender {
            shared: self.shared.clone(),
            cond: self.cond.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.shared.borrow_mut();
        s.senders -= 1;
        if s.senders == 0 {
            drop(s);
            self.cond.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues a value.
    ///
    /// # Errors
    ///
    /// Returns [`Code::EndOfStream`] (with the value lost) if the receiver
    /// was dropped.
    pub fn send(&self, value: T) -> Result<()> {
        let mut s = self.shared.borrow_mut();
        if !s.receiver_alive {
            return Err(Error::new(Code::EndOfStream).with_msg("receiver dropped"));
        }
        s.queue.push_back(value);
        drop(s);
        self.cond.notify_one();
        Ok(())
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.borrow_mut().receiver_alive = false;
    }
}

impl<T> Receiver<T> {
    /// Waits for and dequeues the next value.
    ///
    /// # Errors
    ///
    /// Returns [`Code::EndOfStream`] when all senders are dropped and the
    /// queue is empty.
    pub async fn recv(&self) -> Result<T> {
        loop {
            {
                let mut s = self.shared.borrow_mut();
                if let Some(v) = s.queue.pop_front() {
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(Error::new(Code::EndOfStream).with_msg("all senders dropped"));
                }
            }
            self.cond.wait().await;
        }
    }

    /// Dequeues a value if one is available, without waiting.
    pub fn try_recv(&self) -> Option<T> {
        self.shared.borrow_mut().queue.pop_front()
    }

    /// Number of queued values.
    pub fn len(&self) -> usize {
        self.shared.borrow().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.shared.borrow().queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimState};
    use m3_base::Cycles;

    #[test]
    fn values_arrive_in_order() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let h = sim.spawn("rx", async move {
            let mut out = Vec::new();
            for _ in 0..3 {
                out.push(rx.recv().await.unwrap());
            }
            out
        });
        let sim2 = sim.clone();
        sim.spawn("tx", async move {
            for i in 0..3 {
                tx.send(i).unwrap();
                sim2.sleep(Cycles::new(10)).await;
            }
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn recv_after_all_senders_dropped_is_eof() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        let h = sim.spawn("rx", async move {
            let first = rx.recv().await;
            let second = rx.recv().await;
            (first.unwrap(), second.unwrap_err().code())
        });
        assert_eq!(sim.run(), SimState::Finished);
        assert_eq!(h.try_take().unwrap(), (1, Code::EndOfStream));
    }

    #[test]
    fn send_after_receiver_dropped_fails() {
        let (tx, rx) = channel::<u32>();
        drop(rx);
        assert_eq!(tx.send(1).unwrap_err().code(), Code::EndOfStream);
    }

    #[test]
    fn clone_counts_senders() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        let h = sim.spawn("rx", async move { rx.recv().await.map_err(|e| e.code()) });
        sim.spawn("tx2", async move {
            tx2.send(9).unwrap();
        });
        sim.run();
        assert_eq!(h.try_take().unwrap().unwrap(), 9);
    }

    #[test]
    fn try_recv_and_len() {
        let (tx, rx) = channel::<u32>();
        assert!(rx.is_empty());
        assert_eq!(rx.try_recv(), None);
        tx.send(7).unwrap();
        assert_eq!(rx.len(), 1);
        assert_eq!(rx.try_recv(), Some(7));
        assert!(rx.is_empty());
    }
}
