//! An edge-triggered wait/notify primitive for simulated tasks.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

#[derive(Debug)]
struct Waiter {
    woken: bool,
    waker: Option<Waker>,
}

/// A condition-variable-like notification primitive.
///
/// Like a condition variable, a notification is only delivered to tasks that
/// are *already waiting*: callers must check their predicate before waiting
/// and re-check it afterwards. In this single-threaded executor there is no
/// window between the predicate check and the `wait().await` registration, so
/// the usual lost-wakeup loop is all that is needed:
///
/// ```
/// use std::cell::Cell;
/// use std::rc::Rc;
/// use m3_sim::{Notify, Sim};
///
/// let sim = Sim::new();
/// let flag = Rc::new(Cell::new(false));
/// let cond = Notify::new();
///
/// let (f2, c2, s2) = (flag.clone(), cond.clone(), sim.clone());
/// let waiter = sim.spawn("waiter", async move {
///     while !f2.get() {
///         c2.wait().await;
///     }
///     s2.now()
/// });
///
/// let (f3, c3, s3) = (flag, cond, sim.clone());
/// sim.spawn("setter", async move {
///     s3.sleep(m3_base::Cycles::new(10)).await;
///     f3.set(true);
///     c3.notify_all();
/// });
///
/// sim.run();
/// assert_eq!(waiter.try_take().unwrap(), m3_base::Cycles::new(10));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Notify {
    waiters: Rc<RefCell<Vec<Rc<RefCell<Waiter>>>>>,
}

impl Notify {
    /// Creates a notification primitive with no waiters.
    pub fn new() -> Notify {
        Notify::default()
    }

    /// Wakes every task currently waiting.
    pub fn notify_all(&self) {
        let waiters = std::mem::take(&mut *self.waiters.borrow_mut());
        for w in waiters {
            let mut w = w.borrow_mut();
            w.woken = true;
            if let Some(waker) = w.waker.take() {
                waker.wake();
            }
        }
    }

    /// Wakes at most one waiting task (the longest-waiting one).
    pub fn notify_one(&self) {
        let first = {
            let mut ws = self.waiters.borrow_mut();
            if ws.is_empty() {
                None
            } else {
                Some(ws.remove(0))
            }
        };
        if let Some(w) = first {
            let mut w = w.borrow_mut();
            w.woken = true;
            if let Some(waker) = w.waker.take() {
                waker.wake();
            }
        }
    }

    /// Returns a future that completes at the next notification.
    pub fn wait(&self) -> Wait {
        Wait {
            notify: self.clone(),
            waiter: None,
        }
    }

    /// Number of tasks currently waiting (diagnostics only).
    pub fn waiter_count(&self) -> usize {
        self.waiters.borrow().len()
    }
}

/// Future returned by [`Notify::wait`].
#[derive(Debug)]
pub struct Wait {
    notify: Notify,
    waiter: Option<Rc<RefCell<Waiter>>>,
}

impl Future for Wait {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        match &self.waiter {
            None => {
                let waiter = Rc::new(RefCell::new(Waiter {
                    woken: false,
                    waker: Some(cx.waker().clone()),
                }));
                self.notify.waiters.borrow_mut().push(waiter.clone());
                self.waiter = Some(waiter);
                Poll::Pending
            }
            Some(w) => {
                let mut w = w.borrow_mut();
                if w.woken {
                    Poll::Ready(())
                } else {
                    w.waker = Some(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for Wait {
    fn drop(&mut self) {
        // Deregister if the wait was cancelled (e.g. by a select), so the
        // waiter list does not grow without bound.
        if let Some(w) = &self.waiter {
            let mut ws = self.notify.waiters.borrow_mut();
            ws.retain(|other| !Rc::ptr_eq(other, w));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;
    use m3_base::Cycles;
    use std::cell::Cell;

    #[test]
    fn notify_all_wakes_every_waiter() {
        let sim = Sim::new();
        let cond = Notify::new();
        let count = Rc::new(Cell::new(0));
        for i in 0..3 {
            let cond = cond.clone();
            let count = count.clone();
            sim.spawn(format!("w{i}"), async move {
                cond.wait().await;
                count.set(count.get() + 1);
            });
        }
        let cond2 = cond.clone();
        let sim2 = sim.clone();
        sim.spawn("notifier", async move {
            sim2.sleep(Cycles::new(5)).await;
            cond2.notify_all();
        });
        sim.run();
        assert_eq!(count.get(), 3);
    }

    #[test]
    fn notify_one_wakes_exactly_one() {
        let sim = Sim::new();
        let cond = Notify::new();
        let count = Rc::new(Cell::new(0));
        for i in 0..3 {
            let cond = cond.clone();
            let count = count.clone();
            sim.spawn(format!("w{i}"), async move {
                cond.wait().await;
                count.set(count.get() + 1);
            });
        }
        let cond2 = cond.clone();
        let sim2 = sim.clone();
        sim.spawn("notifier", async move {
            sim2.sleep(Cycles::new(5)).await;
            cond2.notify_one();
        });
        // Two waiters remain stalled.
        match sim.run() {
            crate::SimState::Stalled(names) => assert_eq!(names.len(), 2),
            other => panic!("expected stall, got {other:?}"),
        }
        assert_eq!(count.get(), 1);
    }

    #[test]
    fn notification_before_wait_is_lost() {
        let sim = Sim::new();
        let cond = Notify::new();
        cond.notify_all(); // nobody waiting: no-op
        let cond2 = cond.clone();
        sim.spawn("late-waiter", async move {
            cond2.wait().await;
        });
        assert!(matches!(sim.run(), crate::SimState::Stalled(_)));
    }

    #[test]
    fn waiter_count_tracks_registration() {
        let sim = Sim::new();
        let cond = Notify::new();
        let cond2 = cond.clone();
        sim.spawn("w", async move {
            cond2.wait().await;
        });
        let cond3 = cond.clone();
        let sim2 = sim.clone();
        sim.spawn("check", async move {
            sim2.sleep(Cycles::new(1)).await;
            assert_eq!(cond3.waiter_count(), 1);
            cond3.notify_all();
            assert_eq!(cond3.waiter_count(), 0);
        });
        assert_eq!(sim.run(), crate::SimState::Finished);
    }
}
