//! Conservative-lookahead parallel discrete-event simulation (PDES).
//!
//! The engine partitions a platform into *islands* — disjoint groups of
//! PEs, each simulated by its own [`Sim`] (slab executor + timer wheel) on
//! a worker thread — and synchronizes them in bounded time windows, the
//! approach parti-gem5 and MGSim use for tile-based manycores. The window
//! width comes from the *lookahead*: the minimum simulated latency of any
//! cross-island NoC transfer (`m3_noc::IslandMap::lookahead`). Inside a
//! window every island advances freely; events that cross a boundary are
//! exported as timestamped [`PdesEvent`]s and delivered at the next
//! barrier, which is always soon enough because nothing can cross the NoC
//! faster than the lookahead.
//!
//! # The synchronization protocol
//!
//! Each round the coordinator computes `base`, the earliest time any
//! island can act (minimum of every island's next event and every
//! undelivered cross-island event), and closes the window at
//! `end = base + lookahead - 1`:
//!
//! 1. deliver every pending event with `at <= end` to its destination
//!    island's port, in `(at, src island, seq)` order;
//! 2. run every island's executor up to `end` ([`Sim::run_window`]);
//! 3. collect newly exported events — the lookahead guarantees each has
//!    `at > end`, so step 1 of a later round delivers it in time.
//!
//! # Determinism
//!
//! Results are bit-identical for every worker count by construction, not
//! by tie-breaking heroics at runtime: the window sequence is a function
//! of simulated state only, each island's execution inside a window is the
//! ordinary deterministic single-threaded executor, and the one genuinely
//! concurrent step — merging event streams from islands that ran in
//! parallel — orders them by the total key `(timestamp, source island,
//! sequence number)`. Worker threads only change which host core runs an
//! island, never what the island observes. [`Sim::run_window`] also never
//! advances a clock to the barrier itself, so traces contain no artifact
//! of where the window boundaries fell.
//!
//! # What lives where
//!
//! `Sim` is `!Send` (single-threaded by design), so island *builders* are
//! `Send` closures shipped to the worker thread, which constructs the
//! island there; everything crossing threads afterwards is plain data.
//! Cross-island messages travel as bytes (see `m3_dtu::wire`) through
//! numbered [`PortRx`] inboxes registered by the builder.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;
use std::sync::mpsc;

use m3_base::Cycles;
use m3_trace::{Component, Event, EventKind};

use crate::executor::Sim;
use crate::notify::Notify;

/// A timestamped event crossing an island boundary.
///
/// The derived `Ord` is the deterministic merge order: timestamp, then
/// source island, then per-source sequence number. `(src, seq)` is unique,
/// so the order is total and identical for every worker count.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PdesEvent {
    /// Simulated delivery time (the NoC arrival time at the destination).
    pub at: Cycles,
    /// Source island.
    pub src: u32,
    /// Sequence number within the source island, in emission order.
    pub seq: u64,
    /// Destination island.
    pub dst: u32,
    /// Destination port (registered via [`IslandCtx::port`]).
    pub port: usize,
    /// Opaque payload, typically a `m3_dtu::wire`-encoded message.
    pub bytes: Vec<u8>,
}

/// Residency of one island over the whole run, in simulated cycles.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IslandStats {
    /// Cycles the island's clock advanced inside windows (busy).
    pub advanced: Cycles,
    /// Cycles between the island's last local event and each barrier
    /// (idle: the island was done early and waited for the fleet).
    pub barrier_wait: Cycles,
    /// Cross-island events delivered to this island.
    pub events_in: u64,
    /// Cross-island events this island emitted.
    pub events_out: u64,
    /// The island's clock when the run ended.
    pub final_now: Cycles,
}

/// The outcome of a [`run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PdesReport {
    /// Per-island output strings, in island order (whatever each island's
    /// finish closure extracted — results, digests, …).
    pub outputs: Vec<String>,
    /// Per-island residency, in island order.
    pub islands: Vec<IslandStats>,
    /// Number of synchronization windows executed.
    pub windows: u64,
    /// Total cross-island events delivered.
    pub events: u64,
    /// Undelivered events dropped at termination (addressed to islands
    /// whose regular tasks had all finished — the windowed analogue of
    /// [`Sim::run`] abandoning in-flight daemon work).
    pub abandoned: u64,
    /// The latest island clock at termination.
    pub end_time: Cycles,
}

/// Engine parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PdesConfig {
    /// Window width: the minimum cross-island event latency. Must be the
    /// *minimum* over all island pairs or the run is not conservative;
    /// derive it with `m3_noc::IslandMap::lookahead`.
    pub lookahead: Cycles,
    /// Worker threads; clamped to `[1, islands]`. The results are
    /// identical for every value — this only trades wall-clock time.
    pub workers: usize,
}

/// Extracts an island's result after its last window, on its thread.
pub type IslandFinish = Box<dyn FnOnce(&IslandCtx) -> String>;

/// Builds one island inside its freshly created [`Sim`], registering ports
/// and spawning tasks; runs once on the worker thread before any window.
pub type IslandBuilder = Box<dyn FnOnce(&IslandCtx) -> IslandFinish + Send>;

/// Timestamped payloads queued on one inbound port, shared between the
/// engine (which pushes at delivery time) and [`PortRx`] clones.
type PortQueue = Rc<RefCell<VecDeque<(Cycles, Vec<u8>)>>>;

struct PortState {
    queue: PortQueue,
    notify: Notify,
}

struct CtxInner {
    sim: Sim,
    id: u32,
    islands: u32,
    lookahead: Cycles,
    seq: RefCell<u64>,
    outbox: RefCell<Vec<PdesEvent>>,
    ports: RefCell<BTreeMap<usize, PortState>>,
}

/// One island's handle on the engine: its [`Sim`], its identity, and the
/// boundary — inbound ports and the outbound event queue. Cloneable so
/// tasks can capture it.
#[derive(Clone)]
pub struct IslandCtx {
    inner: Rc<CtxInner>,
}

impl IslandCtx {
    fn new(id: u32, islands: u32, lookahead: Cycles) -> IslandCtx {
        IslandCtx {
            inner: Rc::new(CtxInner {
                sim: Sim::new(),
                id,
                islands,
                lookahead,
                seq: RefCell::new(0),
                outbox: RefCell::new(Vec::new()),
                ports: RefCell::new(BTreeMap::new()),
            }),
        }
    }

    /// The island's simulation.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// This island's id.
    pub fn id(&self) -> u32 {
        self.inner.id
    }

    /// Number of islands in the run.
    pub fn islands(&self) -> u32 {
        self.inner.islands
    }

    /// The engine's lookahead (minimum legal cross-island latency).
    pub fn lookahead(&self) -> Cycles {
        self.inner.lookahead
    }

    /// Registers (or returns) inbound port `idx`. Ports must be registered
    /// by the island builder — delivery to an unregistered port panics, as
    /// it means a message raced island construction.
    pub fn port(&self, idx: usize) -> PortRx {
        let mut ports = self.inner.ports.borrow_mut();
        let state = ports.entry(idx).or_insert_with(|| PortState {
            queue: Rc::new(RefCell::new(VecDeque::new())),
            notify: Notify::new(),
        });
        PortRx {
            sim: self.inner.sim.clone(),
            queue: state.queue.clone(),
            notify: state.notify.clone(),
        }
    }

    /// Emits a cross-island event arriving at `dst`'s port `port` at
    /// simulated time `at`.
    ///
    /// # Panics
    ///
    /// Panics when the event violates the conservative contract: `at` must
    /// be at least `now + lookahead` (a correctly modelled NoC transfer
    /// always is — see `IslandMap::lookahead`), and `dst` must be another
    /// island of this run.
    pub fn send(&self, at: Cycles, dst: u32, port: usize, bytes: Vec<u8>) {
        let now = self.inner.sim.now();
        assert!(
            at >= now + self.inner.lookahead,
            "island {}: event at {at} violates lookahead {} (now {now})",
            self.inner.id,
            self.inner.lookahead,
        );
        assert!(
            dst < self.inner.islands && dst != self.inner.id,
            "island {}: bad destination island {dst}",
            self.inner.id,
        );
        let seq = {
            let mut seq = self.inner.seq.borrow_mut();
            *seq += 1;
            *seq - 1
        };
        self.inner.outbox.borrow_mut().push(PdesEvent {
            at,
            src: self.inner.id,
            seq,
            dst,
            port,
            bytes,
        });
    }

    fn deposit(&self, ev: PdesEvent) {
        debug_assert!(ev.at > self.inner.sim.now(), "late delivery");
        let ports = self.inner.ports.borrow();
        let Some(state) = ports.get(&ev.port) else {
            panic!(
                "island {}: no port {} for event from island {}",
                self.inner.id, ev.port, ev.src
            );
        };
        state.queue.borrow_mut().push_back((ev.at, ev.bytes));
        state.notify.notify_all();
    }

    fn drain_outbox(&self) -> Vec<PdesEvent> {
        std::mem::take(&mut self.inner.outbox.borrow_mut())
    }
}

/// The receive side of an inbound island port.
///
/// Cloneable; clones share the queue. Arrivals on one port are already in
/// deterministic merge order and strictly increasing in time, so a single
/// pump task draining the port sees a well-defined sequence.
#[derive(Clone)]
pub struct PortRx {
    sim: Sim,
    queue: PortQueue,
    notify: Notify,
}

impl PortRx {
    /// Receives the next event, completing exactly at its delivery time.
    pub async fn recv(&self) -> (Cycles, Vec<u8>) {
        loop {
            let front_at = self.queue.borrow().front().map(|(at, _)| *at);
            match front_at {
                Some(at) if at <= self.sim.now() => {
                    return self.queue.borrow_mut().pop_front().expect("checked front");
                }
                // The barrier only delivers events after the local clock
                // passed `at - 1`, so sleeping to `at` cannot overshoot a
                // not-yet-delivered earlier event.
                Some(at) => self.sim.sleep_until(at).await,
                None => self.notify.wait().await,
            }
        }
    }

    /// Events currently queued (delivered but not yet received).
    pub fn len(&self) -> usize {
        self.queue.borrow().len()
    }

    /// Whether no delivered event is waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.borrow().is_empty()
    }
}

enum Command {
    /// Run one window up to `end`, delivering `events` first (keyed by
    /// island id, each list already in merge order).
    Window {
        end: Cycles,
        events: BTreeMap<u32, Vec<PdesEvent>>,
    },
    Finish,
}

struct WindowReply {
    island: u32,
    next: Option<Cycles>,
    live: usize,
    out: Vec<PdesEvent>,
    stalled: Vec<String>,
}

enum Reply {
    Window(WindowReply),
    Finished {
        island: u32,
        output: String,
        stats: IslandStats,
    },
}

struct WorkerIsland {
    ctx: IslandCtx,
    finish: Option<IslandFinish>,
    stats: IslandStats,
}

impl WorkerIsland {
    fn report(&self) -> WindowReply {
        let sim = self.ctx.sim();
        let next = sim.next_event_time();
        let live = sim.live_regular();
        WindowReply {
            island: self.ctx.id(),
            next,
            live,
            out: self.ctx.drain_outbox(),
            stalled: if next.is_none() && live > 0 {
                sim.regular_task_names()
            } else {
                Vec::new()
            },
        }
    }

    fn run_window(&mut self, end: Cycles, events: Vec<PdesEvent>) -> WindowReply {
        self.stats.events_in += events.len() as u64;
        for ev in events {
            self.ctx.deposit(ev);
        }
        let sim = self.ctx.sim().clone();
        let before = sim.now();
        sim.run_window(end);
        let after = sim.now();
        let (advanced, waited) = (after - before, end - after);
        self.stats.advanced += advanced;
        self.stats.barrier_wait += waited;
        let island = self.ctx.id();
        sim.tracer().record_with(|| Event {
            at: after,
            dur: Cycles::ZERO,
            pe: None,
            comp: Component::Sched,
            kind: EventKind::IslandWindow {
                island,
                advanced,
                waited,
            },
        });
        let reply = self.report();
        self.stats.events_out += reply.out.len() as u64;
        reply
    }

    fn finish(mut self) -> Reply {
        let output = (self.finish.take().expect("finish runs once"))(&self.ctx);
        self.stats.final_now = self.ctx.sim().now();
        self.ctx.sim().flush_gauges();
        Reply::Finished {
            island: self.ctx.id(),
            output,
            stats: self.stats,
        }
    }
}

fn worker(
    islands_total: u32,
    lookahead: Cycles,
    builders: Vec<(u32, IslandBuilder)>,
    commands: mpsc::Receiver<Command>,
    replies: mpsc::Sender<Reply>,
) {
    let mut islands: Vec<WorkerIsland> = builders
        .into_iter()
        .map(|(id, build)| {
            let ctx = IslandCtx::new(id, islands_total, lookahead);
            let finish = build(&ctx);
            WorkerIsland {
                ctx,
                finish: Some(finish),
                stats: IslandStats::default(),
            }
        })
        .collect();
    // Initial horizon report, before any window.
    for isl in &islands {
        let _ = replies.send(Reply::Window(isl.report()));
    }
    while let Ok(cmd) = commands.recv() {
        match cmd {
            Command::Window { end, mut events } => {
                for isl in &mut islands {
                    let evs = events.remove(&isl.ctx.id()).unwrap_or_default();
                    let reply = isl.run_window(end, evs);
                    let _ = replies.send(Reply::Window(reply));
                }
            }
            Command::Finish => {
                for isl in islands {
                    let _ = replies.send(isl.finish());
                }
                return;
            }
        }
    }
}

/// Runs `builders.len()` islands to completion under the window protocol
/// and returns their outputs and residency.
///
/// Terminates when every island's regular (non-daemon) tasks have
/// finished, mirroring [`Sim::run`]; cross-island events still in flight
/// at that point are dropped and counted in [`PdesReport::abandoned`].
///
/// # Panics
///
/// Panics when every island is blocked with regular tasks still live and
/// no event in flight (the distributed analogue of `SimState::Stalled`),
/// or when an island violates the lookahead contract.
pub fn run(cfg: &PdesConfig, builders: Vec<IslandBuilder>) -> PdesReport {
    assert!(
        cfg.lookahead >= Cycles::new(1),
        "lookahead must be positive"
    );
    assert!(!builders.is_empty(), "need at least one island");
    let islands = builders.len() as u32;
    let workers = cfg.workers.clamp(1, builders.len());

    // Contiguous chunks, wide chunks first (mirrors IslandMap::columns).
    let base = builders.len() / workers;
    let extra = builders.len() % workers;
    let mut chunks: Vec<Vec<(u32, IslandBuilder)>> = Vec::with_capacity(workers);
    let mut next_id = 0u32;
    let mut rest = builders;
    for w in 0..workers {
        let take = base + usize::from(w < extra);
        let mut chunk = Vec::with_capacity(take);
        for b in rest.drain(..take) {
            chunk.push((next_id, b));
            next_id += 1;
        }
        chunks.push(chunk);
    }

    let mut island_thread: Vec<usize> = Vec::with_capacity(islands as usize);
    let mut thread_islands: Vec<usize> = Vec::with_capacity(workers);
    for (t, chunk) in chunks.iter().enumerate() {
        island_thread.extend(std::iter::repeat_n(t, chunk.len()));
        thread_islands.push(chunk.len());
    }

    std::thread::scope(|scope| {
        let mut cmd_txs = Vec::with_capacity(workers);
        // One reply channel per worker: a worker that dies (panic in an
        // island) closes its channel, so the coordinator fails fast
        // instead of waiting forever on a shared channel the healthy
        // workers keep open.
        let mut reply_rxs = Vec::with_capacity(workers);
        for chunk in chunks {
            let (cmd_tx, cmd_rx) = mpsc::channel::<Command>();
            let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
            let lookahead = cfg.lookahead;
            scope.spawn(move || worker(islands, lookahead, chunk, cmd_rx, reply_tx));
            cmd_txs.push(cmd_tx);
            reply_rxs.push(reply_rx);
        }

        let mut next: Vec<Option<Cycles>> = vec![None; islands as usize];
        let mut live: Vec<usize> = vec![0; islands as usize];
        let mut stalled: Vec<Vec<String>> = vec![Vec::new(); islands as usize];
        let mut pending: BTreeSet<PdesEvent> = BTreeSet::new();
        let mut windows = 0u64;
        let mut delivered = 0u64;

        let collect_round = |pending: &mut BTreeSet<PdesEvent>,
                             next: &mut Vec<Option<Cycles>>,
                             live: &mut Vec<usize>,
                             stalled: &mut Vec<Vec<String>>,
                             window_end: Option<Cycles>| {
            for (rx, count) in reply_rxs.iter().zip(&thread_islands) {
                for _ in 0..*count {
                    match rx.recv().expect("island worker died") {
                        Reply::Window(r) => {
                            let i = r.island as usize;
                            next[i] = r.next;
                            live[i] = r.live;
                            stalled[i] = r.stalled;
                            for ev in r.out {
                                if let Some(end) = window_end {
                                    assert!(ev.at > end, "island {} broke lookahead", r.island);
                                }
                                pending.insert(ev);
                            }
                        }
                        Reply::Finished { .. } => unreachable!("finish not requested yet"),
                    }
                }
            }
        };

        collect_round(&mut pending, &mut next, &mut live, &mut stalled, None);

        loop {
            if live.iter().all(|&l| l == 0) {
                break;
            }
            let mut base: Option<Cycles> = pending.first().map(|e| e.at);
            for n in next.iter().flatten() {
                base = Some(base.map_or(*n, |b| b.min(*n)));
            }
            let Some(window_base) = base else {
                let names: Vec<String> = stalled.concat();
                panic!("pdes stalled: no island can make progress; live tasks: {names:?}");
            };
            let end = window_base + cfg.lookahead - Cycles::new(1);

            let mut deliveries: BTreeMap<u32, Vec<PdesEvent>> = BTreeMap::new();
            while let Some(first) = pending.first() {
                if first.at > end {
                    break;
                }
                let ev = pending.pop_first().expect("checked first");
                delivered += 1;
                deliveries.entry(ev.dst).or_default().push(ev);
            }
            let mut per_thread: Vec<BTreeMap<u32, Vec<PdesEvent>>> =
                (0..workers).map(|_| BTreeMap::new()).collect();
            for (dst, evs) in deliveries {
                per_thread[island_thread[dst as usize]].insert(dst, evs);
            }
            for (tx, events) in cmd_txs.iter().zip(per_thread) {
                tx.send(Command::Window { end, events })
                    .expect("island worker died");
            }
            collect_round(&mut pending, &mut next, &mut live, &mut stalled, Some(end));
            windows += 1;
        }

        for tx in &cmd_txs {
            tx.send(Command::Finish).expect("island worker died");
        }
        let mut outputs: Vec<Option<String>> = vec![None; islands as usize];
        let mut stats: Vec<Option<IslandStats>> = vec![None; islands as usize];
        for (rx, count) in reply_rxs.iter().zip(&thread_islands) {
            for _ in 0..*count {
                match rx.recv().expect("island worker died") {
                    Reply::Finished {
                        island,
                        output,
                        stats: s,
                    } => {
                        outputs[island as usize] = Some(output);
                        stats[island as usize] = Some(s);
                    }
                    Reply::Window(_) => unreachable!("windows are all collected"),
                }
            }
        }
        let stats: Vec<IslandStats> = stats.into_iter().map(|s| s.expect("reported")).collect();
        let end_time = stats
            .iter()
            .map(|s| s.final_now)
            .max()
            .unwrap_or(Cycles::ZERO);
        PdesReport {
            outputs: outputs.into_iter().map(|o| o.expect("reported")).collect(),
            islands: stats,
            windows,
            events: delivered,
            abandoned: pending.len() as u64,
            end_time,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(workers: usize) -> PdesConfig {
        PdesConfig {
            lookahead: Cycles::new(7),
            workers,
        }
    }

    /// Island 0 sends `rounds` pings to island 1; island 1 echoes each
    /// back. Both report their final time and everything they saw.
    fn ping_pong(rounds: u64) -> Vec<IslandBuilder> {
        let ping: IslandBuilder = Box::new(move |ctx: &IslandCtx| {
            let rx = ctx.port(0);
            let ctx2 = ctx.clone();
            let log = Rc::new(RefCell::new(String::new()));
            let log2 = log.clone();
            ctx.sim().spawn("pinger", async move {
                for i in 0..rounds {
                    let now = ctx2.sim().now();
                    ctx2.send(now + ctx2.lookahead(), 1, 0, vec![i as u8]);
                    let (at, bytes) = rx.recv().await;
                    use std::fmt::Write as _;
                    let _ = write!(log2.borrow_mut(), "{}@{};", bytes[0], at);
                }
            });
            let log = log.clone();
            Box::new(move |ctx: &IslandCtx| format!("{}|{}", log.borrow(), ctx.sim().now()))
        });
        let pong: IslandBuilder = Box::new(move |ctx: &IslandCtx| {
            let rx = ctx.port(0);
            let ctx2 = ctx.clone();
            ctx.sim().spawn("ponger", async move {
                for _ in 0..rounds {
                    let (_, bytes) = rx.recv().await;
                    let now = ctx2.sim().now();
                    ctx2.send(now + ctx2.lookahead(), 0, 0, bytes);
                }
            });
            Box::new(|ctx: &IslandCtx| ctx.sim().now().to_string())
        });
        vec![ping, pong]
    }

    #[test]
    fn ping_pong_round_trip_takes_two_lookaheads_per_round() {
        let report = run(&cfg(1), ping_pong(3));
        // Each round: ping at now+7 delivered at now+7, echo at +14.
        assert_eq!(report.outputs[0], "0@14;1@28;2@42;|42");
        assert_eq!(report.events, 6);
        assert_eq!(report.abandoned, 0);
        assert_eq!(report.end_time, Cycles::new(42));
        assert!(report.windows >= 6, "windows: {}", report.windows);
    }

    #[test]
    fn results_are_identical_for_every_worker_count() {
        let reference = run(&cfg(1), ping_pong(5));
        for workers in [2, 3, 8] {
            let report = run(&cfg(workers), ping_pong(5));
            assert_eq!(report, reference, "workers={workers}");
        }
    }

    #[test]
    fn merge_order_breaks_timestamp_ties_by_source_island() {
        // Islands 1 and 2 both send to island 0 with the same timestamp;
        // the receiver must see island 1's event first, regardless of
        // which worker thread ran which island.
        let build = || -> Vec<IslandBuilder> {
            let sink: IslandBuilder = Box::new(|ctx: &IslandCtx| {
                let rx = ctx.port(0);
                let order = Rc::new(RefCell::new(Vec::<u8>::new()));
                let order2 = order.clone();
                ctx.sim().spawn("sink", async move {
                    for _ in 0..2 {
                        let (_, bytes) = rx.recv().await;
                        order2.borrow_mut().push(bytes[0]);
                    }
                });
                Box::new(move |_| format!("{:?}", order.borrow()))
            });
            let src = |tag: u8| -> IslandBuilder {
                Box::new(move |ctx: &IslandCtx| {
                    let ctx2 = ctx.clone();
                    ctx.sim().spawn("src", async move {
                        ctx2.send(Cycles::new(10), 0, 0, vec![tag]);
                    });
                    Box::new(|_: &IslandCtx| String::new())
                })
            };
            vec![sink, src(1), src(2)]
        };
        for workers in [1, 2, 3] {
            let report = run(&cfg(workers), build());
            assert_eq!(report.outputs[0], "[1, 2]", "workers={workers}");
        }
    }

    #[test]
    fn daemons_do_not_block_termination() {
        let one: IslandBuilder = Box::new(|ctx: &IslandCtx| {
            let sim = ctx.sim().clone();
            let sim2 = sim.clone();
            sim.spawn_daemon("ticker", async move {
                loop {
                    sim2.sleep(Cycles::new(5)).await;
                }
            });
            let sim3 = sim.clone();
            sim.spawn("work", async move {
                sim3.sleep(Cycles::new(12)).await;
            });
            Box::new(|ctx: &IslandCtx| ctx.sim().now().to_string())
        });
        let report = run(&cfg(1), vec![one]);
        // The work task finishes at 12, which falls in the window
        // [10, 16]; the daemon tick at 15 is inside that window and still
        // fires (a window always runs to its end), but the tick at 20 is
        // past the final barrier and is abandoned, exactly like
        // `Sim::run` abandons daemon timers once regular tasks are done.
        assert_eq!(report.islands[0].final_now, Cycles::new(15));
        assert_eq!(report.end_time, Cycles::new(15));
    }

    #[test]
    fn residency_accounts_busy_and_barrier_wait() {
        let report = run(&cfg(2), ping_pong(4));
        for s in &report.islands {
            // Both islands end at the same final barrier time, so busy +
            // wait covers the same span on each.
            assert!((s.advanced + s.barrier_wait).as_u64() > 0, "{s:?}");
        }
        assert_eq!(report.islands[0].events_in, 4);
        assert_eq!(report.islands[0].events_out, 4);
    }

    #[test]
    fn island_window_events_record_residency_in_traces() {
        let one: IslandBuilder = Box::new(|ctx: &IslandCtx| {
            ctx.sim().enable_trace();
            let sim = ctx.sim().clone();
            ctx.sim().spawn("work", async move {
                sim.sleep(Cycles::new(20)).await;
            });
            Box::new(|ctx: &IslandCtx| {
                let windows = ctx
                    .sim()
                    .trace()
                    .iter()
                    .filter(|e| matches!(e.kind, EventKind::IslandWindow { .. }))
                    .count();
                windows.to_string()
            })
        });
        let report = run(&cfg(1), vec![one]);
        let recorded: u64 = report.outputs[0].parse().unwrap();
        assert_eq!(recorded, report.windows);
    }

    #[test]
    #[should_panic(expected = "island worker")]
    fn lookahead_violation_is_fatal() {
        let bad: IslandBuilder = Box::new(|ctx: &IslandCtx| {
            let ctx2 = ctx.clone();
            ctx.sim().spawn("cheater", async move {
                // One cycle short of the lookahead: must be rejected.
                ctx2.send(ctx2.lookahead() - Cycles::new(1), 1, 0, vec![]);
            });
            Box::new(|_: &IslandCtx| String::new())
        });
        let idle: IslandBuilder = Box::new(|ctx: &IslandCtx| {
            ctx.port(0);
            Box::new(|_: &IslandCtx| String::new())
        });
        run(&cfg(2), vec![bad, idle]);
    }

    #[test]
    #[should_panic(expected = "pdes stalled")]
    fn cross_island_deadlock_reports_stall() {
        let waiting = || -> IslandBuilder {
            Box::new(|ctx: &IslandCtx| {
                let rx = ctx.port(0);
                ctx.sim().spawn("forever", async move {
                    let _ = rx.recv().await;
                });
                Box::new(|_: &IslandCtx| String::new())
            })
        };
        run(&cfg(1), vec![waiting(), waiting()]);
    }
}
