//! Racing a future against a simulated-time deadline.
//!
//! This is the primitive beneath every timeout in the recovery layer:
//! `recv` with a deadline, `call` with retries, etc. It is safe to race
//! arbitrary sim futures because the executor's wait primitives
//! ([`crate::Notify`]'s guard, [`Sleep`](crate::executor)) deregister
//! themselves on drop — losing the race cannot leave a dangling waker that
//! would later wake a completed task.

use std::future::Future;
use std::task::Poll;

use m3_base::Cycles;

use crate::Sim;

/// Polls `fut` to completion unless the simulated clock reaches `deadline`
/// first; returns `None` on timeout.
///
/// The future is polled before the timer on every wake, so a result that is
/// ready exactly at the deadline still wins the race (deterministically).
///
/// The deadline is (re-)registered on every pending poll with the poll's
/// *current* waker — a one-shot registration would go stale if the future
/// is later polled through a different waker, and the timeout would wake
/// the wrong task. The executor deduplicates re-registrations of an
/// unchanged deadline by the same task (`timers_deduped`), so the hot
/// path — a raced receive re-polled thousands of times per timeout window
/// — arms exactly one timer instead of one per poll.
pub async fn with_deadline<F: Future>(sim: &Sim, deadline: Cycles, fut: F) -> Option<F::Output> {
    let mut fut = Box::pin(fut);
    let sim = sim.clone();
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = fut.as_mut().poll(cx) {
            return Poll::Ready(Some(v));
        }
        let now = sim.now();
        if now >= deadline {
            return Poll::Ready(None);
        }
        sim.schedule_wake(deadline - now, cx.waker().clone());
        Poll::Pending
    })
    .await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Notify, SimState};
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn completes_before_deadline() {
        let sim = Sim::new();
        let out = Rc::new(Cell::new(None));
        {
            let sim2 = sim.clone();
            let out = out.clone();
            sim.spawn("racer", async move {
                let got = with_deadline(&sim2, Cycles::new(100), async {
                    sim2.sleep(Cycles::new(10)).await;
                    7u32
                })
                .await;
                out.set(Some(got));
            });
        }
        assert_eq!(sim.run(), SimState::Finished);
        assert_eq!(out.get(), Some(Some(7)));
        assert_eq!(sim.now(), Cycles::new(10));
    }

    #[test]
    fn times_out_and_clock_rests_at_deadline() {
        let sim = Sim::new();
        let notify = Rc::new(Notify::new());
        let out = Rc::new(Cell::new(None));
        {
            let sim2 = sim.clone();
            let notify = notify.clone();
            let out = out.clone();
            sim.spawn("racer", async move {
                // Nobody ever notifies: the deadline must win.
                let got = with_deadline(&sim2, Cycles::new(50), notify.wait()).await;
                out.set(Some(got.is_none()));
            });
        }
        assert_eq!(sim.run(), SimState::Finished);
        assert_eq!(out.get(), Some(true));
        assert_eq!(sim.now(), Cycles::new(50));
        // The loser deregistered itself: no leaked waiter.
        assert_eq!(notify.waiter_count(), 0);
    }

    #[test]
    fn past_deadline_still_gives_the_future_one_poll() {
        let sim = Sim::new();
        let out = Rc::new(Cell::new(None));
        {
            let sim2 = sim.clone();
            let out = out.clone();
            sim.spawn("racer", async move {
                sim2.sleep(Cycles::new(20)).await;
                let got = with_deadline(&sim2, Cycles::new(5), async { 1u32 }).await;
                out.set(Some(got));
            });
        }
        assert_eq!(sim.run(), SimState::Finished);
        assert_eq!(out.get(), Some(Some(1)));
    }
}
