//! The clock, the event queue, and the task executor.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::task::{Context, Poll, Wake, Waker};

use m3_base::cycles::Cycles;
use m3_trace::{Component, Event, EventKind, Metrics, Recorder};

use crate::gauges;
use crate::stats::Stats;

/// A slot-plus-generation task handle.
///
/// Task storage is a slab ([`Inner::slots`]); slots are recycled through a
/// free list, so a bare index could alias a dead task with a later one. The
/// generation disambiguates: a waker holding a stale `TaskId` finds the
/// slot's generation advanced and is ignored, exactly like the old
/// map-lookup miss.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct TaskId {
    slot: u32,
    gen: u32,
}

type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

/// The shared ready-queue the wakers push into.
///
/// Wakers must be `Send + Sync` by API contract even though this executor is
/// single-threaded, hence the (uncontended) mutex.
#[derive(Default)]
struct ReadyQueue {
    queue: Mutex<VecDeque<TaskId>>,
}

impl ReadyQueue {
    /// Locks the queue. The executor is single-threaded, so the lock is
    /// never contended; a poisoned lock (a panic while pushing a `TaskId`)
    /// leaves the queue intact, so recovering the guard is sound.
    fn lock(&self) -> MutexGuard<'_, VecDeque<TaskId>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

struct TaskWaker {
    task: TaskId,
    ready: Arc<ReadyQueue>,
    /// Deduplicates wake-ups between polls.
    queued: AtomicBool,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if !self.queued.swap(true, Ordering::Relaxed) {
            self.ready.lock().push_back(self.task);
        }
    }
}

struct Task {
    /// Interned once at spawn; trace events and stall reports clone the
    /// `Rc`, not the characters.
    name: Rc<str>,
    future: BoxFuture,
    waker_state: Arc<TaskWaker>,
    daemon: bool,
}

/// One slab slot: the current generation plus the task occupying it (if
/// any). The generation advances when the occupant is removed.
struct Slot {
    gen: u32,
    task: Option<Task>,
}

/// Where a run stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimState {
    /// Every spawned task ran to completion.
    Finished,
    /// Tasks remain but none can make progress (no pending timer either).
    /// Carries the names of the stalled tasks.
    Stalled(Vec<String>),
    /// The time limit passed to [`Sim::run_until`] was reached.
    TimeLimit,
}

struct Inner {
    now: Cycles,
    next_seq: u64,
    /// Live tasks that are not daemons; the run loop finishes when this
    /// reaches zero.
    live_regular: usize,
    /// Task slab, indexed by `TaskId::slot`. Vacant slots are listed in
    /// `free` and reused in LIFO order.
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Timer wheel: (deadline, sequence) -> waker. `Reverse` makes the
    /// `BinaryHeap` a min-heap; the sequence number keeps same-cycle events in
    /// scheduling order, which is what makes runs deterministic.
    timers: BinaryHeap<Reverse<(Cycles, u64, TimerEntry)>>,
    /// Mirror of the heap for deduplication: every armed deadline maps to
    /// the wakers registered at it. A re-registration of an *unchanged*
    /// deadline by the same task (`Waker::will_wake`) is dropped — the
    /// armed entry will deliver the identical wake, so skipping the push is
    /// behavior-preserving while keeping the heap (and `timers_scheduled`)
    /// from ballooning under deadline-racing loops.
    armed: BTreeMap<Cycles, Vec<Waker>>,
    stats: Stats,
    /// Host-side gauges, merged into [`gauges`] after every run/settle call
    /// and on drop. `reported` remembers what was already contributed so
    /// repeated flushes only add the delta.
    spawned: u64,
    polls: u64,
    timers_scheduled: u64,
    timers_deduped: u64,
    peak_tasks: u64,
    peak_timers: u64,
    reported: gauges::Gauges,
}

impl Inner {
    /// Pushes a timer entry, tagging it with the next scheduling sequence
    /// number. Both the initial registration and the re-queue paths (limit
    /// reached in `run_inner`, slack exceeded in `settle`) go through here,
    /// so the (deadline, sequence) ordering semantics cannot drift apart.
    /// The dedupe mirror is kept in sync: `armed` only ever names wakers
    /// that have a live heap entry.
    fn push_timer(&mut self, deadline: Cycles, entry: TimerEntry) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.armed
            .entry(deadline)
            .or_default()
            .push(entry.0.clone());
        self.timers.push(Reverse((deadline, seq, entry)));
        self.peak_timers = self.peak_timers.max(self.timers.len() as u64);
    }

    /// Pops the earliest timer entry, removing it from the dedupe mirror.
    fn pop_timer(&mut self) -> Option<(Cycles, u64, TimerEntry)> {
        let Reverse((deadline, seq, entry)) = self.timers.pop()?;
        if let Some(wakers) = self.armed.get_mut(&deadline) {
            if let Some(pos) = wakers.iter().position(|w| w.will_wake(&entry.0)) {
                wakers.swap_remove(pos);
            }
            if wakers.is_empty() {
                self.armed.remove(&deadline);
            }
        }
        Some((deadline, seq, entry))
    }

    /// Whether a timer for the same task is already armed at `deadline`.
    /// Firing that entry wakes the task exactly like the new registration
    /// would (wake-ups between polls are deduplicated anyway), so the
    /// duplicate push can be skipped without changing any schedule.
    fn already_armed(&self, deadline: Cycles, waker: &Waker) -> bool {
        self.armed
            .get(&deadline)
            .is_some_and(|ws| ws.iter().any(|w| w.will_wake(waker)))
    }

    /// The earliest moment something can happen: `now` while tasks are
    /// still queued ready, otherwise the next timer deadline.
    fn next_event_time(&self, ready_empty: bool) -> Option<Cycles> {
        if !ready_empty {
            return Some(self.now);
        }
        self.timers.peek().map(|Reverse((d, _, _))| *d)
    }

    fn live_tasks(&self) -> u64 {
        (self.slots.len() - self.free.len()) as u64
    }

    /// Contributes everything not yet reported to the process-wide gauges.
    /// Runs after every run/settle call (a `Sim` kept alive by daemon-task
    /// reference cycles would otherwise never report) and again on drop.
    fn flush_gauges(&mut self) {
        let totals = gauges::Gauges {
            tasks_spawned: self.spawned,
            task_polls: self.polls,
            timers_scheduled: self.timers_scheduled,
            timers_deduped: self.timers_deduped,
            peak_live_tasks: self.peak_tasks,
            peak_pending_timers: self.peak_timers,
        };
        gauges::merge(totals.since(&self.reported));
        self.reported = totals;
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        self.flush_gauges();
    }
}

/// Wrapper so the heap can order entries without comparing wakers.
struct TimerEntry(Waker);

impl PartialEq for TimerEntry {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// A handle to the simulation: clock, spawner, and run loop.
///
/// `Sim` is cheaply cloneable; all clones refer to the same simulation.
/// It is single-threaded by design (`!Send`): determinism comes from a total
/// order on task scheduling.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<RefCell<Inner>>,
    ready: Arc<ReadyQueue>,
    recorder: Recorder,
    metrics: Metrics,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Sim")
            .field("now", &inner.now)
            .field("live_tasks", &inner.live_tasks())
            .field("pending_timers", &inner.timers.len())
            .finish()
    }
}

impl Sim {
    /// Creates a simulation with the clock at cycle zero and no tasks.
    pub fn new() -> Sim {
        Sim {
            inner: Rc::new(RefCell::new(Inner {
                now: Cycles::ZERO,
                next_seq: 0,
                live_regular: 0,
                slots: Vec::new(),
                free: Vec::new(),
                timers: BinaryHeap::new(),
                armed: BTreeMap::new(),
                stats: Stats::new(),
                spawned: 0,
                polls: 0,
                timers_scheduled: 0,
                timers_deduped: 0,
                peak_tasks: 0,
                peak_timers: 0,
                reported: gauges::Gauges::default(),
            })),
            ready: Arc::new(ReadyQueue::default()),
            recorder: Recorder::new(),
            metrics: Metrics::new(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> Cycles {
        self.inner.borrow().now
    }

    /// Access to the shared statistics counters.
    pub fn stats(&self) -> Stats {
        self.inner.borrow().stats.clone()
    }

    /// The shared event recorder. Components clone this to emit typed
    /// events; it is disabled (and therefore free) until
    /// [`Sim::enable_trace`] is called.
    pub fn tracer(&self) -> Recorder {
        self.recorder.clone()
    }

    /// The shared per-PE metrics bag (always on).
    pub fn metrics(&self) -> Metrics {
        self.metrics.clone()
    }

    /// Turns on event tracing across all components that share this
    /// simulation's [`Recorder`].
    pub fn enable_trace(&self) {
        self.recorder.enable();
    }

    /// Returns (a copy of) the recorded trace; empty when tracing is off.
    pub fn trace(&self) -> Vec<Event> {
        self.recorder.events()
    }

    /// Spawns a task and returns a handle to its eventual result.
    ///
    /// The task starts in the ready queue and is first polled when the run
    /// loop next runs. `name` appears in stall diagnostics.
    pub fn spawn<F>(&self, name: impl Into<String>, future: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.spawn_inner(name, future, false)
    }

    /// Spawns a *daemon* task: one that serves others forever (the kernel's
    /// syscall loop, a filesystem service) and does not keep the simulation
    /// alive. [`Sim::run`] returns [`SimState::Finished`] once only daemons
    /// remain.
    pub fn spawn_daemon<F>(&self, name: impl Into<String>, future: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.spawn_inner(name, future, true)
    }

    fn spawn_inner<F>(
        &self,
        name: impl Into<String>,
        future: F,
        daemon: bool,
    ) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let slot: Rc<RefCell<Option<F::Output>>> = Rc::new(RefCell::new(None));
        let done = crate::notify::Notify::new();
        let handle = JoinHandle {
            slot: slot.clone(),
            done: done.clone(),
        };
        let wrapped = async move {
            let out = future.await;
            *slot.borrow_mut() = Some(out);
            done.notify_all();
        };
        let name: Rc<str> = Rc::from(name.into());

        let mut inner = self.inner.borrow_mut();
        let idx = match inner.free.pop() {
            Some(idx) => idx,
            None => {
                inner.slots.push(Slot { gen: 0, task: None });
                (inner.slots.len() - 1) as u32
            }
        };
        let id = TaskId {
            slot: idx,
            gen: inner.slots[idx as usize].gen,
        };
        let waker_state = Arc::new(TaskWaker {
            task: id,
            ready: self.ready.clone(),
            queued: AtomicBool::new(true), // starts queued
        });
        inner.slots[idx as usize].task = Some(Task {
            name: name.clone(),
            future: Box::pin(wrapped),
            waker_state,
            daemon,
        });
        if !daemon {
            inner.live_regular += 1;
        }
        inner.spawned += 1;
        let live = inner.live_tasks();
        inner.peak_tasks = inner.peak_tasks.max(live);
        let at = inner.now;
        self.recorder.record_with(|| Event {
            at,
            dur: Cycles::ZERO,
            pe: None,
            comp: Component::Sched,
            kind: EventKind::TaskSpawn {
                name: name.clone(),
                daemon,
            },
        });
        drop(inner);
        self.ready.lock().push_back(id);
        handle
    }

    /// Registers `waker` to fire `delay` cycles from now.
    ///
    /// Re-registering an unchanged deadline for the same task is free: the
    /// already-armed entry delivers the identical wake-up, so the duplicate
    /// is counted in `timers_deduped` and dropped instead of growing the
    /// heap (deadline-racing loops — `with_deadline` retries against a
    /// fixed deadline, watchdogs re-arming their detection point — would
    /// otherwise re-push the same timer every iteration).
    pub fn schedule_wake(&self, delay: Cycles, waker: Waker) {
        let mut inner = self.inner.borrow_mut();
        let deadline = inner.now + delay;
        if inner.already_armed(deadline, &waker) {
            inner.timers_deduped += 1;
            return;
        }
        inner.timers_scheduled += 1;
        inner.push_timer(deadline, TimerEntry(waker));
    }

    /// Suspends the calling task for `delay` simulated cycles.
    ///
    /// Sleeping zero cycles still yields once, giving same-cycle events a
    /// chance to run (analogous to a delta cycle in SystemC).
    pub fn sleep(&self, delay: Cycles) -> Sleep {
        Sleep {
            sim: self.clone(),
            delay,
            deadline: None,
        }
    }

    /// Suspends the calling task until the clock reaches `deadline`.
    ///
    /// If `deadline` is in the past, behaves like a zero-cycle sleep.
    pub fn sleep_until(&self, deadline: Cycles) -> Sleep {
        let delay = deadline.saturating_sub(self.now());
        self.sleep(delay)
    }

    /// Runs until all tasks finish or no progress is possible.
    ///
    /// # Panics
    ///
    /// Does not panic on a stall; inspect the returned [`SimState`].
    pub fn run(&self) -> SimState {
        self.run_inner(None)
    }

    /// Runs until all tasks finish, progress stops, or the clock passes
    /// `limit`.
    ///
    /// The limit is *inclusive*: a timer scheduled exactly at `limit` still
    /// fires before the run stops. On [`SimState::TimeLimit`] the clock
    /// rests at `limit` — unless the clock was already past it, in which
    /// case it stays where it was (the clock never moves backward).
    pub fn run_until(&self, limit: Cycles) -> SimState {
        self.run_inner(Some(limit))
    }

    /// The earliest moment this simulation can make progress: `now` while
    /// ready tasks are queued, otherwise the next pending timer deadline
    /// (daemon timers included). `None` means nothing can happen without an
    /// external wake-up — every task is blocked on a notification.
    ///
    /// This is the quantity a conservative PDES coordinator aggregates
    /// across islands to place the next window barrier.
    pub fn next_event_time(&self) -> Option<Cycles> {
        let ready_empty = self.ready.lock().is_empty();
        self.inner.borrow().next_event_time(ready_empty)
    }

    /// Number of live non-daemon tasks.
    pub fn live_regular(&self) -> usize {
        self.inner.borrow().live_regular
    }

    /// Names of the live non-daemon tasks (stall diagnostics across PDES
    /// islands; the single-Sim run loop reports the same list through
    /// [`SimState::Stalled`]).
    pub fn regular_task_names(&self) -> Vec<String> {
        self.inner
            .borrow()
            .slots
            .iter()
            .filter_map(|s| s.task.as_ref())
            .filter(|t| !t.daemon)
            .map(|t| t.name.to_string())
            .collect()
    }

    /// Runs every ready task and every timer with deadline `<= end`, then
    /// returns with the clock resting on the last processed event — it is
    /// *not* advanced to `end` when nothing happens there, so the trace
    /// (including `ClockAdvance` events) is exactly what an unwindowed run
    /// of the same work would record, independent of where the window
    /// barriers fall.
    ///
    /// Unlike [`Sim::run`] this keeps going when only daemons remain: in a
    /// windowed multi-island run another island's tasks may still be live,
    /// and the single-Sim run loop fires daemon timers in that situation
    /// too. The PDES coordinator ([`crate::pdes`]) owns the
    /// all-islands-finished decision.
    pub fn run_window(&self, end: Cycles) {
        loop {
            loop {
                let next = self.ready.lock().pop_front();
                let Some(id) = next else { break };
                self.poll_task(id);
            }
            let mut inner = self.inner.borrow_mut();
            match inner.timers.peek() {
                Some(Reverse((deadline, _, _))) if *deadline <= end => {}
                _ => return,
            }
            let (deadline, _, entry) = inner.pop_timer().expect("timer peeked above");
            debug_assert!(deadline >= inner.now, "time must be monotonic");
            let from = inner.now;
            inner.now = deadline;
            if from != deadline {
                self.recorder.record_with(|| Event {
                    at: deadline,
                    dur: Cycles::ZERO,
                    pe: None,
                    comp: Component::Sched,
                    kind: EventKind::ClockAdvance { from },
                });
            }
            drop(inner);
            entry.0.wake();
        }
    }

    /// Contributes this simulation's unreported gauge deltas to the
    /// process-wide totals. Run/settle calls do this automatically; a
    /// window-stepped island (which never goes through them) flushes here
    /// when its run ends.
    pub fn flush_gauges(&self) {
        self.inner.borrow_mut().flush_gauges();
    }

    /// Lets daemon tasks finish in-flight work after [`Sim::run`] returned:
    /// keeps processing ready tasks and timers — ignoring whether any
    /// regular task is alive — until no timer is pending or the clock would
    /// pass `now + slack`. Daemons blocked on notifications leave no timers,
    /// so this terminates.
    pub fn settle(&self, slack: Cycles) {
        self.settle_inner(slack);
        self.inner.borrow_mut().flush_gauges();
    }

    fn settle_inner(&self, slack: Cycles) {
        let limit = self.now() + slack;
        loop {
            loop {
                let next = self.ready.lock().pop_front();
                let Some(id) = next else { break };
                self.poll_task(id);
            }
            let mut inner = self.inner.borrow_mut();
            let Some((deadline, _, entry)) = inner.pop_timer() else {
                return;
            };
            if deadline > limit {
                inner.push_timer(deadline, entry);
                return;
            }
            inner.now = deadline;
            drop(inner);
            entry.0.wake();
        }
    }

    fn poll_task(&self, id: TaskId) {
        let (mut future, waker) = {
            let mut inner = self.inner.borrow_mut();
            let Some(slot) = inner.slots.get_mut(id.slot as usize) else {
                return;
            };
            // A stale wake-up for a recycled slot must not poll the new
            // occupant: the generation check is the slab equivalent of the
            // old "task no longer in the map" miss.
            if slot.gen != id.gen {
                return;
            }
            let Some(task) = slot.task.as_mut() else {
                return;
            };
            task.waker_state.queued.store(false, Ordering::Relaxed);
            let fut = std::mem::replace(&mut task.future, Box::pin(async {}));
            let name = task.name.clone();
            let waker = Waker::from(task.waker_state.clone());
            inner.polls += 1;
            let at = inner.now;
            self.recorder.record_with(|| Event {
                at,
                dur: Cycles::ZERO,
                pe: None,
                comp: Component::Sched,
                kind: EventKind::TaskPoll { name },
            });
            (fut, waker)
        };
        let mut cx = Context::from_waker(&waker);
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                let mut inner = self.inner.borrow_mut();
                let slot = &mut inner.slots[id.slot as usize];
                if let Some(task) = slot.task.take() {
                    slot.gen = slot.gen.wrapping_add(1);
                    inner.free.push(id.slot);
                    if !task.daemon {
                        inner.live_regular -= 1;
                    }
                    let at = inner.now;
                    self.recorder.record_with(|| Event {
                        at,
                        dur: Cycles::ZERO,
                        pe: None,
                        comp: Component::Sched,
                        kind: EventKind::TaskComplete { name: task.name },
                    });
                }
            }
            Poll::Pending => {
                let mut inner = self.inner.borrow_mut();
                if let Some(slot) = inner.slots.get_mut(id.slot as usize) {
                    if slot.gen == id.gen {
                        if let Some(task) = slot.task.as_mut() {
                            task.future = future;
                        }
                    }
                }
            }
        }
    }

    fn run_inner(&self, limit: Option<Cycles>) -> SimState {
        let state = self.run_loop(limit);
        self.inner.borrow_mut().flush_gauges();
        state
    }

    fn run_loop(&self, limit: Option<Cycles>) -> SimState {
        loop {
            // Drain the ready queue first: all work at the current instant.
            loop {
                let next = self.ready.lock().pop_front();
                let Some(id) = next else { break };
                self.poll_task(id);
            }

            // No task is runnable: advance the clock to the next timer.
            let mut inner = self.inner.borrow_mut();
            if inner.live_regular == 0 {
                return SimState::Finished;
            }
            let Some((deadline, _, entry)) = inner.pop_timer() else {
                let stalled = inner
                    .slots
                    .iter()
                    .filter_map(|s| s.task.as_ref())
                    .filter(|t| !t.daemon)
                    .map(|t| t.name.to_string())
                    .collect();
                return SimState::Stalled(stalled);
            };
            if let Some(limit) = limit {
                if deadline > limit {
                    // Advance to the limit, but never move the clock
                    // backward: a limit below `now` must leave time alone.
                    if limit > inner.now {
                        inner.now = limit;
                    }
                    // Put the timer back for a future run call.
                    inner.push_timer(deadline, entry);
                    return SimState::TimeLimit;
                }
            }
            debug_assert!(deadline >= inner.now, "time must be monotonic");
            let from = inner.now;
            inner.now = deadline;
            if from != deadline {
                self.recorder.record_with(|| Event {
                    at: deadline,
                    dur: Cycles::ZERO,
                    pe: None,
                    comp: Component::Sched,
                    kind: EventKind::ClockAdvance { from },
                });
            }
            drop(inner);
            entry.0.wake();
        }
    }
}

/// Future returned by [`Sim::sleep`].
///
/// Readiness is gated on the recorded deadline, not on "was I polled
/// again": a spurious wake-up (e.g. through a cloned waker) before the
/// deadline leaves the sleep pending, and the originally registered timer
/// still completes it at the right cycle.
#[derive(Debug)]
pub struct Sleep {
    sim: Sim,
    delay: Cycles,
    /// Set on first poll, when the timer is registered.
    deadline: Option<Cycles>,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        match self.deadline {
            Some(deadline) => {
                if self.sim.now() >= deadline {
                    Poll::Ready(())
                } else {
                    // Woken early: the registered timer is still pending and
                    // will wake this task at the deadline; do not re-arm.
                    Poll::Pending
                }
            }
            None => {
                let delay = self.delay;
                let deadline = self.sim.now() + delay;
                self.deadline = Some(deadline);
                self.sim.schedule_wake(delay, cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// A handle to a spawned task's result.
///
/// Await it from another task, or call [`JoinHandle::try_take`] after
/// [`Sim::run`] returns.
#[derive(Debug)]
pub struct JoinHandle<T> {
    slot: Rc<RefCell<Option<T>>>,
    done: crate::notify::Notify,
}

impl<T> JoinHandle<T> {
    /// Takes the result if the task has finished.
    ///
    /// Returns `None` if the task is still running or the result was already
    /// taken.
    pub fn try_take(&self) -> Option<T> {
        self.slot.borrow_mut().take()
    }

    /// Whether the task has produced its result (and it was not taken yet).
    pub fn is_finished(&self) -> bool {
        self.slot.borrow().is_some()
    }

    /// Waits for the task to finish and takes its result.
    ///
    /// # Panics
    ///
    /// Panics if the result was already taken by another waiter.
    pub async fn join(self) -> T {
        loop {
            if let Some(v) = self.slot.borrow_mut().take() {
                return v;
            }
            self.done.wait().await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sim_finishes_immediately() {
        let sim = Sim::new();
        assert_eq!(sim.run(), SimState::Finished);
        assert_eq!(sim.now(), Cycles::ZERO);
    }

    #[test]
    fn sleep_advances_clock() {
        let sim = Sim::new();
        let h = sim.spawn("sleeper", {
            let sim = sim.clone();
            async move {
                sim.sleep(Cycles::new(50)).await;
                sim.sleep(Cycles::new(25)).await;
                sim.now()
            }
        });
        assert_eq!(sim.run(), SimState::Finished);
        assert_eq!(h.try_take().unwrap(), Cycles::new(75));
        assert_eq!(sim.now(), Cycles::new(75));
    }

    #[test]
    fn tasks_interleave_in_time_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<(u64, &str)>>> = Rc::new(RefCell::new(Vec::new()));
        for (name, delay) in [("b", 20u64), ("a", 10), ("c", 30)] {
            let sim2 = sim.clone();
            let log = log.clone();
            sim.spawn(name, async move {
                sim2.sleep(Cycles::new(delay)).await;
                log.borrow_mut().push((sim2.now().as_u64(), name));
            });
        }
        sim.run();
        assert_eq!(&*log.borrow(), &[(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn same_cycle_events_fire_in_spawn_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<&str>>> = Rc::new(RefCell::new(Vec::new()));
        for name in ["first", "second", "third"] {
            let sim2 = sim.clone();
            let log = log.clone();
            sim.spawn(name, async move {
                sim2.sleep(Cycles::new(5)).await;
                log.borrow_mut().push(name);
            });
        }
        sim.run();
        assert_eq!(&*log.borrow(), &["first", "second", "third"]);
    }

    #[test]
    fn join_handle_from_another_task() {
        let sim = Sim::new();
        let h = sim.spawn("producer", {
            let sim = sim.clone();
            async move {
                sim.sleep(Cycles::new(10)).await;
                42
            }
        });
        let h2 = sim.spawn("consumer", async move { h.join().await * 2 });
        sim.run();
        assert_eq!(h2.try_take().unwrap(), 84);
    }

    #[test]
    fn stall_reports_task_names() {
        let sim = Sim::new();
        let n = crate::Notify::new();
        let n2 = n.clone();
        sim.spawn("stuck-task", async move {
            n2.wait().await;
        });
        match sim.run() {
            SimState::Stalled(names) => assert_eq!(names, vec!["stuck-task".to_string()]),
            other => panic!("expected stall, got {other:?}"),
        }
        drop(n);
    }

    #[test]
    fn run_until_respects_limit() {
        let sim = Sim::new();
        sim.spawn("long", {
            let sim = sim.clone();
            async move {
                sim.sleep(Cycles::new(1000)).await;
            }
        });
        assert_eq!(sim.run_until(Cycles::new(100)), SimState::TimeLimit);
        assert_eq!(sim.now(), Cycles::new(100));
        // Continuing the run completes the task.
        assert_eq!(sim.run(), SimState::Finished);
        assert_eq!(sim.now(), Cycles::new(1000));
    }

    #[test]
    fn run_until_limit_is_inclusive() {
        // A timer scheduled exactly at the limit fires before stopping.
        let sim = Sim::new();
        let h = sim.spawn("exact", {
            let sim = sim.clone();
            async move {
                sim.sleep(Cycles::new(100)).await;
                sim.now()
            }
        });
        assert_eq!(sim.run_until(Cycles::new(100)), SimState::Finished);
        assert_eq!(h.try_take().unwrap(), Cycles::new(100));
        assert_eq!(sim.now(), Cycles::new(100));
    }

    #[test]
    fn run_until_never_moves_the_clock_backward() {
        let sim = Sim::new();
        sim.spawn("two-phase", {
            let sim = sim.clone();
            async move {
                sim.sleep(Cycles::new(50)).await;
                sim.sleep(Cycles::new(1000)).await;
            }
        });
        // First run stops at 100 with the second timer still pending.
        assert_eq!(sim.run_until(Cycles::new(100)), SimState::TimeLimit);
        assert_eq!(sim.now(), Cycles::new(100));
        // A limit below the current time must not rewind the clock.
        assert_eq!(sim.run_until(Cycles::new(60)), SimState::TimeLimit);
        assert_eq!(sim.now(), Cycles::new(100));
        assert_eq!(sim.run(), SimState::Finished);
        assert_eq!(sim.now(), Cycles::new(1050));
    }

    #[test]
    fn trace_records_scheduler_events() {
        let sim = Sim::new();
        sim.enable_trace();
        sim.spawn("traced", {
            let sim = sim.clone();
            async move {
                sim.sleep(Cycles::new(10)).await;
            }
        });
        sim.run();
        let tags: Vec<&str> = sim.trace().iter().map(|e| e.kind.tag()).collect();
        assert_eq!(
            tags,
            vec![
                "task_spawn",
                "task_poll",
                "clock_advance",
                "task_poll",
                "task_complete"
            ]
        );
        // Untraced sims record nothing.
        let quiet = Sim::new();
        quiet.spawn("q", async {});
        quiet.run();
        assert!(quiet.trace().is_empty());
    }

    #[test]
    fn zero_sleep_yields_but_does_not_advance() {
        let sim = Sim::new();
        let h = sim.spawn("yielder", {
            let sim = sim.clone();
            async move {
                for _ in 0..10 {
                    sim.sleep(Cycles::ZERO).await;
                }
                sim.now()
            }
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Cycles::ZERO);
    }

    #[test]
    fn sleep_until_past_deadline_is_zero_sleep() {
        let sim = Sim::new();
        let h = sim.spawn("t", {
            let sim = sim.clone();
            async move {
                sim.sleep(Cycles::new(100)).await;
                sim.sleep_until(Cycles::new(50)).await; // already past
                sim.now()
            }
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Cycles::new(100));
    }

    #[test]
    fn determinism_two_identical_runs() {
        fn run_once() -> Vec<(u64, usize)> {
            let sim = Sim::new();
            let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
            for i in 0..20usize {
                let sim2 = sim.clone();
                let log = log.clone();
                sim.spawn(format!("t{i}"), async move {
                    let mut delay = (i as u64 * 7) % 13;
                    for _ in 0..5 {
                        sim2.sleep(Cycles::new(delay)).await;
                        log.borrow_mut().push((sim2.now().as_u64(), i));
                        delay = (delay * 3 + 1) % 17;
                    }
                });
            }
            sim.run();
            let result = log.borrow().clone();
            result
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn daemons_do_not_keep_the_sim_alive() {
        let sim = Sim::new();
        let n = crate::Notify::new();
        let n2 = n.clone();
        // A daemon that waits forever (like the kernel's syscall loop).
        sim.spawn_daemon("kernel-like", async move {
            loop {
                n2.wait().await;
            }
        });
        let h = sim.spawn("app", {
            let sim = sim.clone();
            async move {
                sim.sleep(Cycles::new(10)).await;
                123
            }
        });
        assert_eq!(sim.run(), SimState::Finished);
        assert_eq!(h.try_take().unwrap(), 123);
        drop(n);
    }

    #[test]
    fn stall_report_omits_daemons() {
        let sim = Sim::new();
        let n = crate::Notify::new();
        let (n2, n3) = (n.clone(), n.clone());
        sim.spawn_daemon("daemon", async move {
            n2.wait().await;
        });
        sim.spawn("stuck-app", async move {
            n3.wait().await;
        });
        match sim.run() {
            SimState::Stalled(names) => assert_eq!(names, vec!["stuck-app".to_string()]),
            other => panic!("expected stall, got {other:?}"),
        }
        drop(n);
    }

    #[test]
    fn spawn_from_within_task() {
        let sim = Sim::new();
        let h = sim.spawn("outer", {
            let sim = sim.clone();
            async move {
                let inner = sim.spawn("inner", {
                    let sim = sim.clone();
                    async move {
                        sim.sleep(Cycles::new(5)).await;
                        7
                    }
                });
                inner.join().await
            }
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 7);
    }

    /// A wrapper that injects a spurious wake-up `spurious_at` cycles after
    /// its first poll, then defers to the inner sleep.
    struct SpuriousWake {
        sleep: Sleep,
        sim: Sim,
        spurious_at: Cycles,
        injected: bool,
    }

    impl Future for SpuriousWake {
        type Output = ();

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            let this = self.get_mut();
            if !this.injected {
                this.injected = true;
                this.sim.schedule_wake(this.spurious_at, cx.waker().clone());
            }
            Pin::new(&mut this.sleep).poll(cx)
        }
    }

    #[test]
    fn spurious_wake_does_not_complete_sleep_early() {
        // Regression: `Sleep` used to return `Ready` on *any* second poll,
        // so a wake-up from a cloned waker completed it before its deadline.
        let sim = Sim::new();
        let h = sim.spawn("sleeper", {
            let sim = sim.clone();
            async move {
                SpuriousWake {
                    sleep: sim.sleep(Cycles::new(100)),
                    sim: sim.clone(),
                    spurious_at: Cycles::new(10),
                    injected: false,
                }
                .await;
                sim.now()
            }
        });
        assert_eq!(sim.run(), SimState::Finished);
        assert_eq!(
            h.try_take().unwrap(),
            Cycles::new(100),
            "sleep must not complete at the spurious wake (cycle 10)"
        );
    }

    #[test]
    fn slab_recycles_slots_without_aliasing() {
        // Thousands of short-lived tasks must reuse a handful of slots, and
        // stale wake-ups for dead tasks must never poll their successors.
        let sim = Sim::new();
        let done = Rc::new(Cell::new(0u32));
        for wave in 0..100u64 {
            for i in 0..10u64 {
                let sim2 = sim.clone();
                let done = done.clone();
                sim.spawn(format!("w{wave}-{i}"), async move {
                    sim2.sleep(Cycles::new(wave * 10 + i)).await;
                    done.set(done.get() + 1);
                });
            }
        }
        assert_eq!(sim.run(), SimState::Finished);
        assert_eq!(done.get(), 1000);
        // The slab never grew beyond the 1000 concurrently-live tasks, and
        // the free list got them all back.
        let inner = sim.inner.borrow();
        assert_eq!(inner.slots.len(), 1000);
        assert_eq!(inner.free.len(), 1000);
        assert_eq!(inner.peak_tasks, 1000);
        assert!(inner.peak_timers > 0);
    }

    use std::cell::Cell;
}
