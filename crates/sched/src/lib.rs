//! `m3-sched`: kernel-owned time-multiplexing of VPEs onto PEs.
//!
//! The paper runs exactly one application per PE and names context switching
//! via DTU state save/restore as future work (§4.1, §7). This crate supplies
//! the kernel's scheduling *state machine*: a deterministic round-robin run
//! queue per PE with blocked-on-receive parking. A VPE that waits for a
//! message yields its slice (it is *parked*); message arrival at a parked
//! VPE's endpoint marks it runnable again.
//!
//! The scheduler holds no DTU or timing state — the kernel drives the actual
//! DTU save/restore transfers and charges their cycles. This split keeps the
//! policy deterministic and unit-testable: all state lives in `BTreeMap`,
//! `BTreeSet`, `Vec`, and `VecDeque`, so iteration order is fixed.
//!
//! Per-PE lifecycle of a VPE:
//!
//! ```text
//!           admit (slot free)                park, next ready
//!   new ───────────────────────► Resident ────────────────────► Parked
//!    │  admit (slot busy)          ▲   │ yield / vacated            │
//!    └───────────► Ready ──────────┘   └────────► Ready ◄───────────┘
//!                   restore (head of queue)          message arrival
//! ```

pub mod costs;

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use m3_base::{PeId, VpeId};
use m3_sim::Notify;

/// Where an admitted VPE landed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The PE had no resident; the VPE runs immediately (no switch cost).
    Resident,
    /// The PE is occupied; the VPE joined the tail of the ready queue.
    Queued,
}

/// What [`Scheduler::remove`] found.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Removal {
    /// The VPE was never admitted; the caller owns the PE exclusively.
    NotManaged,
    /// The VPE was removed from its PE's schedule.
    Removed {
        /// The PE the VPE was scheduled on.
        pe: PeId,
        /// It was the resident at removal time (its live DTU state is the
        /// one to invalidate; non-residents only have a save area).
        was_resident: bool,
        /// No VPE is left on the PE: the kernel may free it.
        now_empty: bool,
    },
}

#[derive(Debug)]
struct Slot {
    resident: Option<VpeId>,
    /// The resident declared itself blocked on a receive (it keeps the PE
    /// only until someone becomes ready).
    blocked: bool,
    /// A save/restore is in flight; the slot is untouchable until
    /// [`Scheduler::finish_switch`] or [`Scheduler::abort_switch`].
    switching: bool,
    ready: VecDeque<VpeId>,
    parked: BTreeSet<VpeId>,
    /// Woken on every scheduling transition (shared with the PE's DTU
    /// arrival notify, so one wait covers both message and schedule events).
    wake: Notify,
}

impl Slot {
    fn new(wake: Notify) -> Slot {
        Slot {
            resident: None,
            blocked: false,
            switching: false,
            ready: VecDeque::new(),
            parked: BTreeSet::new(),
            wake,
        }
    }

    fn is_empty(&self) -> bool {
        self.resident.is_none()
            && !self.switching
            && self.ready.is_empty()
            && self.parked.is_empty()
    }
}

/// The kernel's run-queue state for every time-multiplexed PE.
///
/// Only VPEs explicitly admitted here are multiplexed; everything else
/// (kernel, services, pinned roots) keeps its PE exclusively and never pays
/// a switch. All mutating calls are synchronous — the async parts of a
/// switch (charging the DTU transfer) happen in the kernel between
/// [`Scheduler::park_resident`]/[`Scheduler::yield_resident`]/
/// [`Scheduler::claim_vacant`] and [`Scheduler::finish_switch`].
#[derive(Debug, Default)]
pub struct Scheduler {
    slots: BTreeMap<PeId, Slot>,
    /// Which PE each managed VPE is scheduled on (fixed at admission; the
    /// paper binds each VPE to exactly one PE at any point in time, §4.3).
    vpes: BTreeMap<VpeId, PeId>,
}

impl Scheduler {
    /// An empty scheduler: no PE is multiplexed.
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    /// Whether `vpe` is under scheduler control.
    pub fn manages(&self, vpe: VpeId) -> bool {
        self.vpes.contains_key(&vpe)
    }

    /// The PE a managed VPE is scheduled on.
    pub fn pe_of(&self, vpe: VpeId) -> Option<PeId> {
        self.vpes.get(&vpe).copied()
    }

    /// The VPE currently resident on `pe` (none while vacant or mid-switch).
    pub fn resident_of(&self, pe: PeId) -> Option<VpeId> {
        self.slots.get(&pe).and_then(|s| s.resident)
    }

    /// Whether `vpe` is the resident of its PE.
    pub fn is_resident(&self, vpe: VpeId) -> bool {
        self.pe_of(vpe)
            .is_some_and(|pe| self.resident_of(pe) == Some(vpe))
    }

    /// Number of VPEs scheduled on `pe` (resident + ready + parked +
    /// mid-switch).
    pub fn load(&self, pe: PeId) -> usize {
        self.vpes.values().filter(|p| **p == pe).count()
    }

    /// Load of every multiplexed PE, in PE order.
    pub fn loads(&self) -> Vec<(PeId, usize)> {
        self.slots.keys().map(|pe| (*pe, self.load(*pe))).collect()
    }

    /// The least-loaded multiplexed PE, ties going to the lowest PE id
    /// (see [`least_loaded`]).
    pub fn least_loaded_pe(&self) -> Option<PeId> {
        least_loaded(self.loads())
    }

    /// Depth of the ready queue on `pe` (excludes the resident and parked).
    pub fn ready_depth(&self, pe: PeId) -> usize {
        self.slots.get(&pe).map_or(0, |s| s.ready.len())
    }

    /// All VPEs scheduled on `pe`, in VPE-id order.
    pub fn vpes_on(&self, pe: PeId) -> Vec<VpeId> {
        self.vpes
            .iter()
            .filter(|(_, p)| **p == pe)
            .map(|(v, _)| *v)
            .collect()
    }

    /// Admits `vpe` to `pe`. `wake` is the notify woken on every transition
    /// of this PE's schedule (the kernel passes the PE's DTU arrival notify
    /// so one wait covers message arrival and scheduling changes alike).
    ///
    /// # Panics
    ///
    /// Panics if `vpe` is already managed.
    // m3lint: allow(cycle-accounting): scheduler table bookkeeping: the kernel charges the switch protocol (CTX_SAVE/RESTORE + state transfer) around this transition
    pub fn admit(&mut self, vpe: VpeId, pe: PeId, wake: Notify) -> Admission {
        assert!(self.vpes.insert(vpe, pe).is_none(), "{vpe} admitted twice");
        let slot = self.slots.entry(pe).or_insert_with(|| Slot::new(wake));
        if slot.resident.is_none() && !slot.switching && slot.ready.is_empty() {
            slot.resident = Some(vpe);
            slot.blocked = false;
            // No notify: nothing can be waiting on a slot that was empty.
            Admission::Resident
        } else {
            slot.ready.push_back(vpe);
            slot.wake.notify_all();
            Admission::Queued
        }
    }

    /// The resident declares itself blocked on a receive. If another VPE is
    /// ready, the resident is parked and the head of the ready queue is
    /// returned — the caller must perform the DTU save/restore and then call
    /// [`Scheduler::finish_switch`]. With nobody ready the resident keeps
    /// the PE (blocked in place, zero cost) and `None` is returned.
    ///
    /// No-op returning `None` if `vpe` is not the resident.
    // m3lint: allow(cycle-accounting): scheduler table bookkeeping: the kernel charges the switch protocol (CTX_SAVE/RESTORE + state transfer) around this transition
    pub fn park_resident(&mut self, vpe: VpeId) -> Option<VpeId> {
        let pe = self.pe_of(vpe)?;
        let slot = self.slots.get_mut(&pe)?;
        if slot.resident != Some(vpe) || slot.switching {
            return None;
        }
        slot.blocked = true;
        let next = slot.ready.pop_front()?;
        slot.resident = None;
        slot.blocked = false;
        slot.switching = true;
        slot.parked.insert(vpe);
        Some(next)
    }

    /// The resident voluntarily offers its slice. If another VPE is ready,
    /// the resident moves to the *tail* of the ready queue (it stays
    /// runnable — this is a yield, not a park) and the head is returned for
    /// the caller to switch to. `None` if nobody is waiting.
    // m3lint: allow(cycle-accounting): scheduler table bookkeeping: the kernel charges the switch protocol (CTX_SAVE/RESTORE + state transfer) around this transition
    pub fn yield_resident(&mut self, vpe: VpeId) -> Option<VpeId> {
        let pe = self.pe_of(vpe)?;
        let slot = self.slots.get_mut(&pe)?;
        if slot.resident != Some(vpe) || slot.switching {
            return None;
        }
        let next = slot.ready.pop_front()?;
        slot.resident = None;
        slot.blocked = false;
        slot.switching = true;
        slot.ready.push_back(vpe);
        Some(next)
    }

    /// Marks a parked VPE runnable again (its message arrived). Returns
    /// `true` if the VPE moved parked → ready. For a blocked *resident* the
    /// blocked flag is cleared instead (it never left the PE).
    // m3lint: allow(cycle-accounting): scheduler table bookkeeping: the kernel charges the switch protocol (CTX_SAVE/RESTORE + state transfer) around this transition
    pub fn unpark(&mut self, vpe: VpeId) -> bool {
        let Some(pe) = self.pe_of(vpe) else {
            return false;
        };
        let Some(slot) = self.slots.get_mut(&pe) else {
            return false;
        };
        if slot.parked.remove(&vpe) {
            slot.ready.push_back(vpe);
            slot.wake.notify_all();
            return true;
        }
        if slot.resident == Some(vpe) {
            slot.blocked = false;
        }
        false
    }

    /// Clears the resident's blocked flag (its message arrived while it
    /// still held the PE).
    // m3lint: allow(cycle-accounting): scheduler table bookkeeping: the kernel charges the switch protocol (CTX_SAVE/RESTORE + state transfer) around this transition
    pub fn mark_active(&mut self, vpe: VpeId) {
        if let Some(pe) = self.pe_of(vpe) {
            if let Some(slot) = self.slots.get_mut(&pe) {
                if slot.resident == Some(vpe) {
                    slot.blocked = false;
                }
            }
        }
    }

    /// A ready VPE claims a vacant PE (the previous resident exited rather
    /// than switched out). Succeeds only for the *head* of the ready queue —
    /// round-robin order survives vacancies. On success the slot is marked
    /// switching and the caller must restore the VPE's state and call
    /// [`Scheduler::finish_switch`].
    // m3lint: allow(cycle-accounting): scheduler table bookkeeping: the kernel charges the switch protocol (CTX_SAVE/RESTORE + state transfer) around this transition
    pub fn claim_vacant(&mut self, vpe: VpeId) -> bool {
        let Some(pe) = self.pe_of(vpe) else {
            return false;
        };
        let Some(slot) = self.slots.get_mut(&pe) else {
            return false;
        };
        if slot.resident.is_none() && !slot.switching && slot.ready.front() == Some(&vpe) {
            slot.ready.pop_front();
            slot.switching = true;
            return true;
        }
        false
    }

    /// Completes a switch: `vpe` becomes the resident of `pe`. Returns
    /// `false` (leaving the PE vacant) if the VPE was removed while its
    /// restore was in flight. Wakes all waiters either way.
    // m3lint: allow(cycle-accounting): scheduler table bookkeeping: the kernel charges the switch protocol (CTX_SAVE/RESTORE + state transfer) around this transition
    pub fn finish_switch(&mut self, pe: PeId, vpe: VpeId) -> bool {
        let Some(slot) = self.slots.get_mut(&pe) else {
            return false;
        };
        slot.switching = false;
        let installed = self.vpes.get(&vpe) == Some(&pe);
        if installed {
            slot.resident = Some(vpe);
            slot.blocked = false;
        }
        slot.wake.notify_all();
        installed
    }

    /// Abandons an in-flight switch (the restore failed). The would-be
    /// resident, if still managed, returns to the *head* of the ready queue
    /// so no slice is lost. Wakes all waiters.
    // m3lint: allow(cycle-accounting): scheduler table bookkeeping: the kernel charges the switch protocol (CTX_SAVE/RESTORE + state transfer) around this transition
    pub fn abort_switch(&mut self, pe: PeId, vpe: Option<VpeId>) {
        let Some(slot) = self.slots.get_mut(&pe) else {
            return;
        };
        slot.switching = false;
        if let Some(v) = vpe {
            if self.vpes.get(&v) == Some(&pe) {
                slot.ready.push_front(v);
            }
        }
        slot.wake.notify_all();
    }

    /// Removes a VPE from scheduling (it exited or was revoked). An empty
    /// slot is dropped so the kernel can free the PE. Wakes all waiters so
    /// the next ready VPE can claim the vacancy.
    // m3lint: allow(cycle-accounting): scheduler table bookkeeping: the kernel charges the switch protocol (CTX_SAVE/RESTORE + state transfer) around this transition
    pub fn remove(&mut self, vpe: VpeId) -> Removal {
        let Some(pe) = self.vpes.remove(&vpe) else {
            return Removal::NotManaged;
        };
        let remaining = self.load(pe);
        let Some(slot) = self.slots.get_mut(&pe) else {
            return Removal::NotManaged;
        };
        let was_resident = slot.resident == Some(vpe);
        if was_resident {
            slot.resident = None;
            slot.blocked = false;
        }
        slot.ready.retain(|v| *v != vpe);
        slot.parked.remove(&vpe);
        // A switch whose target just died will clean up via finish_switch;
        // if every VPE of the PE is gone the slot is finished regardless.
        if remaining == 0 {
            slot.switching = false;
        }
        let now_empty = slot.is_empty();
        slot.wake.notify_all();
        if now_empty {
            self.slots.remove(&pe);
        }
        Removal::Removed {
            pe,
            was_resident,
            now_empty,
        }
    }
}

/// Picks the least-loaded entry: the id with the smallest load, ties going
/// to the earliest entry in iteration order (callers pass ascending-id
/// sequences, so ties resolve to the lowest id). Shared by the kernel's
/// overcommit placement and the multikernel's peer-shard selection, so both
/// levels of the hierarchy use one placement policy.
pub fn least_loaded<I: Copy>(items: impl IntoIterator<Item = (I, usize)>) -> Option<I> {
    let mut best: Option<(I, usize)> = None;
    for (id, load) in items {
        match best {
            Some((_, b)) if load >= b => {}
            _ => best = Some((id, load)),
        }
    }
    best.map(|(id, _)| id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32) -> VpeId {
        VpeId::new(id)
    }

    fn p(id: u32) -> PeId {
        PeId::new(id)
    }

    fn sched_with(pe: u32, vpes: &[u32]) -> Scheduler {
        let mut s = Scheduler::new();
        for id in vpes {
            s.admit(v(*id), p(pe), Notify::new());
        }
        s
    }

    #[test]
    fn first_admission_is_resident_rest_queue() {
        let mut s = Scheduler::new();
        assert_eq!(s.admit(v(1), p(3), Notify::new()), Admission::Resident);
        assert_eq!(s.admit(v(2), p(3), Notify::new()), Admission::Queued);
        assert_eq!(s.admit(v(3), p(3), Notify::new()), Admission::Queued);
        assert_eq!(s.resident_of(p(3)), Some(v(1)));
        assert_eq!(s.ready_depth(p(3)), 2);
        assert_eq!(s.load(p(3)), 3);
        assert_eq!(s.vpes_on(p(3)), vec![v(1), v(2), v(3)]);
    }

    #[test]
    fn park_hands_over_in_fifo_order() {
        let mut s = sched_with(0, &[1, 2, 3]);
        // 1 blocks; 2 (queue head) takes over.
        assert_eq!(s.park_resident(v(1)), Some(v(2)));
        assert_eq!(s.resident_of(p(0)), None, "mid-switch: vacant");
        assert!(s.finish_switch(p(0), v(2)));
        assert_eq!(s.resident_of(p(0)), Some(v(2)));
        // 2 blocks; 3 takes over (1 is parked, not ready).
        assert_eq!(s.park_resident(v(2)), Some(v(3)));
        assert!(s.finish_switch(p(0), v(3)));
        // 3 blocks; nobody ready — it keeps the PE.
        assert_eq!(s.park_resident(v(3)), None);
        assert!(s.is_resident(v(3)));
        // 1's message arrives: parked → ready; 3 parks again and 1 returns.
        assert!(s.unpark(v(1)));
        assert_eq!(s.park_resident(v(3)), Some(v(1)));
        assert!(s.finish_switch(p(0), v(1)));
    }

    #[test]
    fn yield_rotates_round_robin() {
        let mut s = sched_with(0, &[1, 2, 3]);
        // 1 yields to 2, stays runnable at the tail: queue is [3, 1].
        assert_eq!(s.yield_resident(v(1)), Some(v(2)));
        assert!(s.finish_switch(p(0), v(2)));
        assert_eq!(s.yield_resident(v(2)), Some(v(3)));
        assert!(s.finish_switch(p(0), v(3)));
        assert_eq!(s.yield_resident(v(3)), Some(v(1)));
        assert!(s.finish_switch(p(0), v(1)));
        // Full rotation: back to 1.
        assert!(s.is_resident(v(1)));
    }

    #[test]
    fn yield_without_waiters_is_a_no_op() {
        let mut s = sched_with(0, &[1]);
        assert_eq!(s.yield_resident(v(1)), None);
        assert!(s.is_resident(v(1)));
    }

    #[test]
    fn non_resident_cannot_park_or_yield() {
        let mut s = sched_with(0, &[1, 2]);
        assert_eq!(s.park_resident(v(2)), None);
        assert_eq!(s.yield_resident(v(2)), None);
        // And mid-switch the slot is locked against both.
        assert_eq!(s.park_resident(v(1)), Some(v(2)));
        assert_eq!(s.park_resident(v(1)), None);
        assert_eq!(s.yield_resident(v(1)), None);
    }

    #[test]
    fn unpark_of_blocked_resident_clears_flag_only() {
        let mut s = sched_with(0, &[1]);
        assert_eq!(s.park_resident(v(1)), None); // blocked in place
        assert!(!s.unpark(v(1)), "resident never left the PE");
        assert!(s.is_resident(v(1)));
    }

    #[test]
    fn exit_vacates_and_head_claims() {
        let mut s = sched_with(0, &[1, 2, 3]);
        let r = s.remove(v(1));
        assert_eq!(
            r,
            Removal::Removed {
                pe: p(0),
                was_resident: true,
                now_empty: false
            }
        );
        // Only the queue head may claim the vacancy.
        assert!(!s.claim_vacant(v(3)));
        assert!(s.claim_vacant(v(2)));
        assert!(!s.claim_vacant(v(3)), "slot is mid-switch");
        assert!(s.finish_switch(p(0), v(2)));
        assert_eq!(s.resident_of(p(0)), Some(v(2)));
    }

    #[test]
    fn removing_last_vpe_empties_the_slot() {
        let mut s = sched_with(0, &[1, 2]);
        assert_eq!(
            s.remove(v(2)),
            Removal::Removed {
                pe: p(0),
                was_resident: false,
                now_empty: false
            }
        );
        assert_eq!(
            s.remove(v(1)),
            Removal::Removed {
                pe: p(0),
                was_resident: true,
                now_empty: true
            }
        );
        assert!(!s.manages(v(1)));
        assert_eq!(s.loads(), vec![]);
        assert_eq!(s.remove(v(1)), Removal::NotManaged);
    }

    #[test]
    fn removal_of_in_flight_target_cancels_switch() {
        let mut s = sched_with(0, &[1, 2]);
        assert_eq!(s.park_resident(v(1)), Some(v(2)));
        // 2 dies while its restore is in flight.
        let r = s.remove(v(2));
        assert_eq!(
            r,
            Removal::Removed {
                pe: p(0),
                was_resident: false,
                now_empty: false
            }
        );
        assert!(!s.finish_switch(p(0), v(2)), "dead VPE is not installed");
        assert_eq!(s.resident_of(p(0)), None);
        // Parked 1 can come back once its message arrives.
        assert!(s.unpark(v(1)));
        assert!(s.claim_vacant(v(1)));
        assert!(s.finish_switch(p(0), v(1)));
    }

    #[test]
    fn abort_switch_requeues_target_at_head() {
        let mut s = sched_with(0, &[1, 2, 3]);
        assert_eq!(s.park_resident(v(1)), Some(v(2)));
        s.abort_switch(p(0), Some(v(2)));
        // 2 is back at the head, before 3.
        assert!(s.claim_vacant(v(2)));
        assert!(s.finish_switch(p(0), v(2)));
    }

    #[test]
    fn loads_track_multiple_pes() {
        let mut s = Scheduler::new();
        s.admit(v(1), p(4), Notify::new());
        s.admit(v(2), p(3), Notify::new());
        s.admit(v(3), p(3), Notify::new());
        assert_eq!(s.loads(), vec![(p(3), 2), (p(4), 1)]);
        assert_eq!(s.pe_of(v(3)), Some(p(3)));
    }

    #[test]
    #[should_panic(expected = "admitted twice")]
    fn double_admission_panics() {
        let mut s = sched_with(0, &[1]);
        s.admit(v(1), p(1), Notify::new());
    }

    /// Seeded property: under random park/unpark/yield/exit traffic every
    /// runnable VPE becomes resident within a bounded number of hand-overs —
    /// round-robin cannot starve (deterministic FIFO order, no priorities).
    #[test]
    fn no_runnable_vpe_starves() {
        let mut rng = m3_base::rand::Rng::new(0x4d31_5ced);
        for round in 0..20 {
            let n = 2 + rng.next_below(6) as u32;
            let mut s = Scheduler::new();
            for id in 1..=n {
                s.admit(v(id), p(0), Notify::new());
            }
            let mut turns: BTreeMap<u32, u64> = (1..=n).map(|id| (id, 0)).collect();
            for _ in 0..400 {
                let Some(res) = s.resident_of(p(0)) else {
                    // Vacant: the head claims.
                    let head = s
                        .vpes_on(p(0))
                        .into_iter()
                        .find(|cand| s.claim_vacant(*cand));
                    if let Some(h) = head {
                        s.finish_switch(p(0), h);
                    }
                    continue;
                };
                *turns.get_mut(&res.raw()).unwrap() += 1;
                match rng.next_below(3) {
                    0 => {
                        // Block: park, switch if someone is ready, and
                        // randomly unpark a parked VPE (message arrival).
                        if let Some(next) = s.park_resident(res) {
                            s.finish_switch(p(0), next);
                        }
                        let parked: Vec<VpeId> = s
                            .vpes_on(p(0))
                            .into_iter()
                            .filter(|c| !s.is_resident(*c))
                            .collect();
                        if !parked.is_empty() {
                            let pick = parked[rng.next_below(parked.len() as u64) as usize];
                            s.unpark(pick);
                        }
                    }
                    _ => {
                        if let Some(next) = s.yield_resident(res) {
                            s.finish_switch(p(0), next);
                        }
                    }
                }
            }
            // Every VPE ran: with FIFO hand-over and 400 slices over at most
            // 7 VPEs, starvation would show as a zero count.
            for (id, count) in &turns {
                assert!(*count > 0, "round {round}: VPE {id} starved ({turns:?})");
            }
        }
    }

    #[test]
    fn least_loaded_prefers_smallest_then_earliest() {
        assert_eq!(least_loaded(Vec::<(u32, usize)>::new()), None);
        assert_eq!(least_loaded([(7u32, 3)]), Some(7));
        // Strictly smaller wins regardless of position.
        assert_eq!(least_loaded([(1u32, 5), (2, 2), (3, 4)]), Some(2));
        // Ties keep the earliest entry.
        assert_eq!(least_loaded([(1u32, 2), (2, 2), (3, 2)]), Some(1));
        assert_eq!(least_loaded([(9u32, 0), (1, 0)]), Some(9));
    }

    #[test]
    fn scheduler_least_loaded_pe_matches_loads() {
        let mut s = Scheduler::new();
        assert_eq!(s.least_loaded_pe(), None);
        s.admit(v(1), p(2), Notify::new());
        s.admit(v(2), p(2), Notify::new());
        s.admit(v(3), p(5), Notify::new());
        assert_eq!(s.least_loaded_pe(), Some(p(5)));
        s.admit(v(4), p(5), Notify::new());
        // Tie between PE 2 and PE 5: lowest PE id wins.
        assert_eq!(s.least_loaded_pe(), Some(p(2)));
    }
}
