//! Fixed cycle charges of a VPE context switch.
//!
//! The paper defers time-multiplexing of VPEs to future work (§4.1, §7), so
//! there is no measured switch cost to calibrate against. The model below
//! charges the *data movement* exactly — the DTU moves the architectural
//! state to its DRAM save area at 8 B/cycle like any other transfer (§5.4) —
//! and adds a small fixed software charge per direction, sized like the
//! kernel share of a system call (§5.3): the kernel must quiesce the DTU,
//! walk the endpoint registers, and reprogram them remotely (§4.3.3).

use m3_base::Cycles;

/// Fixed kernel work to suspend a VPE: quiesce the DTU command unit and
/// initiate the endpoint-register walk (remote config reads, §4.3.3). Sized
/// like the software share of a null syscall round (§5.3); the state bytes
/// themselves are charged separately at the DTU's 8 B/cycle (§5.4).
pub const CTX_SAVE_FIXED: Cycles = Cycles::new(80);

/// Fixed kernel work to resume a VPE: reprogram the endpoint registers from
/// the save area and restart the PE (§4.3.3 remote EP configuration, §4.5.5
/// PE hand-over). Same calibration basis as [`CTX_SAVE_FIXED`] (§5.3).
pub const CTX_RESTORE_FIXED: Cycles = Cycles::new(80);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_costs_stay_below_a_syscall() {
        // The switch overhead should be dominated by the state transfer
        // (64 KiB SPM at 8 B/cycle is 8192 cycles, §5.4), not the fixed
        // software share — keep each direction under a 200-cycle syscall
        // (§5.3).
        assert!(CTX_SAVE_FIXED.as_u64() < 200);
        assert!(CTX_RESTORE_FIXED.as_u64() < 200);
    }
}
