//! DTU scenario tests: timing, contention, and edge semantics that only
//! show up with the NoC in the loop.

use m3_base::error::Code;
use m3_base::{EpId, PeId, Perm};
use m3_dtu::{DtuSystem, EpConfig, MemKind};
use m3_noc::{Noc, NocConfig, Topology};
use m3_sim::Sim;

fn setup(nodes: u32) -> (Sim, DtuSystem) {
    let sim = Sim::new();
    let noc = Noc::new(Topology::with_nodes(nodes), NocConfig::default());
    let sys = DtuSystem::new(sim.clone(), noc);
    (sim, sys)
}

fn recv_cfg(slots: usize) -> EpConfig {
    EpConfig::Receive {
        slots,
        slot_size: 256,
        allow_replies: true,
    }
}

#[test]
fn message_latency_grows_with_hop_distance() {
    // A 4x4 mesh: sending to a neighbour beats sending across the chip.
    let measure = |dst: u32| -> u64 {
        let (sim, sys) = setup(16);
        let kernel = sys.dtu(PeId::new(15)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(dst), EpId::new(0), recv_cfg(4))
            .unwrap();
        kernel
            .configure(
                PeId::new(0),
                EpId::new(0),
                EpConfig::Send {
                    pe: PeId::new(dst),
                    ep: EpId::new(0),
                    label: 0,
                    credits: None,
                    max_payload: 128,
                },
            )
            .unwrap();
        let tx = sys.dtu(PeId::new(0));
        let rx = sys.dtu(PeId::new(dst));
        let h = sim.spawn("rx", {
            let sim = sim.clone();
            async move {
                rx.recv(EpId::new(0)).await.unwrap();
                sim.now().as_u64()
            }
        });
        sim.spawn("tx", async move {
            tx.send(EpId::new(0), b"hop", None).await.unwrap();
        });
        sim.run();
        h.try_take().unwrap()
    };
    let near = measure(1); // one hop
    let far = measure(15); // six hops
    assert!(
        far >= near + 5 * 3,
        "five extra hops at 3 cycles each: near={near} far={far}"
    );
}

#[test]
fn concurrent_transfers_over_shared_links_serialize() {
    // Two 64 KiB RDMA reads from the same DRAM node: their shared links
    // force one to wait; total time exceeds a single transfer's clearly.
    let single = run_readers(1);
    let double = run_readers(2);
    assert!(
        double > single + single / 2,
        "contention must serialize: single={single} double={double}"
    );

    fn run_readers(n: u32) -> u64 {
        let (sim, sys) = setup(3);
        let dram = PeId::new(2);
        sys.add_memory(dram, MemKind::Dram, 1 << 20);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        for i in 0..n {
            kernel
                .configure(
                    PeId::new(i),
                    EpId::new(2),
                    EpConfig::Memory {
                        pe: dram,
                        offset: 0,
                        len: 1 << 20,
                        perm: Perm::R,
                    },
                )
                .unwrap();
            let dtu = sys.dtu(PeId::new(i));
            sim.spawn(format!("reader{i}"), async move {
                dtu.read_mem(EpId::new(2), 0, 64 * 1024).await.unwrap();
            });
        }
        sim.run();
        sim.now().as_u64()
    }
}

#[test]
fn remote_spm_access_supports_the_clone_path() {
    // VPE::run copies the parent's image into the child's SPM via a memory
    // endpoint pointing at another PE's scratchpad (§4.5.5).
    let (sim, sys) = setup(3);
    let spm = sys.add_memory(PeId::new(2), MemKind::Spm, 64 * 1024);
    let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
    kernel
        .configure(
            PeId::new(1),
            EpId::new(2),
            EpConfig::Memory {
                pe: PeId::new(2),
                offset: 0,
                len: 64 * 1024,
                perm: Perm::RW,
            },
        )
        .unwrap();
    let loader = sys.dtu(PeId::new(1));
    let h = sim.spawn("loader", async move {
        let image = vec![0xc3u8; 24 * 1024];
        loader.write_mem(EpId::new(2), 0, &image).await.unwrap();
        loader.read_mem(EpId::new(2), 100, 4).await.unwrap()
    });
    sim.run();
    assert_eq!(h.try_take().unwrap(), vec![0xc3; 4]);
    assert_eq!(spm.borrow()[24 * 1024 - 1], 0xc3);
    assert_eq!(spm.borrow()[24 * 1024], 0);
}

#[test]
fn reply_to_reconfigured_endpoint_is_dropped_not_misdelivered() {
    let (sim, sys) = setup(3);
    let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
    kernel
        .configure(PeId::new(2), EpId::new(0), recv_cfg(4))
        .unwrap();
    kernel
        .configure(
            PeId::new(1),
            EpId::new(0),
            EpConfig::Send {
                pe: PeId::new(2),
                ep: EpId::new(0),
                label: 0,
                credits: Some(2),
                max_payload: 128,
            },
        )
        .unwrap();
    kernel
        .configure(PeId::new(1), EpId::new(1), recv_cfg(4))
        .unwrap();

    let tx = sys.dtu(PeId::new(1));
    let rx = sys.dtu(PeId::new(2));
    let kernel2 = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
    let h = sim.spawn("flow", async move {
        tx.send(EpId::new(0), b"req", Some((EpId::new(1), 7)))
            .await
            .unwrap();
        let msg = rx.recv(EpId::new(0)).await.unwrap();
        // The kernel invalidates the reply endpoint before the reply is
        // sent (e.g. a revoke raced the RPC).
        kernel2
            .configure(PeId::new(1), EpId::new(1), EpConfig::Invalid)
            .unwrap();
        rx.reply(&msg, b"late").await.unwrap();
        rx.ack(EpId::new(0)).unwrap();
        // The reply must not be readable anywhere.
        tx.fetch(EpId::new(1)).unwrap_err().code()
    });
    sim.run();
    assert_eq!(h.try_take().unwrap(), Code::InvEp);
    assert_eq!(sim.stats().get("dtu.deposit_no_recv_ep"), 1);
}

#[test]
fn credit_refill_is_capped_at_the_budget() {
    let (sim, sys) = setup(3);
    let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
    kernel
        .configure(PeId::new(2), EpId::new(0), recv_cfg(8))
        .unwrap();
    kernel
        .configure(
            PeId::new(1),
            EpId::new(0),
            EpConfig::Send {
                pe: PeId::new(2),
                ep: EpId::new(0),
                label: 0,
                credits: Some(3),
                max_payload: 128,
            },
        )
        .unwrap();
    // Refilling beyond the budget clamps to it.
    kernel
        .configure(PeId::new(1), EpId::new(1), recv_cfg(4))
        .unwrap();
    kernel
        .refill_credits(PeId::new(1), EpId::new(0), 100)
        .unwrap();
    let tx = sys.dtu(PeId::new(1));
    assert_eq!(tx.credits(EpId::new(0)), Some(3));
    let _ = sim;
}

#[test]
fn send_does_not_block_the_sender_for_the_transfer() {
    // §4.5.6: message passing is asynchronous at the lowest level — the
    // sender is free after programming the registers, while a large RDMA
    // write blocks for the full transfer.
    let (sim, sys) = setup(3);
    sys.add_memory(PeId::new(2), MemKind::Dram, 1 << 20);
    let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
    kernel
        .configure(PeId::new(2), EpId::new(0), recv_cfg(4))
        .unwrap();
    kernel
        .configure(
            PeId::new(1),
            EpId::new(0),
            EpConfig::Send {
                pe: PeId::new(2),
                ep: EpId::new(0),
                label: 0,
                credits: None,
                max_payload: 200,
            },
        )
        .unwrap();
    kernel
        .configure(
            PeId::new(1),
            EpId::new(1),
            EpConfig::Memory {
                pe: PeId::new(2),
                offset: 0,
                len: 1 << 20,
                perm: Perm::RW,
            },
        )
        .unwrap();
    let dtu = sys.dtu(PeId::new(1));
    let h = sim.spawn("sender", {
        let sim = sim.clone();
        async move {
            let t0 = sim.now().as_u64();
            dtu.send(EpId::new(0), &[0u8; 128], None).await.unwrap();
            let send_time = sim.now().as_u64() - t0;
            let t1 = sim.now().as_u64();
            dtu.write_mem(EpId::new(1), 0, &vec![0u8; 64 * 1024])
                .await
                .unwrap();
            let write_time = sim.now().as_u64() - t1;
            (send_time, write_time)
        }
    });
    sim.run();
    let (send_time, write_time) = h.try_take().unwrap();
    assert!(
        send_time < 20,
        "send returns after command issue: {send_time}"
    );
    assert!(
        write_time >= 64 * 1024 / 8,
        "RDMA write blocks for the transfer: {write_time}"
    );
}
