//! Messages and the header the DTU prepends to every payload.

use std::fmt;
use std::ops::Deref;
use std::rc::Rc;

use m3_base::ids::Label;
use m3_base::{EpId, PeId};

/// Information the DTU stores in the header so the receiver can reply
/// without a dedicated back-channel (paper §4.4.4).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ReplyInfo {
    /// PE of the original sender, where the reply is delivered.
    pub pe: PeId,
    /// Receive endpoint at the sender that accepts the reply.
    pub ep: EpId,
    /// Label the reply message will carry (chosen by the sender).
    pub label: Label,
    /// Send endpoint at the sender whose credits the reply refills.
    pub credit_ep: EpId,
    /// Context id the sender's DTU ran under when the message left. The
    /// reply (and its credit refill) follows the *context*, not the PE: if
    /// the kernel has switched the sender out in the meantime, the DTU
    /// routes the reply into that context's save area instead of the live
    /// endpoint registers of whoever occupies the PE now.
    pub ctx: u64,
}

/// The header the DTU prepends to every message (paper §4.4.2).
///
/// The `label` is chosen by the *receiver* when the kernel creates the
/// channel and is unforgeable by the sender; receivers typically set it to
/// the address of the object representing the sender so no lookup is needed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Header {
    /// The receiver-chosen label identifying the sender.
    pub label: Label,
    /// Payload length in bytes.
    pub len: u32,
    /// PE the message came from.
    pub sender_pe: PeId,
    /// Send endpoint the message came from.
    pub sender_ep: EpId,
    /// Reply destination, if the sender permitted a reply.
    pub reply: Option<ReplyInfo>,
}

/// Shared, immutable payload bytes.
///
/// Backed by an `Rc<[u8]>` so the send→ring-buffer→receive path shares one
/// allocation: depositing, fetching, and cloning a message copies a pointer,
/// not the bytes. Derefs to `[u8]`, so anything taking `&[u8]` works
/// unchanged, and it compares against byte slices/arrays/vectors directly.
#[derive(Clone, Eq)]
pub struct Payload(Rc<[u8]>);

impl Payload {
    /// An empty payload (no allocation of note).
    pub fn empty() -> Payload {
        Payload(Rc::from(&[][..]))
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload(Rc::from(v))
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Payload {
        Payload(Rc::from(v))
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(v: &[u8; N]) -> Payload {
        Payload(Rc::from(&v[..]))
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        self.0 == other.0
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        *self.0 == *other
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        *self.0 == **other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        *self.0 == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        *self.0 == other[..]
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.0 == other[..]
    }
}

impl PartialEq<Payload> for Vec<u8> {
    fn eq(&self, other: &Payload) -> bool {
        self[..] == *other.0
    }
}

/// A received message: header plus payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// The DTU-generated header.
    pub header: Header,
    /// The payload as sent (shared, not copied, between hops).
    pub payload: Payload,
}

impl Message {
    /// Total size the message occupies on the wire and in a ring-buffer
    /// slot: header plus payload.
    pub fn wire_size(&self) -> usize {
        m3_base::cfg::MSG_HEADER_SIZE + self.payload.len()
    }

    /// The label identifying the sender (shorthand for `header.label`).
    pub fn label(&self) -> Label {
        self.header.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(payload: usize) -> Message {
        Message {
            header: Header {
                label: 7,
                len: payload as u32,
                sender_pe: PeId::new(1),
                sender_ep: EpId::new(2),
                reply: None,
            },
            payload: vec![0; payload].into(),
        }
    }

    #[test]
    fn wire_size_includes_header() {
        assert_eq!(msg(8).wire_size(), m3_base::cfg::MSG_HEADER_SIZE + 8);
        assert_eq!(msg(0).wire_size(), m3_base::cfg::MSG_HEADER_SIZE);
    }

    #[test]
    fn label_shorthand() {
        assert_eq!(msg(1).label(), 7);
    }

    #[test]
    fn payload_shares_one_allocation_across_clones() {
        let p: Payload = vec![1u8, 2, 3].into();
        let q = p.clone();
        assert!(std::ptr::eq(p.as_slice(), q.as_slice()));
        assert_eq!(p, q);
    }

    #[test]
    fn payload_compares_like_bytes() {
        let p: Payload = (b"ping").into();
        assert_eq!(p, b"ping");
        assert_eq!(p, *b"ping");
        assert_eq!(p, b"ping"[..]);
        assert_eq!(p, &b"ping"[..]);
        assert_eq!(p, b"ping".to_vec());
        assert_eq!(b"ping".to_vec(), p);
        assert_ne!(p, b"pong");
        assert_eq!(Payload::empty().len(), 0);
        assert_eq!(&p[1..3], b"in");
    }
}
