//! Messages and the header the DTU prepends to every payload.

use m3_base::ids::Label;
use m3_base::{EpId, PeId};

/// Information the DTU stores in the header so the receiver can reply
/// without a dedicated back-channel (paper §4.4.4).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ReplyInfo {
    /// PE of the original sender, where the reply is delivered.
    pub pe: PeId,
    /// Receive endpoint at the sender that accepts the reply.
    pub ep: EpId,
    /// Label the reply message will carry (chosen by the sender).
    pub label: Label,
    /// Send endpoint at the sender whose credits the reply refills.
    pub credit_ep: EpId,
}

/// The header the DTU prepends to every message (paper §4.4.2).
///
/// The `label` is chosen by the *receiver* when the kernel creates the
/// channel and is unforgeable by the sender; receivers typically set it to
/// the address of the object representing the sender so no lookup is needed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Header {
    /// The receiver-chosen label identifying the sender.
    pub label: Label,
    /// Payload length in bytes.
    pub len: u32,
    /// PE the message came from.
    pub sender_pe: PeId,
    /// Send endpoint the message came from.
    pub sender_ep: EpId,
    /// Reply destination, if the sender permitted a reply.
    pub reply: Option<ReplyInfo>,
}

/// A received message: header plus payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// The DTU-generated header.
    pub header: Header,
    /// The payload as sent.
    pub payload: Vec<u8>,
}

impl Message {
    /// Total size the message occupies on the wire and in a ring-buffer
    /// slot: header plus payload.
    pub fn wire_size(&self) -> usize {
        m3_base::cfg::MSG_HEADER_SIZE + self.payload.len()
    }

    /// The label identifying the sender (shorthand for `header.label`).
    pub fn label(&self) -> Label {
        self.header.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(payload: usize) -> Message {
        Message {
            header: Header {
                label: 7,
                len: payload as u32,
                sender_pe: PeId::new(1),
                sender_ep: EpId::new(2),
                reply: None,
            },
            payload: vec![0; payload],
        }
    }

    #[test]
    fn wire_size_includes_header() {
        assert_eq!(msg(8).wire_size(), m3_base::cfg::MSG_HEADER_SIZE + 8);
        assert_eq!(msg(0).wire_size(), m3_base::cfg::MSG_HEADER_SIZE);
    }

    #[test]
    fn label_shorthand() {
        assert_eq!(msg(1).label(), 7);
    }
}
