//! The DTU engine: commands, privilege, and the system-wide wiring.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use m3_base::cfg::{EP_COUNT, MSG_HEADER_SIZE};
use m3_base::error::{Code, Error, Result};
use m3_base::ids::Label;
use m3_base::{Cycles, EpId, PeId, Perm};
use m3_fault::{FaultPlane, MsgVerdict};
use m3_noc::Noc;
use m3_sim::{
    keys, Component, Event, EventKind, Metrics, Notify, Recorder, Sim, StatHandle, Stats,
};

use crate::endpoint::EpConfig;
use crate::message::{Header, Message, ReplyInfo};
use crate::ringbuf::RingBuf;
use crate::timing;

/// What kind of memory a NoC node exposes; selects the access latency.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MemKind {
    /// The DRAM module.
    Dram,
    /// A PE's scratchpad memory, accessible for remote loads (cloning).
    Spm,
}

/// Context id a DTU carries while the kernel has its state saved out and no
/// successor installed yet (mid context switch). No real context ever uses
/// this id, so arriving traffic is routed into save areas during the window.
pub const NO_CTX: u64 = u64::MAX;

struct PeState {
    privileged: bool,
    eps: Vec<EpConfig>,
    ringbufs: BTreeMap<EpId, RingBuf>,
    /// Remaining credits per send endpoint (only for bounded-credit EPs).
    credits: BTreeMap<EpId, u32>,
    /// Woken whenever a message arrives at any EP of this DTU.
    arrival: Notify,
    /// Which VPE context the live endpoint registers belong to. Stays at
    /// the boot value `0` on PEs the kernel never time-multiplexes, so the
    /// entire context machinery is inert unless a switch ever happens.
    current_ctx: u64,
    /// Dirty bits for the live context's data-SPM pages. The DTU is the
    /// only component that moves data into the SPM from outside (§4.2), so
    /// it marks the pages its deposits and RDMA reads land in. Maintained
    /// unconditionally — pure host-side bookkeeping, zero simulated time —
    /// and consulted by dirty-tracked context switches (m3-sched) to move
    /// only dirty pages instead of the whole 64 KiB image.
    spm_dirty: m3_vm::DirtyBitmap,
}

impl PeState {
    fn new() -> PeState {
        PeState {
            privileged: true, // all DTUs are privileged at boot (paper §3)
            eps: vec![EpConfig::Invalid; EP_COUNT],
            ringbufs: BTreeMap::new(),
            credits: BTreeMap::new(),
            arrival: Notify::new(),
            current_ctx: 0,
            // A fresh context's image has never been saved: fully dirty.
            spm_dirty: m3_vm::DirtyBitmap::default(),
        }
    }
}

/// The architectural DTU state of a switched-out VPE: endpoint registers,
/// undelivered ring-buffer contents, and unspent credits, as the kernel
/// parked them in the context's DRAM save area.
#[derive(Debug)]
struct SavedCtx {
    eps: Vec<EpConfig>,
    ringbufs: BTreeMap<EpId, RingBuf>,
    credits: BTreeMap<EpId, u32>,
    /// SPM pages that were dirty when this context was saved out — the
    /// pages the (dirty-tracked) save actually transferred, and therefore
    /// the pages a later restore must bring back eagerly (clean pages
    /// restore lazily from their DRAM backing).
    dirty_pages: u32,
}

impl SavedCtx {
    fn new() -> SavedCtx {
        SavedCtx {
            eps: vec![EpConfig::Invalid; EP_COUNT],
            ringbufs: BTreeMap::new(),
            credits: BTreeMap::new(),
            // A stashed-but-never-resident context has no SPM image yet;
            // its first activation is a start, and on a later save the
            // live bitmap decides. Conservative full image.
            dirty_pages: m3_vm::SPM_PAGES,
        }
    }

    /// Bytes a DTU transfer of this state moves: one register block per
    /// endpoint (§4.3.3) plus the queued messages of every ring buffer.
    fn state_bytes(&self) -> u64 {
        let eps = EP_COUNT as u64 * timing::EP_SAVE_BYTES;
        let rings: u64 = self.ringbufs.values().map(RingBuf::queued_wire_bytes).sum();
        eps + rings
    }
}

struct Memory {
    kind: MemKind,
    data: Rc<RefCell<Vec<u8>>>,
}

struct SystemInner {
    pes: RefCell<Vec<PeState>>,
    mems: RefCell<BTreeMap<PeId, Memory>>,
    /// Save areas of switched-out contexts, keyed by (PE, context id).
    /// Deposits and credit refills for a context that is not live on its PE
    /// land here instead of the live endpoint registers.
    saved: RefCell<BTreeMap<(PeId, u64), SavedCtx>>,
    next_deposit: std::cell::Cell<u64>,
    /// Fault-injection plane; `None` (the default) keeps every hot path on
    /// the exact pre-fault code, so a disabled plane costs zero cycles.
    faults: RefCell<Option<Rc<FaultPlane>>>,
}

/// Pre-resolved handles for the counters the DTU bumps on every message or
/// transfer, so the hot path indexes a vector instead of walking a
/// string-keyed map.
#[derive(Copy, Clone)]
struct HotStats {
    msgs_sent: StatHandle,
    replies_sent: StatHandle,
    msg_cycles: StatHandle,
    xfer_cycles: StatHandle,
    mem_read_bytes: StatHandle,
    mem_write_bytes: StatHandle,
    msgs_delivered: StatHandle,
    msgs_dropped: StatHandle,
    deposit_no_recv_ep: StatHandle,
}

impl HotStats {
    fn new(stats: &Stats) -> HotStats {
        HotStats {
            msgs_sent: stats.handle("dtu.msgs_sent"),
            replies_sent: stats.handle("dtu.replies_sent"),
            msg_cycles: stats.handle("dtu.msg_cycles"),
            xfer_cycles: stats.handle("dtu.xfer_cycles"),
            mem_read_bytes: stats.handle("dtu.mem_read_bytes"),
            mem_write_bytes: stats.handle("dtu.mem_write_bytes"),
            msgs_delivered: stats.handle("dtu.msgs_delivered"),
            msgs_dropped: stats.handle("dtu.msgs_dropped"),
            deposit_no_recv_ep: stats.handle("dtu.deposit_no_recv_ep"),
        }
    }
}

/// The DTU fabric of a platform: one DTU per NoC node, plus the memories
/// reachable through memory endpoints.
///
/// Cheaply cloneable; clones share all state.
#[derive(Clone)]
pub struct DtuSystem {
    sim: Sim,
    noc: Noc,
    stats: Stats,
    hot: HotStats,
    tracer: Recorder,
    metrics: Metrics,
    inner: Rc<SystemInner>,
}

impl fmt::Debug for DtuSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DtuSystem")
            .field("pes", &self.inner.pes.borrow().len())
            .field("memories", &self.inner.mems.borrow().len())
            .finish()
    }
}

impl DtuSystem {
    /// Creates one DTU per node of the NoC's topology. All DTUs start
    /// privileged, mirroring the boot state of the hardware.
    pub fn new(sim: Sim, noc: Noc) -> DtuSystem {
        let count = noc.topology().node_count() as usize;
        noc.attach(sim.tracer(), sim.metrics());
        DtuSystem {
            hot: HotStats::new(&sim.stats()),
            stats: sim.stats(),
            tracer: sim.tracer(),
            metrics: sim.metrics(),
            sim,
            noc,
            inner: Rc::new(SystemInner {
                pes: RefCell::new((0..count).map(|_| PeState::new()).collect()),
                mems: RefCell::new(BTreeMap::new()),
                saved: RefCell::new(BTreeMap::new()),
                next_deposit: std::cell::Cell::new(0),
                faults: RefCell::new(None),
            }),
        }
    }

    /// The simulation this fabric runs in.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The NoC transfers are scheduled on.
    pub fn noc(&self) -> &Noc {
        &self.noc
    }

    /// Arms the fault-injection plane on this fabric *and* its NoC. Message
    /// sends, deliveries, and memory transfers consult the plane from now
    /// on; without this call the fault machinery is entirely inert.
    // m3lint: allow(cycle-accounting): harness config-plane: arms the fault plane before the run; no architectural time is modelled for it
    pub fn set_faults(&self, plane: Rc<FaultPlane>) {
        self.noc.set_faults(plane.clone());
        *self.inner.faults.borrow_mut() = Some(plane);
    }

    /// The armed fault plane, if any (used by the kernel's dead-PE watchdog).
    pub fn faults(&self) -> Option<Rc<FaultPlane>> {
        self.inner.faults.borrow().clone()
    }

    /// Emits a fault-injection trace event at the current time.
    fn trace_fault(&self, pe: PeId, fault: &str, dur: Cycles) {
        let at = self.sim.now();
        self.tracer.record_with(|| Event {
            at,
            dur,
            pe: Some(pe),
            comp: Component::Dtu,
            kind: EventKind::FaultInject {
                fault: fault.to_string(),
                target: pe,
            },
        });
    }

    /// Returns the DTU handle of `pe`.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is not a node of the platform.
    pub fn dtu(&self, pe: PeId) -> Dtu {
        assert!(
            (pe.idx()) < self.inner.pes.borrow().len(),
            "{pe} is not a platform node"
        );
        Dtu {
            sys: self.clone(),
            pe,
        }
    }

    /// Exposes `size` bytes of memory at node `pe` (DRAM module or a PE's
    /// SPM), making it addressable by memory endpoints. Returns the backing
    /// store.
    // m3lint: allow(cycle-accounting): platform construction: memories are attached before the simulation starts, not by a DTU command
    pub fn add_memory(&self, pe: PeId, kind: MemKind, size: usize) -> Rc<RefCell<Vec<u8>>> {
        let data = Rc::new(RefCell::new(vec![0u8; size]));
        self.inner.mems.borrow_mut().insert(
            pe,
            Memory {
                kind,
                data: data.clone(),
            },
        );
        data
    }

    /// The backing store of the memory exposed at `pe`, if any.
    pub fn memory(&self, pe: PeId) -> Option<Rc<RefCell<Vec<u8>>>> {
        self.inner.mems.borrow().get(&pe).map(|m| m.data.clone())
    }

    fn mem_latency(&self, pe: PeId) -> Cycles {
        match self.inner.mems.borrow().get(&pe).map(|m| m.kind) {
            Some(MemKind::Dram) => timing::DRAM_LATENCY,
            _ => timing::SPM_LATENCY,
        }
    }

    /// Delivers `msg` into the receive EP `(pe, ep)` at the current time.
    ///
    /// `ctx` names the destination context when the message follows one —
    /// replies travel back to the context that sent the request (§4.4.4),
    /// wherever the kernel has parked it by now. `None` (plain sends)
    /// targets whatever context owns a receive EP at `ep`: the live one
    /// wins, otherwise the message lands in the save area of the context
    /// that has one configured there.
    ///
    /// `credit` names the bounded send endpoint (and its context) that paid
    /// for this message, if any: when the deposit fails, that credit is
    /// refunded on the spot, because a dropped message can never be replied
    /// to (the reply path is the normal refill, §4.4.3) and the sender
    /// would otherwise be starved for good.
    fn deposit(
        &self,
        pe: PeId,
        ep: EpId,
        msg: Message,
        ctx: Option<u64>,
        credit: Option<(PeId, u64, EpId)>,
    ) {
        self.deposit_inner(pe, ep, msg, ctx, credit);
        self.sanitize_check();
    }

    fn deposit_inner(
        &self,
        pe: PeId,
        ep: EpId,
        mut msg: Message,
        ctx: Option<u64>,
        credit: Option<(PeId, u64, EpId)>,
    ) {
        // A crashed PE's DTU is dead silicon: messages towards it vanish.
        // The sender's credit is refunded just like on a ring-buffer drop,
        // because the reply path that would normally refill it is gone.
        if let Some(faults) = self.inner.faults.borrow().as_ref() {
            if faults.crashed_at(self.sim.now(), pe).is_some() {
                self.stats.incr_handle(self.hot.msgs_dropped);
                self.trace_fault(pe, "dst_crashed", Cycles::ZERO);
                if let Some((sender_pe, sender_ctx, sender_ep)) = credit {
                    self.refill_credit(sender_pe, sender_ctx, sender_ep);
                }
                return;
            }
        }
        let mut pes = self.inner.pes.borrow_mut();
        let state = &mut pes[pe.idx()];
        // Route to the live registers or to a save area. On a PE the kernel
        // never time-multiplexes, `current_ctx` is the boot value and every
        // message matches the live path — zero overhead, identical code.
        let saved_ctx: Option<u64> = match ctx {
            Some(c) if c == state.current_ctx => None,
            Some(c) => Some(c),
            None => {
                if matches!(state.eps.get(ep.idx()), Some(EpConfig::Receive { .. })) {
                    None
                } else {
                    let saved = self.inner.saved.borrow();
                    saved
                        .iter()
                        .find(|((spe, _), sc)| {
                            *spe == pe
                                && matches!(sc.eps.get(ep.idx()), Some(EpConfig::Receive { .. }))
                        })
                        .map(|((_, c), _)| *c)
                }
            }
        };
        if let Some(c) = saved_ctx {
            // Arrival still pings the PE's notify: the kernel waits there
            // for messages on behalf of switched-out contexts.
            let arrival = state.arrival.clone();
            drop(pes);
            self.deposit_saved(pe, c, ep, msg, credit, &arrival);
            return;
        }
        let allow_replies = match state.eps.get(ep.idx()) {
            Some(EpConfig::Receive { allow_replies, .. }) => *allow_replies,
            _ => {
                self.stats.incr_handle(self.hot.deposit_no_recv_ep);
                return;
            }
        };
        if !allow_replies {
            // The buffer is not validated for replies; strip the reply info
            // so software cannot use it (paper §4.4.4).
            msg.header.reply = None;
        }
        // Captured before the deposit consumes the message: a live-ring
        // delivery lands these bytes in the running context's SPM, which
        // dirties the pages under the DTU's streaming cursor. Parked
        // deposits stay in DRAM and leave the SPM untouched.
        let wire = msg.wire_size();
        let Some(rb) = state.ringbufs.get_mut(&ep) else {
            self.stats.incr_handle(self.hot.deposit_no_recv_ep);
            return;
        };
        if rb.deposit(msg) {
            let occupied = rb.occupied() as u64;
            state.spm_dirty.touch(wire as u64);
            self.stats.incr_handle(self.hot.msgs_delivered);
            self.metrics.observe(pe, keys::RING_OCCUPANCY, occupied);
            let arrival = state.arrival.clone();
            drop(pes);
            arrival.notify_all();
        } else {
            self.stats.incr_handle(self.hot.msgs_dropped);
            self.metrics.incr(pe, keys::DTU_DROPS);
            let at = self.sim.now();
            self.tracer.record_with(|| Event {
                at,
                dur: Cycles::ZERO,
                pe: Some(pe),
                comp: Component::Dtu,
                kind: EventKind::MsgDrop { ep },
            });
            drop(pes);
            if let Some((sender_pe, sender_ctx, sender_ep)) = credit {
                self.refill_credit(sender_pe, sender_ctx, sender_ep);
            }
        }
    }

    /// The save-area half of [`DtuSystem::deposit`]: same semantics as the
    /// live path (reply stripping, drop accounting, credit refund), applied
    /// to the parked ring buffer of context `(pe, ctx)`.
    fn deposit_saved(
        &self,
        pe: PeId,
        ctx: u64,
        ep: EpId,
        msg: Message,
        credit: Option<(PeId, u64, EpId)>,
        arrival: &Notify,
    ) {
        self.deposit_saved_inner(pe, ctx, ep, msg, credit, arrival);
        self.sanitize_check();
    }

    fn deposit_saved_inner(
        &self,
        pe: PeId,
        ctx: u64,
        ep: EpId,
        mut msg: Message,
        credit: Option<(PeId, u64, EpId)>,
        arrival: &Notify,
    ) {
        let mut saved = self.inner.saved.borrow_mut();
        let Some(sc) = saved.get_mut(&(pe, ctx)) else {
            self.stats.incr_handle(self.hot.deposit_no_recv_ep);
            return;
        };
        let allow_replies = match sc.eps.get(ep.idx()) {
            Some(EpConfig::Receive { allow_replies, .. }) => *allow_replies,
            _ => {
                self.stats.incr_handle(self.hot.deposit_no_recv_ep);
                return;
            }
        };
        if !allow_replies {
            msg.header.reply = None;
        }
        let Some(rb) = sc.ringbufs.get_mut(&ep) else {
            self.stats.incr_handle(self.hot.deposit_no_recv_ep);
            return;
        };
        if rb.deposit(msg) {
            self.stats.incr_handle(self.hot.msgs_delivered);
            self.metrics
                .observe(pe, keys::RING_OCCUPANCY, rb.occupied() as u64);
            drop(saved);
            arrival.notify_all();
        } else {
            self.stats.incr_handle(self.hot.msgs_dropped);
            self.metrics.incr(pe, keys::DTU_DROPS);
            let at = self.sim.now();
            self.tracer.record_with(|| Event {
                at,
                dur: Cycles::ZERO,
                pe: Some(pe),
                comp: Component::Dtu,
                kind: EventKind::MsgDrop { ep },
            });
            drop(saved);
            if let Some((sender_pe, sender_ctx, sender_ep)) = credit {
                self.refill_credit(sender_pe, sender_ctx, sender_ep);
            }
        }
    }

    fn refill_credit(&self, pe: PeId, ctx: u64, ep: EpId) {
        self.refill_credit_inner(pe, ctx, ep);
        self.sanitize_check();
    }

    fn refill_credit_inner(&self, pe: PeId, ctx: u64, ep: EpId) {
        let mut pes = self.inner.pes.borrow_mut();
        let state = &mut pes[pe.idx()];
        if state.current_ctx == ctx {
            if let Some(EpConfig::Send {
                credits: Some(max), ..
            }) = state.eps.get(ep.idx())
            {
                let max = *max;
                let cur = state.credits.entry(ep).or_insert(0);
                *cur = (*cur + 1).min(max);
            }
            return;
        }
        // The context was switched out since it sent: the refill follows it
        // into its save area so the credit is there when it resumes.
        drop(pes);
        let mut saved = self.inner.saved.borrow_mut();
        if let Some(sc) = saved.get_mut(&(pe, ctx)) {
            if let Some(EpConfig::Send {
                credits: Some(max), ..
            }) = sc.eps.get(ep.idx())
            {
                let max = *max;
                let cur = sc.credits.entry(ep).or_insert(0);
                *cur = (*cur + 1).min(max);
            }
        }
    }

    fn spawn_delivery(
        &self,
        at: Cycles,
        target_pe: PeId,
        target_ep: EpId,
        msg: Message,
        ctx: Option<u64>,
        credit: Option<(PeId, u64, EpId)>,
    ) {
        let seq = self.inner.next_deposit.get();
        self.inner.next_deposit.set(seq + 1);
        let sys = self.clone();
        let sim = self.sim.clone();
        self.sim.spawn(format!("dtu-deliver-{seq}"), async move {
            sim.sleep_until(at).await;
            sys.deposit(target_pe, target_ep, msg, ctx, credit);
        });
    }

    fn spawn_credit_refill(&self, at: Cycles, pe: PeId, ctx: u64, ep: EpId) {
        let seq = self.inner.next_deposit.get();
        self.inner.next_deposit.set(seq + 1);
        let sys = self.clone();
        let sim = self.sim.clone();
        self.sim.spawn(format!("dtu-credit-{seq}"), async move {
            sim.sleep_until(at).await;
            sys.refill_credit(pe, ctx, ep);
        });
    }

    /// Sanitizer (`--features m3-dtu/sanitize`): asserts the DTU-wide
    /// invariants over the live registers of every PE *and* every parked
    /// save area, after each operation that can raise the checked
    /// quantities (message deposits, credit refills, endpoint
    /// (re)configuration, context restore — operations that only consume
    /// or move state cannot violate them):
    ///
    /// - **credit conservation** — a bounded send EP never holds more
    ///   credits than its configuration grants;
    /// - **ring-buffer occupancy** — a receive EP never holds more
    ///   messages than it has slots, and its buffer geometry matches its
    ///   endpoint register.
    ///
    /// Purely a host-side assertion: no simulated cycles pass, so enabling
    /// the feature cannot perturb any modelled timing. Must be called with
    /// no outstanding borrow of `pes` or `saved`.
    #[cfg(feature = "sanitize")]
    fn sanitize_check(&self) {
        {
            let pes = self.inner.pes.borrow();
            for (idx, state) in pes.iter().enumerate() {
                Self::sanitize_ctx(
                    idx,
                    state.current_ctx,
                    &state.eps,
                    &state.ringbufs,
                    &state.credits,
                );
            }
        }
        let saved = self.inner.saved.borrow();
        for ((pe, ctx), sc) in saved.iter() {
            Self::sanitize_ctx(pe.idx(), *ctx, &sc.eps, &sc.ringbufs, &sc.credits);
        }
    }

    /// The per-context half of [`DtuSystem::sanitize_check`].
    #[cfg(feature = "sanitize")]
    fn sanitize_ctx(
        pe: usize,
        ctx: u64,
        eps: &[EpConfig],
        ringbufs: &BTreeMap<EpId, RingBuf>,
        credits: &BTreeMap<EpId, u32>,
    ) {
        for (ep, remaining) in credits {
            if let Some(EpConfig::Send {
                credits: Some(max), ..
            }) = eps.get(ep.idx())
            {
                assert!(
                    remaining <= max,
                    "sanitize: pe{pe} ctx{ctx} {ep}: {remaining} credits exceed the configured {max}"
                );
            }
        }
        for (ep, rb) in ringbufs {
            assert!(
                rb.occupied() <= rb.slots(),
                "sanitize: pe{pe} ctx{ctx} {ep}: ring buffer holds {} of {} slots",
                rb.occupied(),
                rb.slots()
            );
            if let Some(EpConfig::Receive {
                slots, slot_size, ..
            }) = eps.get(ep.idx())
            {
                assert!(
                    rb.slots() == *slots && rb.slot_size() == *slot_size,
                    "sanitize: pe{pe} ctx{ctx} {ep}: ring buffer geometry {}x{} disagrees with \
                     the endpoint register {slots}x{slot_size}",
                    rb.slots(),
                    rb.slot_size()
                );
            }
        }
    }

    /// No-op without the `sanitize` feature; the optimizer erases it.
    #[cfg(not(feature = "sanitize"))]
    #[inline(always)]
    fn sanitize_check(&self) {}
}

/// One PE's data transfer unit.
///
/// Obtained from [`DtuSystem::dtu`]. Endpoint configuration lives behind a
/// [`KernelToken`] claimed via [`Dtu::claim_kernel_token`], which only a
/// privileged DTU can mint; the kernel keeps its own DTU privileged and
/// downgrades all application DTUs during boot.
///
/// # Examples
///
/// ```
/// use m3_base::{cfg, Cycles, EpId, PeId};
/// use m3_dtu::{DtuSystem, EpConfig};
/// use m3_noc::{Noc, NocConfig, Topology};
/// use m3_sim::Sim;
///
/// let sim = Sim::new();
/// let noc = Noc::new(Topology::with_nodes(3), NocConfig::default());
/// let sys = DtuSystem::new(sim.clone(), noc);
///
/// // PE0 plays the kernel: configure a channel PE1 -> PE2.
/// let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
/// kernel
///     .configure(PeId::new(2), EpId::new(0), EpConfig::Receive {
///         slots: 4, slot_size: 256, allow_replies: true,
///     })
///     .unwrap();
/// kernel
///     .configure(PeId::new(1), EpId::new(0), EpConfig::Send {
///         pe: PeId::new(2), ep: EpId::new(0), label: 0x1234,
///         credits: Some(4), max_payload: 128,
///     })
///     .unwrap();
///
/// let sender = sys.dtu(PeId::new(1));
/// let receiver = sys.dtu(PeId::new(2));
/// let got = sim.spawn("recv", async move {
///     receiver.recv(EpId::new(0)).await.unwrap()
/// });
/// sim.spawn("send", async move {
///     sender.send(EpId::new(0), b"hello", None).await.unwrap();
/// });
/// sim.run();
/// let msg = got.try_take().unwrap();
/// assert_eq!(msg.payload, b"hello");
/// assert_eq!(msg.header.label, 0x1234); // receiver-chosen, unforgeable
/// ```
#[derive(Clone)]
pub struct Dtu {
    sys: DtuSystem,
    pe: PeId,
}

impl fmt::Debug for Dtu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dtu({})", self.pe)
    }
}

impl Dtu {
    /// The PE this DTU belongs to.
    pub fn pe(&self) -> PeId {
        self.pe
    }

    /// The fabric this DTU is part of.
    pub fn system(&self) -> &DtuSystem {
        &self.sys
    }

    /// Whether this DTU may configure endpoints (its own or remote ones).
    pub fn is_privileged(&self) -> bool {
        self.sys.inner.pes.borrow()[self.pe.idx()].privileged
    }

    fn require_privileged(&self) -> Result<()> {
        if self.is_privileged() {
            Ok(())
        } else {
            Err(Error::new(Code::NoPerm).with_msg(format!("{} is not privileged", self.pe)))
        }
    }

    fn check_ep(ep: EpId) -> Result<()> {
        if ep.idx() < EP_COUNT {
            Ok(())
        } else {
            Err(Error::new(Code::InvEp).with_msg(format!("{ep} out of range")))
        }
    }

    // ------------------------------------------------------------------
    // Privileged operations (the kernel's remote-control interface)
    // ------------------------------------------------------------------

    /// Claims the kernel's capability handle over the privileged DTU
    /// configuration interface (paper §3: only the kernel PE may program
    /// config registers).
    ///
    /// The returned [`KernelToken`] is the *only* way to reach
    /// [`KernelToken::configure`], [`KernelToken::set_privileged`], and
    /// friends, so holding one is a static proof of kernel-hood. Each
    /// operation still re-checks privilege at runtime, so a token claimed
    /// before a downgrade goes dead with its PE.
    ///
    /// # Errors
    ///
    /// [`Code::NoPerm`] if this DTU has been downgraded.
    pub fn claim_kernel_token(&self) -> Result<KernelToken> {
        self.require_privileged()?;
        Ok(KernelToken { dtu: self.clone() })
    }

    // ------------------------------------------------------------------
    // Unprivileged operations (the application-visible surface)
    // ------------------------------------------------------------------

    /// Fault-plane gate at the head of every asynchronous DTU command: a
    /// crashed PE's DTU rejects everything, a stalled PE's DTU holds the
    /// command until the stall window closes. With no plane armed this is
    /// a no-op that costs zero simulated cycles. Public so receive loops
    /// built outside this crate (the kernel-multiplexed receive path in
    /// `m3-libos`) observe faults exactly like [`Dtu::recv`].
    ///
    /// # Errors
    ///
    /// [`Code::Unreachable`] if this PE has crashed.
    pub async fn fault_gate(&self) -> Result<()> {
        let Some(faults) = self.sys.faults() else {
            return Ok(());
        };
        let now = self.sys.sim.now();
        if faults.crashed_at(now, self.pe).is_some() {
            return Err(Error::new(Code::Unreachable).with_msg(format!("{} crashed", self.pe)));
        }
        if let Some(release) = faults.stall_release(now, self.pe) {
            self.sys.trace_fault(self.pe, "pe_stall", release - now);
            self.sys.sim.sleep_until(release).await;
            if faults.crashed_at(self.sys.sim.now(), self.pe).is_some() {
                return Err(Error::new(Code::Unreachable).with_msg(format!("{} crashed", self.pe)));
            }
        }
        Ok(())
    }

    /// RDMA targets a passive remote DTU; a crashed one cannot serve the
    /// request, which the initiator observes as an immediate NoC error
    /// response rather than a hang.
    fn check_target_alive(&self, target: PeId) -> Result<()> {
        if let Some(faults) = self.sys.faults() {
            if faults.crashed_at(self.sys.sim.now(), target).is_some() {
                return Err(Error::new(Code::Unreachable).with_msg(format!("{target} crashed")));
            }
        }
        Ok(())
    }

    /// Sends `payload` through send endpoint `ep`.
    ///
    /// If `reply` is `Some((rep, label))`, the receiver may reply once; the
    /// reply will arrive at local receive endpoint `rep` carrying `label`,
    /// and will refill one credit on `ep`.
    ///
    /// The call returns as soon as the DTU has accepted the command (the
    /// transfer itself proceeds in the background, paper §4.5.6); the
    /// message arrives at the receiver after the NoC transfer completes.
    ///
    /// # Errors
    ///
    /// - [`Code::InvEp`] if `ep` is not a send endpoint.
    /// - [`Code::NoCredits`] if the endpoint's credits are exhausted.
    /// - [`Code::InvArgs`] if the payload exceeds the channel's message size.
    pub async fn send(&self, ep: EpId, payload: &[u8], reply: Option<(EpId, Label)>) -> Result<()> {
        Self::check_ep(ep)?;
        self.fault_gate().await?;
        self.sys.sim.sleep(timing::CMD_ISSUE).await;

        let (target_pe, target_ep, label, bounded, my_ctx) = {
            let mut pes = self.sys.inner.pes.borrow_mut();
            let state = &mut pes[self.pe.idx()];
            let my_ctx = state.current_ctx;
            let (pe, tep, label, bounded, max_payload) = match &state.eps[ep.idx()] {
                EpConfig::Send {
                    pe,
                    ep: tep,
                    label,
                    credits,
                    max_payload,
                } => (*pe, *tep, *label, credits.is_some(), *max_payload),
                _ => return Err(Error::new(Code::InvEp).with_msg(format!("{ep} is not a send EP"))),
            };
            if payload.len() > max_payload {
                return Err(Error::new(Code::InvArgs).with_msg(format!(
                    "payload {} exceeds channel max {max_payload}",
                    payload.len()
                )));
            }
            if bounded {
                let cur = state.credits.entry(ep).or_insert(0);
                if *cur == 0 {
                    drop(pes);
                    self.sys.metrics.incr(self.pe, keys::CREDIT_STALLS);
                    let at = self.sys.sim.now();
                    self.sys.tracer.record_with(|| Event {
                        at,
                        dur: Cycles::ZERO,
                        pe: Some(self.pe),
                        comp: Component::Dtu,
                        kind: EventKind::CreditStall { ep },
                    });
                    return Err(Error::new(Code::NoCredits));
                }
                *cur -= 1;
            }
            (pe, tep, label, bounded, my_ctx)
        };

        let msg = Message {
            header: Header {
                label,
                len: payload.len() as u32,
                sender_pe: self.pe,
                sender_ep: ep,
                reply: reply.map(|(rep, rlabel)| ReplyInfo {
                    pe: self.pe,
                    ep: rep,
                    label: rlabel,
                    credit_ep: ep,
                    ctx: my_ctx,
                }),
            },
            payload: payload.into(),
        };

        let wire = (MSG_HEADER_SIZE + payload.len()) as u64;
        let now = self.sys.sim.now();
        let t = self.sys.noc.schedule(now, self.pe, target_pe, wire);
        self.sys.stats.incr_handle(self.sys.hot.msgs_sent);
        self.sys
            .stats
            .add_handle(self.sys.hot.msg_cycles, (t.completes_at - now).as_u64());
        self.sys
            .metrics
            .add(self.pe, keys::DTU_BUSY, (t.completes_at - now).as_u64());
        self.sys.tracer.record_with(|| Event {
            at: now,
            dur: t.completes_at + timing::DELIVER - now,
            pe: Some(self.pe),
            comp: Component::Dtu,
            kind: EventKind::MsgSend {
                ep,
                dst_pe: target_pe,
                dst_ep: target_ep,
                bytes: wire,
            },
        });
        let credit = if bounded {
            Some((self.pe, my_ctx, ep))
        } else {
            None
        };
        let verdict = match self.sys.faults() {
            Some(faults) => faults.message_verdict(now, self.pe, target_pe),
            None => MsgVerdict::Deliver,
        };
        match verdict {
            MsgVerdict::Deliver => {
                self.sys.spawn_delivery(
                    t.completes_at + timing::DELIVER,
                    target_pe,
                    target_ep,
                    msg,
                    None,
                    credit,
                );
            }
            MsgVerdict::Drop => {
                // The message vanishes in the NoC. The credit is refunded at
                // the would-be delivery time, exactly like a ring-buffer
                // drop: the reply path that normally refills it is gone.
                self.sys.trace_fault(self.pe, "msg_drop", Cycles::ZERO);
                if let Some((sender_pe, sender_ctx, sender_ep)) = credit {
                    self.sys.spawn_credit_refill(
                        t.completes_at + timing::DELIVER,
                        sender_pe,
                        sender_ctx,
                        sender_ep,
                    );
                }
            }
            MsgVerdict::Duplicate => {
                // Two copies arrive; only the first carries the credit
                // pointer, so a drop of the duplicate cannot double-refund.
                self.sys.trace_fault(self.pe, "msg_duplicate", Cycles::ZERO);
                self.sys.spawn_delivery(
                    t.completes_at + timing::DELIVER,
                    target_pe,
                    target_ep,
                    msg.clone(),
                    None,
                    credit,
                );
                self.sys.spawn_delivery(
                    t.completes_at + timing::DELIVER,
                    target_pe,
                    target_ep,
                    msg,
                    None,
                    None,
                );
            }
            MsgVerdict::Corrupt => {
                self.sys.trace_fault(self.pe, "msg_corrupt", Cycles::ZERO);
                let mut msg = msg;
                let mut bytes = msg.payload.to_vec();
                m3_fault::corrupt_payload(&mut bytes);
                msg.payload = bytes.into();
                self.sys.spawn_delivery(
                    t.completes_at + timing::DELIVER,
                    target_pe,
                    target_ep,
                    msg,
                    None,
                    credit,
                );
            }
        }
        Ok(())
    }

    /// Replies to a received message, using the reply information the DTU
    /// stored in its header (paper §4.4.4). Arrival of the reply refills one
    /// credit at the original sender.
    ///
    /// # Errors
    ///
    /// - [`Code::NoPerm`] if the message did not permit a reply (or the
    ///   receive buffer was not validated for replies).
    /// - [`Code::InvArgs`] if the payload exceeds the reply channel's size.
    pub async fn reply(&self, msg: &Message, payload: &[u8]) -> Result<()> {
        let Some(rinfo) = msg.header.reply else {
            return Err(Error::new(Code::NoPerm).with_msg("message permits no reply"));
        };
        self.fault_gate().await?;
        self.sys.sim.sleep(timing::CMD_ISSUE).await;

        let reply_msg = Message {
            header: Header {
                label: rinfo.label,
                len: payload.len() as u32,
                sender_pe: self.pe,
                sender_ep: EpId::new(0),
                reply: None,
            },
            payload: payload.into(),
        };
        let wire = (MSG_HEADER_SIZE + payload.len()) as u64;
        let now = self.sys.sim.now();
        let t = self.sys.noc.schedule(now, self.pe, rinfo.pe, wire);
        self.sys.stats.incr_handle(self.sys.hot.replies_sent);
        self.sys
            .stats
            .add_handle(self.sys.hot.msg_cycles, (t.completes_at - now).as_u64());
        self.sys
            .metrics
            .add(self.pe, keys::DTU_BUSY, (t.completes_at - now).as_u64());
        self.sys.tracer.record_with(|| Event {
            at: now,
            dur: t.completes_at + timing::DELIVER - now,
            pe: Some(self.pe),
            comp: Component::Dtu,
            kind: EventKind::MsgReply {
                dst_pe: rinfo.pe,
                bytes: wire,
            },
        });
        // Replies consume no credit, so a dropped reply refunds nothing.
        let verdict = match self.sys.faults() {
            Some(faults) => faults.message_verdict(now, self.pe, rinfo.pe),
            None => MsgVerdict::Deliver,
        };
        match verdict {
            MsgVerdict::Deliver => {
                self.sys.spawn_delivery(
                    t.completes_at + timing::DELIVER,
                    rinfo.pe,
                    rinfo.ep,
                    reply_msg,
                    Some(rinfo.ctx),
                    None,
                );
            }
            MsgVerdict::Drop => {
                self.sys.trace_fault(self.pe, "msg_drop", Cycles::ZERO);
            }
            MsgVerdict::Duplicate => {
                self.sys.trace_fault(self.pe, "msg_duplicate", Cycles::ZERO);
                for _ in 0..2 {
                    self.sys.spawn_delivery(
                        t.completes_at + timing::DELIVER,
                        rinfo.pe,
                        rinfo.ep,
                        reply_msg.clone(),
                        Some(rinfo.ctx),
                        None,
                    );
                }
            }
            MsgVerdict::Corrupt => {
                self.sys.trace_fault(self.pe, "msg_corrupt", Cycles::ZERO);
                let mut reply_msg = reply_msg;
                let mut bytes = reply_msg.payload.to_vec();
                m3_fault::corrupt_payload(&mut bytes);
                reply_msg.payload = bytes.into();
                self.sys.spawn_delivery(
                    t.completes_at + timing::DELIVER,
                    rinfo.pe,
                    rinfo.ep,
                    reply_msg,
                    Some(rinfo.ctx),
                    None,
                );
            }
        }
        // The credit refill models the DTU-level flow-control ack (§4.4.3),
        // which travels independently of the reply message: even a faulted
        // reply returns the sender's credit, so retries are never starved.
        self.sys
            .spawn_credit_refill(t.completes_at, rinfo.pe, rinfo.ctx, rinfo.credit_ep);
        Ok(())
    }

    /// Fetches the oldest unread message from receive endpoint `ep`, if any.
    ///
    /// The slot stays occupied until [`Dtu::ack`].
    ///
    /// # Errors
    ///
    /// [`Code::InvEp`] if `ep` is not a receive endpoint.
    // m3lint: allow(cycle-accounting): a single message-register read; the polling software pays timing::FETCH_POLL per poll in recv()
    pub fn fetch(&self, ep: EpId) -> Result<Option<Message>> {
        Self::check_ep(ep)?;
        let mut pes = self.sys.inner.pes.borrow_mut();
        let state = &mut pes[self.pe.idx()];
        match state.ringbufs.get_mut(&ep) {
            Some(rb) => Ok(rb.fetch()),
            None => Err(Error::new(Code::InvEp).with_msg(format!("{ep} is not a receive EP"))),
        }
    }

    /// Waits for and fetches the next message from receive endpoint `ep`.
    ///
    /// Models the software polling the DTU's message register (§4.4.1);
    /// each poll costs [`timing::FETCH_POLL`].
    ///
    /// # Errors
    ///
    /// [`Code::InvEp`] if `ep` is not a receive endpoint.
    pub async fn recv(&self, ep: EpId) -> Result<Message> {
        loop {
            self.fault_gate().await?;
            self.sys.sim.sleep(timing::FETCH_POLL).await;
            if let Some(msg) = self.fetch(ep)? {
                return Ok(msg);
            }
            let arrival = self.sys.inner.pes.borrow()[self.pe.idx()].arrival.clone();
            arrival.wait().await;
        }
    }

    /// Like [`Dtu::recv`], but gives up once the simulated clock reaches
    /// `deadline`.
    ///
    /// # Errors
    ///
    /// [`Code::Timeout`] if no message arrived by the deadline; otherwise
    /// as [`Dtu::recv`].
    pub async fn recv_timeout(&self, ep: EpId, deadline: Cycles) -> Result<Message> {
        match m3_sim::with_deadline(&self.sys.sim, deadline, self.recv(ep)).await {
            Some(result) => result,
            None => Err(Error::new(Code::Timeout).with_msg(format!("recv on {ep}"))),
        }
    }

    /// Frees the ring-buffer slot of one fetched message (advancing the read
    /// position, §4.4.3).
    ///
    /// # Errors
    ///
    /// [`Code::InvEp`] if `ep` is not a receive endpoint.
    ///
    /// # Panics
    ///
    /// Panics if no fetched message is outstanding.
    // m3lint: allow(cycle-accounting): a single register write on the receive path; the caller's poll loop (timing::FETCH_POLL) carries the cost
    pub fn ack(&self, ep: EpId) -> Result<()> {
        Self::check_ep(ep)?;
        let mut pes = self.sys.inner.pes.borrow_mut();
        let state = &mut pes[self.pe.idx()];
        match state.ringbufs.get_mut(&ep) {
            Some(rb) => {
                rb.ack();
                self.sys
                    .metrics
                    .observe(self.pe, keys::RING_OCCUPANCY, rb.occupied() as u64);
                Ok(())
            }
            None => Err(Error::new(Code::InvEp).with_msg(format!("{ep} is not a receive EP"))),
        }
    }

    /// Whether a message is waiting at receive endpoint `ep`.
    pub fn has_message(&self, ep: EpId) -> bool {
        let pes = self.sys.inner.pes.borrow();
        pes[self.pe.idx()]
            .ringbufs
            .get(&ep)
            .is_some_and(|rb| rb.has_message())
    }

    /// Remaining credits of send endpoint `ep` (`None` if unbounded or not a
    /// send EP).
    pub fn credits(&self, ep: EpId) -> Option<u32> {
        let pes = self.sys.inner.pes.borrow();
        pes[self.pe.idx()].credits.get(&ep).copied()
    }

    /// Reads `len` bytes at `offset` within the region of memory endpoint
    /// `ep` (RDMA read; no software runs on the passive side, §4.4.1).
    ///
    /// The caller is blocked until the data has arrived (the prototype polls
    /// for completion, §4.4.1).
    ///
    /// # Errors
    ///
    /// - [`Code::InvEp`] if `ep` is not a memory endpoint.
    /// - [`Code::NoPerm`] if the endpoint lacks read permission.
    /// - [`Code::InvArgs`] if the access exceeds the region.
    pub async fn read_mem(&self, ep: EpId, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.read_mem_into(ep, offset, &mut buf).await?;
        Ok(buf)
    }

    /// Like [`Dtu::read_mem`], but places the data in `buf` instead of
    /// allocating — the form chunked readers (filesystem, pipes) use so a
    /// multi-megabyte transfer reuses one buffer across chunks.
    ///
    /// # Errors
    ///
    /// Same as [`Dtu::read_mem`].
    pub async fn read_mem_into(&self, ep: EpId, offset: u64, buf: &mut [u8]) -> Result<()> {
        let len = buf.len();
        let (pe, base) = self.check_mem_access(ep, offset, len, Perm::R)?;
        self.fault_gate().await?;
        self.check_target_alive(pe)?;
        self.sys.sim.sleep(timing::CMD_ISSUE).await;
        let now = self.sys.sim.now();
        // Request packet to the memory, then the data travels back.
        let req = self.sys.noc.schedule(now, self.pe, pe, 0);
        let lat = self.sys.mem_latency(pe);
        let data_xfer = self
            .sys
            .noc
            .schedule(req.completes_at + lat, pe, self.pe, len as u64);
        self.sys.sim.sleep_until(data_xfer.completes_at).await;
        self.sys
            .stats
            .add_handle(self.sys.hot.mem_read_bytes, len as u64);
        self.sys.stats.add_handle(
            self.sys.hot.xfer_cycles,
            (data_xfer.completes_at - now).as_u64(),
        );
        self.sys.metrics.add(
            self.pe,
            keys::DTU_BUSY,
            (data_xfer.completes_at - now).as_u64(),
        );
        self.sys.tracer.record_with(|| Event {
            at: now,
            dur: data_xfer.completes_at - now,
            pe: Some(self.pe),
            comp: Component::Dtu,
            kind: EventKind::MemXfer {
                write: false,
                bytes: len as u64,
            },
        });

        let mems = self.sys.inner.mems.borrow();
        let mem = mems
            .get(&pe)
            .ok_or_else(|| Error::new(Code::InvArgs).with_msg(format!("no memory at {pe}")))?;
        let data = mem.data.borrow();
        let start = (base + offset) as usize;
        buf.copy_from_slice(&data[start..start + len]);
        drop(data);
        drop(mems);
        // The fetched bytes land in this PE's SPM: dirty the pages under the
        // streaming cursor. RDMA writes read *out* of the SPM and stay clean.
        self.sys.inner.pes.borrow_mut()[self.pe.idx()]
            .spm_dirty
            .touch(len as u64);
        Ok(())
    }

    /// Writes `data` at `offset` within the region of memory endpoint `ep`
    /// (RDMA write).
    ///
    /// # Errors
    ///
    /// - [`Code::InvEp`] if `ep` is not a memory endpoint.
    /// - [`Code::NoPerm`] if the endpoint lacks write permission.
    /// - [`Code::InvArgs`] if the access exceeds the region.
    pub async fn write_mem(&self, ep: EpId, offset: u64, data: &[u8]) -> Result<()> {
        let (pe, base) = self.check_mem_access(ep, offset, data.len(), Perm::W)?;
        self.fault_gate().await?;
        self.check_target_alive(pe)?;
        self.sys.sim.sleep(timing::CMD_ISSUE).await;
        let now = self.sys.sim.now();
        let xfer = self.sys.noc.schedule(now, self.pe, pe, data.len() as u64);
        let lat = self.sys.mem_latency(pe);
        self.sys.sim.sleep_until(xfer.completes_at + lat).await;
        self.sys
            .stats
            .add_handle(self.sys.hot.mem_write_bytes, data.len() as u64);
        self.sys.stats.add_handle(
            self.sys.hot.xfer_cycles,
            (xfer.completes_at + lat - now).as_u64(),
        );
        self.sys.metrics.add(
            self.pe,
            keys::DTU_BUSY,
            (xfer.completes_at + lat - now).as_u64(),
        );
        self.sys.tracer.record_with(|| Event {
            at: now,
            dur: xfer.completes_at + lat - now,
            pe: Some(self.pe),
            comp: Component::Dtu,
            kind: EventKind::MemXfer {
                write: true,
                bytes: data.len() as u64,
            },
        });

        let mems = self.sys.inner.mems.borrow();
        let mem = mems
            .get(&pe)
            .ok_or_else(|| Error::new(Code::InvArgs).with_msg(format!("no memory at {pe}")))?;
        let mut store = mem.data.borrow_mut();
        let start = (base + offset) as usize;
        store[start..start + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn check_mem_access(
        &self,
        ep: EpId,
        offset: u64,
        len: usize,
        need: Perm,
    ) -> Result<(PeId, u64)> {
        Self::check_ep(ep)?;
        let pes = self.sys.inner.pes.borrow();
        let state = &pes[self.pe.idx()];
        match &state.eps[ep.idx()] {
            EpConfig::Memory {
                pe,
                offset: base,
                len: region_len,
                perm,
            } => {
                if !perm.contains(need) {
                    return Err(Error::new(Code::NoPerm)
                        .with_msg(format!("memory EP is {perm}, need {need}")));
                }
                let end = offset
                    .checked_add(len as u64)
                    .ok_or_else(|| Error::new(Code::InvArgs).with_msg("offset overflow"))?;
                if end > *region_len {
                    return Err(Error::new(Code::InvArgs).with_msg(format!(
                        "access [{offset}, {end}) beyond region {region_len}"
                    )));
                }
                Ok((*pe, *base))
            }
            _ => Err(Error::new(Code::InvEp).with_msg(format!("{ep} is not a memory EP"))),
        }
    }
}

/// The kernel's handle over the privileged DTU configuration interface.
///
/// Minted by [`Dtu::claim_kernel_token`], which fails on downgraded DTUs.
/// The token is deliberately neither `Clone` nor `Copy`: it cannot be
/// duplicated and handed to application code, which makes "only the kernel
/// configures endpoints" (paper §3) a property the type system helps
/// enforce — and one `m3-lint`'s isolation rule checks by name.
pub struct KernelToken {
    dtu: Dtu,
}

impl fmt::Debug for KernelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KernelToken({})", self.dtu.pe)
    }
}

impl KernelToken {
    /// The PE of the kernel DTU this token was claimed from.
    pub fn pe(&self) -> PeId {
        self.dtu.pe
    }

    /// Configures endpoint `ep` of the DTU at `target` (remotely, over the
    /// NoC — this is how the kernel establishes channels, paper Figure 2).
    ///
    /// # Errors
    ///
    /// - [`Code::NoPerm`] if this DTU has been downgraded.
    /// - [`Code::InvEp`] if `ep` is out of range.
    // m3lint: allow(cycle-accounting): KernelToken config-plane: the kernel pays for the EP_CONFIG_BYTES config message it sends to reach this
    pub fn configure(&self, target: PeId, ep: EpId, cfg: EpConfig) -> Result<()> {
        let res = self.configure_inner(target, ep, cfg);
        self.dtu.sys.sanitize_check();
        res
    }

    fn configure_inner(&self, target: PeId, ep: EpId, cfg: EpConfig) -> Result<()> {
        self.dtu.require_privileged()?;
        Dtu::check_ep(ep)?;
        let mut pes = self.dtu.sys.inner.pes.borrow_mut();
        let state = pes
            .get_mut(target.idx())
            .ok_or_else(|| Error::new(Code::InvArgs).with_msg(format!("no node {target}")))?;
        match &cfg {
            EpConfig::Receive {
                slots, slot_size, ..
            } => {
                state.ringbufs.insert(ep, RingBuf::new(*slots, *slot_size));
                state.credits.remove(&ep);
            }
            EpConfig::Send { credits, .. } => {
                state.ringbufs.remove(&ep);
                if let Some(c) = credits {
                    state.credits.insert(ep, *c);
                } else {
                    state.credits.remove(&ep);
                }
            }
            EpConfig::Memory { .. } | EpConfig::Invalid => {
                state.ringbufs.remove(&ep);
                state.credits.remove(&ep);
            }
        }
        state.eps[ep.idx()] = cfg;
        Ok(())
    }

    /// Reads the configuration of endpoint `ep` at `target`.
    ///
    /// # Errors
    ///
    /// Same as [`KernelToken::configure`].
    pub fn ep_config(&self, target: PeId, ep: EpId) -> Result<EpConfig> {
        self.dtu.require_privileged()?;
        Dtu::check_ep(ep)?;
        let pes = self.dtu.sys.inner.pes.borrow();
        let state = pes
            .get(target.idx())
            .ok_or_else(|| Error::new(Code::InvArgs).with_msg(format!("no node {target}")))?;
        Ok(state.eps[ep.idx()].clone())
    }

    /// Upgrades or downgrades the DTU at `target`. During boot the kernel
    /// downgrades every application PE (paper §3).
    ///
    /// # Errors
    ///
    /// [`Code::NoPerm`] if this DTU has been downgraded itself.
    // m3lint: allow(cycle-accounting): KernelToken config-plane: privilege flips happen at boot/teardown under the kernel's charged config path
    pub fn set_privileged(&self, target: PeId, privileged: bool) -> Result<()> {
        self.dtu.require_privileged()?;
        let mut pes = self.dtu.sys.inner.pes.borrow_mut();
        let state = pes
            .get_mut(target.idx())
            .ok_or_else(|| Error::new(Code::InvArgs).with_msg(format!("no node {target}")))?;
        state.privileged = privileged;
        Ok(())
    }

    /// Refills the credits of send endpoint `ep` at `target` to `credits`
    /// (an OS kernel may refill credits besides the reply path, §4.4.3).
    ///
    /// # Errors
    ///
    /// - [`Code::NoPerm`] if this DTU has been downgraded.
    /// - [`Code::InvEp`] if the endpoint is not a bounded-credit send EP.
    // m3lint: allow(cycle-accounting): credits are restored at the reply transfer's completion time, which the replying side already paid for
    pub fn refill_credits(&self, target: PeId, ep: EpId, credits: u32) -> Result<()> {
        let res = self.refill_credits_inner(target, ep, credits);
        self.dtu.sys.sanitize_check();
        res
    }

    fn refill_credits_inner(&self, target: PeId, ep: EpId, credits: u32) -> Result<()> {
        self.dtu.require_privileged()?;
        Dtu::check_ep(ep)?;
        let mut pes = self.dtu.sys.inner.pes.borrow_mut();
        let state = pes
            .get_mut(target.idx())
            .ok_or_else(|| Error::new(Code::InvArgs).with_msg(format!("no node {target}")))?;
        match state.eps.get(ep.idx()) {
            Some(EpConfig::Send {
                credits: Some(max), ..
            }) => {
                let v = credits.min(*max);
                state.credits.insert(ep, v);
                Ok(())
            }
            _ => Err(Error::new(Code::InvEp).with_msg("not a bounded-credit send EP")),
        }
    }

    // ------------------------------------------------------------------
    // Context switching (kernel-driven VPE time-multiplexing, m3-sched)
    // ------------------------------------------------------------------

    /// Suspends the live context of the DTU at `target`: its endpoint
    /// registers, undelivered ring-buffer contents, and unspent credits move
    /// to the context's save area, and the live registers reset to the boot
    /// state. Until [`KernelToken::restore_state`] installs a successor the
    /// DTU carries [`NO_CTX`], so in-flight traffic keeps routing into save
    /// areas rather than the empty registers.
    ///
    /// Returns `(state_bytes, dirty_pages)`: the DTU-state bytes the save
    /// moved (the caller charges the DTU transfer to DRAM at 8 B/cycle,
    /// §5.4) and how many SPM data pages were dirty since the context last
    /// went out — the pages a dirty-tracked switch must write back instead
    /// of the whole image. The live dirty bitmap then resets to fully dirty
    /// for whichever context runs next, so an untracked successor is never
    /// under-counted.
    ///
    /// # Errors
    ///
    /// - [`Code::NoPerm`] if this DTU has been downgraded.
    /// - [`Code::InvArgs`] if `target` does not exist or is already saved
    ///   out (carries [`NO_CTX`]).
    // m3lint: allow(cycle-accounting): the kernel switch path charges CTX_SAVE_FIXED plus the modelled state transfer; the doc says the caller charges the bytes moved
    pub fn save_state(&self, target: PeId) -> Result<(u64, u32)> {
        self.dtu.require_privileged()?;
        let mut pes = self.dtu.sys.inner.pes.borrow_mut();
        let state = pes
            .get_mut(target.idx())
            .ok_or_else(|| Error::new(Code::InvArgs).with_msg(format!("no node {target}")))?;
        if state.current_ctx == NO_CTX {
            return Err(Error::new(Code::InvArgs).with_msg(format!("{target} mid-switch already")));
        }
        let ctx = state.current_ctx;
        let dirty_pages = state.spm_dirty.count();
        let saved_ctx = SavedCtx {
            eps: std::mem::replace(&mut state.eps, vec![EpConfig::Invalid; EP_COUNT]),
            ringbufs: std::mem::take(&mut state.ringbufs),
            credits: std::mem::take(&mut state.credits),
            dirty_pages,
        };
        state.current_ctx = NO_CTX;
        state.spm_dirty.mark_all();
        drop(pes);
        let bytes = saved_ctx.state_bytes();
        self.dtu
            .sys
            .inner
            .saved
            .borrow_mut()
            .insert((target, ctx), saved_ctx);
        Ok((bytes, dirty_pages))
    }

    /// Resumes context `ctx` on the DTU at `target`: its save area becomes
    /// the live endpoint registers, ring buffers, and credits. Returns
    /// `(state_bytes, dirty_pages)`: the DTU-state bytes the restore moved
    /// (charged by the caller like a save) and the SPM pages the context's
    /// save-out transferred, which an eager restore brings back. The live
    /// bitmap starts clean: the image just restored matches its DRAM copy
    /// until the DTU deposits into it again.
    ///
    /// # Errors
    ///
    /// - [`Code::NoPerm`] if this DTU has been downgraded.
    /// - [`Code::InvArgs`] if `target` does not exist or `(target, ctx)` has
    ///   no save area.
    // m3lint: allow(cycle-accounting): the kernel switch path charges CTX_RESTORE_FIXED plus the modelled state transfer, as for save_state
    pub fn restore_state(&self, target: PeId, ctx: u64) -> Result<(u64, u32)> {
        let res = self.restore_state_inner(target, ctx);
        self.dtu.sys.sanitize_check();
        res
    }

    fn restore_state_inner(&self, target: PeId, ctx: u64) -> Result<(u64, u32)> {
        self.dtu.require_privileged()?;
        let saved_ctx = self
            .dtu
            .sys
            .inner
            .saved
            .borrow_mut()
            .remove(&(target, ctx))
            .ok_or_else(|| {
                Error::new(Code::InvArgs).with_msg(format!("no saved context {ctx} at {target}"))
            })?;
        let bytes = saved_ctx.state_bytes();
        let dirty_pages = saved_ctx.dirty_pages;
        let mut pes = self.dtu.sys.inner.pes.borrow_mut();
        let state = pes
            .get_mut(target.idx())
            .ok_or_else(|| Error::new(Code::InvArgs).with_msg(format!("no node {target}")))?;
        state.eps = saved_ctx.eps;
        state.ringbufs = saved_ctx.ringbufs;
        state.credits = saved_ctx.credits;
        state.current_ctx = ctx;
        state.spm_dirty.clear();
        let arrival = state.arrival.clone();
        drop(pes);
        // Messages may have been parked in the restored ring buffers while
        // the context was out; wake its receivers so they re-poll.
        arrival.notify_all();
        Ok((bytes, dirty_pages))
    }

    /// Configures endpoint `ep` directly in the *save area* of context
    /// `(target, ctx)`, creating the area if needed — how the kernel
    /// prepares channels for an admitted-but-not-yet-resident VPE without
    /// touching whoever holds the live registers. Same ring-buffer and
    /// credit bookkeeping as [`KernelToken::configure`].
    ///
    /// # Errors
    ///
    /// - [`Code::NoPerm`] if this DTU has been downgraded.
    /// - [`Code::InvEp`] if `ep` is out of range.
    // m3lint: allow(cycle-accounting): KernelToken config-plane: updates a parked context image; charged by the kernel's config message path
    pub fn stash_config(&self, target: PeId, ctx: u64, ep: EpId, cfg: EpConfig) -> Result<()> {
        let res = self.stash_config_inner(target, ctx, ep, cfg);
        self.dtu.sys.sanitize_check();
        res
    }

    fn stash_config_inner(&self, target: PeId, ctx: u64, ep: EpId, cfg: EpConfig) -> Result<()> {
        self.dtu.require_privileged()?;
        Dtu::check_ep(ep)?;
        let mut saved = self.dtu.sys.inner.saved.borrow_mut();
        let sc = saved.entry((target, ctx)).or_insert_with(SavedCtx::new);
        match &cfg {
            EpConfig::Receive {
                slots, slot_size, ..
            } => {
                sc.ringbufs.insert(ep, RingBuf::new(*slots, *slot_size));
                sc.credits.remove(&ep);
            }
            EpConfig::Send { credits, .. } => {
                sc.ringbufs.remove(&ep);
                if let Some(c) = credits {
                    sc.credits.insert(ep, *c);
                } else {
                    sc.credits.remove(&ep);
                }
            }
            EpConfig::Memory { .. } | EpConfig::Invalid => {
                sc.ringbufs.remove(&ep);
                sc.credits.remove(&ep);
            }
        }
        sc.eps[ep.idx()] = cfg;
        Ok(())
    }

    /// Labels the live registers of the DTU at `target` as belonging to
    /// context `ctx` (set when a VPE is admitted resident, so later replies
    /// can chase it through switches).
    ///
    /// # Errors
    ///
    /// [`Code::NoPerm`] if this DTU has been downgraded.
    // m3lint: allow(cycle-accounting): KernelToken config-plane: pointer swap during a switch the kernel has already charged (CTX_* + transfer)
    pub fn set_current_ctx(&self, target: PeId, ctx: u64) -> Result<()> {
        self.dtu.require_privileged()?;
        let mut pes = self.dtu.sys.inner.pes.borrow_mut();
        let state = pes
            .get_mut(target.idx())
            .ok_or_else(|| Error::new(Code::InvArgs).with_msg(format!("no node {target}")))?;
        state.current_ctx = ctx;
        Ok(())
    }

    /// The context id the live registers of `target` belong to.
    ///
    /// # Errors
    ///
    /// [`Code::NoPerm`] if this DTU has been downgraded.
    pub fn current_ctx(&self, target: PeId) -> Result<u64> {
        self.dtu.require_privileged()?;
        let pes = self.dtu.sys.inner.pes.borrow();
        let state = pes
            .get(target.idx())
            .ok_or_else(|| Error::new(Code::InvArgs).with_msg(format!("no node {target}")))?;
        Ok(state.current_ctx)
    }

    /// Whether the save area of `(target, ctx)` holds an unfetched message
    /// at endpoint `ep` — the kernel's wake-up check for parked VPEs.
    pub fn saved_has_message(&self, target: PeId, ctx: u64, ep: EpId) -> bool {
        self.dtu
            .sys
            .inner
            .saved
            .borrow()
            .get(&(target, ctx))
            .and_then(|sc| sc.ringbufs.get(&ep))
            .is_some_and(RingBuf::has_message)
    }

    /// Whether the *live* registers of `target` hold an unfetched message at
    /// `ep` (the kernel peeks on behalf of a resident VPE).
    pub fn has_message(&self, target: PeId, ep: EpId) -> bool {
        let pes = self.dtu.sys.inner.pes.borrow();
        pes.get(target.idx())
            .and_then(|s| s.ringbufs.get(&ep))
            .is_some_and(RingBuf::has_message)
    }

    /// Discards the save area of `(target, ctx)` (the VPE died while
    /// switched out). Returns whether one existed.
    ///
    /// # Errors
    ///
    /// [`Code::NoPerm`] if this DTU has been downgraded.
    // m3lint: allow(cycle-accounting): KernelToken config-plane: context teardown bookkeeping inside the kernel's charged exit path
    pub fn drop_saved(&self, target: PeId, ctx: u64) -> Result<bool> {
        self.dtu.require_privileged()?;
        Ok(self
            .dtu
            .sys
            .inner
            .saved
            .borrow_mut()
            .remove(&(target, ctx))
            .is_some())
    }

    /// The arrival notify of the DTU at `target` — woken on every message
    /// deposit for that PE, live or saved. The kernel's scheduler shares it
    /// as the per-PE wake signal.
    ///
    /// # Errors
    ///
    /// [`Code::NoPerm`] if this DTU has been downgraded.
    pub fn arrival_notify(&self, target: PeId) -> Result<Notify> {
        self.dtu.require_privileged()?;
        let pes = self.dtu.sys.inner.pes.borrow();
        let state = pes
            .get(target.idx())
            .ok_or_else(|| Error::new(Code::InvArgs).with_msg(format!("no node {target}")))?;
        Ok(state.arrival.clone())
    }

    /// A full copy of the live endpoint state of `target` — per endpoint:
    /// its configuration, its ring buffer (receive EPs), and its remaining
    /// credits (bounded send EPs). Test instrumentation for the
    /// save→restore round-trip property; not a modeled DTU operation.
    ///
    /// # Errors
    ///
    /// [`Code::NoPerm`] if this DTU has been downgraded.
    #[allow(clippy::type_complexity)]
    pub fn snapshot(&self, target: PeId) -> Result<Vec<(EpConfig, Option<RingBuf>, Option<u32>)>> {
        self.dtu.require_privileged()?;
        let pes = self.dtu.sys.inner.pes.borrow();
        let state = pes
            .get(target.idx())
            .ok_or_else(|| Error::new(Code::InvArgs).with_msg(format!("no node {target}")))?;
        Ok((0..EP_COUNT)
            .map(|i| {
                let ep = EpId::new(i as u32);
                (
                    state.eps[i].clone(),
                    state.ringbufs.get(&ep).cloned(),
                    state.credits.get(&ep).copied(),
                )
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_noc::{NocConfig, Topology};

    fn setup(nodes: u32) -> (Sim, DtuSystem) {
        let sim = Sim::new();
        let noc = Noc::new(Topology::with_nodes(nodes), NocConfig::default());
        let sys = DtuSystem::new(sim.clone(), noc);
        (sim, sys)
    }

    fn recv_cfg(slots: usize, replies: bool) -> EpConfig {
        EpConfig::Receive {
            slots,
            slot_size: 256,
            allow_replies: replies,
        }
    }

    fn send_cfg(pe: u32, ep: u32, label: Label, credits: Option<u32>) -> EpConfig {
        EpConfig::Send {
            pe: PeId::new(pe),
            ep: EpId::new(ep),
            label,
            credits,
            max_payload: 128,
        }
    }

    /// The sanitizer must fire on a genuine invariant violation. The public
    /// API upholds the invariants by construction, so the test corrupts the
    /// internal credit ledger directly and then drives a checked operation.
    #[cfg(feature = "sanitize")]
    #[test]
    #[should_panic(expected = "credits exceed the configured")]
    fn sanitize_catches_credit_overflow() {
        let (_sim, sys) = setup(2);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(0), send_cfg(0, 0, 0, Some(2)))
            .unwrap();
        sys.inner.pes.borrow_mut()[1]
            .credits
            .insert(EpId::new(0), 99);
        // Any checked operation — even one touching a different endpoint —
        // now trips the conservation assert.
        kernel
            .configure(PeId::new(1), EpId::new(1), recv_cfg(2, false))
            .unwrap();
    }

    #[cfg(feature = "sanitize")]
    #[test]
    #[should_panic(expected = "ring buffer geometry")]
    fn sanitize_catches_ring_geometry_mismatch() {
        let (_sim, sys) = setup(2);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(0), recv_cfg(4, false))
            .unwrap();
        sys.inner.pes.borrow_mut()[1]
            .ringbufs
            .insert(EpId::new(0), RingBuf::new(2, 64));
        kernel
            .refill_credits(PeId::new(1), EpId::new(0), 1)
            .unwrap_err();
    }

    #[test]
    fn message_roundtrip_with_reply() {
        let (sim, sys) = setup(3);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(2), EpId::new(0), recv_cfg(4, true))
            .unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(0), send_cfg(2, 0, 0xcafe, Some(4)))
            .unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(1), recv_cfg(4, false))
            .unwrap();

        let receiver = sys.dtu(PeId::new(2));
        let server = sim.spawn("server", async move {
            let msg = receiver.recv(EpId::new(0)).await.unwrap();
            assert_eq!(msg.payload, b"ping");
            assert_eq!(msg.header.label, 0xcafe);
            receiver.reply(&msg, b"pong").await.unwrap();
            receiver.ack(EpId::new(0)).unwrap();
        });

        let sender = sys.dtu(PeId::new(1));
        let client = sim.spawn("client", async move {
            sender
                .send(EpId::new(0), b"ping", Some((EpId::new(1), 0x99)))
                .await
                .unwrap();
            let reply = sender.recv(EpId::new(1)).await.unwrap();
            sender.ack(EpId::new(1)).unwrap();
            reply
        });

        sim.run();
        server.try_take().unwrap();
        let reply = client.try_take().unwrap();
        assert_eq!(reply.payload, b"pong");
        assert_eq!(reply.header.label, 0x99);
    }

    #[test]
    fn credits_limit_in_flight_messages() {
        let (sim, sys) = setup(3);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(2), EpId::new(0), recv_cfg(8, false))
            .unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(0), send_cfg(2, 0, 0, Some(2)))
            .unwrap();

        let sender = sys.dtu(PeId::new(1));
        let h = sim.spawn("sender", async move {
            sender.send(EpId::new(0), b"1", None).await.unwrap();
            sender.send(EpId::new(0), b"2", None).await.unwrap();
            sender
                .send(EpId::new(0), b"3", None)
                .await
                .unwrap_err()
                .code()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Code::NoCredits);
    }

    #[test]
    fn reply_refills_credits() {
        let (sim, sys) = setup(3);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(2), EpId::new(0), recv_cfg(8, true))
            .unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(0), send_cfg(2, 0, 0, Some(1)))
            .unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(1), recv_cfg(4, false))
            .unwrap();

        let receiver = sys.dtu(PeId::new(2));
        sim.spawn("server", async move {
            for _ in 0..3 {
                let msg = receiver.recv(EpId::new(0)).await.unwrap();
                receiver.reply(&msg, b"ok").await.unwrap();
                receiver.ack(EpId::new(0)).unwrap();
            }
        });

        let sender = sys.dtu(PeId::new(1));
        let h = sim.spawn("client", async move {
            // With 1 credit, each send must wait for the previous reply.
            for _ in 0..3 {
                sender
                    .send(EpId::new(0), b"req", Some((EpId::new(1), 0)))
                    .await
                    .unwrap();
                sender.recv(EpId::new(1)).await.unwrap();
                sender.ack(EpId::new(1)).unwrap();
            }
            sender.credits(EpId::new(0))
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Some(1), "credit restored by reply");
    }

    #[test]
    fn unprivileged_dtu_cannot_configure() {
        let (_sim, sys) = setup(2);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel.set_privileged(PeId::new(1), false).unwrap();
        let app = sys.dtu(PeId::new(1));
        // The configuration surface is unreachable without a KernelToken,
        // and a downgraded DTU cannot mint one.
        let err = app.claim_kernel_token().unwrap_err();
        assert_eq!(err.code(), Code::NoPerm);
        // The kernel still can.
        kernel
            .configure(PeId::new(1), EpId::new(0), recv_cfg(4, false))
            .unwrap();
    }

    #[test]
    fn kernel_token_dies_with_its_pe() {
        // A token claimed while privileged must not outlive the privilege:
        // every operation re-checks at runtime (hardware would drop the
        // config-register write, paper §3).
        let (_sim, sys) = setup(2);
        let stale = sys.dtu(PeId::new(1)).claim_kernel_token().unwrap();
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel.set_privileged(PeId::new(1), false).unwrap();
        let err = stale
            .configure(PeId::new(1), EpId::new(0), recv_cfg(4, false))
            .unwrap_err();
        assert_eq!(err.code(), Code::NoPerm);
        assert_eq!(
            stale.set_privileged(PeId::new(1), true).unwrap_err().code(),
            Code::NoPerm
        );
    }

    #[test]
    fn send_on_unconfigured_ep_fails() {
        let (sim, sys) = setup(2);
        let app = sys.dtu(PeId::new(1));
        let h = sim.spawn("t", async move {
            app.send(EpId::new(0), b"x", None).await.unwrap_err().code()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Code::InvEp);
    }

    #[test]
    fn oversized_payload_rejected_at_send() {
        let (sim, sys) = setup(3);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(2), EpId::new(0), recv_cfg(4, false))
            .unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(0), send_cfg(2, 0, 0, None))
            .unwrap();
        let sender = sys.dtu(PeId::new(1));
        let h = sim.spawn("t", async move {
            let big = vec![0u8; 4096];
            sender
                .send(EpId::new(0), &big, None)
                .await
                .unwrap_err()
                .code()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Code::InvArgs);
    }

    #[test]
    fn ringbuffer_overflow_drops_messages() {
        let (sim, sys) = setup(3);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(2), EpId::new(0), recv_cfg(2, false))
            .unwrap();
        // Misconfigured channel: more credits than slots (the paper warns
        // receivers should not hand out more credits than buffer space).
        kernel
            .configure(PeId::new(1), EpId::new(0), send_cfg(2, 0, 0, Some(4)))
            .unwrap();
        let sender = sys.dtu(PeId::new(1));
        let stats = sim.stats();
        sim.spawn("sender", async move {
            for _ in 0..4 {
                sender.send(EpId::new(0), b"x", None).await.unwrap();
            }
        });
        sim.run();
        assert_eq!(stats.get("dtu.msgs_delivered"), 2);
        assert_eq!(stats.get("dtu.msgs_dropped"), 2);
    }

    #[test]
    fn dropped_message_refunds_sender_credit() {
        // Regression: a dropped message used to consume the sender's credit
        // forever (no reply would ever refill it), starving the sender.
        let (sim, sys) = setup(3);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        // One slot, two credits: the second in-flight message is dropped.
        kernel
            .configure(PeId::new(2), EpId::new(0), recv_cfg(1, false))
            .unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(0), send_cfg(2, 0, 0, Some(2)))
            .unwrap();
        let sender = sys.dtu(PeId::new(1));
        let stats = sim.stats();
        let sim2 = sim.clone();
        let h = sim.spawn("sender", async move {
            sender.send(EpId::new(0), b"a", None).await.unwrap();
            sender.send(EpId::new(0), b"b", None).await.unwrap(); // dropped
            sim2.sleep(Cycles::new(10_000)).await; // let deliveries land
                                                   // The drop must hand the credit back: this third send would
                                                   // fail with NoCredits if the credit leaked.
            sender.send(EpId::new(0), b"c", None).await.unwrap(); // dropped too
            sim2.sleep(Cycles::new(10_000)).await;
            sender.credits(EpId::new(0))
        });
        sim.run();
        assert_eq!(stats.get("dtu.msgs_delivered"), 1);
        assert_eq!(stats.get("dtu.msgs_dropped"), 2);
        // Both dropped sends were refunded; the delivered one was not.
        assert_eq!(h.try_take().unwrap(), Some(1));
        let metrics = sim.metrics();
        assert_eq!(metrics.get(PeId::new(2), m3_sim::keys::DTU_DROPS), 2);
    }

    #[test]
    fn metrics_track_ring_occupancy_and_trace_captures_messages() {
        let (sim, sys) = setup(3);
        sim.enable_trace();
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(2), EpId::new(0), recv_cfg(4, true))
            .unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(0), send_cfg(2, 0, 0, Some(4)))
            .unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(1), recv_cfg(4, false))
            .unwrap();
        let receiver = sys.dtu(PeId::new(2));
        sim.spawn("server", async move {
            let msg = receiver.recv(EpId::new(0)).await.unwrap();
            receiver.reply(&msg, b"ok").await.unwrap();
            receiver.ack(EpId::new(0)).unwrap();
        });
        let sender = sys.dtu(PeId::new(1));
        sim.spawn("client", async move {
            sender
                .send(EpId::new(0), b"req", Some((EpId::new(1), 0)))
                .await
                .unwrap();
            sender.recv(EpId::new(1)).await.unwrap();
            sender.ack(EpId::new(1)).unwrap();
        });
        sim.run();

        let metrics = sim.metrics();
        let occ = metrics
            .histogram(PeId::new(2), m3_sim::keys::RING_OCCUPANCY)
            .expect("receiver ring occupancy observed");
        // Deposit saw 1 slot occupied; the ack saw it drop back to 0.
        assert_eq!(occ.max(), 1);
        assert_eq!(occ.min(), Some(0));
        assert!(metrics.get(PeId::new(1), m3_sim::keys::DTU_BUSY) > 0);

        let tags: Vec<&str> = sim.trace().iter().map(|e| e.kind.tag()).collect();
        assert!(tags.contains(&"msg_send"), "{tags:?}");
        assert!(tags.contains(&"msg_reply"), "{tags:?}");
        assert!(tags.contains(&"noc_xfer"), "{tags:?}");
    }

    #[test]
    fn exhausted_credits_count_as_stall() {
        let (sim, sys) = setup(3);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(2), EpId::new(0), recv_cfg(8, false))
            .unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(0), send_cfg(2, 0, 0, Some(1)))
            .unwrap();
        let sender = sys.dtu(PeId::new(1));
        sim.spawn("sender", async move {
            sender.send(EpId::new(0), b"1", None).await.unwrap();
            sender.send(EpId::new(0), b"2", None).await.unwrap_err();
        });
        sim.run();
        assert_eq!(
            sim.metrics().get(PeId::new(1), m3_sim::keys::CREDIT_STALLS),
            1
        );
    }

    #[test]
    fn reply_info_stripped_when_buffer_disallows_replies() {
        let (sim, sys) = setup(3);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(2), EpId::new(0), recv_cfg(4, false))
            .unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(0), send_cfg(2, 0, 0, None))
            .unwrap();
        let sender = sys.dtu(PeId::new(1));
        let receiver = sys.dtu(PeId::new(2));
        let h = sim.spawn("recv", async move {
            let msg = receiver.recv(EpId::new(0)).await.unwrap();
            let err = receiver.reply(&msg, b"no").await.unwrap_err().code();
            (msg.header.reply, err)
        });
        sim.spawn("send", async move {
            sender
                .send(EpId::new(0), b"req", Some((EpId::new(1), 0)))
                .await
                .unwrap();
        });
        sim.run();
        let (reply, err) = h.try_take().unwrap();
        assert_eq!(reply, None);
        assert_eq!(err, Code::NoPerm);
    }

    #[test]
    fn memory_endpoint_read_write() {
        let (sim, sys) = setup(3);
        let mem = sys.add_memory(PeId::new(2), MemKind::Dram, 4096);
        mem.borrow_mut()[100..104].copy_from_slice(&[1, 2, 3, 4]);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(
                PeId::new(1),
                EpId::new(0),
                EpConfig::Memory {
                    pe: PeId::new(2),
                    offset: 0,
                    len: 4096,
                    perm: Perm::RW,
                },
            )
            .unwrap();
        let app = sys.dtu(PeId::new(1));
        let h = sim.spawn("app", async move {
            let data = app.read_mem(EpId::new(0), 100, 4).await.unwrap();
            app.write_mem(EpId::new(0), 200, &[9, 8]).await.unwrap();
            data
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(&mem.borrow()[200..202], &[9, 8]);
    }

    #[test]
    fn memory_endpoint_enforces_permissions_and_bounds() {
        let (sim, sys) = setup(3);
        sys.add_memory(PeId::new(2), MemKind::Dram, 4096);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(
                PeId::new(1),
                EpId::new(0),
                EpConfig::Memory {
                    pe: PeId::new(2),
                    offset: 1024,
                    len: 512,
                    perm: Perm::R,
                },
            )
            .unwrap();
        let app = sys.dtu(PeId::new(1));
        let h = sim.spawn("app", async move {
            let write_err = app
                .write_mem(EpId::new(0), 0, &[1])
                .await
                .unwrap_err()
                .code();
            let bounds_err = app
                .read_mem(EpId::new(0), 500, 100)
                .await
                .unwrap_err()
                .code();
            let ok = app.read_mem(EpId::new(0), 0, 512).await.is_ok();
            (write_err, bounds_err, ok)
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), (Code::NoPerm, Code::InvArgs, true));
    }

    #[test]
    fn memory_region_window_is_offset_relative() {
        let (sim, sys) = setup(3);
        let mem = sys.add_memory(PeId::new(2), MemKind::Dram, 4096);
        mem.borrow_mut()[2048] = 0x5a;
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(
                PeId::new(1),
                EpId::new(0),
                EpConfig::Memory {
                    pe: PeId::new(2),
                    offset: 2048,
                    len: 1024,
                    perm: Perm::R,
                },
            )
            .unwrap();
        let app = sys.dtu(PeId::new(1));
        let h = sim.spawn("app", async move {
            app.read_mem(EpId::new(0), 0, 1).await.unwrap()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), vec![0x5a]);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let (sim, sys) = setup(3);
        sys.add_memory(PeId::new(2), MemKind::Dram, 1 << 22);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(
                PeId::new(1),
                EpId::new(0),
                EpConfig::Memory {
                    pe: PeId::new(2),
                    offset: 0,
                    len: 1 << 22,
                    perm: Perm::RW,
                },
            )
            .unwrap();
        let app = sys.dtu(PeId::new(1));
        let sim2 = sim.clone();
        let h = sim.spawn("app", async move {
            let t0 = sim2.now();
            app.read_mem(EpId::new(0), 0, 4096).await.unwrap();
            let small = sim2.now() - t0;
            let t1 = sim2.now();
            app.read_mem(EpId::new(0), 0, 1 << 20).await.unwrap();
            let large = sim2.now() - t1;
            (small, large)
        });
        sim.run();
        let (small, large) = h.try_take().unwrap();
        // 4 KiB at 8 B/cycle ~ 512 cycles (+latency); 1 MiB ~ 131k cycles.
        assert!(small.as_u64() > 512 && small.as_u64() < 700, "{small:?}");
        assert!(
            large.as_u64() > 131_000 && large.as_u64() < 132_000,
            "{large:?}"
        );
    }

    #[test]
    fn messages_from_one_sender_arrive_in_order() {
        let (sim, sys) = setup(3);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(2), EpId::new(0), recv_cfg(8, false))
            .unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(0), send_cfg(2, 0, 0, None))
            .unwrap();
        let sender = sys.dtu(PeId::new(1));
        let receiver = sys.dtu(PeId::new(2));
        sim.spawn("send", async move {
            for i in 0..5u8 {
                sender.send(EpId::new(0), &[i], None).await.unwrap();
            }
        });
        let h = sim.spawn("recv", async move {
            let mut got = Vec::new();
            for _ in 0..5 {
                let m = receiver.recv(EpId::new(0)).await.unwrap();
                got.push(m.payload[0]);
                receiver.ack(EpId::new(0)).unwrap();
            }
            got
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn receive_from_multiple_senders() {
        let (sim, sys) = setup(4);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(3), EpId::new(0), recv_cfg(8, false))
            .unwrap();
        for pe in [1u32, 2] {
            kernel
                .configure(
                    PeId::new(pe),
                    EpId::new(0),
                    send_cfg(3, 0, pe as Label, Some(4)),
                )
                .unwrap();
            let sender = sys.dtu(PeId::new(pe));
            sim.spawn(format!("send{pe}"), async move {
                sender.send(EpId::new(0), b"hi", None).await.unwrap();
            });
        }
        let receiver = sys.dtu(PeId::new(3));
        let h = sim.spawn("recv", async move {
            let mut labels = Vec::new();
            for _ in 0..2 {
                let m = receiver.recv(EpId::new(0)).await.unwrap();
                labels.push(m.header.label);
                receiver.ack(EpId::new(0)).unwrap();
            }
            labels.sort_unstable();
            labels
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), vec![1, 2]);
    }

    // ------------------------------------------------------------------
    // Fault-plane behavior
    // ------------------------------------------------------------------

    use m3_fault::{CycleWindow, FaultPlan, FaultPlane};

    fn arm(sys: &DtuSystem, plan: FaultPlan) -> Rc<FaultPlane> {
        let plane = Rc::new(FaultPlane::new(plan));
        sys.set_faults(plane.clone());
        plane
    }

    #[test]
    fn injected_drop_refunds_credit_and_suppresses_delivery() {
        let (sim, sys) = setup(3);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(2), EpId::new(0), recv_cfg(4, false))
            .unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(0), send_cfg(2, 0, 0, Some(2)))
            .unwrap();
        arm(
            &sys,
            FaultPlan::new().drop_msgs(
                PeId::new(1),
                PeId::new(2),
                CycleWindow::new(Cycles::ZERO, Cycles::new(1_000_000)),
                1,
            ),
        );
        let sender = sys.dtu(PeId::new(1));
        let receiver = sys.dtu(PeId::new(2));
        let stats = sim.stats();
        let sim2 = sim.clone();
        let h = sim.spawn("sender", async move {
            sender.send(EpId::new(0), b"a", None).await.unwrap(); // dropped in the NoC
            sender.send(EpId::new(0), b"b", None).await.unwrap(); // budget spent: delivered
            sim2.sleep(Cycles::new(10_000)).await;
            sender.credits(EpId::new(0))
        });
        sim.run();
        // One message arrived, one vanished; the vanished one's credit came
        // back, the delivered one's stays consumed (no reply ever refills it).
        assert_eq!(stats.get("dtu.msgs_delivered"), 1);
        assert_eq!(h.try_take().unwrap(), Some(1));
        assert!(receiver.has_message(EpId::new(0)));
    }

    #[test]
    fn duplicated_message_drops_do_not_double_refund() {
        // Regression (PR 2 audit): under an injected duplicate, only the
        // first copy carries the credit pointer. If both copies are dropped
        // at a crashed destination, exactly one refund must fire.
        let (sim, sys) = setup(3);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(2), EpId::new(0), recv_cfg(4, false))
            .unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(0), send_cfg(2, 0, 0, Some(3)))
            .unwrap();
        arm(
            &sys,
            FaultPlan::new()
                .duplicate_msgs(
                    PeId::new(1),
                    PeId::new(2),
                    CycleWindow::new(Cycles::new(2_000), Cycles::new(1_000_000)),
                    1,
                )
                .crash_pe(PeId::new(2), Cycles::new(1_000)),
        );
        let sender = sys.dtu(PeId::new(1));
        let sim2 = sim.clone();
        let h = sim.spawn("sender", async move {
            // Clean send before the crash: consumes one credit for good.
            sender.send(EpId::new(0), b"a", None).await.unwrap();
            sim2.sleep(Cycles::new(2_000)).await;
            // Duplicated towards the now-crashed PE: both copies vanish.
            sender.send(EpId::new(0), b"b", None).await.unwrap();
            sim2.sleep(Cycles::new(10_000)).await;
            sender.credits(EpId::new(0))
        });
        sim.run();
        // 3 - 1 (clean, delivered) - 1 (duplicated, dropped) + 1 refund = 2.
        // A double refund would read 3 here.
        assert_eq!(h.try_take().unwrap(), Some(2));
    }

    #[test]
    fn duplicated_message_arrives_twice() {
        let (sim, sys) = setup(3);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(2), EpId::new(0), recv_cfg(4, false))
            .unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(0), send_cfg(2, 0, 0, None))
            .unwrap();
        arm(
            &sys,
            FaultPlan::new().duplicate_msgs(
                PeId::new(1),
                PeId::new(2),
                CycleWindow::new(Cycles::ZERO, Cycles::new(1_000_000)),
                1,
            ),
        );
        let sender = sys.dtu(PeId::new(1));
        let stats = sim.stats();
        sim.spawn("sender", async move {
            sender.send(EpId::new(0), b"dup", None).await.unwrap();
        });
        sim.run();
        assert_eq!(stats.get("dtu.msgs_delivered"), 2);
    }

    #[test]
    fn corrupted_payload_arrives_bit_flipped() {
        let (sim, sys) = setup(3);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(2), EpId::new(0), recv_cfg(4, false))
            .unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(0), send_cfg(2, 0, 0, None))
            .unwrap();
        arm(
            &sys,
            FaultPlan::new().corrupt_msgs(
                PeId::new(1),
                PeId::new(2),
                CycleWindow::new(Cycles::ZERO, Cycles::new(1_000_000)),
                1,
            ),
        );
        let sender = sys.dtu(PeId::new(1));
        let receiver = sys.dtu(PeId::new(2));
        sim.spawn("sender", async move {
            sender
                .send(EpId::new(0), &[0x00, 0xff, 0x5a], None)
                .await
                .unwrap();
        });
        let h = sim.spawn("recv", async move {
            let m = receiver.recv(EpId::new(0)).await.unwrap();
            m.payload.to_vec()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), vec![0xff, 0x00, 0xa5]);
    }

    #[test]
    fn stalled_pe_defers_send_until_window_closes() {
        let (sim, sys) = setup(3);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(2), EpId::new(0), recv_cfg(4, false))
            .unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(0), send_cfg(2, 0, 0, None))
            .unwrap();
        arm(
            &sys,
            FaultPlan::new().stall_pe(
                PeId::new(1),
                CycleWindow::new(Cycles::ZERO, Cycles::new(5_000)),
            ),
        );
        let sender = sys.dtu(PeId::new(1));
        let sim2 = sim.clone();
        let h = sim.spawn("sender", async move {
            sender.send(EpId::new(0), b"late", None).await.unwrap();
            sim2.now()
        });
        sim.run();
        assert!(h.try_take().unwrap() >= Cycles::new(5_000));
    }

    #[test]
    fn crashed_pe_fails_all_commands_with_unreachable() {
        let (sim, sys) = setup(3);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(2), EpId::new(0), recv_cfg(4, false))
            .unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(0), send_cfg(2, 0, 0, None))
            .unwrap();
        arm(
            &sys,
            FaultPlan::new().crash_pe(PeId::new(1), Cycles::new(100)),
        );
        let sender = sys.dtu(PeId::new(1));
        let sim2 = sim.clone();
        let h = sim.spawn("sender", async move {
            sim2.sleep(Cycles::new(200)).await;
            let send_err = sender
                .send(EpId::new(0), b"x", None)
                .await
                .unwrap_err()
                .code();
            let recv_err = sender
                .recv_timeout(EpId::new(0), Cycles::new(1_000))
                .await
                .unwrap_err()
                .code();
            (send_err, recv_err)
        });
        sim.run();
        assert_eq!(
            h.try_take().unwrap(),
            (Code::Unreachable, Code::Unreachable)
        );
    }

    #[test]
    fn recv_timeout_times_out_without_traffic() {
        let (sim, sys) = setup(2);
        let kernel = sys.dtu(PeId::new(0)).claim_kernel_token().unwrap();
        kernel
            .configure(PeId::new(1), EpId::new(0), recv_cfg(4, false))
            .unwrap();
        let receiver = sys.dtu(PeId::new(1));
        let h = sim.spawn("recv", async move {
            receiver
                .recv_timeout(EpId::new(0), Cycles::new(500))
                .await
                .unwrap_err()
                .code()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Code::Timeout);
        assert_eq!(sim.now(), Cycles::new(500));
    }
}
