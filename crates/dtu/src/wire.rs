//! `Send`-able wire encoding of DTU messages for island-boundary handoff.
//!
//! Inside one simulation a [`Message`] is shared by `Rc` and never copied.
//! A conservative-PDES run (see `m3_sim::pdes`) splits the platform into
//! islands on separate worker threads, and a message crossing an island
//! boundary must travel as plain bytes: `Rc` is `!Send`, and sharing an
//! allocation across executors would also break the per-island determinism
//! argument. This module defines that boundary format — a fixed-layout
//! little-endian header followed by the payload, byte-for-byte identical
//! for identical messages so inter-island event streams can be compared
//! and merged deterministically.

use m3_base::{EpId, PeId};

use crate::message::{Header, Message, ReplyInfo};

/// `flags` bit: the header carries a [`ReplyInfo`].
const FLAG_REPLY: u8 = 1;

/// Fixed prefix: label u64, sender_pe u32, sender_ep u32, flags u8.
const PREFIX: usize = 8 + 4 + 4 + 1;
/// Optional reply block: pe u32, ep u32, label u64, credit_ep u32, ctx u64.
const REPLY_BLOCK: usize = 4 + 4 + 8 + 4 + 8;

/// Encodes a message into the boundary wire format.
///
/// The payload length is implied by the buffer length, mirroring how
/// `Header::len` always matches the payload in a well-formed message.
///
/// # Examples
///
/// ```
/// use m3_base::{EpId, PeId};
/// use m3_dtu::{wire, Header, Message};
///
/// let msg = Message {
///     header: Header {
///         label: 7,
///         len: 4,
///         sender_pe: PeId::new(1),
///         sender_ep: EpId::new(2),
///         reply: None,
///     },
///     payload: (b"ping").into(),
/// };
/// let bytes = wire::encode(&msg);
/// assert_eq!(wire::decode(&bytes), Some(msg));
/// ```
pub fn encode(msg: &Message) -> Vec<u8> {
    let h = &msg.header;
    let reply_len = if h.reply.is_some() { REPLY_BLOCK } else { 0 };
    let mut out = Vec::with_capacity(PREFIX + reply_len + msg.payload.len());
    out.extend_from_slice(&h.label.to_le_bytes());
    out.extend_from_slice(&h.sender_pe.raw().to_le_bytes());
    out.extend_from_slice(&h.sender_ep.raw().to_le_bytes());
    out.push(if h.reply.is_some() { FLAG_REPLY } else { 0 });
    if let Some(r) = &h.reply {
        out.extend_from_slice(&r.pe.raw().to_le_bytes());
        out.extend_from_slice(&r.ep.raw().to_le_bytes());
        out.extend_from_slice(&r.label.to_le_bytes());
        out.extend_from_slice(&r.credit_ep.raw().to_le_bytes());
        out.extend_from_slice(&r.ctx.to_le_bytes());
    }
    out.extend_from_slice(&msg.payload);
    out
}

/// Decodes a boundary-format buffer back into a message.
///
/// Returns `None` when the buffer is truncated or carries unknown flags —
/// boundary buffers are machine-written, so any mismatch is a bug in the
/// handoff, not input to be repaired.
pub fn decode(bytes: &[u8]) -> Option<Message> {
    let mut r = Reader(bytes);
    let label = r.u64()?;
    let sender_pe = PeId::new(r.u32()?);
    let sender_ep = EpId::new(r.u32()?);
    let flags = r.u8()?;
    if flags & !FLAG_REPLY != 0 {
        return None;
    }
    let reply = if flags & FLAG_REPLY != 0 {
        Some(ReplyInfo {
            pe: PeId::new(r.u32()?),
            ep: EpId::new(r.u32()?),
            label: r.u64()?,
            credit_ep: EpId::new(r.u32()?),
            ctx: r.u64()?,
        })
    } else {
        None
    };
    let payload = r.0;
    Some(Message {
        header: Header {
            label,
            len: payload.len() as u32,
            sender_pe,
            sender_ep,
            reply,
        },
        payload: payload.into(),
    })
}

/// Cursor over the remaining undecoded bytes.
struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
        let (head, rest) = self.0.split_at_checked(N)?;
        self.0 = rest;
        head.try_into().ok()
    }

    fn u8(&mut self) -> Option<u8> {
        self.take::<1>().map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take::<4>().map(u32::from_le_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take::<8>().map(u64::from_le_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(reply: Option<ReplyInfo>, payload: &[u8]) -> Message {
        Message {
            header: Header {
                label: 0xdead_beef_cafe,
                len: payload.len() as u32,
                sender_pe: PeId::new(3),
                sender_ep: EpId::new(5),
                reply,
            },
            payload: payload.into(),
        }
    }

    fn reply() -> ReplyInfo {
        ReplyInfo {
            pe: PeId::new(1),
            ep: EpId::new(2),
            label: 42,
            credit_ep: EpId::new(4),
            ctx: 9,
        }
    }

    #[test]
    fn roundtrip_without_reply() {
        let m = msg(None, b"hello");
        assert_eq!(decode(&encode(&m)), Some(m));
    }

    #[test]
    fn roundtrip_with_reply() {
        let m = msg(Some(reply()), b"");
        assert_eq!(decode(&encode(&m)), Some(m));
    }

    #[test]
    fn identical_messages_encode_identically() {
        let a = msg(Some(reply()), b"payload");
        let b = msg(Some(reply()), b"payload");
        assert_eq!(encode(&a), encode(&b));
    }

    #[test]
    fn truncated_buffers_are_rejected() {
        let bytes = encode(&msg(Some(reply()), b"xy"));
        for cut in 0..PREFIX + REPLY_BLOCK {
            assert_eq!(decode(&bytes[..cut]), None, "cut at {cut}");
        }
        // Cutting into the payload still decodes (length is implied)...
        let short = decode(&bytes[..bytes.len() - 1]).unwrap();
        // ...but yields the shorter payload, with len tracking it.
        assert_eq!(short.payload, b"x");
        assert_eq!(short.header.len, 1);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let mut bytes = encode(&msg(None, b""));
        bytes[PREFIX - 1] |= 0x80;
        assert_eq!(decode(&bytes), None);
    }
}
