//! DTU timing constants.
//!
//! Calibration targets come from the paper's micro-benchmarks (§5.3): a null
//! system call — send to the kernel PE plus reply — costs ≈ 200 cycles on M3,
//! of which ≈ 30 cycles are the two message transfers; the remaining ≈ 170
//! cycles are software (marshalling, programming the DTU registers,
//! unmarshalling, dispatch) and are charged by `m3-libos`/`m3-kernel`.

use m3_base::Cycles;

/// Cycles to issue a command to the DTU (writing the memory-mapped command
/// and data registers). Paid by every send/reply/read/write; part of the
/// ≈30-cycle transfer share of a null syscall (§5.3).
pub const CMD_ISSUE: Cycles = Cycles::new(4);

/// Cycles the DTU needs to deposit an arriving message into the ring buffer
/// (header generation and slot bookkeeping, §4.2.1); part of the ≈30-cycle
/// transfer share of §5.3.
pub const DELIVER: Cycles = Cycles::new(4);

/// Access latency of the DRAM module, paid once per RDMA request (§5.4
/// read/write bandwidth experiments against DRAM).
pub const DRAM_LATENCY: Cycles = Cycles::new(16);

/// Access latency of a remote SPM, paid once per RDMA request (§2: PEs with
/// local scratchpad memories; §5.4 SPM transfers).
pub const SPM_LATENCY: Cycles = Cycles::new(2);

/// Cycles to poll the message-receive register once (gate fetch loop,
/// §4.2.1 message reception).
pub const FETCH_POLL: Cycles = Cycles::new(2);

/// Bytes one endpoint's register state occupies in a context save area.
/// The DTU exposes each endpoint as a small block of configuration
/// registers the kernel reads and writes remotely (§4.3.3); saving or
/// restoring a context moves this block per endpoint, charged at the DTU's
/// 8 B/cycle transfer rate (§5.4) like any other data.
pub const EP_SAVE_BYTES: u64 = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_message_fits_the_30_cycle_budget() {
        // A syscall-sized message (~64 B payload + 24 B header = 88 B) at
        // 8 B/cycle is 11 wire cycles; with command issue and delivery both
        // directions stay within the ~30-cycle transfer share of the
        // 200-cycle syscall (paper §5.3).
        let wire = m3_base::cycles::transfer_time(88, m3_base::cfg::DTU_BYTES_PER_CYCLE);
        let one_way = CMD_ISSUE + wire + DELIVER;
        assert!(one_way.as_u64() <= 30, "one-way transfer {one_way:?}");
    }
}
