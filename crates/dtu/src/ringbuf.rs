//! The receive ring buffer.
//!
//! Ring buffers live in the receiver PE's local memory and are organized in
//! fixed-size slots; the DTU writes arriving messages at the write position
//! and software advances the read position when a message has been processed
//! (paper §4.4.3). A message that arrives when every slot is occupied is
//! dropped — the credit system exists precisely so that well-behaved senders
//! never hit this.

use std::collections::VecDeque;

use crate::message::Message;

/// A fixed-slot receive ring buffer.
///
/// Slots are freed by [`RingBuf::ack`], not by [`RingBuf::fetch`]: a fetched
/// message still occupies its slot until the software acknowledges it, which
/// mirrors the read-position semantics of the hardware buffer.
///
/// # Examples
///
/// ```
/// use m3_dtu::{Header, Message, RingBuf};
/// use m3_base::{EpId, PeId};
///
/// let mut rb = RingBuf::new(2, 64);
/// let msg = Message {
///     header: Header {
///         label: 1, len: 0,
///         sender_pe: PeId::new(0), sender_ep: EpId::new(0), reply: None,
///     },
///     payload: m3_dtu::Payload::empty(),
/// };
/// assert!(rb.deposit(msg.clone()));
/// assert!(rb.deposit(msg.clone()));
/// assert!(!rb.deposit(msg.clone())); // full: dropped
/// rb.fetch().unwrap();
/// assert!(!rb.deposit(msg.clone())); // still full: not acked yet
/// rb.ack();
/// assert!(rb.deposit(msg));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingBuf {
    slots: usize,
    slot_size: usize,
    queue: VecDeque<Message>,
    /// Slots occupied: queued messages plus fetched-but-unacked ones.
    occupied: usize,
    dropped: u64,
}

impl RingBuf {
    /// Creates a ring buffer with `slots` slots of `slot_size` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or `slot_size` cannot hold a header.
    pub fn new(slots: usize, slot_size: usize) -> RingBuf {
        assert!(slots > 0, "ring buffer needs at least one slot");
        assert!(
            slot_size > m3_base::cfg::MSG_HEADER_SIZE,
            "slot must hold more than a header"
        );
        RingBuf {
            slots,
            slot_size,
            queue: VecDeque::with_capacity(slots),
            occupied: 0,
            dropped: 0,
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Slot size in bytes (maximum message size including header).
    pub fn slot_size(&self) -> usize {
        self.slot_size
    }

    /// Maximum payload a message may carry to fit a slot.
    pub fn max_payload(&self) -> usize {
        self.slot_size - m3_base::cfg::MSG_HEADER_SIZE
    }

    /// Total buffer footprint in the receiver's local memory.
    pub fn mem_size(&self) -> usize {
        self.slots * self.slot_size
    }

    /// Deposits an arriving message; returns `false` (and counts a drop) if
    /// no slot is free or the message exceeds the slot size.
    // m3lint: allow(cycle-accounting): passive container: the DTU deposits at the NoC transfer's completion time, which the sender paid for
    pub fn deposit(&mut self, msg: Message) -> bool {
        if self.occupied >= self.slots || msg.wire_size() > self.slot_size {
            self.dropped += 1;
            return false;
        }
        self.occupied += 1;
        self.queue.push_back(msg);
        true
    }

    /// Removes the oldest unread message, leaving its slot occupied until
    /// [`RingBuf::ack`].
    // m3lint: allow(cycle-accounting): passive container: the polling software pays timing::FETCH_POLL in Dtu::recv for each fetch
    pub fn fetch(&mut self) -> Option<Message> {
        self.queue.pop_front()
    }

    /// Whether a message is ready to fetch.
    pub fn has_message(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Frees the slot of one previously fetched message.
    ///
    /// # Panics
    ///
    /// Panics if more slots would be freed than were ever fetched.
    // m3lint: allow(cycle-accounting): passive container: the ack register write is part of the caller's charged receive path
    pub fn ack(&mut self) {
        let fetched = self.occupied - self.queue.len();
        assert!(fetched > 0, "ack without a fetched message");
        self.occupied -= 1;
    }

    /// Number of occupied slots (queued + fetched-but-unacked).
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Messages dropped because the buffer was full or the message too big.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total wire bytes of the queued (unfetched) messages — the amount a
    /// context save must move to preserve the buffer's contents.
    pub fn queued_wire_bytes(&self) -> u64 {
        self.queue.iter().map(|m| m.wire_size() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_base::{EpId, PeId};

    fn msg(label: u64, payload: usize) -> Message {
        Message {
            header: crate::Header {
                label,
                len: payload as u32,
                sender_pe: PeId::new(0),
                sender_ep: EpId::new(0),
                reply: None,
            },
            payload: vec![0xaa; payload].into(),
        }
    }

    #[test]
    fn fifo_order() {
        let mut rb = RingBuf::new(4, 512);
        for i in 0..3 {
            assert!(rb.deposit(msg(i, 8)));
        }
        assert_eq!(rb.fetch().unwrap().label(), 0);
        assert_eq!(rb.fetch().unwrap().label(), 1);
        assert_eq!(rb.fetch().unwrap().label(), 2);
        assert!(rb.fetch().is_none());
    }

    #[test]
    fn overflow_drops() {
        let mut rb = RingBuf::new(2, 512);
        assert!(rb.deposit(msg(0, 8)));
        assert!(rb.deposit(msg(1, 8)));
        assert!(!rb.deposit(msg(2, 8)));
        assert_eq!(rb.dropped(), 1);
        assert_eq!(rb.occupied(), 2);
    }

    #[test]
    fn oversized_message_drops() {
        let mut rb = RingBuf::new(4, 64);
        assert!(!rb.deposit(msg(0, 64))); // 24B header + 64B > 64B slot
        assert_eq!(rb.dropped(), 1);
        assert!(rb.deposit(msg(1, 40))); // exactly fits
    }

    #[test]
    fn slot_freed_only_on_ack() {
        let mut rb = RingBuf::new(1, 512);
        assert!(rb.deposit(msg(0, 8)));
        let _m = rb.fetch().unwrap();
        assert!(!rb.deposit(msg(1, 8)), "slot not yet acked");
        rb.ack();
        assert!(rb.deposit(msg(2, 8)));
    }

    #[test]
    #[should_panic(expected = "ack without")]
    fn ack_without_fetch_panics() {
        let mut rb = RingBuf::new(2, 512);
        rb.deposit(msg(0, 8));
        rb.ack();
    }

    #[test]
    fn max_payload_accounts_for_header() {
        let rb = RingBuf::new(2, 512);
        assert_eq!(rb.max_payload(), 512 - m3_base::cfg::MSG_HEADER_SIZE);
        assert_eq!(rb.mem_size(), 1024);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        RingBuf::new(0, 512);
    }

    #[test]
    #[should_panic(expected = "ack without")]
    fn ack_before_any_fetch_panics() {
        // Even with messages queued, nothing was fetched yet.
        let mut rb = RingBuf::new(4, 512);
        rb.deposit(msg(0, 8));
        rb.deposit(msg(1, 8));
        rb.ack();
    }

    #[test]
    #[should_panic(expected = "ack without")]
    fn double_ack_cannot_underflow_occupied() {
        let mut rb = RingBuf::new(4, 512);
        rb.deposit(msg(0, 8));
        rb.fetch().unwrap();
        rb.ack();
        assert_eq!(rb.occupied(), 0);
        rb.ack(); // nothing fetched is outstanding: must panic, not wrap
    }

    #[test]
    fn deposit_exactly_slot_size_fits() {
        let mut rb = RingBuf::new(2, 64);
        let exact = msg(0, 64 - m3_base::cfg::MSG_HEADER_SIZE);
        assert_eq!(exact.wire_size(), 64);
        assert!(rb.deposit(exact), "wire_size == slot_size must fit");
        let over = msg(1, 64 - m3_base::cfg::MSG_HEADER_SIZE + 1);
        assert!(!rb.deposit(over), "one byte over must drop");
        assert_eq!(rb.dropped(), 1);
    }

    /// Property test: across random deposit/fetch/ack interleavings the
    /// invariants hold — `occupied` counts queued plus fetched-but-unacked
    /// slots, never exceeds `slots`, and accepted deposits always fit.
    #[test]
    fn random_ops_preserve_invariants() {
        let mut rng = m3_base::rand::Rng::new(0x5eed_0001);
        for round in 0..50 {
            let slots = 1 + rng.next_below(7) as usize;
            let slot_size = 64 + rng.next_below(4) as usize * 64;
            let mut rb = RingBuf::new(slots, slot_size);
            let mut queued = 0usize;
            let mut fetched_unacked = 0usize;
            let mut deposited = 0u64;
            let mut dropped = 0u64;
            for op in 0..200u64 {
                match rng.next_below(3) {
                    0 => {
                        let payload = rng
                            .next_below((slot_size - m3_base::cfg::MSG_HEADER_SIZE) as u64 + 16)
                            as usize;
                        let m = msg(op, payload);
                        let fits = m.wire_size() <= slot_size && queued + fetched_unacked < slots;
                        assert_eq!(
                            rb.deposit(m),
                            fits,
                            "round {round} op {op}: deposit acceptance"
                        );
                        if fits {
                            queued += 1;
                            deposited += 1;
                        } else {
                            dropped += 1;
                        }
                    }
                    1 => {
                        let got = rb.fetch();
                        assert_eq!(got.is_some(), queued > 0);
                        if got.is_some() {
                            queued -= 1;
                            fetched_unacked += 1;
                        }
                    }
                    _ => {
                        if fetched_unacked > 0 {
                            rb.ack();
                            fetched_unacked -= 1;
                        }
                    }
                }
                assert_eq!(rb.occupied(), queued + fetched_unacked);
                assert!(rb.occupied() <= slots);
                assert_eq!(rb.dropped(), dropped);
                assert_eq!(rb.has_message(), queued > 0);
            }
            assert!(deposited + dropped > 0);
        }
    }
}
