//! Endpoint configurations.

use m3_base::ids::Label;
use m3_base::{EpId, PeId, Perm};

/// The configuration of one DTU endpoint.
///
/// In hardware these are the `buffer`, `target`, `credits`, and `label`
/// registers (paper Figure 2); writable only by privileged (kernel) DTUs.
/// An endpoint is exactly one of: unconfigured, a send endpoint, a receive
/// endpoint, or a memory endpoint (§4.4.1).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum EpConfig {
    /// Not configured; any use fails with `InvEp`.
    #[default]
    Invalid,
    /// Sends messages to a fixed receive endpoint.
    Send {
        /// Destination PE.
        pe: PeId,
        /// Destination receive endpoint on that PE.
        ep: EpId,
        /// Label stamped into every message (receiver-chosen, unforgeable).
        label: Label,
        /// Messages that may be in flight before the receiver or kernel
        /// refills credits. `None` means unlimited (used by the kernel).
        credits: Option<u32>,
        /// Maximum payload size the destination slot accepts.
        max_payload: usize,
    },
    /// Receives messages into a ring buffer in local memory.
    Receive {
        /// Number of fixed-size slots in the ring buffer.
        slots: usize,
        /// Size of each slot (maximum message size incl. header).
        slot_size: usize,
        /// Whether senders may request replies. The kernel only enables
        /// this after validating the buffer placement (§4.4.4).
        allow_replies: bool,
    },
    /// Grants RDMA access to a region of another node's memory.
    Memory {
        /// Node whose memory is accessed (usually the DRAM module).
        pe: PeId,
        /// Start offset within that node's memory.
        offset: u64,
        /// Length of the accessible region in bytes.
        len: u64,
        /// Read/write permissions for the region.
        perm: Perm,
    },
}

impl EpConfig {
    /// Whether this is a send endpoint.
    pub fn is_send(&self) -> bool {
        matches!(self, EpConfig::Send { .. })
    }

    /// Whether this is a receive endpoint.
    pub fn is_receive(&self) -> bool {
        matches!(self, EpConfig::Receive { .. })
    }

    /// Whether this is a memory endpoint.
    pub fn is_memory(&self) -> bool {
        matches!(self, EpConfig::Memory { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_invalid() {
        assert_eq!(EpConfig::default(), EpConfig::Invalid);
        assert!(!EpConfig::default().is_send());
    }

    #[test]
    fn kind_predicates() {
        let send = EpConfig::Send {
            pe: PeId::new(0),
            ep: EpId::new(0),
            label: 0,
            credits: Some(4),
            max_payload: 128,
        };
        assert!(send.is_send() && !send.is_receive() && !send.is_memory());

        let recv = EpConfig::Receive {
            slots: 8,
            slot_size: 512,
            allow_replies: true,
        };
        assert!(recv.is_receive());

        let mem = EpConfig::Memory {
            pe: PeId::new(1),
            offset: 0,
            len: 4096,
            perm: Perm::RW,
        };
        assert!(mem.is_memory());
    }
}
