//! The data transfer unit (DTU) — the paper's core hardware contribution.
//!
//! Each processing element (PE) carries one DTU; it is the PE's *only*
//! interface to other PEs and to PE-external memory (paper §3.1). The DTU
//! serves two purposes:
//!
//! 1. **Message passing**: send endpoints target receive endpoints; received
//!    messages land in a ring buffer in the receiver's local memory without
//!    any software on the receiving core; a credit system bounds the number
//!    of in-flight messages per sender; replies reuse information the DTU
//!    stored in the message header (§4.4).
//! 2. **Remote memory access**: memory endpoints name a region of another
//!    node's memory (usually DRAM) plus permissions, and the DTU moves data
//!    at 8 bytes/cycle like a DMA engine (§5.4).
//!
//! **NoC-level isolation** comes from the register split: the configuration
//! registers of every endpoint are writable only by *privileged* DTUs — at
//! boot all DTUs are privileged, and the kernel downgrades the application
//! PEs (§3). In this model, configuration APIs take effect only when invoked
//! through a DTU whose privilege bit is still set; applications hold the same
//! [`Dtu`] handle but any configuration attempt fails with `NoPerm`.
//!
//! # Examples
//!
//! See [`Dtu`] for a complete send/receive/reply round trip.

mod dtu;
mod endpoint;
mod message;
mod ringbuf;
pub mod timing;
pub mod wire;

pub use dtu::{Dtu, DtuSystem, KernelToken, MemKind, NO_CTX};
pub use endpoint::EpConfig;
pub use message::{Header, Message, Payload, ReplyInfo};
pub use ringbuf::RingBuf;
