//! The filesystem core: path resolution, inodes, extents, allocation.
//!
//! Organized "like classical UNIX filesystems, consisting of a superblock,
//! an inode and block bitmap, an inode table and directories with pointers
//! to the inodes", with file data held as extents (§4.5.8).

use std::collections::BTreeMap;

use m3_base::error::{Code, Error, Result};

use crate::bitmap::BlockBitmap;
use crate::inode::Inode;

/// A contiguous run of blocks: (starting block number, number of blocks) —
/// "as in other modern filesystems" (§4.5.8).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Extent {
    /// First block of the run.
    pub start: u64,
    /// Number of blocks.
    pub blocks: u64,
}

impl Extent {
    /// Byte offset of the extent within the data region.
    pub fn byte_off(&self, block_size: u64) -> u64 {
        self.start * block_size
    }

    /// Byte length of the extent.
    pub fn byte_len(&self, block_size: u64) -> u64 {
        self.blocks * block_size
    }
}

/// The root directory's inode number.
pub const ROOT_INO: u64 = 1;

/// The in-memory filesystem core (no I/O; the server wires it to the DRAM
/// data region and the service protocol).
#[derive(Debug)]
pub struct FsCore {
    block_size: u64,
    bitmap: BlockBitmap,
    inodes: BTreeMap<u64, Inode>,
    next_ino: u64,
}

impl FsCore {
    /// Creates an empty filesystem over `total_blocks` blocks of
    /// `block_size` bytes with a root directory.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(total_blocks: u64, block_size: u64) -> FsCore {
        assert!(block_size > 0, "block size must be non-zero");
        let mut inodes = BTreeMap::new();
        inodes.insert(ROOT_INO, Inode::dir(ROOT_INO));
        FsCore {
            block_size,
            bitmap: BlockBitmap::new(total_blocks),
            inodes,
            next_ino: ROOT_INO + 1,
        }
    }

    /// The filesystem block size.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Free blocks remaining.
    pub fn free_blocks(&self) -> u64 {
        self.bitmap.free_blocks()
    }

    fn components(path: &str) -> impl Iterator<Item = &str> {
        path.split('/').filter(|c| !c.is_empty())
    }

    /// Resolves a path to an inode number.
    ///
    /// # Errors
    ///
    /// Returns [`Code::NoSuchFile`] if any component is missing, or
    /// [`Code::IsNoDir`] if an intermediate component is a file.
    pub fn resolve(&self, path: &str) -> Result<u64> {
        let mut cur = ROOT_INO;
        for comp in Self::components(path) {
            let inode = &self.inodes[&cur];
            let entries = inode
                .dir_entries()
                .ok_or_else(|| Error::new(Code::IsNoDir).with_msg(path.to_string()))?;
            cur = *entries
                .get(comp)
                .ok_or_else(|| Error::new(Code::NoSuchFile).with_msg(path.to_string()))?;
        }
        Ok(cur)
    }

    /// Resolves a path to (parent directory inode, final component).
    ///
    /// # Errors
    ///
    /// Like [`FsCore::resolve`]; also [`Code::InvArgs`] for the root path.
    pub fn resolve_parent<'p>(&self, path: &'p str) -> Result<(u64, &'p str)> {
        let comps: Vec<&str> = Self::components(path).collect();
        let Some((last, dirs)) = comps.split_last() else {
            return Err(Error::new(Code::InvArgs).with_msg("root has no parent"));
        };
        let mut cur = ROOT_INO;
        for comp in dirs {
            let inode = &self.inodes[&cur];
            let entries = inode
                .dir_entries()
                .ok_or_else(|| Error::new(Code::IsNoDir).with_msg(path.to_string()))?;
            cur = *entries
                .get(*comp)
                .ok_or_else(|| Error::new(Code::NoSuchFile).with_msg(path.to_string()))?;
        }
        if !self.inodes[&cur].is_dir() {
            return Err(Error::new(Code::IsNoDir).with_msg(path.to_string()));
        }
        Ok((cur, last))
    }

    /// Looks up an inode by number.
    ///
    /// # Panics
    ///
    /// Panics if the inode does not exist (internal invariant).
    pub fn inode(&self, ino: u64) -> &Inode {
        &self.inodes[&ino]
    }

    /// Mutable inode access.
    ///
    /// # Panics
    ///
    /// Panics if the inode does not exist (internal invariant).
    pub fn inode_mut(&mut self, ino: u64) -> &mut Inode {
        // m3lint: allow(no-unwrap): documented `# Panics` accessor; callers pass inos returned by resolve()/create paths
        self.inodes.get_mut(&ino).expect("dangling inode")
    }

    /// Directory entries of `ino`, or [`Code::IsNoDir`] if it is a file.
    fn entries(&self, ino: u64) -> Result<&BTreeMap<String, u64>> {
        self.inodes[&ino]
            .dir_entries()
            .ok_or_else(|| Error::new(Code::IsNoDir))
    }

    /// Mutable directory entries of `ino`, or [`Code::IsNoDir`] if it is a
    /// file.
    fn entries_mut(&mut self, ino: u64) -> Result<&mut BTreeMap<String, u64>> {
        self.inodes
            .get_mut(&ino)
            .ok_or_else(|| Error::new(Code::NoSuchFile))?
            .dir_entries_mut()
            .ok_or_else(|| Error::new(Code::IsNoDir))
    }

    /// Creates a regular file; returns its inode number.
    ///
    /// # Errors
    ///
    /// Returns [`Code::Exists`] if the path already exists.
    pub fn create_file(&mut self, path: &str) -> Result<u64> {
        let (parent, name) = self.resolve_parent(path)?;
        if self.entries(parent)?.contains_key(name) {
            return Err(Error::new(Code::Exists).with_msg(path.to_string()));
        }
        let ino = self.next_ino;
        self.next_ino += 1;
        self.inodes.insert(ino, Inode::file(ino));
        let name = name.to_string();
        self.entries_mut(parent)?.insert(name, ino);
        Ok(ino)
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// Returns [`Code::Exists`] if the path already exists.
    pub fn mkdir(&mut self, path: &str) -> Result<u64> {
        let (parent, name) = self.resolve_parent(path)?;
        if self.entries(parent)?.contains_key(name) {
            return Err(Error::new(Code::Exists).with_msg(path.to_string()));
        }
        let ino = self.next_ino;
        self.next_ino += 1;
        self.inodes.insert(ino, Inode::dir(ino));
        let name = name.to_string();
        self.entries_mut(parent)?.insert(name, ino);
        Ok(ino)
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// [`Code::IsNoDir`] for files, [`Code::DirNotEmpty`] for non-empty
    /// directories.
    pub fn rmdir(&mut self, path: &str) -> Result<()> {
        let (parent, name) = self.resolve_parent(path)?;
        let ino = self.resolve(path)?;
        let inode = &self.inodes[&ino];
        let entries = inode
            .dir_entries()
            .ok_or_else(|| Error::new(Code::IsNoDir).with_msg(path.to_string()))?;
        if !entries.is_empty() {
            return Err(Error::new(Code::DirNotEmpty).with_msg(path.to_string()));
        }
        let name = name.to_string();
        self.entries_mut(parent)?.remove(&name);
        self.inodes.remove(&ino);
        Ok(())
    }

    /// Creates a hard link `new` to the file at `old`.
    ///
    /// # Errors
    ///
    /// [`Code::IsDir`] when `old` is a directory, [`Code::Exists`] when
    /// `new` exists.
    pub fn link(&mut self, old: &str, new: &str) -> Result<()> {
        let ino = self.resolve(old)?;
        if self.inodes[&ino].is_dir() {
            return Err(Error::new(Code::IsDir).with_msg(old.to_string()));
        }
        let (parent, name) = self.resolve_parent(new)?;
        if self.entries(parent)?.contains_key(name) {
            return Err(Error::new(Code::Exists).with_msg(new.to_string()));
        }
        let name = name.to_string();
        self.entries_mut(parent)?.insert(name, ino);
        self.inode_mut(ino).links += 1;
        Ok(())
    }

    /// Removes a file name; frees the inode and its blocks when the last
    /// link disappears.
    ///
    /// # Errors
    ///
    /// [`Code::IsDir`] for directories, [`Code::NoSuchFile`] if missing.
    pub fn unlink(&mut self, path: &str) -> Result<()> {
        let ino = self.resolve(path)?;
        if self.inodes[&ino].is_dir() {
            return Err(Error::new(Code::IsDir).with_msg(path.to_string()));
        }
        let (parent, name) = self.resolve_parent(path)?;
        let name = name.to_string();
        self.entries_mut(parent)?.remove(&name);
        let inode = self.inode_mut(ino);
        inode.links -= 1;
        if inode.links == 0 {
            let extents = std::mem::take(&mut inode.extents);
            self.inodes.remove(&ino);
            for e in extents {
                self.bitmap.free_run(e.start, e.blocks);
            }
        }
        Ok(())
    }

    /// Appends an extent of up to `want_blocks` blocks to a file ("write
    /// operations extend files by a large number of blocks at once to
    /// minimize fragmentation", §4.5.8). Returns the new extent.
    ///
    /// # Errors
    ///
    /// [`Code::NoSpace`] when the filesystem is full.
    pub fn append_extent(&mut self, ino: u64, want_blocks: u64) -> Result<Extent> {
        let (start, blocks) = self.bitmap.alloc_run(want_blocks)?;
        let ext = Extent { start, blocks };
        let inode = self.inode_mut(ino);
        // Merge with the previous extent when physically adjacent.
        if let Some(last) = inode.extents.last_mut() {
            if last.start + last.blocks == start {
                last.blocks += blocks;
                return Ok(ext);
            }
        }
        inode.extents.push(ext);
        Ok(ext)
    }

    /// Finds the extent containing byte `offset`; returns (extent, byte
    /// offset of the extent's start within the file, extent index).
    ///
    /// # Errors
    ///
    /// [`Code::InvOffset`] when `offset` is beyond the allocated blocks.
    pub fn extent_at(&self, ino: u64, offset: u64) -> Result<(Extent, u64, usize)> {
        let inode = self.inode(ino);
        let mut file_off = 0;
        for (idx, e) in inode.extents.iter().enumerate() {
            let len = e.byte_len(self.block_size);
            if offset < file_off + len {
                return Ok((*e, file_off, idx));
            }
            file_off += len;
        }
        Err(Error::new(Code::InvOffset).with_msg(format!("offset {offset} beyond extents")))
    }

    /// Sets the file size and truncates the extent list to the used blocks
    /// ("the close operation truncates it to the actually used space",
    /// §4.5.8).
    ///
    /// # Errors
    ///
    /// [`Code::InvArgs`] when growing beyond the allocated blocks.
    pub fn truncate(&mut self, ino: u64, size: u64) -> Result<()> {
        let block_size = self.block_size;
        let needed_blocks = size.div_ceil(block_size);
        let inode = self.inode_mut(ino);
        if needed_blocks > inode.blocks() {
            return Err(Error::new(Code::InvArgs).with_msg("truncate beyond allocation"));
        }
        let mut to_free = inode.blocks() - needed_blocks;
        let mut freed = Vec::new();
        while to_free > 0 {
            // m3lint: allow(no-unwrap): to_free > 0 implies the inode still owns blocks, and blocks live in extents by construction
            let last = inode.extents.last_mut().expect("blocks imply extents");
            let cut = to_free.min(last.blocks);
            last.blocks -= cut;
            freed.push((last.start + last.blocks, cut));
            if last.blocks == 0 {
                inode.extents.pop();
            }
            to_free -= cut;
        }
        inode.size = size;
        for (start, count) in freed {
            self.bitmap.free_run(start, count);
        }
        Ok(())
    }

    /// Lists a directory.
    ///
    /// # Errors
    ///
    /// [`Code::IsNoDir`] for files.
    pub fn read_dir(&self, path: &str) -> Result<Vec<(String, bool)>> {
        let ino = self.resolve(path)?;
        let inode = self.inode(ino);
        let entries = inode
            .dir_entries()
            .ok_or_else(|| Error::new(Code::IsNoDir).with_msg(path.to_string()))?;
        Ok(entries
            .iter()
            .map(|(name, &child)| (name.clone(), self.inodes[&child].is_dir()))
            .collect())
    }

    /// Number of path components (used by the server's lookup cost model).
    pub fn path_depth(path: &str) -> u64 {
        Self::components(path).count() as u64
    }

    /// Allocates raw blocks outside any file (used by the server's setup
    /// code to force gaps between extents for the Figure 4 fragmentation
    /// experiment).
    ///
    /// # Errors
    ///
    /// Returns [`Code::NoSpace`] when full.
    pub fn alloc_raw(&mut self, blocks: u64) -> Result<(u64, u64)> {
        self.bitmap.alloc_run(blocks)
    }

    /// Frees raw blocks from [`FsCore::alloc_raw`].
    ///
    /// # Panics
    ///
    /// Panics on double free.
    pub fn free_raw(&mut self, start: u64, count: u64) {
        self.bitmap.free_run(start, count);
    }

    /// Total blocks of the data region.
    pub fn total_blocks(&self) -> u64 {
        self.bitmap.total_blocks()
    }

    /// All inodes, sorted by number (for serialization and fsck).
    pub fn all_inodes(&self) -> Vec<&Inode> {
        let mut v: Vec<&Inode> = self.inodes.values().collect();
        v.sort_by_key(|i| i.ino);
        v
    }

    /// Rebuilds a filesystem from its inode table (deserialization): the
    /// block bitmap is reconstructed from the extent lists.
    ///
    /// # Errors
    ///
    /// Returns [`Code::BadMessage`] if the root is missing or extents fall
    /// outside the data region.
    pub(crate) fn from_parts(
        total_blocks: u64,
        block_size: u64,
        inodes: Vec<Inode>,
    ) -> Result<FsCore> {
        let mut fs = FsCore::new(total_blocks, block_size);
        fs.inodes.clear();
        let mut next_ino = ROOT_INO + 1;
        for inode in inodes {
            for e in &inode.extents {
                if e.start + e.blocks > total_blocks {
                    return Err(Error::new(Code::BadMessage)
                        .with_msg(format!("extent beyond region: {e:?}")));
                }
                fs.bitmap.reserve(e.start, e.blocks);
            }
            next_ino = next_ino.max(inode.ino + 1);
            fs.inodes.insert(inode.ino, inode);
        }
        if !fs.inodes.contains_key(&ROOT_INO) {
            return Err(Error::new(Code::BadMessage).with_msg("missing root inode"));
        }
        fs.next_ino = next_ino;
        Ok(fs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> FsCore {
        FsCore::new(1024, 1024)
    }

    #[test]
    fn create_and_resolve() {
        let mut f = fs();
        f.mkdir("/dir").unwrap();
        let ino = f.create_file("/dir/a.txt").unwrap();
        assert_eq!(f.resolve("/dir/a.txt").unwrap(), ino);
        assert_eq!(f.resolve("/").unwrap(), ROOT_INO);
        assert_eq!(f.resolve("/nope").unwrap_err().code(), Code::NoSuchFile);
        assert_eq!(
            f.create_file("/dir/a.txt").unwrap_err().code(),
            Code::Exists
        );
    }

    #[test]
    fn file_as_intermediate_component_fails() {
        let mut f = fs();
        f.create_file("/a").unwrap();
        assert_eq!(f.resolve("/a/b").unwrap_err().code(), Code::IsNoDir);
        assert_eq!(f.create_file("/a/b").unwrap_err().code(), Code::IsNoDir);
    }

    #[test]
    fn append_extents_and_locate() {
        let mut f = fs();
        let ino = f.create_file("/f").unwrap();
        let e1 = f.append_extent(ino, 4).unwrap();
        assert_eq!(e1.blocks, 4);
        // Adjacent allocation merges into one extent.
        let _e2 = f.append_extent(ino, 4).unwrap();
        assert_eq!(f.inode(ino).extents.len(), 1);
        assert_eq!(f.inode(ino).blocks(), 8);

        let (ext, file_off, idx) = f.extent_at(ino, 5000).unwrap();
        assert_eq!(file_off, 0);
        assert_eq!(idx, 0);
        assert_eq!(ext.blocks, 8);
        assert_eq!(f.extent_at(ino, 9000).unwrap_err().code(), Code::InvOffset);
    }

    #[test]
    fn truncate_frees_blocks() {
        let mut f = fs();
        let ino = f.create_file("/f").unwrap();
        let free0 = f.free_blocks();
        f.append_extent(ino, 256).unwrap();
        assert_eq!(f.free_blocks(), free0 - 256);
        // The file only used 3000 bytes = 3 blocks.
        f.truncate(ino, 3000).unwrap();
        assert_eq!(f.free_blocks(), free0 - 3);
        assert_eq!(f.inode(ino).size, 3000);
        assert_eq!(f.inode(ino).blocks(), 3);
    }

    #[test]
    fn unlink_frees_when_last_link_goes() {
        let mut f = fs();
        let ino = f.create_file("/f").unwrap();
        f.append_extent(ino, 8).unwrap();
        f.inode_mut(ino).size = 8192;
        let free_before = f.free_blocks();
        f.link("/f", "/g").unwrap();
        f.unlink("/f").unwrap();
        assert_eq!(f.free_blocks(), free_before, "still linked at /g");
        assert!(f.resolve("/g").is_ok());
        f.unlink("/g").unwrap();
        assert_eq!(f.free_blocks(), free_before + 8);
    }

    #[test]
    fn link_to_dir_rejected() {
        let mut f = fs();
        f.mkdir("/d").unwrap();
        assert_eq!(f.link("/d", "/e").unwrap_err().code(), Code::IsDir);
    }

    #[test]
    fn rmdir_semantics() {
        let mut f = fs();
        f.mkdir("/d").unwrap();
        f.create_file("/d/x").unwrap();
        assert_eq!(f.rmdir("/d").unwrap_err().code(), Code::DirNotEmpty);
        f.unlink("/d/x").unwrap();
        f.rmdir("/d").unwrap();
        assert_eq!(f.resolve("/d").unwrap_err().code(), Code::NoSuchFile);
        f.create_file("/x").unwrap();
        assert_eq!(f.rmdir("/x").unwrap_err().code(), Code::IsNoDir);
    }

    #[test]
    fn read_dir_lists_entries() {
        let mut f = fs();
        f.mkdir("/d").unwrap();
        f.create_file("/d/a").unwrap();
        f.mkdir("/d/sub").unwrap();
        let mut entries = f.read_dir("/d").unwrap();
        entries.sort();
        assert_eq!(
            entries,
            vec![("a".to_string(), false), ("sub".to_string(), true)]
        );
        assert_eq!(f.read_dir("/d/a").unwrap_err().code(), Code::IsNoDir);
    }

    #[test]
    fn read_dir_order_is_lexicographic_and_ignores_creation_order() {
        // Directory entries live in a BTreeMap, so ReadDir pages served by
        // the m3fs server come out in one deterministic order no matter how
        // the names were created (DESIGN.md §4.1).
        let mut forward = fs();
        let mut backward = fs();
        forward.mkdir("/d").unwrap();
        backward.mkdir("/d").unwrap();
        let names = ["zeta", "alpha", "mid", "beta"];
        for name in names {
            forward.create_file(&format!("/d/{name}")).unwrap();
        }
        for name in names.iter().rev() {
            backward.create_file(&format!("/d/{name}")).unwrap();
        }
        let listed: Vec<String> = forward
            .read_dir("/d")
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(listed, vec!["alpha", "beta", "mid", "zeta"]);
        assert_eq!(
            forward.read_dir("/d").unwrap(),
            backward.read_dir("/d").unwrap(),
            "listing must not depend on creation order"
        );
    }

    #[test]
    fn fragmentation_yields_multiple_extents() {
        let mut f = fs();
        // Interleave two files' appends in small chunks so neither can merge.
        let a = f.create_file("/a").unwrap();
        let b = f.create_file("/b").unwrap();
        for _ in 0..4 {
            f.append_extent(a, 16).unwrap();
            f.append_extent(b, 16).unwrap();
        }
        assert_eq!(f.inode(a).extents.len(), 4);
        assert_eq!(f.inode(b).extents.len(), 4);
        // extent_at walks the list correctly.
        let (_, file_off, idx) = f.extent_at(a, 3 * 16 * 1024).unwrap();
        assert_eq!(idx, 3);
        assert_eq!(file_off, 3 * 16 * 1024);
    }

    #[test]
    fn path_depth() {
        assert_eq!(FsCore::path_depth("/"), 0);
        assert_eq!(FsCore::path_depth("/a/b/c"), 3);
        assert_eq!(FsCore::path_depth("a/b"), 2);
    }
}
