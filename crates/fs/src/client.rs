//! The m3fs client: the libm3 side of the filesystem (§4.5.8).
//!
//! "libm3 offers POSIX-like abstractions (open, read, write, seek, close) to
//! the application. The application uses a local buffer for reading and
//! writing, and libm3 will translate that into memory reads or writes at the
//! appropriate location and will, if necessary, request further memory
//! capabilities."

use std::cell::Cell;
use std::rc::Rc;

use m3_base::error::{Code, Error, Result};
use m3_base::marshal::IStream;
use m3_base::Cycles;
use m3_libos::vfs::{DirEntry, File, FileInfo, FileSystem, MapExtent, OpenFlags, SeekMode};
use m3_libos::{BoxFuture, ClientSession, Env, MemGate, SendGate};

use crate::proto::{
    LocateArgs, LocateReply, MetaReply, MetaRequest, NO_TRUNCATE, OBTAIN_META_GATE,
};

/// Local bookkeeping cost of a seek (most seeks stay within the already
/// obtained extents, §4.5.8).
const SEEK_COST: Cycles = Cycles::new(20);

/// Client-side (libm3) cycle charges per metadata operation: argument
/// marshalling, reply parsing, VFS bookkeeping. Together with the
/// service-side costs in `m3-fs::server` these calibrate the Figure 5
/// application benchmarks; keeping the service share small is what lets a
/// single m3fs instance serve many clients (§5.7).
mod ccosts {
    use m3_base::Cycles;

    /// `stat`: marshal path, parse the info reply, fill the caller's
    /// structure.
    pub const STAT: Cycles = Cycles::new(850);
    /// `open`: flags handling, file-object setup.
    pub const OPEN: Cycles = Cycles::new(350);
    /// `close`: flushing the handle state.
    pub const CLOSE: Cycles = Cycles::new(250);
    /// `read_dir`: entry parsing per reply page.
    pub const READDIR_PAGE: Cycles = Cycles::new(300);
    /// Directory mutations.
    pub const META_MUT: Cycles = Cycles::new(300);
}

struct FsInner {
    session: ClientSession,
    sgate: SendGate,
}

/// A connected m3fs client, mountable into the VFS.
pub struct M3FsFileSystem {
    inner: Rc<FsInner>,
}

impl std::fmt::Debug for M3FsFileSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "M3FsFileSystem({:?})", self.inner.session)
    }
}

impl M3FsFileSystem {
    /// Opens a session with the `m3fs` service and obtains the meta-channel
    /// send gate.
    ///
    /// # Errors
    ///
    /// Fails if the service is unavailable.
    pub async fn connect(env: &Env) -> Result<M3FsFileSystem> {
        Self::connect_named(env, "m3fs").await
    }

    /// Connects to a filesystem service registered under `name` (see
    /// `run_m3fs_named`).
    ///
    /// # Errors
    ///
    /// Fails if the service is unavailable.
    pub async fn connect_named(env: &Env, name: &str) -> Result<M3FsFileSystem> {
        let session = ClientSession::connect(env, name, 0).await?;
        let (sels, _) = session.obtain(1, &[OBTAIN_META_GATE]).await?;
        let sgate = SendGate::bind(env, sels[0]);
        Ok(M3FsFileSystem {
            inner: Rc::new(FsInner { session, sgate }),
        })
    }

    async fn meta(&self, env: &Env, req: MetaRequest) -> Result<Vec<u8>> {
        env.compute(m3_libos::costs::RPC_PREP).await;
        let msg = self.inner.sgate.call(&req.to_bytes()).await?;
        MetaReply::parse(&msg.payload)
    }

    /// Runs a consistency check on the service side; returns
    /// (error count, inodes, used blocks).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub async fn fsck(&self, env: &Env) -> Result<(u32, u64, u64)> {
        let data = self.meta(env, MetaRequest::Fsck).await?;
        let mut is = IStream::new(&data);
        Ok((is.pop_u32()?, is.pop_u64()?, is.pop_u64()?))
    }

    /// Opens a file with an explicit append-allocation hint in blocks
    /// (used by the Figure 4 experiment; 0 = the 256-block default).
    ///
    /// # Errors
    ///
    /// Propagates service errors.
    pub async fn open_file(
        &self,
        env: &Env,
        path: &str,
        flags: OpenFlags,
        alloc_hint: u64,
    ) -> Result<RegularFile> {
        env.compute(ccosts::OPEN).await;
        let data = self
            .meta(
                env,
                MetaRequest::Open {
                    path: path.to_string(),
                    flags: flags_bits(flags),
                },
            )
            .await?;
        let mut is = IStream::new(&data);
        let fd = is.pop_u64()?;
        let size = is.pop_u64()?;
        let _extents = is.pop_u32()?;
        Ok(RegularFile {
            fs: self.inner.clone(),
            env: env.clone(),
            fd,
            pos: 0,
            size,
            readable: flags.readable(),
            writable: flags.writable(),
            alloc_hint,
            cached: None,
            closed: Cell::new(false),
        })
    }
}

fn flags_bits(flags: OpenFlags) -> u32 {
    let mut bits = 0;
    if flags.readable() {
        bits |= 0b0001;
    }
    if flags.writable() {
        bits |= 0b0010;
    }
    if flags.create() {
        bits |= 0b0100;
    }
    if flags.trunc() {
        bits |= 0b1000;
    }
    bits
}

struct CachedExtent {
    mem: MemGate,
    file_off: u64,
    len: u64,
}

/// An open m3fs file: reads and writes go directly to the file's fragments
/// in DRAM via memory capabilities obtained on demand.
pub struct RegularFile {
    fs: Rc<FsInner>,
    env: Env,
    fd: u64,
    pos: u64,
    size: u64,
    readable: bool,
    writable: bool,
    alloc_hint: u64,
    cached: Option<CachedExtent>,
    closed: Cell<bool>,
}

impl std::fmt::Debug for RegularFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RegularFile(fd={}, pos={}, size={})",
            self.fd, self.pos, self.size
        )
    }
}

impl RegularFile {
    /// Current file size as seen by this handle.
    pub fn size(&self) -> u64 {
        self.size
    }

    async fn locate(&mut self, write: bool) -> Result<()> {
        let args = LocateArgs {
            fd: self.fd,
            offset: self.pos,
            write,
            want_blocks: self.alloc_hint,
        };
        let (sels, reply) = self.fs.session.obtain(1, &args.to_bytes()).await?;
        let info = LocateReply::from_bytes(&reply)?;
        self.cached = Some(CachedExtent {
            mem: MemGate::bind(&self.env, sels[0]),
            file_off: info.ext_file_off,
            len: info.ext_bytes,
        });
        Ok(())
    }

    fn cached_covers(&self, pos: u64) -> bool {
        self.cached
            .as_ref()
            .is_some_and(|c| pos >= c.file_off && pos < c.file_off + c.len)
    }

    async fn read_inner(&mut self, buf: &mut [u8]) -> Result<usize> {
        self.env.compute(m3_libos::costs::FILE_OP_ENTRY).await;
        if !self.readable {
            return Err(Error::new(Code::NoAccess).with_msg("not open for reading"));
        }
        if self.pos >= self.size || buf.is_empty() {
            return Ok(0);
        }
        self.env.compute(m3_libos::costs::FILE_LOCATE).await;
        if !self.cached_covers(self.pos) {
            self.locate(false).await?;
        }
        let c = self
            .cached
            .as_ref()
            .ok_or_else(|| Error::new(Code::Internal).with_msg("no cached extent"))?;
        let ext_end = c.file_off + c.len;
        let n = (buf.len() as u64)
            .min(ext_end - self.pos)
            .min(self.size - self.pos);
        c.mem
            .read_into(self.pos - c.file_off, &mut buf[..n as usize])
            .await?;
        self.pos += n;
        Ok(n as usize)
    }

    async fn write_inner(&mut self, data: &[u8]) -> Result<usize> {
        self.env.compute(m3_libos::costs::FILE_OP_ENTRY).await;
        if !self.writable {
            return Err(Error::new(Code::NoAccess).with_msg("not open for writing"));
        }
        if data.is_empty() {
            return Ok(0);
        }
        self.env.compute(m3_libos::costs::FILE_LOCATE).await;
        if !self.cached_covers(self.pos) {
            self.locate(true).await?;
        }
        let c = self
            .cached
            .as_ref()
            .ok_or_else(|| Error::new(Code::Internal).with_msg("no cached extent"))?;
        let ext_end = c.file_off + c.len;
        let n = (data.len() as u64).min(ext_end - self.pos);
        c.mem
            .write(self.pos - c.file_off, &data[..n as usize])
            .await?;
        self.pos += n;
        self.size = self.size.max(self.pos);
        Ok(n as usize)
    }

    async fn seek_inner(&mut self, offset: i64, whence: SeekMode) -> Result<u64> {
        self.env.compute(SEEK_COST).await;
        let base = match whence {
            SeekMode::Set => 0i64,
            SeekMode::Cur => self.pos as i64,
            SeekMode::End => self.size as i64,
        };
        let new = base + offset;
        if new < 0 {
            return Err(Error::new(Code::InvOffset).with_msg("negative position"));
        }
        self.pos = new as u64;
        Ok(self.pos)
    }

    /// Walks the file's extents via repeated `locate` requests and obtains
    /// one memory capability per extent — the mmap analogue of §4.5.8's
    /// remote-memory read path. The current file position is preserved.
    async fn map_inner(&mut self) -> Result<Vec<MapExtent>> {
        self.env.compute(m3_libos::costs::FILE_OP_ENTRY).await;
        if !self.readable {
            return Err(Error::new(Code::NoAccess).with_msg("not open for reading"));
        }
        let saved_pos = self.pos;
        let mut extents = Vec::new();
        let mut off = 0u64;
        while off < self.size {
            self.env.compute(m3_libos::costs::FILE_LOCATE).await;
            self.pos = off;
            let res = self.locate(false).await;
            self.pos = saved_pos;
            res?;
            let c = self
                .cached
                .take()
                .ok_or_else(|| Error::new(Code::Internal).with_msg("no cached extent"))?;
            if c.len == 0 {
                break;
            }
            off = c.file_off + c.len;
            extents.push(MapExtent {
                file_off: c.file_off,
                len: c.len.min(self.size.saturating_sub(c.file_off)),
                mem: c.mem,
            });
        }
        Ok(extents)
    }

    async fn close_inner(&mut self) -> Result<()> {
        if self.closed.replace(true) {
            return Ok(());
        }
        let size = if self.writable {
            self.size
        } else {
            NO_TRUNCATE
        };
        self.env.compute(ccosts::CLOSE).await;
        let msg = self
            .fs
            .sgate
            .call(&MetaRequest::Close { fd: self.fd, size }.to_bytes())
            .await?;
        MetaReply::parse(&msg.payload)?;
        Ok(())
    }
}

impl File for RegularFile {
    fn read<'a>(&'a mut self, buf: &'a mut [u8]) -> BoxFuture<'a, Result<usize>> {
        Box::pin(self.read_inner(buf))
    }

    fn write<'a>(&'a mut self, data: &'a [u8]) -> BoxFuture<'a, Result<usize>> {
        Box::pin(self.write_inner(data))
    }

    fn seek<'a>(&'a mut self, offset: i64, whence: SeekMode) -> BoxFuture<'a, Result<u64>> {
        Box::pin(self.seek_inner(offset, whence))
    }

    fn close<'a>(&'a mut self) -> BoxFuture<'a, Result<()>> {
        Box::pin(self.close_inner())
    }

    fn map<'a>(&'a mut self) -> BoxFuture<'a, Result<Vec<MapExtent>>> {
        Box::pin(self.map_inner())
    }
}

impl FileSystem for M3FsFileSystem {
    fn open<'a>(
        &'a self,
        env: &'a Env,
        path: &'a str,
        flags: OpenFlags,
    ) -> BoxFuture<'a, Result<Box<dyn File>>> {
        Box::pin(async move {
            let file = self.open_file(env, path, flags, 0).await?;
            Ok(Box::new(file) as Box<dyn File>)
        })
    }

    fn stat<'a>(&'a self, env: &'a Env, path: &'a str) -> BoxFuture<'a, Result<FileInfo>> {
        Box::pin(async move {
            env.compute(ccosts::STAT).await;
            let data = self
                .meta(
                    env,
                    MetaRequest::Stat {
                        path: path.to_string(),
                    },
                )
                .await?;
            let mut is = IStream::new(&data);
            Ok(FileInfo {
                size: is.pop_u64()?,
                is_dir: is.pop_bool()?,
                extents: is.pop_u32()?,
                links: is.pop_u32()?,
            })
        })
    }

    fn mkdir<'a>(&'a self, env: &'a Env, path: &'a str) -> BoxFuture<'a, Result<()>> {
        Box::pin(async move {
            env.compute(ccosts::META_MUT).await;
            self.meta(
                env,
                MetaRequest::Mkdir {
                    path: path.to_string(),
                },
            )
            .await?;
            Ok(())
        })
    }

    fn rmdir<'a>(&'a self, env: &'a Env, path: &'a str) -> BoxFuture<'a, Result<()>> {
        Box::pin(async move {
            env.compute(ccosts::META_MUT).await;
            self.meta(
                env,
                MetaRequest::Rmdir {
                    path: path.to_string(),
                },
            )
            .await?;
            Ok(())
        })
    }

    fn link<'a>(&'a self, env: &'a Env, old: &'a str, new: &'a str) -> BoxFuture<'a, Result<()>> {
        Box::pin(async move {
            env.compute(ccosts::META_MUT).await;
            self.meta(
                env,
                MetaRequest::Link {
                    old: old.to_string(),
                    new: new.to_string(),
                },
            )
            .await?;
            Ok(())
        })
    }

    fn unlink<'a>(&'a self, env: &'a Env, path: &'a str) -> BoxFuture<'a, Result<()>> {
        Box::pin(async move {
            env.compute(ccosts::META_MUT).await;
            self.meta(
                env,
                MetaRequest::Unlink {
                    path: path.to_string(),
                },
            )
            .await?;
            Ok(())
        })
    }

    fn read_dir<'a>(&'a self, env: &'a Env, path: &'a str) -> BoxFuture<'a, Result<Vec<DirEntry>>> {
        Box::pin(async move {
            let mut entries = Vec::new();
            let mut start = 0u32;
            loop {
                env.compute(ccosts::READDIR_PAGE).await;
                let data = self
                    .meta(
                        env,
                        MetaRequest::ReadDir {
                            path: path.to_string(),
                            start,
                        },
                    )
                    .await?;
                let mut is = IStream::new(&data);
                let n = is.pop_u32()?;
                for _ in 0..n {
                    entries.push(DirEntry {
                        name: is.pop_str()?,
                        is_dir: is.pop_bool()?,
                    });
                }
                let done = is.pop_bool()?;
                if done {
                    return Ok(entries);
                }
                start += n;
            }
        })
    }
}

/// Connects to m3fs and mounts it at `/` in the environment's VFS.
///
/// # Errors
///
/// Fails if the service is unavailable.
pub async fn mount_m3fs(env: &Env) -> Result<()> {
    let fs = M3FsFileSystem::connect(env).await?;
    env.vfs().borrow_mut().mount("/", Rc::new(fs));
    Ok(())
}

/// Connects to the filesystem service `name` and mounts it at `path`.
///
/// # Errors
///
/// Fails if the service is unavailable.
pub async fn mount_m3fs_at(env: &Env, name: &str, path: &str) -> Result<()> {
    let fs = M3FsFileSystem::connect_named(env, name).await?;
    env.vfs().borrow_mut().mount(path, Rc::new(fs));
    Ok(())
}
