//! The block bitmap: contiguous-run allocation for extents.

use m3_base::error::{Code, Error, Result};

/// A bitmap over the filesystem's data blocks, allocating contiguous runs
/// (extents prefer contiguity, §4.5.8).
#[derive(Clone, Debug)]
pub struct BlockBitmap {
    used: Vec<bool>,
    free: u64,
}

impl BlockBitmap {
    /// Creates a bitmap with all `blocks` blocks free.
    pub fn new(blocks: u64) -> BlockBitmap {
        BlockBitmap {
            used: vec![false; blocks as usize],
            free: blocks,
        }
    }

    /// Allocates up to `want` contiguous blocks, first fit; returns
    /// (start, count). The run may be shorter than `want` if no longer run
    /// exists — this is what creates additional extents under fragmentation.
    ///
    /// # Errors
    ///
    /// Returns [`Code::NoSpace`] when no block is free, [`Code::InvArgs`]
    /// for a zero request.
    pub fn alloc_run(&mut self, want: u64) -> Result<(u64, u64)> {
        if want == 0 {
            return Err(Error::new(Code::InvArgs).with_msg("zero-block allocation"));
        }
        if self.free == 0 {
            return Err(Error::new(Code::NoSpace));
        }
        let mut best: Option<(u64, u64)> = None;
        let mut i = 0usize;
        while i < self.used.len() {
            if self.used[i] {
                i += 1;
                continue;
            }
            let start = i;
            while i < self.used.len() && !self.used[i] && (i - start) < want as usize {
                i += 1;
            }
            let len = (i - start) as u64;
            if len == want {
                best = Some((start as u64, len));
                break;
            }
            if best.is_none_or(|(_, blen)| len > blen) {
                best = Some((start as u64, len));
            }
            // Skip to the end of this free run.
            while i < self.used.len() && !self.used[i] {
                i += 1;
            }
        }
        let (start, len) = best.ok_or_else(|| Error::new(Code::NoSpace))?;
        for b in start..start + len {
            self.used[b as usize] = true;
        }
        self.free -= len;
        Ok((start, len))
    }

    /// Marks `[start, start + count)` used (for boot-time layout).
    ///
    /// # Panics
    ///
    /// Panics on double allocation or out-of-range blocks.
    pub fn reserve(&mut self, start: u64, count: u64) {
        for b in start..start + count {
            assert!(!self.used[b as usize], "block {b} already used");
            self.used[b as usize] = true;
        }
        self.free -= count;
    }

    /// Frees `[start, start + count)`.
    ///
    /// # Panics
    ///
    /// Panics on double free or out-of-range blocks.
    pub fn free_run(&mut self, start: u64, count: u64) {
        for b in start..start + count {
            assert!(self.used[b as usize], "block {b} already free");
            self.used[b as usize] = false;
        }
        self.free += count;
    }

    /// Number of free blocks.
    pub fn free_blocks(&self) -> u64 {
        self.free
    }

    /// Total number of blocks.
    pub fn total_blocks(&self) -> u64 {
        self.used.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_contiguous_first_fit() {
        let mut bm = BlockBitmap::new(100);
        assert_eq!(bm.alloc_run(10).unwrap(), (0, 10));
        assert_eq!(bm.alloc_run(5).unwrap(), (10, 5));
        assert_eq!(bm.free_blocks(), 85);
    }

    #[test]
    fn short_runs_when_fragmented() {
        let mut bm = BlockBitmap::new(20);
        let (a, _) = bm.alloc_run(8).unwrap(); // 0..8
        let (b, _) = bm.alloc_run(8).unwrap(); // 8..16
        bm.free_run(a, 8);
        let _ = b;
        // Largest contiguous run is 8 at the front; a 12-block request gets
        // a shorter run instead of failing.
        let (start, len) = bm.alloc_run(12).unwrap();
        assert_eq!((start, len), (0, 8));
    }

    #[test]
    fn picks_largest_available_when_no_exact_fit() {
        let mut bm = BlockBitmap::new(20);
        bm.reserve(4, 1); // free runs: 0..4 (len 4) and 5..20 (len 15)
        let (start, len) = bm.alloc_run(10).unwrap();
        assert_eq!((start, len), (5, 10));
        // Now runs: 0..4 and 15..20. Request 6: picks len-5 run.
        let (start, len) = bm.alloc_run(6).unwrap();
        assert_eq!((start, len), (15, 5));
    }

    #[test]
    fn exhaustion() {
        let mut bm = BlockBitmap::new(4);
        bm.alloc_run(4).unwrap();
        assert_eq!(bm.alloc_run(1).unwrap_err().code(), Code::NoSpace);
        bm.free_run(0, 4);
        assert_eq!(bm.alloc_run(4).unwrap(), (0, 4));
    }

    #[test]
    #[should_panic(expected = "already free")]
    fn double_free_panics() {
        let mut bm = BlockBitmap::new(4);
        bm.free_run(0, 1);
    }

    #[test]
    fn zero_request_rejected() {
        let mut bm = BlockBitmap::new(4);
        assert_eq!(bm.alloc_run(0).unwrap_err().code(), Code::InvArgs);
    }
}
