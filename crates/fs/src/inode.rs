//! Inodes.

use std::collections::BTreeMap;

use crate::fs::Extent;

/// What an inode is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InodeKind {
    /// A regular file: its data lives in `extents`.
    File,
    /// A directory: named entries pointing at inode numbers.
    Dir(BTreeMap<String, u64>),
}

/// An inode: size, link count, and the extent list (§4.5.8: "the data of an
/// inode is stored in a tree of tables containing extents").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Inode {
    /// Inode number.
    pub ino: u64,
    /// Kind and kind-specific content.
    pub kind: InodeKind,
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// Hard-link count.
    pub links: u32,
    /// The file's extents, in file order.
    pub extents: Vec<Extent>,
}

impl Inode {
    /// Creates an empty regular file inode.
    pub fn file(ino: u64) -> Inode {
        Inode {
            ino,
            kind: InodeKind::File,
            size: 0,
            links: 1,
            extents: Vec::new(),
        }
    }

    /// Creates an empty directory inode.
    pub fn dir(ino: u64) -> Inode {
        Inode {
            ino,
            kind: InodeKind::Dir(BTreeMap::new()),
            size: 0,
            links: 1,
            extents: Vec::new(),
        }
    }

    /// Whether this is a directory.
    pub fn is_dir(&self) -> bool {
        matches!(self.kind, InodeKind::Dir(_))
    }

    /// Directory entries (empty iterator view for files).
    pub fn dir_entries(&self) -> Option<&BTreeMap<String, u64>> {
        match &self.kind {
            InodeKind::Dir(map) => Some(map),
            InodeKind::File => None,
        }
    }

    /// Mutable directory entries.
    pub fn dir_entries_mut(&mut self) -> Option<&mut BTreeMap<String, u64>> {
        match &mut self.kind {
            InodeKind::Dir(map) => Some(map),
            InodeKind::File => None,
        }
    }

    /// Total blocks covered by the extent list.
    pub fn blocks(&self) -> u64 {
        self.extents.iter().map(|e| e.blocks).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        let f = Inode::file(2);
        assert!(!f.is_dir());
        assert!(f.dir_entries().is_none());
        let mut d = Inode::dir(1);
        assert!(d.is_dir());
        d.dir_entries_mut().unwrap().insert("a".into(), 2);
        assert_eq!(d.dir_entries().unwrap().len(), 1);
    }

    #[test]
    fn block_count_sums_extents() {
        let mut f = Inode::file(2);
        f.extents.push(Extent {
            start: 0,
            blocks: 4,
        });
        f.extents.push(Extent {
            start: 10,
            blocks: 6,
        });
        assert_eq!(f.blocks(), 10);
    }
}
