//! m3fs — the M3 filesystem (§4.5.8).
//!
//! m3fs is an in-memory filesystem implemented as a *service*, i.e. an
//! ordinary application. Its defining property is the data path: m3fs is
//! only contacted for metadata operations (open, close, mkdir, link, stat,
//! …); for data, the application asks m3fs for the *locations* of the file
//! fragments and receives **memory capabilities** over the session, then
//! reads and writes the file bytes directly through its DTU — the service
//! never touches the data ("somewhat similar to GoogleFS", §4.5.8).
//!
//! Files store their data as **extents** (start block, block count), like
//! ext4/btrfs, because the application receives access as contiguous pieces
//! of memory; larger extents mean fewer service contacts. Appends allocate
//! 256 blocks at once to limit fragmentation, and close truncates to the
//! used size (§4.5.8, evaluated in Figure 4).
//!
//! Substitution note (see `DESIGN.md`): file *data* lives in a DRAM region
//! the service owns, addressed block-wise exactly as the paper describes;
//! the metadata structures (superblock counters, bitmaps, inode table,
//! directories) are kept as native structures — the paper's m3fs is
//! in-memory as well, so no metadata block I/O is being skipped that the
//! evaluation would measure.

mod bitmap;
mod check;
mod client;
mod fs;
mod inode;
pub mod proto;
mod server;

pub use bitmap::BlockBitmap;
pub use check::{FsckReport, FS_MAGIC};
pub use client::{mount_m3fs, mount_m3fs_at, M3FsFileSystem};
pub use fs::{Extent, FsCore};
pub use inode::{Inode, InodeKind};
pub use server::{run_m3fs, run_m3fs_named, SetupKind, SetupNode};
