//! Filesystem consistency checking (fsck) and the persistent image format.
//!
//! The paper's m3fs is in-memory, but "the organization of the data has been
//! chosen to be suitable for persistent storage as well, so that we can
//! support it later" (§4.5.8). This module delivers both halves of that
//! claim: [`FsCore::check`] verifies the classical UNIX invariants
//! (bitmap/extent agreement, link counts, tree-shaped directories), and
//! [`FsCore::serialize`]/[`FsCore::deserialize`] write and read the
//! superblock + inode table + directory entries as a flat image.

use std::collections::{BTreeMap, BTreeSet};

use m3_base::error::{Code, Error, Result};
use m3_base::marshal::{IStream, OStream};

use crate::fs::{Extent, FsCore, ROOT_INO};
use crate::inode::{Inode, InodeKind};

/// Magic number of a serialized m3fs image.
pub const FS_MAGIC: u64 = 0x4d33_4653_2031_3642; // "M3FS 16B"

/// Outcome of a consistency check.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Inodes visited.
    pub inodes: u64,
    /// Directories visited.
    pub dirs: u64,
    /// Data blocks referenced by extents.
    pub used_blocks: u64,
    /// Problems found (empty = consistent).
    pub errors: Vec<String>,
}

impl FsckReport {
    /// Whether the filesystem is consistent.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

impl FsCore {
    /// Checks the classical filesystem invariants:
    ///
    /// 1. every inode is reachable from the root exactly through its links,
    /// 2. link counts equal the number of directory entries per inode,
    /// 3. no two extents overlap,
    /// 4. the free-block count matches `total - used`,
    /// 5. file sizes fit within their allocated blocks.
    pub fn check(&self) -> FsckReport {
        let mut report = FsckReport::default();
        let mut name_refs: BTreeMap<u64, u32> = BTreeMap::new();
        let mut visited: BTreeSet<u64> = BTreeSet::new();
        let mut stack = vec![ROOT_INO];

        // Walk the tree.
        while let Some(ino) = stack.pop() {
            if !visited.insert(ino) {
                // Directories must form a tree; revisiting one means a
                // cycle or a multiply-linked directory.
                report.errors.push(format!("inode {ino} visited twice"));
                continue;
            }
            report.inodes += 1;
            let inode = self.inode(ino);
            match &inode.kind {
                InodeKind::Dir(entries) => {
                    report.dirs += 1;
                    for child in entries.values() {
                        *name_refs.entry(*child).or_insert(0) += 1;
                        let child_inode = self.inode(*child);
                        if child_inode.is_dir() {
                            stack.push(*child);
                        } else {
                            // Files may be reached via several links; visit
                            // their data once.
                            if visited.insert(*child) {
                                report.inodes += 1;
                            }
                        }
                    }
                }
                InodeKind::File => {}
            }
        }

        // Extent and size invariants, overlap detection.
        let mut block_owner: BTreeMap<u64, u64> = BTreeMap::new();
        for &ino in &visited {
            let inode = self.inode(ino);
            for e in &inode.extents {
                for b in e.start..e.start + e.blocks {
                    if let Some(prev) = block_owner.insert(b, ino) {
                        report
                            .errors
                            .push(format!("block {b} owned by inodes {prev} and {ino}"));
                    }
                }
            }
            let allocated = inode.blocks() * self.block_size();
            if inode.size > allocated {
                report.errors.push(format!(
                    "inode {ino}: size {} exceeds allocation {allocated}",
                    inode.size
                ));
            }
            if !inode.is_dir() {
                let refs = name_refs.get(&ino).copied().unwrap_or(0);
                if refs != inode.links {
                    report.errors.push(format!(
                        "inode {ino}: link count {} but {refs} directory entries",
                        inode.links
                    ));
                }
            }
        }
        report.used_blocks = block_owner.len() as u64;

        // Bitmap agreement.
        let expected_free = self.total_blocks() - report.used_blocks;
        if self.free_blocks() != expected_free {
            report.errors.push(format!(
                "bitmap reports {} free blocks, extents imply {expected_free}",
                self.free_blocks()
            ));
        }
        report
    }

    /// Serializes the metadata (superblock, inode table, directories,
    /// extent lists) into a flat image. File *data* lives in the block
    /// region and is addressed by the extents, so image + data region
    /// together form a complete persistent filesystem.
    pub fn serialize(&self) -> Vec<u8> {
        let mut os = OStream::with_capacity(4096);
        os.push_u64(FS_MAGIC);
        os.push_u64(self.total_blocks());
        os.push_u64(self.block_size());
        let inodes = self.all_inodes();
        os.push_u64(inodes.len() as u64);
        for inode in inodes {
            os.push_u64(inode.ino);
            os.push_bool(inode.is_dir());
            os.push_u64(inode.size);
            os.push_u32(inode.links);
            os.push_u32(inode.extents.len() as u32);
            for e in &inode.extents {
                os.push_u64(e.start);
                os.push_u64(e.blocks);
            }
            if let Some(entries) = inode.dir_entries() {
                os.push_u32(entries.len() as u32);
                for (name, child) in entries {
                    os.push_str(name);
                    os.push_u64(*child);
                }
            } else {
                os.push_u32(0);
            }
        }
        os.into_bytes()
    }

    /// Reconstructs a filesystem from a serialized image.
    ///
    /// # Errors
    ///
    /// Returns [`Code::BadMessage`] on a malformed image and
    /// [`Code::Internal`] if the reconstructed filesystem fails its own
    /// consistency check.
    pub fn deserialize(image: &[u8]) -> Result<FsCore> {
        let mut is = IStream::new(image);
        if is.pop_u64()? != FS_MAGIC {
            return Err(Error::new(Code::BadMessage).with_msg("bad m3fs magic"));
        }
        let total_blocks = is.pop_u64()?;
        let block_size = is.pop_u64()?;
        let count = is.pop_u64()?;
        let mut inodes = Vec::new();
        for _ in 0..count {
            let ino = is.pop_u64()?;
            let is_dir = is.pop_bool()?;
            let size = is.pop_u64()?;
            let links = is.pop_u32()?;
            let n_ext = is.pop_u32()?;
            let mut extents = Vec::with_capacity(n_ext as usize);
            for _ in 0..n_ext {
                extents.push(Extent {
                    start: is.pop_u64()?,
                    blocks: is.pop_u64()?,
                });
            }
            let n_entries = is.pop_u32()?;
            let mut entries = BTreeMap::new();
            for _ in 0..n_entries {
                let name = is.pop_str()?;
                let child = is.pop_u64()?;
                entries.insert(name, child);
            }
            let kind = if is_dir {
                InodeKind::Dir(entries)
            } else {
                InodeKind::File
            };
            inodes.push(Inode {
                ino,
                kind,
                size,
                links,
                extents,
            });
        }
        let fs = FsCore::from_parts(total_blocks, block_size, inodes)?;
        let report = fs.check();
        if !report.is_clean() {
            return Err(Error::new(Code::Internal)
                .with_msg(format!("image inconsistent: {:?}", report.errors)));
        }
        Ok(fs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> FsCore {
        let mut fs = FsCore::new(1024, 1024);
        fs.mkdir("/dir").unwrap();
        let a = fs.create_file("/dir/a").unwrap();
        fs.append_extent(a, 8).unwrap();
        fs.truncate(a, 7500).unwrap();
        let b = fs.create_file("/b").unwrap();
        fs.append_extent(b, 4).unwrap();
        fs.inode_mut(b).size = 4096;
        fs.link("/b", "/dir/b-again").unwrap();
        fs
    }

    #[test]
    fn clean_filesystem_passes_fsck() {
        let fs = populated();
        let report = fs.check();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
        assert_eq!(report.dirs, 2); // root + /dir
        assert_eq!(report.used_blocks, 8 + 4);
    }

    #[test]
    fn corrupted_link_count_is_detected() {
        let mut fs = populated();
        let ino = fs.resolve("/b").unwrap();
        fs.inode_mut(ino).links = 7;
        let report = fs.check();
        assert!(!report.is_clean());
        assert!(report.errors[0].contains("link count"));
    }

    #[test]
    fn oversized_file_is_detected() {
        let mut fs = populated();
        let ino = fs.resolve("/b").unwrap();
        fs.inode_mut(ino).size = 1 << 30;
        let report = fs.check();
        assert!(report
            .errors
            .iter()
            .any(|e| e.contains("exceeds allocation")));
    }

    #[test]
    fn overlapping_extents_are_detected() {
        let mut fs = populated();
        let a = fs.resolve("/dir/a").unwrap();
        let b = fs.resolve("/b").unwrap();
        let stolen = fs.inode(b).extents[0];
        fs.inode_mut(a).extents.push(stolen);
        let report = fs.check();
        assert!(report.errors.iter().any(|e| e.contains("owned by inodes")));
    }

    #[test]
    fn serialize_deserialize_roundtrip() {
        let fs = populated();
        let image = fs.serialize();
        let restored = FsCore::deserialize(&image).unwrap();
        assert_eq!(restored.free_blocks(), fs.free_blocks());
        assert_eq!(
            restored.resolve("/dir/a").unwrap(),
            fs.resolve("/dir/a").unwrap()
        );
        let ino = restored.resolve("/b").unwrap();
        assert_eq!(restored.inode(ino).links, 2);
        assert_eq!(restored.inode(ino).size, 4096);
        assert!(restored.check().is_clean());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut image = populated().serialize();
        image[0] ^= 0xff;
        assert_eq!(
            FsCore::deserialize(&image).unwrap_err().code(),
            Code::BadMessage
        );
    }

    #[test]
    fn truncated_image_rejected() {
        let image = populated().serialize();
        assert!(FsCore::deserialize(&image[..image.len() / 2]).is_err());
    }
}
