//! The m3fs wire protocol: meta-channel requests and locate arguments.
//!
//! Meta operations travel over a send gate the client obtains from the
//! session; data *locations* are exchanged as memory capabilities through
//! session obtains (§4.5.8).

use m3_base::error::{Code, Error, Result};
use m3_base::marshal::{IStream, OStream};

/// Tag of a session obtain that requests the meta-channel send gate.
pub const OBTAIN_META_GATE: u8 = 0;

/// Tag of a session obtain that requests a file-fragment capability.
pub const OBTAIN_LOCATE: u8 = 1;

/// Sentinel for "close without truncating".
pub const NO_TRUNCATE: u64 = u64::MAX;

/// A metadata request to m3fs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetaRequest {
    /// Open (and possibly create/truncate) a file.
    Open {
        /// Absolute path within the filesystem.
        path: String,
        /// `m3_libos::vfs::OpenFlags` bits.
        flags: u32,
    },
    /// Close an open file, truncating it to `size` bytes (§4.5.8) unless
    /// `size` is [`NO_TRUNCATE`].
    Close {
        /// The open-file handle.
        fd: u64,
        /// Final file size.
        size: u64,
    },
    /// Stat a path.
    Stat {
        /// Absolute path.
        path: String,
    },
    /// Create a directory.
    Mkdir {
        /// Absolute path.
        path: String,
    },
    /// Remove an empty directory.
    Rmdir {
        /// Absolute path.
        path: String,
    },
    /// Remove a file name.
    Unlink {
        /// Absolute path.
        path: String,
    },
    /// Create a hard link.
    Link {
        /// Existing file.
        old: String,
        /// New name.
        new: String,
    },
    /// List a directory, starting at entry index `start` (paged).
    ReadDir {
        /// Absolute path.
        path: String,
        /// First entry index to return.
        start: u32,
    },
    /// Run a consistency check; the reply carries (errors, inodes,
    /// used blocks).
    Fsck,
}

impl MetaRequest {
    /// The request name, for tracing and diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            MetaRequest::Open { .. } => "Open",
            MetaRequest::Close { .. } => "Close",
            MetaRequest::Stat { .. } => "Stat",
            MetaRequest::Mkdir { .. } => "Mkdir",
            MetaRequest::Rmdir { .. } => "Rmdir",
            MetaRequest::Unlink { .. } => "Unlink",
            MetaRequest::Link { .. } => "Link",
            MetaRequest::ReadDir { .. } => "ReadDir",
            MetaRequest::Fsck => "Fsck",
        }
    }

    /// Marshals the request.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut os = OStream::with_capacity(64);
        match self {
            MetaRequest::Open { path, flags } => {
                os.push_u8(0).push_str(path).push_u32(*flags);
            }
            MetaRequest::Close { fd, size } => {
                os.push_u8(1).push_u64(*fd).push_u64(*size);
            }
            MetaRequest::Stat { path } => {
                os.push_u8(2).push_str(path);
            }
            MetaRequest::Mkdir { path } => {
                os.push_u8(3).push_str(path);
            }
            MetaRequest::Rmdir { path } => {
                os.push_u8(4).push_str(path);
            }
            MetaRequest::Unlink { path } => {
                os.push_u8(5).push_str(path);
            }
            MetaRequest::Link { old, new } => {
                os.push_u8(6).push_str(old).push_str(new);
            }
            MetaRequest::ReadDir { path, start } => {
                os.push_u8(7).push_str(path).push_u32(*start);
            }
            MetaRequest::Fsck => {
                os.push_u8(8);
            }
        }
        os.into_bytes()
    }

    /// Unmarshals a request.
    ///
    /// # Errors
    ///
    /// Returns [`Code::BadMessage`] on malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<MetaRequest> {
        let mut is = IStream::new(bytes);
        let req = match is.pop_u8()? {
            0 => MetaRequest::Open {
                path: is.pop_str()?,
                flags: is.pop_u32()?,
            },
            1 => MetaRequest::Close {
                fd: is.pop_u64()?,
                size: is.pop_u64()?,
            },
            2 => MetaRequest::Stat {
                path: is.pop_str()?,
            },
            3 => MetaRequest::Mkdir {
                path: is.pop_str()?,
            },
            4 => MetaRequest::Rmdir {
                path: is.pop_str()?,
            },
            5 => MetaRequest::Unlink {
                path: is.pop_str()?,
            },
            6 => MetaRequest::Link {
                old: is.pop_str()?,
                new: is.pop_str()?,
            },
            7 => MetaRequest::ReadDir {
                path: is.pop_str()?,
                start: is.pop_u32()?,
            },
            8 => MetaRequest::Fsck,
            _ => return Err(Error::new(Code::BadMessage).with_msg("unknown meta request")),
        };
        Ok(req)
    }
}

/// A metadata reply: error code plus request-specific payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetaReply {
    /// `None` = success.
    pub error: Option<Code>,
    /// Request-specific payload.
    pub data: Vec<u8>,
}

impl MetaReply {
    /// Success without payload.
    pub fn ok() -> MetaReply {
        MetaReply {
            error: None,
            data: Vec::new(),
        }
    }

    /// Success with payload.
    pub fn ok_with(data: Vec<u8>) -> MetaReply {
        MetaReply { error: None, data }
    }

    /// Failure.
    pub fn err(code: Code) -> MetaReply {
        MetaReply {
            error: Some(code),
            data: Vec::new(),
        }
    }

    /// Marshals the reply.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut os = OStream::with_capacity(16 + self.data.len());
        os.push_u32(self.error.map_or(0, |c| c.as_raw()));
        os.push_bytes(&self.data);
        os.into_bytes()
    }

    /// Unmarshals a reply and converts it into a result over its payload.
    ///
    /// # Errors
    ///
    /// Returns the carried error, or [`Code::BadMessage`] on malformed
    /// bytes.
    pub fn parse(bytes: &[u8]) -> Result<Vec<u8>> {
        let mut is = IStream::new(bytes);
        let raw = is.pop_u32()?;
        let data = is.pop_bytes()?.to_vec();
        if raw == 0 {
            Ok(data)
        } else {
            Err(Error::new(Code::from_raw(raw)))
        }
    }
}

/// Arguments of a locate obtain: which fragment of which file.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LocateArgs {
    /// The open-file handle.
    pub fd: u64,
    /// Byte offset the caller wants to access.
    pub offset: u64,
    /// Whether the access is a write (may extend the file).
    pub write: bool,
    /// For writes at EOF: how many blocks to allocate at once (0 = the
    /// filesystem default of 256, §5.5).
    pub want_blocks: u64,
}

impl LocateArgs {
    /// Marshals the arguments (prefixed with [`OBTAIN_LOCATE`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut os = OStream::with_capacity(32);
        os.push_u8(OBTAIN_LOCATE)
            .push_u64(self.fd)
            .push_u64(self.offset)
            .push_bool(self.write)
            .push_u64(self.want_blocks);
        os.into_bytes()
    }

    /// Unmarshals the arguments (after the tag byte).
    ///
    /// # Errors
    ///
    /// Returns [`Code::BadMessage`] on malformed bytes.
    pub fn from_stream(is: &mut IStream<'_>) -> Result<LocateArgs> {
        Ok(LocateArgs {
            fd: is.pop_u64()?,
            offset: is.pop_u64()?,
            write: is.pop_bool()?,
            want_blocks: is.pop_u64()?,
        })
    }
}

/// Reply payload of a locate obtain.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LocateReply {
    /// File offset the granted fragment starts at.
    pub ext_file_off: u64,
    /// Length of the granted fragment in bytes.
    pub ext_bytes: u64,
}

impl LocateReply {
    /// Marshals the reply payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut os = OStream::with_capacity(16);
        os.push_u64(self.ext_file_off).push_u64(self.ext_bytes);
        os.into_bytes()
    }

    /// Unmarshals the reply payload.
    ///
    /// # Errors
    ///
    /// Returns [`Code::BadMessage`] on malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<LocateReply> {
        let mut is = IStream::new(bytes);
        Ok(LocateReply {
            ext_file_off: is.pop_u64()?,
            ext_bytes: is.pop_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_requests_roundtrip() {
        for req in [
            MetaRequest::Open {
                path: "/a/b".into(),
                flags: 3,
            },
            MetaRequest::Close { fd: 7, size: 4096 },
            MetaRequest::Stat { path: "/x".into() },
            MetaRequest::Mkdir { path: "/d".into() },
            MetaRequest::Rmdir { path: "/d".into() },
            MetaRequest::Unlink { path: "/f".into() },
            MetaRequest::Link {
                old: "/f".into(),
                new: "/g".into(),
            },
            MetaRequest::ReadDir {
                path: "/d".into(),
                start: 16,
            },
            MetaRequest::Fsck,
        ] {
            assert_eq!(MetaRequest::from_bytes(&req.to_bytes()).unwrap(), req);
        }
    }

    #[test]
    fn meta_reply_roundtrip() {
        assert_eq!(
            MetaReply::parse(&MetaReply::ok_with(vec![1, 2]).to_bytes()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(
            MetaReply::parse(&MetaReply::err(Code::NoSuchFile).to_bytes())
                .unwrap_err()
                .code(),
            Code::NoSuchFile
        );
    }

    #[test]
    fn locate_roundtrip() {
        let args = LocateArgs {
            fd: 3,
            offset: 1 << 20,
            write: true,
            want_blocks: 256,
        };
        let bytes = args.to_bytes();
        let mut is = IStream::new(&bytes);
        assert_eq!(is.pop_u8().unwrap(), OBTAIN_LOCATE);
        assert_eq!(LocateArgs::from_stream(&mut is).unwrap(), args);

        let reply = LocateReply {
            ext_file_off: 0,
            ext_bytes: 256 * 1024,
        };
        assert_eq!(LocateReply::from_bytes(&reply.to_bytes()).unwrap(), reply);
    }

    #[test]
    fn bad_tag_rejected() {
        assert_eq!(
            MetaRequest::from_bytes(&[99]).unwrap_err().code(),
            Code::BadMessage
        );
    }
}
