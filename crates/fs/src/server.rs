//! The m3fs service program.
//!
//! Runs two loops on the service's PE: the kernel-request handler (session
//! opens and capability exchanges, §4.5.3) and the meta channel (open,
//! close, stat, mkdir, …, §4.5.8). Data transfers never pass through here:
//! clients receive derived memory capabilities and drive their own DTUs.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use m3_base::cfg::{FS_ALLOC_BLOCKS, FS_BLOCK_SIZE};
use m3_base::error::{Code, Error, Result};
use m3_base::marshal::{IStream, OStream};
use m3_base::{Cycles, Perm, SelId};
use m3_kernel::protocol::Syscall;
use m3_libos::serv::{self, Handler};
use m3_libos::{Env, MemGate, RecvGate};
use m3_sim::{Component, Event, EventKind};

use crate::fs::FsCore;
use crate::proto::{
    LocateArgs, LocateReply, MetaReply, MetaRequest, NO_TRUNCATE, OBTAIN_LOCATE, OBTAIN_META_GATE,
};

/// Service-side cycle charges (see `EXPERIMENTS.md` for calibration).
///
/// These are deliberately *small* for read-only metadata: m3fs keeps
/// everything in memory, so per-request handling is a few hash/extent-table
/// walks. The expensive service operations are the ones that allocate
/// (create, append, truncate). Time the *client* spends per operation
/// (marshalling, DTU programming, VFS) lives in `m3-fs::client`; the split
/// matters for the §5.7 scalability experiment, where only service-side
/// time serializes across benchmark instances.
mod fscosts {
    use m3_base::Cycles;

    /// Path lookup per component (in-memory directory map).
    pub const LOOKUP_PER_COMP: Cycles = Cycles::new(20);
    /// Open an existing file: inode fetch, open-file table insert.
    pub const OPEN: Cycles = Cycles::new(180);
    /// Extra cost when open creates the file (inode + dirent allocation).
    pub const CREATE: Cycles = Cycles::new(1600);
    /// Stat: inode fetch and reply marshalling.
    pub const STAT: Cycles = Cycles::new(80);
    /// Close bookkeeping.
    pub const CLOSE: Cycles = Cycles::new(300);
    /// Extra cost of truncation at close (freeing blocks, §4.5.8).
    pub const TRUNCATE: Cycles = Cycles::new(2500);
    /// Locate an existing extent: table walk plus capability setup
    /// (drives the fragmentation cost of Figure 4).
    pub const LOCATE: Cycles = Cycles::new(700);
    /// Extra cost when a locate appends a fresh extent (bitmap scan).
    pub const ALLOC_EXTENT: Cycles = Cycles::new(4000);
    /// Directory mutation (mkdir/rmdir/link/unlink).
    pub const META_MUT: Cycles = Cycles::new(300);
    /// Directory listing base cost.
    pub const READDIR: Cycles = Cycles::new(80);
    /// Directory listing per-entry cost.
    pub const READDIR_PER_ENTRY: Cycles = Cycles::new(10);
}

/// Maximum directory entries per ReadDir reply page.
pub const READDIR_PAGE: usize = 16;

/// What to pre-populate the filesystem with at boot.
#[derive(Clone, Debug)]
pub struct SetupNode {
    /// Absolute path of the node.
    pub path: String,
    /// Node content.
    pub kind: SetupKind,
}

/// Kind of a [`SetupNode`].
#[derive(Clone, Debug)]
pub enum SetupKind {
    /// An empty directory.
    Dir,
    /// A file with the given content; `blocks_per_extent` forces
    /// fragmentation for the Figure 4 experiment (`None` = natural layout).
    File {
        /// File content bytes.
        content: Vec<u8>,
        /// Forced extent size in blocks.
        blocks_per_extent: Option<u64>,
    },
}

impl SetupNode {
    /// Convenience: a directory node.
    pub fn dir(path: &str) -> SetupNode {
        SetupNode {
            path: path.to_string(),
            kind: SetupKind::Dir,
        }
    }

    /// Convenience: a file node with natural layout.
    pub fn file(path: &str, content: Vec<u8>) -> SetupNode {
        SetupNode {
            path: path.to_string(),
            kind: SetupKind::File {
                content,
                blocks_per_extent: None,
            },
        }
    }

    /// Convenience: a file fragmented into `bpe`-block extents.
    pub fn fragmented_file(path: &str, content: Vec<u8>, bpe: u64) -> SetupNode {
        SetupNode {
            path: path.to_string(),
            kind: SetupKind::File {
                content,
                blocks_per_extent: Some(bpe),
            },
        }
    }
}

struct OpenFile {
    ino: u64,
    writable: bool,
}

#[derive(Default)]
struct Session {
    files: BTreeMap<u64, OpenFile>,
}

struct State {
    core: FsCore,
    sessions: BTreeMap<u64, Session>,
    next_ident: u64,
    next_fd: u64,
}

/// Boots the m3fs service in the given environment: allocates the data
/// region, builds the initial tree, then serves forever.
///
/// Spawn with `spawn_daemon`.
///
/// # Errors
///
/// Fails if the DRAM region cannot be allocated or registration fails.
pub async fn run_m3fs(env: Env, total_blocks: u64, setup: Vec<SetupNode>) -> Result<()> {
    run_m3fs_named(env, "m3fs", total_blocks, setup).await
}

/// Like [`run_m3fs`] with an explicit service name, so several independent
/// filesystem instances can coexist under one kernel (each with its own
/// data region and namespace) and be mounted at different VFS paths.
///
/// # Errors
///
/// Fails if the DRAM region cannot be allocated or registration fails.
pub async fn run_m3fs_named(
    env: Env,
    name: &str,
    total_blocks: u64,
    setup: Vec<SetupNode>,
) -> Result<()> {
    let bs = FS_BLOCK_SIZE as u64;
    let mem = Rc::new(MemGate::alloc(&env, total_blocks * bs, Perm::RW).await?);
    let mut core = FsCore::new(total_blocks, bs);

    // Build the initial tree, writing file contents into the data region.
    let mut gaps = Vec::new();
    for node in setup {
        match node.kind {
            SetupKind::Dir => {
                core.mkdir(&node.path)?;
            }
            SetupKind::File {
                content,
                blocks_per_extent,
            } => {
                let ino = core.create_file(&node.path)?;
                let total = content.len() as u64;
                let mut written = 0u64;
                while written < total {
                    let want = match blocks_per_extent {
                        Some(bpe) => bpe,
                        None => FS_ALLOC_BLOCKS as u64,
                    }
                    .min((total - written).div_ceil(bs));
                    let ext = core.append_extent(ino, want)?;
                    let n = (ext.byte_len(bs)).min(total - written);
                    mem.write(
                        ext.byte_off(bs),
                        &content[written as usize..(written + n) as usize],
                    )
                    .await?;
                    written += n;
                    if blocks_per_extent.is_some() && written < total {
                        // A one-block gap prevents physical merging, forcing
                        // one extent per chunk (Figure 4 methodology).
                        gaps.push(core.alloc_raw(1)?);
                    }
                }
                // Trim the last extent to the used blocks and set the size.
                core.truncate(ino, total)?;
            }
        }
    }
    for (start, count) in gaps {
        core.free_raw(start, count);
    }

    let state = Rc::new(RefCell::new(State {
        core,
        sessions: BTreeMap::new(),
        next_ident: 1,
        next_fd: 1,
    }));

    // The meta channel: one rgate, clients obtain send gates to it.
    let meta_rgate = RecvGate::new(&env, 32, 512).await?;
    let meta_rgate_sel = meta_rgate.sel();
    {
        let env2 = env.clone();
        let state2 = state.clone();
        let mem2 = mem.clone();
        env.sim().spawn_daemon("m3fs-meta", async move {
            meta_loop(env2, state2, mem2, meta_rgate).await;
        });
    }

    serv::serve(
        env.clone(),
        name,
        M3FsHandler {
            state,
            mem,
            meta_rgate_sel,
        },
    )
    .await
}

async fn meta_loop(env: Env, state: Rc<RefCell<State>>, _mem: Rc<MemGate>, rgate: RecvGate) {
    loop {
        let Ok(msg) = rgate.recv().await else { return };
        let ident = msg.header.label;
        env.compute(m3_libos::costs::SERV_DISPATCH).await;
        let (reply, cost, op) = match MetaRequest::from_bytes(&msg.payload) {
            Err(e) => (MetaReply::err(e.code()), Cycles::ZERO, "BadMessage"),
            Ok(req) => {
                let op = req.name();
                let (reply, cost) = handle_meta(&state, ident, req);
                (reply, cost, op)
            }
        };
        let at = env.sim().now();
        env.sim().tracer().record_with(|| Event {
            at,
            dur: cost,
            pe: Some(env.pe()),
            comp: Component::Fs,
            kind: EventKind::FsRequest { op: op.to_string() },
        });
        env.compute(cost).await;
        let _ = rgate.reply(&msg, &reply.to_bytes()).await;
    }
}

fn lookup_cost(path: &str) -> Cycles {
    fscosts::LOOKUP_PER_COMP * FsCore::path_depth(path).max(1)
}

fn handle_meta(state: &Rc<RefCell<State>>, ident: u64, req: MetaRequest) -> (MetaReply, Cycles) {
    let mut st = state.borrow_mut();
    let st = &mut *st;
    match req {
        MetaRequest::Open { path, flags } => {
            let mut cost = fscosts::OPEN + lookup_cost(&path);
            let flags = OpenFlagsCompat(flags);
            let result = (|| -> Result<Vec<u8>> {
                let ino = match st.core.resolve(&path) {
                    Ok(ino) => {
                        if st.core.inode(ino).is_dir() {
                            return Err(Error::new(Code::IsDir).with_msg(path.clone()));
                        }
                        if flags.trunc() {
                            st.core.truncate(ino, 0)?;
                            cost += fscosts::TRUNCATE;
                        }
                        ino
                    }
                    Err(e) if e.code() == Code::NoSuchFile && flags.create() => {
                        cost += fscosts::CREATE;
                        st.core.create_file(&path)?
                    }
                    Err(e) => return Err(e),
                };
                let fd = st.next_fd;
                st.next_fd += 1;
                st.sessions.entry(ident).or_default().files.insert(
                    fd,
                    OpenFile {
                        ino,
                        writable: flags.writable(),
                    },
                );
                let inode = st.core.inode(ino);
                let mut os = OStream::with_capacity(24);
                os.push_u64(fd)
                    .push_u64(inode.size)
                    .push_u32(inode.extents.len() as u32);
                Ok(os.into_bytes())
            })();
            (reply_of(result), cost)
        }
        MetaRequest::Close { fd, size } => {
            let mut cost = fscosts::CLOSE;
            if size != NO_TRUNCATE {
                cost += fscosts::TRUNCATE;
            }
            let result = (|| -> Result<Vec<u8>> {
                let sess = st
                    .sessions
                    .get_mut(&ident)
                    .ok_or_else(|| Error::new(Code::SessClosed))?;
                let file = sess
                    .files
                    .remove(&fd)
                    .ok_or_else(|| Error::new(Code::InvArgs).with_msg("bad fd"))?;
                if size != NO_TRUNCATE && file.writable {
                    st.core.truncate(file.ino, size)?;
                }
                Ok(Vec::new())
            })();
            (reply_of(result), cost)
        }
        MetaRequest::Stat { path } => {
            let cost = fscosts::STAT + lookup_cost(&path);
            let result = st.core.resolve(&path).map(|ino| {
                let inode = st.core.inode(ino);
                let mut os = OStream::with_capacity(24);
                os.push_u64(inode.size)
                    .push_bool(inode.is_dir())
                    .push_u32(inode.extents.len() as u32)
                    .push_u32(inode.links);
                os.into_bytes()
            });
            (reply_of(result), cost)
        }
        MetaRequest::Mkdir { path } => {
            let cost = fscosts::META_MUT + lookup_cost(&path);
            (reply_of(st.core.mkdir(&path).map(|_| Vec::new())), cost)
        }
        MetaRequest::Rmdir { path } => {
            let cost = fscosts::META_MUT + lookup_cost(&path);
            (reply_of(st.core.rmdir(&path).map(|_| Vec::new())), cost)
        }
        MetaRequest::Unlink { path } => {
            let cost = fscosts::META_MUT + lookup_cost(&path);
            (reply_of(st.core.unlink(&path).map(|_| Vec::new())), cost)
        }
        MetaRequest::Link { old, new } => {
            let cost = fscosts::META_MUT + lookup_cost(&old) + lookup_cost(&new);
            (reply_of(st.core.link(&old, &new).map(|_| Vec::new())), cost)
        }
        MetaRequest::Fsck => {
            let report = st.core.check();
            let cost = Cycles::new(60) * report.inodes.max(1);
            let mut os = OStream::with_capacity(24);
            os.push_u32(report.errors.len() as u32)
                .push_u64(report.inodes)
                .push_u64(report.used_blocks);
            (MetaReply::ok_with(os.into_bytes()), cost)
        }
        MetaRequest::ReadDir { path, start } => {
            let result = st.core.read_dir(&path).map(|entries| {
                let page: Vec<_> = entries
                    .iter()
                    .skip(start as usize)
                    .take(READDIR_PAGE)
                    .collect();
                let done = (start as usize + page.len()) >= entries.len();
                let mut os = OStream::with_capacity(256);
                os.push_u32(page.len() as u32);
                for (name, is_dir) in &page {
                    os.push_str(name).push_bool(*is_dir);
                }
                os.push_bool(done);
                os.into_bytes()
            });
            let n = match &result {
                Ok(bytes) => bytes.len() as u64 / 8,
                Err(_) => 0,
            };
            let cost = fscosts::READDIR + lookup_cost(&path) + fscosts::READDIR_PER_ENTRY * n;
            (reply_of(result), cost)
        }
    }
}

fn reply_of(result: Result<Vec<u8>>) -> MetaReply {
    match result {
        Ok(data) => MetaReply::ok_with(data),
        Err(e) => MetaReply::err(e.code()),
    }
}

/// Minimal view of the libos flag bits without a cyclic dependency.
struct OpenFlagsCompat(u32);

impl OpenFlagsCompat {
    fn writable(&self) -> bool {
        self.0 & 0b0010 != 0
    }
    fn create(&self) -> bool {
        self.0 & 0b0100 != 0
    }
    fn trunc(&self) -> bool {
        self.0 & 0b1000 != 0
    }
}

struct M3FsHandler {
    state: Rc<RefCell<State>>,
    mem: Rc<MemGate>,
    meta_rgate_sel: SelId,
}

impl Handler for M3FsHandler {
    fn open(&mut self, _env: &Env, _arg: u64) -> Result<u64> {
        let mut st = self.state.borrow_mut();
        let ident = st.next_ident;
        st.next_ident += 1;
        st.sessions.insert(ident, Session::default());
        Ok(ident)
    }

    async fn exchange(
        &mut self,
        env: &Env,
        ident: u64,
        obtain: bool,
        cap_count: u32,
        args: &[u8],
    ) -> Result<(Vec<SelId>, Vec<u8>)> {
        if !obtain || cap_count < 1 {
            return Err(Error::new(Code::NotSup).with_msg("m3fs only hands out capabilities"));
        }
        let mut is = IStream::new(args);
        match is.pop_u8()? {
            OBTAIN_META_GATE => {
                let sel = env.alloc_sel();
                env.syscall(Syscall::CreateSGate {
                    dst: sel,
                    rgate: self.meta_rgate_sel,
                    label: ident,
                    credits: 1,
                })
                .await?;
                Ok((vec![sel], Vec::new()))
            }
            OBTAIN_LOCATE => {
                let la = LocateArgs::from_stream(&mut is)?;
                let mut cost = fscosts::LOCATE;
                // Resolve the extent under the lock, then perform the
                // capability syscall without holding it.
                let (byte_off, byte_len, file_off, perm) = {
                    let mut st = self.state.borrow_mut();
                    let st = &mut *st;
                    let bs = st.core.block_size();
                    let sess = st
                        .sessions
                        .get(&ident)
                        .ok_or_else(|| Error::new(Code::SessClosed))?;
                    let file = sess
                        .files
                        .get(&la.fd)
                        .ok_or_else(|| Error::new(Code::InvArgs).with_msg("bad fd"))?;
                    let (ino, writable) = (file.ino, file.writable);
                    if la.write && !writable {
                        return Err(Error::new(Code::NoAccess));
                    }
                    let (ext, file_off) = match st.core.extent_at(ino, la.offset) {
                        Ok((e, off, _)) => (e, off),
                        Err(e) if e.code() == Code::InvOffset && la.write => {
                            let allocated = st.core.inode(ino).blocks() * bs;
                            if la.offset != allocated {
                                return Err(
                                    Error::new(Code::InvOffset).with_msg("write beyond allocation")
                                );
                            }
                            let want = if la.want_blocks == 0 {
                                FS_ALLOC_BLOCKS as u64
                            } else {
                                la.want_blocks
                            };
                            cost += fscosts::ALLOC_EXTENT;
                            let ext = st.core.append_extent(ino, want)?;
                            (ext, allocated)
                        }
                        Err(e) => return Err(e),
                    };
                    let perm = if writable { Perm::RW } else { Perm::R };
                    (ext.byte_off(bs), ext.byte_len(bs), file_off, perm)
                };
                env.compute(cost).await;
                let sel = env.alloc_sel();
                env.syscall(Syscall::DeriveMem {
                    dst: sel,
                    src: self.mem.sel(),
                    offset: byte_off,
                    size: byte_len,
                    perm,
                })
                .await?;
                let reply = LocateReply {
                    ext_file_off: file_off,
                    ext_bytes: byte_len,
                };
                Ok((vec![sel], reply.to_bytes()))
            }
            _ => Err(Error::new(Code::InvArgs).with_msg("unknown obtain tag")),
        }
    }

    fn close(&mut self, _env: &Env, ident: u64) {
        self.state.borrow_mut().sessions.remove(&ident);
    }
}
