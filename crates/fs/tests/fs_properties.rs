//! Model-based property tests of the m3fs core: a random operation
//! sequence is applied both to `FsCore` and to a trivially correct
//! reference model; results and invariants must agree at every step.

use std::collections::HashMap;

use proptest::prelude::*;

use m3_base::error::Code;
use m3_fs::FsCore;

#[derive(Clone, Debug)]
enum Op {
    CreateFile(u8),
    Mkdir(u8),
    Append { file: u8, blocks: u8 },
    Truncate { file: u8, bytes: u16 },
    Link { from: u8, to: u8 },
    Unlink(u8),
    Rmdir(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12).prop_map(Op::CreateFile),
        (0u8..6).prop_map(Op::Mkdir),
        ((0u8..12), (1u8..64)).prop_map(|(file, blocks)| Op::Append { file, blocks }),
        ((0u8..12), any::<u16>()).prop_map(|(file, bytes)| Op::Truncate { file, bytes }),
        ((0u8..12), (0u8..12)).prop_map(|(from, to)| Op::Link { from, to }),
        (0u8..12).prop_map(Op::Unlink),
        (0u8..6).prop_map(Op::Rmdir),
    ]
}

/// Reference model: path -> (is_dir, allocated blocks per name-set).
#[derive(Default)]
struct Model {
    /// file name -> inode key
    names: HashMap<String, usize>,
    /// inode key -> (links, blocks)
    inodes: HashMap<usize, (u32, u64)>,
    dirs: HashMap<String, ()>,
    next: usize,
}

impl Model {
    fn live_blocks(&self) -> u64 {
        self.inodes.values().map(|&(_, b)| b).sum()
    }
}

fn fpath(i: u8) -> String {
    format!("/f{i}")
}

fn dpath(i: u8) -> String {
    format!("/d{i}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn fs_core_agrees_with_reference_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let total_blocks = 4096u64;
        let mut fs = FsCore::new(total_blocks, 1024);
        let mut model = Model::default();
        let mut inos: HashMap<String, u64> = HashMap::new();

        for op in ops {
            match op {
                Op::CreateFile(i) => {
                    let path = fpath(i);
                    let real = fs.create_file(&path);
                    if model.names.contains_key(&path) || model.dirs.contains_key(&path) {
                        prop_assert_eq!(real.unwrap_err().code(), Code::Exists);
                    } else {
                        let ino = real.unwrap();
                        inos.insert(path.clone(), ino);
                        let key = model.next;
                        model.next += 1;
                        model.names.insert(path, key);
                        model.inodes.insert(key, (1, 0));
                    }
                }
                Op::Mkdir(i) => {
                    let path = dpath(i);
                    let real = fs.mkdir(&path);
                    if model.dirs.contains_key(&path) || model.names.contains_key(&path) {
                        prop_assert_eq!(real.unwrap_err().code(), Code::Exists);
                    } else {
                        prop_assert!(real.is_ok());
                        model.dirs.insert(path, ());
                    }
                }
                Op::Append { file, blocks } => {
                    let path = fpath(file);
                    if let Some(&key) = model.names.get(&path) {
                        let ino = inos[&path];
                        match fs.append_extent(ino, blocks as u64) {
                            Ok(ext) => {
                                prop_assert!(ext.blocks >= 1 && ext.blocks <= blocks as u64);
                                model.inodes.get_mut(&key).unwrap().1 += ext.blocks;
                            }
                            Err(e) => prop_assert_eq!(e.code(), Code::NoSpace),
                        }
                    }
                }
                Op::Truncate { file, bytes } => {
                    let path = fpath(file);
                    if let Some(&key) = model.names.get(&path) {
                        let ino = inos[&path];
                        let allocated = model.inodes[&key].1;
                        let new_blocks = (bytes as u64).div_ceil(1024);
                        let real = fs.truncate(ino, bytes as u64);
                        if new_blocks > allocated {
                            prop_assert_eq!(real.unwrap_err().code(), Code::InvArgs);
                        } else {
                            prop_assert!(real.is_ok());
                            model.inodes.get_mut(&key).unwrap().1 = new_blocks;
                            prop_assert_eq!(fs.inode(ino).size, bytes as u64);
                        }
                    }
                }
                Op::Link { from, to } => {
                    let (fp, tp) = (fpath(from), fpath(to));
                    let real = fs.link(&fp, &tp);
                    match (model.names.get(&fp).copied(), model.names.contains_key(&tp)) {
                        (Some(key), false) if fp != tp => {
                            prop_assert!(real.is_ok());
                            model.names.insert(tp.clone(), key);
                            model.inodes.get_mut(&key).unwrap().0 += 1;
                            inos.insert(tp, inos[&fp]);
                        }
                        (Some(_), _) => {
                            prop_assert_eq!(real.unwrap_err().code(), Code::Exists);
                        }
                        (None, _) => {
                            prop_assert_eq!(real.unwrap_err().code(), Code::NoSuchFile);
                        }
                    }
                }
                Op::Unlink(i) => {
                    let path = fpath(i);
                    let real = fs.unlink(&path);
                    if let Some(key) = model.names.remove(&path) {
                        prop_assert!(real.is_ok());
                        inos.remove(&path);
                        let entry = model.inodes.get_mut(&key).unwrap();
                        entry.0 -= 1;
                        if entry.0 == 0 {
                            model.inodes.remove(&key);
                        }
                    } else {
                        prop_assert_eq!(real.unwrap_err().code(), Code::NoSuchFile);
                    }
                }
                Op::Rmdir(i) => {
                    let path = dpath(i);
                    let real = fs.rmdir(&path);
                    // All our dirs stay empty (files live in the root), so
                    // removal succeeds iff the dir exists.
                    if model.dirs.remove(&path).is_some() {
                        prop_assert!(real.is_ok());
                    } else {
                        prop_assert!(real.is_err());
                    }
                }
            }

            // Invariant: the bitmap accounts exactly for the live blocks.
            prop_assert_eq!(
                fs.free_blocks(),
                total_blocks - model.live_blocks(),
                "block accounting diverged"
            );
        }

        // Final teardown: unlinking everything returns every block.
        let names: Vec<String> = model.names.keys().cloned().collect();
        for path in names {
            if model.names.remove(&path).is_some() {
                fs.unlink(&path).unwrap();
            }
        }
        prop_assert_eq!(fs.free_blocks(), total_blocks);
    }

    #[test]
    fn extent_at_is_consistent_with_appends(
        appends in proptest::collection::vec(1u64..64, 1..20),
        probe in any::<u64>(),
    ) {
        let mut fs = FsCore::new(8192, 1024);
        let ino = fs.create_file("/f").unwrap();
        let mut total_blocks = 0u64;
        for want in appends {
            let ext = fs.append_extent(ino, want).unwrap();
            total_blocks += ext.blocks;
        }
        let total_bytes = total_blocks * 1024;
        let probe = probe % (total_bytes + 1024);
        let result = fs.extent_at(ino, probe);
        if probe < total_bytes {
            let (ext, file_off, _) = result.unwrap();
            prop_assert!(file_off <= probe);
            prop_assert!(probe < file_off + ext.blocks * 1024);
        } else {
            prop_assert_eq!(result.unwrap_err().code(), Code::InvOffset);
        }
    }
}
