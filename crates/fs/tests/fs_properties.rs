//! Model-based randomized tests of the m3fs core: a random operation
//! sequence is applied both to `FsCore` and to a trivially correct
//! reference model; results and invariants must agree at every step.
//!
//! Sequences are generated from fixed seeds with the in-tree deterministic
//! [`m3_base::rand::Rng`], so the suite is hermetic and reproducible.

use std::collections::BTreeMap;

use m3_base::error::Code;
use m3_base::rand::Rng;
use m3_fs::FsCore;

#[derive(Clone, Debug)]
enum Op {
    CreateFile(u8),
    Mkdir(u8),
    Append { file: u8, blocks: u8 },
    Truncate { file: u8, bytes: u16 },
    Link { from: u8, to: u8 },
    Unlink(u8),
    Rmdir(u8),
}

fn random_op(rng: &mut Rng) -> Op {
    match rng.next_below(7) {
        0 => Op::CreateFile(rng.next_below(12) as u8),
        1 => Op::Mkdir(rng.next_below(6) as u8),
        2 => Op::Append {
            file: rng.next_below(12) as u8,
            blocks: rng.next_range(1, 63) as u8,
        },
        3 => Op::Truncate {
            file: rng.next_below(12) as u8,
            bytes: rng.next_u64() as u16,
        },
        4 => Op::Link {
            from: rng.next_below(12) as u8,
            to: rng.next_below(12) as u8,
        },
        5 => Op::Unlink(rng.next_below(12) as u8),
        _ => Op::Rmdir(rng.next_below(6) as u8),
    }
}

/// Reference model: path -> (is_dir, allocated blocks per name-set).
#[derive(Default)]
struct Model {
    /// file name -> inode key
    names: BTreeMap<String, usize>,
    /// inode key -> (links, blocks)
    inodes: BTreeMap<usize, (u32, u64)>,
    dirs: BTreeMap<String, ()>,
    next: usize,
}

impl Model {
    fn live_blocks(&self) -> u64 {
        self.inodes.values().map(|&(_, b)| b).sum()
    }
}

fn fpath(i: u8) -> String {
    format!("/f{i}")
}

fn dpath(i: u8) -> String {
    format!("/d{i}")
}

#[test]
fn fs_core_agrees_with_reference_model() {
    let mut rng = Rng::new(0x4d33_f500);
    for _ in 0..64 {
        let total_blocks = 4096u64;
        let mut fs = FsCore::new(total_blocks, 1024);
        let mut model = Model::default();
        let mut inos: BTreeMap<String, u64> = BTreeMap::new();

        let op_count = rng.next_range(1, 119);
        for _ in 0..op_count {
            match random_op(&mut rng) {
                Op::CreateFile(i) => {
                    let path = fpath(i);
                    let real = fs.create_file(&path);
                    if model.names.contains_key(&path) || model.dirs.contains_key(&path) {
                        assert_eq!(real.unwrap_err().code(), Code::Exists);
                    } else {
                        let ino = real.unwrap();
                        inos.insert(path.clone(), ino);
                        let key = model.next;
                        model.next += 1;
                        model.names.insert(path, key);
                        model.inodes.insert(key, (1, 0));
                    }
                }
                Op::Mkdir(i) => {
                    let path = dpath(i);
                    let real = fs.mkdir(&path);
                    if model.dirs.contains_key(&path) || model.names.contains_key(&path) {
                        assert_eq!(real.unwrap_err().code(), Code::Exists);
                    } else {
                        assert!(real.is_ok());
                        model.dirs.insert(path, ());
                    }
                }
                Op::Append { file, blocks } => {
                    let path = fpath(file);
                    if let Some(&key) = model.names.get(&path) {
                        let ino = inos[&path];
                        match fs.append_extent(ino, blocks as u64) {
                            Ok(ext) => {
                                assert!(ext.blocks >= 1 && ext.blocks <= blocks as u64);
                                model.inodes.get_mut(&key).unwrap().1 += ext.blocks;
                            }
                            Err(e) => assert_eq!(e.code(), Code::NoSpace),
                        }
                    }
                }
                Op::Truncate { file, bytes } => {
                    let path = fpath(file);
                    if let Some(&key) = model.names.get(&path) {
                        let ino = inos[&path];
                        let allocated = model.inodes[&key].1;
                        let new_blocks = (bytes as u64).div_ceil(1024);
                        let real = fs.truncate(ino, bytes as u64);
                        if new_blocks > allocated {
                            assert_eq!(real.unwrap_err().code(), Code::InvArgs);
                        } else {
                            assert!(real.is_ok());
                            model.inodes.get_mut(&key).unwrap().1 = new_blocks;
                            assert_eq!(fs.inode(ino).size, bytes as u64);
                        }
                    }
                }
                Op::Link { from, to } => {
                    let (fp, tp) = (fpath(from), fpath(to));
                    let real = fs.link(&fp, &tp);
                    match (model.names.get(&fp).copied(), model.names.contains_key(&tp)) {
                        (Some(key), false) if fp != tp => {
                            assert!(real.is_ok());
                            model.names.insert(tp.clone(), key);
                            model.inodes.get_mut(&key).unwrap().0 += 1;
                            inos.insert(tp, inos[&fp]);
                        }
                        (Some(_), _) => {
                            assert_eq!(real.unwrap_err().code(), Code::Exists);
                        }
                        (None, _) => {
                            assert_eq!(real.unwrap_err().code(), Code::NoSuchFile);
                        }
                    }
                }
                Op::Unlink(i) => {
                    let path = fpath(i);
                    let real = fs.unlink(&path);
                    if let Some(key) = model.names.remove(&path) {
                        assert!(real.is_ok());
                        inos.remove(&path);
                        let entry = model.inodes.get_mut(&key).unwrap();
                        entry.0 -= 1;
                        if entry.0 == 0 {
                            model.inodes.remove(&key);
                        }
                    } else {
                        assert_eq!(real.unwrap_err().code(), Code::NoSuchFile);
                    }
                }
                Op::Rmdir(i) => {
                    let path = dpath(i);
                    let real = fs.rmdir(&path);
                    // All our dirs stay empty (files live in the root), so
                    // removal succeeds iff the dir exists.
                    if model.dirs.remove(&path).is_some() {
                        assert!(real.is_ok());
                    } else {
                        assert!(real.is_err());
                    }
                }
            }

            // Invariant: the bitmap accounts exactly for the live blocks.
            assert_eq!(
                fs.free_blocks(),
                total_blocks - model.live_blocks(),
                "block accounting diverged"
            );
        }

        // Final teardown: unlinking everything returns every block.
        let names: Vec<String> = model.names.keys().cloned().collect();
        for path in names {
            if model.names.remove(&path).is_some() {
                fs.unlink(&path).unwrap();
            }
        }
        assert_eq!(fs.free_blocks(), total_blocks);
    }
}

#[test]
fn extent_at_is_consistent_with_appends() {
    let mut rng = Rng::new(0x4d33_f501);
    for _ in 0..128 {
        let mut fs = FsCore::new(8192, 1024);
        let ino = fs.create_file("/f").unwrap();
        let mut total_blocks = 0u64;
        let appends = rng.next_range(1, 19);
        for _ in 0..appends {
            let want = rng.next_range(1, 63);
            let ext = fs.append_extent(ino, want).unwrap();
            total_blocks += ext.blocks;
        }
        let total_bytes = total_blocks * 1024;
        let probe = rng.next_u64() % (total_bytes + 1024);
        let result = fs.extent_at(ino, probe);
        if probe < total_bytes {
            let (ext, file_off, _) = result.unwrap();
            assert!(file_off <= probe);
            assert!(probe < file_off + ext.blocks * 1024);
        } else {
            assert_eq!(result.unwrap_err().code(), Code::InvOffset);
        }
    }
}
