//! End-to-end m3fs tests: kernel + service + client over DTU messages.

use m3_base::error::Code;
use m3_base::{Cycles, PeId};
use m3_fs::{mount_m3fs, run_m3fs, SetupNode};
use m3_kernel::Kernel;
use m3_libos::vfs::{self, OpenFlags, SeekMode};
use m3_libos::{start_program, Env, ProgramRegistry};
use m3_platform::{Platform, PlatformConfig};

/// Boots platform + kernel + m3fs (with the given tree) and runs `f` as a
/// client program; returns its exit code.
fn with_fs<F, Fut>(setup: Vec<SetupNode>, f: F) -> i64
where
    F: FnOnce(Env) -> Fut + 'static,
    Fut: std::future::Future<Output = i64> + 'static,
{
    let platform = Platform::new(PlatformConfig::xtensa(4));
    let kernel = Kernel::start(&platform, PeId::new(0));
    let reg = ProgramRegistry::new();

    let info = kernel.create_root("m3fs", None).unwrap();
    let fs_env = Env::new(&kernel, &info, reg.clone());
    platform.sim().spawn_daemon("m3fs", async move {
        run_m3fs(fs_env, 8192, setup).await.unwrap();
    });

    let h = start_program(&kernel, "client", None, reg, f);
    platform.sim().run();
    platform.sim().settle(Cycles::new(100_000));
    h.try_take().expect("client did not finish")
}

#[test]
fn write_then_read_roundtrip() {
    let code = with_fs(Vec::new(), |env| async move {
        mount_m3fs(&env).await.unwrap();
        let data: Vec<u8> = (0..100_000u64).map(|i| (i % 251) as u8).collect();
        vfs::write_all(&env, "/data.bin", &data).await.unwrap();
        let back = vfs::read_to_vec(&env, "/data.bin").await.unwrap();
        assert_eq!(back.len(), data.len());
        assert_eq!(back, data);
        0
    });
    assert_eq!(code, 0);
}

#[test]
fn preloaded_files_are_readable() {
    let content = vec![0x42u8; 10_000];
    let expected = content.clone();
    let setup = vec![
        SetupNode::dir("/etc"),
        SetupNode::file("/etc/config", content),
    ];
    let code = with_fs(setup, move |env| async move {
        mount_m3fs(&env).await.unwrap();
        let back = vfs::read_to_vec(&env, "/etc/config").await.unwrap();
        assert_eq!(back, expected);
        0
    });
    assert_eq!(code, 0);
}

#[test]
fn stat_mkdir_link_unlink() {
    let code = with_fs(Vec::new(), |env| async move {
        mount_m3fs(&env).await.unwrap();
        vfs::mkdir(&env, "/dir").await.unwrap();
        vfs::write_all(&env, "/dir/a", &[1, 2, 3]).await.unwrap();

        let info = vfs::stat(&env, "/dir/a").await.unwrap();
        assert_eq!(info.size, 3);
        assert!(!info.is_dir);
        assert_eq!(info.links, 1);
        assert_eq!(info.extents, 1);

        let dinfo = vfs::stat(&env, "/dir").await.unwrap();
        assert!(dinfo.is_dir);

        vfs::link(&env, "/dir/a", "/dir/b").await.unwrap();
        assert_eq!(vfs::stat(&env, "/dir/b").await.unwrap().links, 2);

        vfs::unlink(&env, "/dir/a").await.unwrap();
        assert_eq!(
            vfs::stat(&env, "/dir/a").await.unwrap_err().code(),
            Code::NoSuchFile
        );
        let back = vfs::read_to_vec(&env, "/dir/b").await.unwrap();
        assert_eq!(back, vec![1, 2, 3]);

        vfs::unlink(&env, "/dir/b").await.unwrap();
        vfs::rmdir(&env, "/dir").await.unwrap();
        assert_eq!(
            vfs::stat(&env, "/dir").await.unwrap_err().code(),
            Code::NoSuchFile
        );
        0
    });
    assert_eq!(code, 0);
}

#[test]
fn read_dir_lists_tree() {
    let setup = vec![
        SetupNode::dir("/d"),
        SetupNode::file("/d/one", vec![1]),
        SetupNode::file("/d/two", vec![2]),
        SetupNode::dir("/d/sub"),
    ];
    let code = with_fs(setup, |env| async move {
        mount_m3fs(&env).await.unwrap();
        let mut entries = vfs::read_dir(&env, "/d").await.unwrap();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        let names: Vec<(&str, bool)> = entries
            .iter()
            .map(|e| (e.name.as_str(), e.is_dir))
            .collect();
        assert_eq!(names, vec![("one", false), ("sub", true), ("two", false)]);
        0
    });
    assert_eq!(code, 0);
}

#[test]
fn seek_and_partial_reads() {
    let content: Vec<u8> = (0..8192u64).map(|i| (i % 256) as u8).collect();
    let code = with_fs(
        vec![SetupNode::file("/f", content.clone())],
        move |env| async move {
            mount_m3fs(&env).await.unwrap();
            let mut file = vfs::open(&env, "/f", OpenFlags::R).await.unwrap();
            // Seek to the middle and read 16 bytes.
            let pos = file.seek(4096, SeekMode::Set).await.unwrap();
            assert_eq!(pos, 4096);
            let mut buf = [0u8; 16];
            assert_eq!(file.read(&mut buf).await.unwrap(), 16);
            assert_eq!(&buf[..], &content[4096..4112]);
            // Seek relative to the end.
            let pos = file.seek(-4, SeekMode::End).await.unwrap();
            assert_eq!(pos, 8188);
            assert_eq!(file.read(&mut buf).await.unwrap(), 4);
            assert_eq!(&buf[..4], &content[8188..]);
            // EOF.
            assert_eq!(file.read(&mut buf).await.unwrap(), 0);
            file.close().await.unwrap();
            0
        },
    );
    assert_eq!(code, 0);
}

#[test]
fn fragmented_file_has_many_extents() {
    let content = vec![7u8; 64 * 1024]; // 64 blocks of 1 KiB
    let setup = vec![SetupNode::fragmented_file("/frag", content.clone(), 16)];
    let code = with_fs(setup, move |env| async move {
        mount_m3fs(&env).await.unwrap();
        let info = vfs::stat(&env, "/frag").await.unwrap();
        assert_eq!(info.extents, 4, "64 blocks at 16 per extent");
        let back = vfs::read_to_vec(&env, "/frag").await.unwrap();
        assert_eq!(back, content);
        0
    });
    assert_eq!(code, 0);
}

#[test]
fn write_without_permission_fails() {
    let setup = vec![SetupNode::file("/ro", vec![1, 2, 3])];
    let code = with_fs(setup, |env| async move {
        mount_m3fs(&env).await.unwrap();
        let mut file = vfs::open(&env, "/ro", OpenFlags::R).await.unwrap();
        let err = file.write(&[9]).await.unwrap_err();
        assert_eq!(err.code(), Code::NoAccess);
        file.close().await.unwrap();
        0
    });
    assert_eq!(code, 0);
}

#[test]
fn open_missing_without_create_fails() {
    let code = with_fs(Vec::new(), |env| async move {
        mount_m3fs(&env).await.unwrap();
        let err = vfs::open(&env, "/missing", OpenFlags::R)
            .await
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.code(), Code::NoSuchFile);
        0
    });
    assert_eq!(code, 0);
}

#[test]
fn truncate_on_close_limits_fragmentation_waste() {
    let code = with_fs(Vec::new(), |env| async move {
        mount_m3fs(&env).await.unwrap();
        // Write 3000 bytes: the append allocated 256 blocks, close truncates
        // to 3 (§4.5.8).
        vfs::write_all(&env, "/small", &[9u8; 3000]).await.unwrap();
        let info = vfs::stat(&env, "/small").await.unwrap();
        assert_eq!(info.size, 3000);
        assert_eq!(info.extents, 1);
        let back = vfs::read_to_vec(&env, "/small").await.unwrap();
        assert_eq!(back.len(), 3000);
        0
    });
    assert_eq!(code, 0);
}

#[test]
fn large_file_spans_multiple_append_chunks() {
    let code = with_fs(Vec::new(), |env| async move {
        mount_m3fs(&env).await.unwrap();
        // 600 KiB > 2 x 256 KiB append chunks.
        let data: Vec<u8> = (0..600 * 1024u64).map(|i| (i / 1024) as u8).collect();
        vfs::write_all(&env, "/big", &data).await.unwrap();
        let back = vfs::read_to_vec(&env, "/big").await.unwrap();
        assert_eq!(back, data);
        // Adjacent 256-block chunks merge into one extent on an empty fs.
        let info = vfs::stat(&env, "/big").await.unwrap();
        assert_eq!(info.extents, 1);
        0
    });
    assert_eq!(code, 0);
}

#[test]
fn two_clients_share_the_filesystem() {
    let platform = Platform::new(PlatformConfig::xtensa(5));
    let kernel = Kernel::start(&platform, PeId::new(0));
    let reg = ProgramRegistry::new();

    let info = kernel.create_root("m3fs", None).unwrap();
    let fs_env = Env::new(&kernel, &info, reg.clone());
    platform.sim().spawn_daemon("m3fs", async move {
        run_m3fs(fs_env, 8192, Vec::new()).await.unwrap();
    });

    let writer = start_program(&kernel, "writer", None, reg.clone(), |env| async move {
        mount_m3fs(&env).await.unwrap();
        vfs::write_all(&env, "/shared", b"hello from writer")
            .await
            .unwrap();
        0
    });
    platform.sim().run();
    platform.sim().settle(Cycles::new(100_000));
    assert_eq!(writer.try_take().unwrap(), 0);

    let reader = start_program(&kernel, "reader", None, reg, |env| async move {
        mount_m3fs(&env).await.unwrap();
        let data = vfs::read_to_vec(&env, "/shared").await.unwrap();
        assert_eq!(data, b"hello from writer");
        0
    });
    platform.sim().run();
    assert_eq!(reader.try_take().unwrap(), 0);
}

#[test]
fn filesystem_stays_consistent_under_workload() {
    // A mixed workload, then a protocol-level fsck: the on-"disk" state
    // must satisfy every classical invariant.
    let code = with_fs(Vec::new(), |env| async move {
        let fs = m3_fs::M3FsFileSystem::connect(&env).await.unwrap();
        let mounted = m3_fs::M3FsFileSystem::connect(&env).await.unwrap();
        env.vfs().borrow_mut().mount("/", std::rc::Rc::new(mounted));
        vfs::mkdir(&env, "/w").await.unwrap();
        for i in 0..6u64 {
            let data = vec![i as u8; (i as usize + 1) * 3000];
            vfs::write_all(&env, &format!("/w/f{i}"), &data)
                .await
                .unwrap();
        }
        vfs::link(&env, "/w/f1", "/w/f1-link").await.unwrap();
        vfs::unlink(&env, "/w/f0").await.unwrap();
        vfs::write_all(&env, "/w/f2", &[9u8; 100]).await.unwrap(); // rewrite

        let (errors, inodes, used) = fs.fsck(&env).await.unwrap();
        assert_eq!(errors, 0, "fsck must be clean");
        assert!(inodes >= 7, "root + /w + 5 files: {inodes}");
        assert!(used > 0);
        0
    });
    assert_eq!(code, 0);
}

#[test]
fn two_filesystem_instances_mounted_at_different_paths() {
    // The VFS with two *real* m3fs instances: "/" and "/scratch" are
    // separate services with separate namespaces and data regions.
    let platform = Platform::new(PlatformConfig::xtensa(5));
    let kernel = Kernel::start(&platform, PeId::new(0));
    let reg = ProgramRegistry::new();
    for name in ["m3fs", "scratchfs"] {
        let info = kernel.create_root(name, None).unwrap();
        let env = Env::new(&kernel, &info, reg.clone());
        let name = name.to_string();
        platform.sim().spawn_daemon(name.clone(), async move {
            m3_fs::run_m3fs_named(env, &name, 2048, Vec::new())
                .await
                .unwrap();
        });
    }
    let h = start_program(&kernel, "client", None, reg, |env| async move {
        mount_m3fs(&env).await.unwrap();
        m3_fs::mount_m3fs_at(&env, "scratchfs", "/scratch")
            .await
            .unwrap();
        assert_eq!(env.vfs().borrow().mount_count(), 2);

        vfs::write_all(&env, "/persistent", b"root fs")
            .await
            .unwrap();
        vfs::write_all(&env, "/scratch/tmp", b"scratch fs")
            .await
            .unwrap();

        // Namespaces are disjoint: the file names do not leak across.
        assert_eq!(
            vfs::stat(&env, "/tmp").await.unwrap_err().code(),
            Code::NoSuchFile
        );
        assert_eq!(
            vfs::stat(&env, "/scratch/persistent")
                .await
                .unwrap_err()
                .code(),
            Code::NoSuchFile
        );
        // Cross-mount hard links are refused by the VFS.
        assert_eq!(
            vfs::link(&env, "/persistent", "/scratch/link")
                .await
                .unwrap_err()
                .code(),
            Code::NotSup
        );
        let a = vfs::read_to_vec(&env, "/persistent").await.unwrap();
        let b = vfs::read_to_vec(&env, "/scratch/tmp").await.unwrap();
        assert_eq!(a, b"root fs");
        assert_eq!(b, b"scratch fs");
        0
    });
    platform.sim().run();
    platform.sim().settle(Cycles::new(100_000));
    assert_eq!(h.try_take().unwrap(), 0);
}
