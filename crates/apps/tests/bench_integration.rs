//! End-to-end runs of every §5.6/§5.8 benchmark on both systems, checking
//! that the workloads produce *correct output*, not just cycle counts.

use m3::{System, SystemConfig};
use m3_apps::{fft, lxapp, m3app, sqlwork, tarfmt, trace, workload};
use m3_fs::{mount_m3fs, SetupNode};
use m3_libos::vfs;
use m3_lx::{LxConfig, LxMachine};
use m3_sim::Sim;

fn m3_system(setup: Vec<SetupNode>, pes: usize) -> System {
    System::boot(SystemConfig {
        pes,
        fs_blocks: 16 * 1024,
        fs_setup: setup,
        ..SystemConfig::default()
    })
}

#[test]
fn m3_cat_tr_translates_the_file() {
    let spec = workload::cat_tr_input(11);
    let expected: Vec<u8> = spec.files[0]
        .1
        .iter()
        .map(|&b| if b == b'a' { b'b' } else { b })
        .collect();
    let sys = m3_system(spec.to_setup(), 6);
    let h = sys.run_program("cat_tr", |env| async move {
        mount_m3fs(&env).await.unwrap();
        m3app::cat_tr(&env, "/input.txt", "/output.txt")
            .await
            .unwrap() as i64
    });
    sys.run();
    assert_eq!(h.try_take().unwrap(), 64 * 1024);
    // Verify the content with a second program.
    let h2 = sys.run_program("verify", move |env| async move {
        mount_m3fs(&env).await.unwrap();
        let out = vfs::read_to_vec(&env, "/output.txt").await.unwrap();
        assert_eq!(out, expected);
        assert!(!out.contains(&b'a'));
        0
    });
    sys.run();
    assert_eq!(h2.try_take().unwrap(), 0);
}

#[test]
fn lx_cat_tr_translates_the_file() {
    let spec = workload::cat_tr_input(11);
    let sim = Sim::new();
    let machine = LxMachine::new(&sim, LxConfig::xtensa());
    spec.preload_lx(&machine);
    let (_, h) = machine.spawn_proc("cat_tr", |p| async move {
        lxapp::cat_tr(&p, "/input.txt", "/output.txt")
            .await
            .unwrap() as i64
    });
    sim.run();
    assert_eq!(h.try_take().unwrap(), 64 * 1024);
    let fs = machine.fs().borrow();
    let ino = fs.resolve("/output.txt").unwrap();
    let out = fs.read(ino, 0, 64 * 1024).unwrap();
    assert!(!out.contains(&b'a'));
    assert!(out.contains(&b'b'));
}

#[test]
fn m3_tar_untar_roundtrip() {
    let spec = workload::tar_input(22);
    let mut setup = spec.to_setup();
    setup.push(SetupNode::dir("/out"));
    let sys = m3_system(setup, 6);
    let spec2 = spec.clone();
    let h = sys.run_program("tar", move |env| async move {
        mount_m3fs(&env).await.unwrap();
        let archived = m3app::tar_create(&env, "/src", "/archive.tar")
            .await
            .unwrap();
        assert!(archived > spec2.total_bytes());
        let extracted = m3app::tar_extract(&env, "/archive.tar", "/out")
            .await
            .unwrap();
        assert_eq!(extracted, spec2.total_bytes());
        // Every file must match the original bytes.
        for (path, content) in &spec2.files {
            let name = path.rsplit('/').next().unwrap();
            let out = vfs::read_to_vec(&env, &format!("/out/{name}"))
                .await
                .unwrap();
            assert_eq!(&out, content, "mismatch for {name}");
        }
        0
    });
    sys.run();
    assert_eq!(h.try_take().unwrap(), 0);
}

#[test]
fn lx_tar_untar_roundtrip() {
    let spec = workload::tar_input(22);
    let sim = Sim::new();
    let machine = LxMachine::new(&sim, LxConfig::xtensa());
    spec.preload_lx(&machine);
    {
        machine.fs().borrow_mut().mkdir("/out").unwrap();
    }
    let spec2 = spec.clone();
    let (_, h) = machine.spawn_proc("tar", move |p| async move {
        lxapp::tar_create(&p, "/src", "/archive.tar").await.unwrap();
        let extracted = lxapp::tar_extract(&p, "/archive.tar", "/out")
            .await
            .unwrap();
        assert_eq!(extracted, spec2.total_bytes());
        0
    });
    sim.run();
    assert_eq!(h.try_take().unwrap(), 0);
    let fs = machine.fs().borrow();
    for (path, content) in &spec.files {
        let name = path.rsplit('/').next().unwrap();
        let ino = fs.resolve(&format!("/out/{name}")).unwrap();
        assert_eq!(fs.size(ino), content.len() as u64);
        assert_eq!(&fs.read(ino, 0, content.len()).unwrap(), content);
    }
}

#[test]
fn find_results_agree_between_systems() {
    let spec = workload::find_tree(33);

    // M3.
    let sys = m3_system(spec.to_setup(), 6);
    let h = sys.run_program("find", |env| async move {
        mount_m3fs(&env).await.unwrap();
        let found = m3app::find(&env, "/", "log").await.unwrap();
        found.len() as i64
    });
    sys.run();
    let m3_count = h.try_take().unwrap();

    // Linux.
    let sim = Sim::new();
    let machine = LxMachine::new(&sim, LxConfig::xtensa());
    spec.preload_lx(&machine);
    let (_, h) = machine.spawn_proc("find", |p| async move {
        lxapp::find(&p, "/", "log").await.unwrap().len() as i64
    });
    sim.run();
    let lx_count = h.try_take().unwrap();

    assert_eq!(m3_count, lx_count);
    assert!(m3_count >= 3);
}

#[test]
fn sqlite_returns_all_rows_on_both_systems() {
    let sys = m3_system(Vec::new(), 6);
    let h = sys.run_program("sqlite", |env| async move {
        mount_m3fs(&env).await.unwrap();
        m3app::sqlite(&env, "/test.db").await.unwrap() as i64
    });
    sys.run();
    assert_eq!(h.try_take().unwrap(), 8);

    let sim = Sim::new();
    let machine = LxMachine::new(&sim, LxConfig::xtensa());
    let (_, h) = machine.spawn_proc("sqlite", |p| async move {
        lxapp::sqlite(&p, "/test.db").await.unwrap() as i64
    });
    sim.run();
    assert_eq!(h.try_take().unwrap(), 8);
}

#[test]
fn fft_pipeline_software_and_accel_produce_identical_spectra() {
    // Software run.
    let mut setup = vec![
        SetupNode::dir("/bin"),
        SetupNode::file("/bin/fft", vec![0x7f; 16 * 1024]),
    ];
    setup.push(SetupNode::dir("/res"));
    let sys = System::boot(SystemConfig {
        pes: 6,
        accel_pes: 1,
        fs_blocks: 16 * 1024,
        fs_setup: setup,
        ..SystemConfig::default()
    });
    m3app::register_fft_program(sys.registry());
    let h = sys.run_program("fft-sw", |env| async move {
        m3_fs::mount_m3fs(&env).await.unwrap();
        m3app::fft_pipeline(&env, None, "/res/sw.bin")
            .await
            .unwrap();
        m3app::fft_pipeline(&env, Some(m3_platform::PeType::FftAccel), "/res/accel.bin")
            .await
            .unwrap();
        0
    });
    sys.run();
    assert_eq!(h.try_take().unwrap(), 0);

    let h2 = sys.run_program("verify", |env| async move {
        m3_fs::mount_m3fs(&env).await.unwrap();
        let sw = vfs::read_to_vec(&env, "/res/sw.bin").await.unwrap();
        let accel = vfs::read_to_vec(&env, "/res/accel.bin").await.unwrap();
        assert_eq!(sw.len(), 32 * 1024);
        assert_eq!(sw, accel, "accelerator must compute the same spectrum");
        // Spot-check against a locally computed FFT.
        let (mut re, mut im) = fft::gen_samples(fft::FIG7_POINTS, 0x5eed);
        fft::fft_in_place(&mut re, &mut im);
        let expect = fft::pack(&re, &im);
        assert_eq!(sw, expect);
        0
    });
    sys.run();
    assert_eq!(h2.try_take().unwrap(), 0);
}

#[test]
fn lx_fft_pipeline_produces_the_spectrum() {
    let sim = Sim::new();
    let machine = LxMachine::new(&sim, LxConfig::xtensa());
    // /bin/fft must exist for exec.
    {
        let mut fs = machine.fs().borrow_mut();
        let ino = fs.create("/bin_fft").unwrap();
        fs.write(ino, 0, &vec![0x7f; 16 * 1024]).unwrap();
    }
    // exec_load looks the path up literally; use the flat name.
    let (_, h) = machine.spawn_proc("fft", |p| async move {
        // Redirect the binary path by linking it where lxapp expects it.
        p.link("/bin_fft", "/bin/fft").await.err(); // "/bin" missing: create
        p.mkdir("/bin").await.unwrap();
        p.link("/bin_fft", "/bin/fft").await.unwrap();
        lxapp::fft_pipeline(&p, "/result.bin").await.unwrap();
        0
    });
    sim.run();
    assert_eq!(h.try_take().unwrap(), 0);
    let fs = machine.fs().borrow();
    let ino = fs.resolve("/result.bin").unwrap();
    let out = fs.read(ino, 0, 64 * 1024).unwrap();
    let (mut re, mut im) = fft::gen_samples(fft::FIG7_POINTS, 0x5eed);
    fft::fft_in_place(&mut re, &mut im);
    assert_eq!(out, fft::pack(&re, &im));
}

#[test]
fn trace_replay_runs_on_m3() {
    let spec = workload::cat_tr_input(5);
    let sys = m3_system(spec.to_setup(), 6);
    let h = sys.run_program("replay", |env| async move {
        mount_m3fs(&env).await.unwrap();
        let mut ops = trace::file_read_trace("/input.txt", 64 * 1024, 4096);
        ops.extend(trace::file_write_trace("/copy.txt", 64 * 1024, 4096));
        ops.push(trace::TraceOp::Stat {
            path: "/copy.txt".to_string(),
        });
        ops.push(trace::TraceOp::Wait { cycles: 10_000 });
        trace::replay_m3(&env, &ops).await.unwrap();
        vfs::stat(&env, "/copy.txt").await.unwrap().size as i64
    });
    sys.run();
    assert_eq!(h.try_take().unwrap(), 64 * 1024);
}

#[test]
fn archive_format_matches_reference_parser() {
    // The archive the m3 tar writes must parse with the pure-logic parser.
    let spec = workload::tar_input(44);
    let sys = m3_system(spec.to_setup(), 6);
    let spec2 = spec.clone();
    let h = sys.run_program("tar", move |env| async move {
        mount_m3fs(&env).await.unwrap();
        m3app::tar_create(&env, "/src", "/a.tar").await.unwrap();
        let bytes = vfs::read_to_vec(&env, "/a.tar").await.unwrap();
        let entries = tarfmt::parse_archive(&bytes).unwrap();
        assert_eq!(entries.len(), spec2.files.len());
        for ((entry, content), (path, expect)) in entries.iter().zip(&spec2.files) {
            assert_eq!(format!("/{}", entry.name), *path);
            assert_eq!(content, expect);
        }
        0
    });
    sys.run();
    assert_eq!(h.try_take().unwrap(), 0);
}

#[test]
fn sql_pages_survive_the_m3_filesystem() {
    let sys = m3_system(Vec::new(), 6);
    let h = sys.run_program("sql", |env| async move {
        mount_m3fs(&env).await.unwrap();
        m3app::sqlite(&env, "/db").await.unwrap();
        let db = vfs::read_to_vec(&env, "/db").await.unwrap();
        let rows = sqlwork::decode_rows(&db).unwrap();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[7].1, "row-7");
        0
    });
    sys.run();
    assert_eq!(h.try_take().unwrap(), 0);
}

#[test]
fn pipe_overlaps_reader_and_writer_across_pes() {
    // §5.6: "like Linux with multiple cores, M3 could achieve better
    // performance by letting reader and writer work in parallel." Verify
    // that a pipe transfer's wall time is far less than the serialized sum
    // of both sides' work.
    use m3_libos::pipe::{self, PipeRole, PipeWriter};
    use m3_libos::Vpe;

    let sys = m3_system(Vec::new(), 6);
    let h = sys.run_program("overlap", |env| async move {
        let total = 512 * 1024usize;
        let per_chunk_work = 2000u64; // simulated compute per 4 KiB on each side
        let chunks = (total / 4096) as u64;

        let child = Vpe::new(&env, "writer", m3_kernel::protocol::PeRequest::Same)
            .await
            .unwrap();
        let (end, desc) = pipe::create(&env, &child, PipeRole::Writer, 64 * 1024)
            .await
            .unwrap();
        let pipe::ParentEnd::Reader(mut reader) = end else {
            unreachable!()
        };
        child
            .run(move |cenv| async move {
                let Ok(mut w) = PipeWriter::attach(&cenv, desc).await else {
                    return 1;
                };
                let chunk = vec![1u8; 4096];
                for _ in 0..total / 4096 {
                    cenv.compute_app(m3_base::Cycles::new(2000)).await;
                    w.write(&chunk).await.unwrap();
                }
                w.close().await.unwrap();
                0
            })
            .await
            .unwrap();

        let t0 = env.sim().now();
        let mut buf = vec![0u8; 4096];
        while reader.read(&mut buf).await.unwrap() > 0 {
            env.compute_app(m3_base::Cycles::new(per_chunk_work)).await;
        }
        child.wait().await.unwrap();
        let wall = (env.sim().now() - t0).as_u64();

        // Both sides each burn chunks * 2000 cycles of pure compute; if they
        // ran serialized the wall time would exceed 2 * chunks * 2000. With
        // the pipe's credit window they overlap.
        let serial_compute = 2 * chunks * per_chunk_work;
        assert!(
            (wall as f64) < serial_compute as f64 * 0.95,
            "no overlap: wall={wall}, serialized compute alone={serial_compute}"
        );
        0
    });
    sys.run();
    assert_eq!(h.try_take().unwrap(), 0);
}
