//! The FFT workload (Figure 7): a real radix-2 FFT plus sample generation.
//!
//! The numeric result is produced for real (so the benchmark's output file
//! has meaningful content and both OS bindings compute identical data); the
//! *cycle cost* on either core comes from `m3_platform::accel`.

use m3_base::rand::Rng;

/// Bytes per complex sample (two `f32`).
pub const BYTES_PER_POINT: usize = 8;

/// Points in a 32 KiB input (the Figure 7 workload).
pub const FIG7_POINTS: usize = 32 * 1024 / BYTES_PER_POINT;

/// In-place radix-2 decimation-in-time FFT.
///
/// # Panics
///
/// Panics unless `re` and `im` have the same power-of-two length.
pub fn fft_in_place(re: &mut [f32], im: &mut [f32]) {
    let n = re.len();
    assert_eq!(n, im.len(), "mismatched component lengths");
    assert!(n.is_power_of_two() && n > 1, "radix-2 needs a power of two");

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }

    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f32::consts::PI / len as f32;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut cur_r = 1.0f32;
            let mut cur_i = 0.0f32;
            for k in 0..len / 2 {
                let a = start + k;
                let b = start + k + len / 2;
                let tr = re[b] * cur_r - im[b] * cur_i;
                let ti = re[b] * cur_i + im[b] * cur_r;
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
                let next_r = cur_r * wr - cur_i * wi;
                cur_i = cur_r * wi + cur_i * wr;
                cur_r = next_r;
            }
        }
        len *= 2;
    }
}

/// Deterministic random samples in `[-1, 1)`.
pub fn gen_samples(points: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let mut rng = Rng::new(seed);
    let re = (0..points)
        .map(|_| (rng.next_f64() * 2.0 - 1.0) as f32)
        .collect();
    let im = (0..points)
        .map(|_| (rng.next_f64() * 2.0 - 1.0) as f32)
        .collect();
    (re, im)
}

/// Packs interleaved complex samples into bytes (pipe/file payload).
pub fn pack(re: &[f32], im: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(re.len() * BYTES_PER_POINT);
    for (&r, &i) in re.iter().zip(im) {
        out.extend_from_slice(&r.to_le_bytes());
        out.extend_from_slice(&i.to_le_bytes());
    }
    out
}

/// Unpacks bytes produced by [`pack`].
///
/// # Panics
///
/// Panics if the byte count is not a multiple of [`BYTES_PER_POINT`].
pub fn unpack(bytes: &[u8]) -> (Vec<f32>, Vec<f32>) {
    assert_eq!(bytes.len() % BYTES_PER_POINT, 0, "partial complex sample");
    let n = bytes.len() / BYTES_PER_POINT;
    let mut re = Vec::with_capacity(n);
    let mut im = Vec::with_capacity(n);
    for chunk in bytes.chunks_exact(BYTES_PER_POINT) {
        re.push(f32::from_le_bytes(chunk[0..4].try_into().unwrap()));
        im.push(f32::from_le_bytes(chunk[4..8].try_into().unwrap()));
    }
    (re, im)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive DFT for cross-checking.
    fn dft(re: &[f32], im: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let n = re.len();
        let mut or = vec![0.0f32; n];
        let mut oi = vec![0.0f32; n];
        for k in 0..n {
            for t in 0..n {
                let ang = -2.0 * std::f32::consts::PI * (k * t) as f32 / n as f32;
                or[k] += re[t] * ang.cos() - im[t] * ang.sin();
                oi[k] += re[t] * ang.sin() + im[t] * ang.cos();
            }
        }
        (or, oi)
    }

    #[test]
    fn fft_matches_naive_dft() {
        let (mut re, mut im) = gen_samples(64, 7);
        let (er, ei) = dft(&re, &im);
        fft_in_place(&mut re, &mut im);
        for k in 0..64 {
            assert!(
                (re[k] - er[k]).abs() < 1e-3,
                "re[{k}]: {} vs {}",
                re[k],
                er[k]
            );
            assert!(
                (im[k] - ei[k]).abs() < 1e-3,
                "im[{k}]: {} vs {}",
                im[k],
                ei[k]
            );
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut re = vec![0.0f32; 16];
        let mut im = vec![0.0f32; 16];
        re[0] = 1.0;
        fft_in_place(&mut re, &mut im);
        for k in 0..16 {
            assert!((re[k] - 1.0).abs() < 1e-5);
            assert!(im[k].abs() < 1e-5);
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let (re, im) = gen_samples(128, 3);
        let bytes = pack(&re, &im);
        assert_eq!(bytes.len(), 128 * BYTES_PER_POINT);
        let (r2, i2) = unpack(&bytes);
        assert_eq!(re, r2);
        assert_eq!(im, i2);
    }

    #[test]
    fn fig7_workload_is_32kib() {
        assert_eq!(FIG7_POINTS * BYTES_PER_POINT, 32 * 1024);
        assert_eq!(FIG7_POINTS, 4096);
    }

    #[test]
    fn samples_are_deterministic() {
        assert_eq!(gen_samples(32, 5), gen_samples(32, 5));
        assert_ne!(gen_samples(32, 5), gen_samples(32, 6));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut re = vec![0.0; 12];
        let mut im = vec![0.0; 12];
        fft_in_place(&mut re, &mut im);
    }
}
