//! Workload generation: the file trees the benchmarks operate on.
//!
//! - tar/untar: "files between 60 and 500 KiB and 1.2 MiB in total" (§5.6),
//! - find: "a directory tree of 40 items" (§5.6).

use m3_base::rand::Rng;
use m3_fs::SetupNode;
use m3_lx::LxMachine;

/// A neutral description of a file tree, convertible to both systems.
#[derive(Clone, Debug, Default)]
pub struct TreeSpec {
    /// Directories, in creation order (parents first).
    pub dirs: Vec<String>,
    /// Files with contents, under already-created directories.
    pub files: Vec<(String, Vec<u8>)>,
}

impl TreeSpec {
    /// Total content bytes.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|(_, c)| c.len() as u64).sum()
    }

    /// Number of nodes (dirs + files).
    pub fn item_count(&self) -> usize {
        self.dirs.len() + self.files.len()
    }

    /// Converts into m3fs boot-time setup nodes.
    pub fn to_setup(&self) -> Vec<SetupNode> {
        let mut out: Vec<SetupNode> = self.dirs.iter().map(|d| SetupNode::dir(d)).collect();
        out.extend(
            self.files
                .iter()
                .map(|(p, c)| SetupNode::file(p, c.clone())),
        );
        out
    }

    /// Pre-populates a Linux machine's tmpfs (no cycles charged; this is
    /// benchmark setup, not measurement).
    ///
    /// # Panics
    ///
    /// Panics if the tree conflicts with existing content.
    pub fn preload_lx(&self, machine: &LxMachine) {
        let mut fs = machine.fs().borrow_mut();
        for d in &self.dirs {
            fs.mkdir(d).expect("preload dir");
        }
        for (p, c) in &self.files {
            let ino = fs.create(p).expect("preload file");
            fs.write(ino, 0, c).expect("preload content");
        }
    }
}

/// Deterministic pseudo-random file content (compressible-ish text mix).
pub fn file_content(seed: u64, size: usize) -> Vec<u8> {
    let mut rng = Rng::new(seed);
    let mut out = vec![0u8; size];
    rng.fill_bytes(&mut out);
    // Bias towards ASCII letters so `tr a->b` has work to do.
    for b in &mut out {
        *b = b'a' + (*b % 26);
    }
    out
}

/// The tar/untar input: files of 60–500 KiB totalling ≈ 1.2 MiB (§5.6).
pub fn tar_input(seed: u64) -> TreeSpec {
    let mut rng = Rng::new(seed);
    let mut spec = TreeSpec {
        dirs: vec!["/src".to_string()],
        files: Vec::new(),
    };
    let target = 1_200 * 1024u64;
    let mut total = 0u64;
    let mut idx = 0;
    while total < target {
        let mut size = rng.next_range(60 * 1024, 500 * 1024);
        if target - total < 60 * 1024 {
            break;
        }
        size = size.min(target - total);
        spec.files.push((
            format!("/src/file{idx}.dat"),
            file_content(seed.wrapping_add(idx), size as usize),
        ));
        total += size;
        idx += 1;
    }
    spec
}

/// The find input: a directory tree of 40 items (§5.6), with a few entries
/// matching the search pattern `log`.
pub fn find_tree(seed: u64) -> TreeSpec {
    let mut rng = Rng::new(seed);
    let mut spec = TreeSpec::default();
    let mut items = 0;
    let mut dir_paths = vec![String::new()]; // "" = root
                                             // Create 8 directories spread over the tree.
    for d in 0..8 {
        let parent = dir_paths[rng.next_below(dir_paths.len() as u64) as usize].clone();
        let path = format!("{parent}/dir{d}");
        spec.dirs.push(path.clone());
        dir_paths.push(path);
        items += 1;
    }
    // Fill with small files until 40 items.
    let mut f = 0;
    while items < 40 {
        let parent = dir_paths[rng.next_below(dir_paths.len() as u64) as usize].clone();
        let name = if f % 5 == 0 {
            format!("{parent}/trace{f}.log")
        } else {
            format!("{parent}/data{f}.bin")
        };
        spec.files.push((name, file_content(seed + 1000 + f, 256)));
        items += 1;
        f += 1;
    }
    spec
}

/// The cat+tr input: one 64 KiB file (§5.6).
pub fn cat_tr_input(seed: u64) -> TreeSpec {
    TreeSpec {
        dirs: Vec::new(),
        files: vec![("/input.txt".to_string(), file_content(seed, 64 * 1024))],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tar_input_matches_paper_parameters() {
        let spec = tar_input(42);
        let total = spec.total_bytes();
        assert!(
            (1_100 * 1024..=1_200 * 1024).contains(&total),
            "total {total}"
        );
        for (path, content) in &spec.files {
            assert!(path.starts_with("/src/"));
            assert!(
                content.len() <= 500 * 1024,
                "file too large: {}",
                content.len()
            );
        }
        assert!(spec.files.len() >= 3);
    }

    #[test]
    fn find_tree_has_40_items() {
        let spec = find_tree(7);
        assert_eq!(spec.item_count(), 40);
        let matches = spec
            .files
            .iter()
            .filter(|(p, _)| p.ends_with(".log"))
            .count();
        assert!(matches >= 3, "need some hits for find");
    }

    #[test]
    fn trees_are_deterministic() {
        assert_eq!(tar_input(1).total_bytes(), tar_input(1).total_bytes());
        assert_eq!(find_tree(2).dirs, find_tree(2).dirs);
    }

    #[test]
    fn dirs_come_before_their_files() {
        let spec = find_tree(3);
        // Every file's parent dir must appear in dirs (or be root).
        for (path, _) in &spec.files {
            let parent = &path[..path.rfind('/').unwrap()];
            assert!(
                parent.is_empty() || spec.dirs.iter().any(|d| d == parent),
                "missing parent {parent}"
            );
        }
    }

    #[test]
    fn content_is_lowercase_letters() {
        let c = file_content(5, 1000);
        assert!(c.iter().all(|&b| b.is_ascii_lowercase()));
        assert!(c.contains(&b'a'), "tr needs 'a's to replace");
    }

    #[test]
    fn preload_lx_builds_the_tree() {
        let sim = m3_sim::Sim::new();
        let machine = LxMachine::new(&sim, m3_lx::LxConfig::xtensa());
        let spec = find_tree(9);
        spec.preload_lx(&machine);
        let fs = machine.fs().borrow();
        for d in &spec.dirs {
            assert!(fs.resolve(d).is_ok(), "missing dir {d}");
        }
        for (p, c) in &spec.files {
            let ino = fs.resolve(p).unwrap();
            assert_eq!(fs.size(ino), c.len() as u64);
        }
    }
}
