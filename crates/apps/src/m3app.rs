//! The benchmark applications on M3 (libm3 + m3fs + pipes + VPEs).

use m3_base::cfg::BENCH_BUF_SIZE;
use m3_base::error::{Code, Error, Result};
use m3_base::Cycles;
use m3_fs::mount_m3fs;
use m3_kernel::protocol::PeRequest;
use m3_libos::pipe::{self, PipeDesc, PipeReader, PipeRole, PipeWriter};
use m3_libos::vfs::{self, OpenFlags, SeekMode};
use m3_libos::{Env, ProgramRegistry, Vpe};
use m3_platform::accel::{fft_accel_cycles, fft_sw_cycles};
use m3_platform::PeType;

use crate::fft;
use crate::sqlwork;
use crate::tarfmt;

/// Cycles per byte of the `tr` substitution loop.
pub const TR_CYCLES_PER_BYTE: u64 = 2;

/// Cycles to match one directory entry name in `find`.
pub const FIND_MATCH_CYCLES: u64 = 50;

/// cat+tr (§5.6): a child VPE writes `input` into a pipe; the caller reads
/// the pipe, replaces every `a` with `b`, and writes the result to
/// `output`. Exercises application loading, pipes, and the filesystem.
///
/// # Errors
///
/// Propagates filesystem and pipe errors.
pub async fn cat_tr(env: &Env, input: &str, output: &str) -> Result<u64> {
    env.trace_mark("cat_tr");
    let child = Vpe::new(env, "cat", PeRequest::Same).await?;
    let (end, desc) = pipe::create(env, &child, PipeRole::Writer, pipe::DEF_BUF_SIZE).await?;
    let pipe::ParentEnd::Reader(mut reader) = end else {
        return Err(Error::new(Code::Internal).with_msg("expected reader end"));
    };

    let input_path = input.to_string();
    child
        .run(move |cenv| async move {
            // The child is `cat`: read the file, write it into the pipe.
            if mount_m3fs(&cenv).await.is_err() {
                return 1;
            }
            let Ok(mut file) = vfs::open(&cenv, &input_path, OpenFlags::R).await else {
                return 1;
            };
            let Ok(mut writer) = PipeWriter::attach(&cenv, desc).await else {
                return 1;
            };
            let mut buf = vec![0u8; BENCH_BUF_SIZE];
            loop {
                let n = match file.read(&mut buf).await {
                    Ok(0) => break,
                    Ok(n) => n,
                    Err(_) => return 1,
                };
                if writer.write(&buf[..n]).await.is_err() {
                    return 1;
                }
            }
            if writer.close().await.is_err() || file.close().await.is_err() {
                return 1;
            }
            0
        })
        .await?;

    // The parent is `tr a b > output`.
    let mut out = vfs::open(env, output, OpenFlags::CREATE.or(OpenFlags::TRUNC)).await?;
    let mut buf = vec![0u8; BENCH_BUF_SIZE];
    let mut total = 0u64;
    loop {
        let n = reader.read(&mut buf).await?;
        if n == 0 {
            break;
        }
        env.compute_app(Cycles::new(n as u64 * TR_CYCLES_PER_BYTE))
            .await;
        for b in &mut buf[..n] {
            if *b == b'a' {
                *b = b'b';
            }
        }
        let mut written = 0;
        while written < n {
            written += out.write(&buf[written..n]).await?;
        }
        total += n as u64;
    }
    out.close().await?;
    let code = child.wait().await?;
    if code != 0 {
        return Err(Error::new(Code::Internal).with_msg(format!("cat child exited {code}")));
    }
    Ok(total)
}

/// tar (§5.6): packs every file under `dir` into `archive`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub async fn tar_create(env: &Env, dir: &str, archive: &str) -> Result<u64> {
    env.trace_mark("tar_create");
    let mut out = vfs::open(env, archive, OpenFlags::CREATE.or(OpenFlags::TRUNC)).await?;
    let mut entries = vfs::read_dir(env, dir).await?;
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    let mut buf = vec![0u8; BENCH_BUF_SIZE];
    let mut total = 0u64;
    for entry in entries {
        let path = format!("{dir}/{}", entry.name);
        let info = vfs::stat(env, &path).await?;
        let tar_name = path.trim_start_matches('/').to_string();
        let header = tarfmt::header(&tar_name, info.size, entry.is_dir);
        out.write(&header).await?;
        total += tarfmt::BLOCK as u64;
        if entry.is_dir {
            continue;
        }
        let mut file = vfs::open(env, &path, OpenFlags::R).await?;
        let mut copied = 0u64;
        loop {
            let n = file.read(&mut buf).await?;
            if n == 0 {
                break;
            }
            let mut written = 0;
            while written < n {
                written += out.write(&buf[written..n]).await?;
            }
            copied += n as u64;
        }
        file.close().await?;
        let pad = (tarfmt::padded_size(copied) - copied) as usize;
        if pad > 0 {
            out.write(&vec![0u8; pad]).await?;
        }
        total += tarfmt::padded_size(copied);
    }
    out.write(&[0u8; 2 * tarfmt::BLOCK]).await?;
    total += 2 * tarfmt::BLOCK as u64;
    out.close().await?;
    Ok(total)
}

/// untar (§5.6): unpacks `archive` under `dest` (a directory that must
/// exist).
///
/// # Errors
///
/// Propagates filesystem errors and archive format violations
/// ([`Code::BadMessage`]).
pub async fn tar_extract(env: &Env, archive: &str, dest: &str) -> Result<u64> {
    env.trace_mark("tar_extract");
    let mut ar = vfs::open(env, archive, OpenFlags::R).await?;
    let mut header = vec![0u8; tarfmt::BLOCK];
    let mut buf = vec![0u8; BENCH_BUF_SIZE];
    let mut total = 0u64;
    loop {
        let mut got = 0;
        while got < tarfmt::BLOCK {
            let n = ar.read(&mut header[got..]).await?;
            if n == 0 {
                return Ok(total); // archive ended without zero blocks
            }
            got += n;
        }
        let entry =
            tarfmt::parse_header(&header).map_err(|e| Error::new(Code::BadMessage).with_msg(e))?;
        let Some(entry) = entry else {
            return Ok(total); // end-of-archive marker
        };
        let out_path = format!("{dest}/{}", entry.name.split('/').next_back().unwrap());
        if entry.is_dir {
            vfs::mkdir(env, &out_path).await?;
            continue;
        }
        let mut out = vfs::open(env, &out_path, OpenFlags::CREATE.or(OpenFlags::TRUNC)).await?;
        let mut remaining = entry.size;
        while remaining > 0 {
            let want = (remaining as usize).min(buf.len());
            let n = ar.read(&mut buf[..want]).await?;
            if n == 0 {
                return Err(Error::new(Code::BadMessage).with_msg("truncated archive"));
            }
            let mut written = 0;
            while written < n {
                written += out.write(&buf[written..n]).await?;
            }
            remaining -= n as u64;
        }
        out.close().await?;
        total += entry.size;
        // Skip the padding.
        let pad = (tarfmt::padded_size(entry.size) - entry.size) as i64;
        if pad > 0 {
            ar.seek(pad, SeekMode::Cur).await?;
        }
    }
}

/// find (§5.6): walks the tree under `root`, stat-ing every item, and
/// returns the paths whose name contains `pattern`. "find consists mostly
/// of stat calls."
///
/// # Errors
///
/// Propagates filesystem errors.
pub async fn find(env: &Env, root: &str, pattern: &str) -> Result<Vec<String>> {
    env.trace_mark("find");
    let mut matches = Vec::new();
    let mut stack = vec![root.to_string()];
    while let Some(dir) = stack.pop() {
        let entries = vfs::read_dir(env, &dir).await?;
        for entry in entries {
            let path = if dir == "/" {
                format!("/{}", entry.name)
            } else {
                format!("{dir}/{}", entry.name)
            };
            let _info = vfs::stat(env, &path).await?;
            env.compute_app(Cycles::new(FIND_MATCH_CYCLES)).await;
            if entry.name.contains(pattern) {
                matches.push(path.clone());
            }
            if entry.is_dir {
                stack.push(path);
            }
        }
    }
    matches.sort();
    Ok(matches)
}

/// sqlite (§5.6): creates a table, inserts 8 entries, selects them. Mostly
/// computation, with database page writes in between.
///
/// # Errors
///
/// Propagates filesystem errors.
pub async fn sqlite(env: &Env, db_path: &str) -> Result<usize> {
    env.trace_mark("sqlite");
    let mut db = vfs::open(
        env,
        db_path,
        OpenFlags::CREATE.or(OpenFlags::TRUNC).or(OpenFlags::R),
    )
    .await?;
    let mut rows = 0;
    for op in sqlwork::workload() {
        env.compute_app(op.compute).await;
        if let Some(page) = &op.page {
            let mut written = 0;
            while written < page.len() {
                written += db.write(&page[written..]).await?;
            }
        }
        if op.read_back > 0 {
            db.seek(0, SeekMode::Set).await?;
            let mut data = Vec::new();
            let mut buf = vec![0u8; BENCH_BUF_SIZE];
            loop {
                let n = db.read(&mut buf).await?;
                if n == 0 {
                    break;
                }
                data.extend_from_slice(&buf[..n]);
            }
            rows = sqlwork::decode_rows(&data)
                .map_err(|e| Error::new(Code::BadMessage).with_msg(e))?
                .len();
        }
    }
    db.close().await?;
    Ok(rows)
}

/// Registers the FFT child executable under `/bin/fft`. The same program
/// serves both the software and the accelerator runs — it prices the FFT by
/// the PE it finds itself on, exactly as the paper's child binary does
/// (§5.8: "the code for the parent is identical … it merely receives a
/// different path to the executable").
pub fn register_fft_program(reg: &ProgramRegistry) {
    reg.register("/bin/fft", |env, argv| async move {
        let Some(desc_str) = argv.first() else {
            return 1;
        };
        let Some(out_path) = argv.get(1) else {
            return 1;
        };
        let Ok(desc) = PipeDesc::decode(desc_str) else {
            return 1;
        };
        if mount_m3fs(&env).await.is_err() {
            return 1;
        }
        let mut reader = PipeReader::attach(&env, desc);
        let mut data = Vec::new();
        let mut buf = vec![0u8; BENCH_BUF_SIZE];
        loop {
            match reader.read(&mut buf).await {
                Ok(0) => break,
                Ok(n) => data.extend_from_slice(&buf[..n]),
                Err(_) => return 1,
            }
        }
        let (mut re, mut im) = fft::unpack(&data);
        let desc_pe = env.kernel().platform().desc(env.pe()).clone();
        let core = desc_pe.core_model();
        let cost = if desc_pe.is_fft_accel() {
            fft_accel_cycles(re.len(), core)
        } else {
            fft_sw_cycles(re.len(), core)
        };
        env.compute_app(cost).await;
        env.sim().stats().add("app.fft_cycles", cost.as_u64());
        fft::fft_in_place(&mut re, &mut im);
        let out_bytes = fft::pack(&re, &im);
        if vfs::write_all(&env, out_path, &out_bytes).await.is_err() {
            return 1;
        }
        0
    });
}

/// The Figure 7 pipeline: the caller generates 32 KiB of random samples
/// and writes them into a pipe; a child VPE on `pe_kind` reads them,
/// performs the FFT, and writes the result to `out`.
///
/// # Errors
///
/// Propagates VPE, pipe, and filesystem errors.
pub async fn fft_pipeline(env: &Env, pe_kind: Option<PeType>, out: &str) -> Result<()> {
    let req = match pe_kind {
        Some(ty) => PeRequest::Type(ty),
        None => PeRequest::Same,
    };
    let child = Vpe::new(env, "fft", req).await?;
    let (end, desc) = pipe::create(env, &child, PipeRole::Reader, pipe::DEF_BUF_SIZE).await?;
    let pipe::ParentEnd::Writer(mut writer) = end else {
        return Err(Error::new(Code::Internal).with_msg("expected writer end"));
    };
    child
        .exec("/bin/fft", vec![desc.encode(), out.to_string()])
        .await?;

    let (re, im) = fft::gen_samples(fft::FIG7_POINTS, 0x5eed);
    // Generating a random number per point costs a few cycles each.
    env.compute_app(Cycles::new(fft::FIG7_POINTS as u64 * 8))
        .await;
    let bytes = fft::pack(&re, &im);
    writer.write(&bytes).await?;
    writer.close().await?;
    let code = child.wait().await?;
    if code != 0 {
        return Err(Error::new(Code::Internal).with_msg(format!("fft child exited {code}")));
    }
    Ok(())
}
