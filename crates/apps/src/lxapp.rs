//! The benchmark applications on the Linux baseline.
//!
//! Same logic as [`crate::m3app`], bound to the Linux model: `fork` instead
//! of `VPE::run`, kernel pipes, tmpfs, and `sendfile` for tar/untar (the
//! paper notes BusyBox tar avoids per-block syscalls this way, §5.6).

use m3_base::cfg::BENCH_BUF_SIZE;
use m3_base::error::{Code, Error, Result};
use m3_base::Cycles;
use m3_lx::LxProc;
use m3_platform::accel::fft_sw_cycles;

use crate::fft;
use crate::m3app::{FIND_MATCH_CYCLES, TR_CYCLES_PER_BYTE};
use crate::sqlwork;
use crate::tarfmt;

/// cat+tr on Linux: fork a child that cats `input` into a pipe; the parent
/// applies `tr a b` and writes `output`.
///
/// # Errors
///
/// Propagates filesystem and pipe errors.
pub async fn cat_tr(p: &LxProc, input: &str, output: &str) -> Result<u64> {
    let (mut rx, mut tx) = p.pipe().await;
    let input_path = input.to_string();
    let child = p
        .fork("cat", move |c| async move {
            let Ok(mut file) = c.open(&input_path, false, false, false).await else {
                return 1;
            };
            loop {
                let data = match file.read(BENCH_BUF_SIZE).await {
                    Ok(d) if d.is_empty() => break,
                    Ok(d) => d,
                    Err(_) => return 1,
                };
                if tx.write(&c, &data).await.is_err() {
                    return 1;
                }
            }
            file.close().await;
            tx.close();
            0
        })
        .await;

    let mut out = p.open(output, true, true, true).await?;
    let mut total = 0u64;
    loop {
        let mut data = rx.read(p, BENCH_BUF_SIZE).await?;
        if data.is_empty() {
            break;
        }
        p.compute(Cycles::new(data.len() as u64 * TR_CYCLES_PER_BYTE))
            .await;
        for b in &mut data {
            if *b == b'a' {
                *b = b'b';
            }
        }
        out.write(&data).await?;
        total += data.len() as u64;
    }
    rx.close();
    out.close().await;
    let code = p.waitpid(child).await;
    if code != 0 {
        return Err(Error::new(Code::Internal).with_msg(format!("cat child exited {code}")));
    }
    Ok(total)
}

/// tar on Linux: headers via `write`, contents via `sendfile` (§5.6).
///
/// # Errors
///
/// Propagates filesystem errors.
pub async fn tar_create(p: &LxProc, dir: &str, archive: &str) -> Result<u64> {
    let mut out = p.open(archive, true, true, true).await?;
    let mut entries = p.read_dir(dir).await?;
    entries.sort();
    let mut total = 0u64;
    for (name, is_dir) in entries {
        let path = format!("{dir}/{name}");
        let st = p.stat(&path).await?;
        let tar_name = path.trim_start_matches('/').to_string();
        let header = tarfmt::header(&tar_name, st.size, is_dir);
        out.write(&header).await?;
        total += tarfmt::BLOCK as u64;
        if is_dir {
            continue;
        }
        let mut file = p.open(&path, false, false, false).await?;
        let copied = p.sendfile(&mut out, &mut file, st.size).await?;
        file.close().await;
        let pad = (tarfmt::padded_size(copied) - copied) as usize;
        if pad > 0 {
            out.write(&vec![0u8; pad]).await?;
        }
        total += tarfmt::padded_size(copied);
    }
    out.write(&[0u8; 2 * tarfmt::BLOCK]).await?;
    total += 2 * tarfmt::BLOCK as u64;
    out.close().await;
    Ok(total)
}

/// untar on Linux: contents leave the archive via `sendfile`.
///
/// # Errors
///
/// Propagates filesystem errors and archive format violations.
pub async fn tar_extract(p: &LxProc, archive: &str, dest: &str) -> Result<u64> {
    let mut ar = p.open(archive, false, false, false).await?;
    let mut total = 0u64;
    loop {
        let header = ar.read(tarfmt::BLOCK).await?;
        if header.len() < tarfmt::BLOCK {
            return Ok(total);
        }
        let entry =
            tarfmt::parse_header(&header).map_err(|e| Error::new(Code::BadMessage).with_msg(e))?;
        let Some(entry) = entry else {
            return Ok(total);
        };
        let out_path = format!("{dest}/{}", entry.name.split('/').next_back().unwrap());
        if entry.is_dir {
            p.mkdir(&out_path).await?;
            continue;
        }
        let mut out = p.open(&out_path, true, true, true).await?;
        let copied = p.sendfile(&mut out, &mut ar, entry.size).await?;
        if copied != entry.size {
            return Err(Error::new(Code::BadMessage).with_msg("truncated archive"));
        }
        out.close().await;
        total += entry.size;
        let pad = tarfmt::padded_size(entry.size) - entry.size;
        if pad > 0 {
            let pos = ar.pos();
            ar.seek(pos + pad).await;
        }
    }
}

/// find on Linux: `getdents` + `stat` per item ("stat is well optimized on
/// Linux", §5.6).
///
/// # Errors
///
/// Propagates filesystem errors.
pub async fn find(p: &LxProc, root: &str, pattern: &str) -> Result<Vec<String>> {
    let mut matches = Vec::new();
    let mut stack = vec![root.to_string()];
    while let Some(dir) = stack.pop() {
        let entries = p.read_dir(&dir).await?;
        for (name, is_dir) in entries {
            let path = if dir == "/" {
                format!("/{name}")
            } else {
                format!("{dir}/{name}")
            };
            let _st = p.stat(&path).await?;
            p.compute(Cycles::new(FIND_MATCH_CYCLES)).await;
            if name.contains(pattern) {
                matches.push(path.clone());
            }
            if is_dir {
                stack.push(path);
            }
        }
    }
    matches.sort();
    Ok(matches)
}

/// sqlite on Linux.
///
/// # Errors
///
/// Propagates filesystem errors.
pub async fn sqlite(p: &LxProc, db_path: &str) -> Result<usize> {
    let mut db = p.open(db_path, true, true, true).await?;
    let mut rows = 0;
    for op in sqlwork::workload() {
        p.compute(op.compute).await;
        if let Some(page) = &op.page {
            db.write(page).await?;
        }
        if op.read_back > 0 {
            db.seek(0).await;
            let mut data = Vec::new();
            loop {
                let chunk = db.read(BENCH_BUF_SIZE).await?;
                if chunk.is_empty() {
                    break;
                }
                data.extend_from_slice(&chunk);
            }
            rows = sqlwork::decode_rows(&data)
                .map_err(|e| Error::new(Code::BadMessage).with_msg(e))?
                .len();
        }
    }
    db.close().await;
    Ok(rows)
}

/// The Figure 7 pipeline on Linux: fork + exec the FFT child (software FFT
/// only — Linux cannot use the accelerator core), pipe the samples through,
/// write the spectrum to `out`. Requires `/bin/fft` to exist in the tmpfs.
///
/// # Errors
///
/// Propagates filesystem and pipe errors.
pub async fn fft_pipeline(p: &LxProc, out: &str) -> Result<()> {
    let (mut rx, mut tx) = p.pipe().await;
    let out_path = out.to_string();
    let child = p
        .fork("fft", move |c| async move {
            if c.exec_load("/bin/fft").await.is_err() {
                return 1;
            }
            let mut data = Vec::new();
            loop {
                match rx.read(&c, BENCH_BUF_SIZE).await {
                    Ok(d) if d.is_empty() => break,
                    Ok(d) => data.extend_from_slice(&d),
                    Err(_) => return 1,
                }
            }
            rx.close();
            let (mut re, mut im) = fft::unpack(&data);
            let core = c.machine().config().core.clone();
            let cost = fft_sw_cycles(re.len(), &core);
            c.compute(cost).await;
            c.machine().stats().add("app.fft_cycles", cost.as_u64());
            fft::fft_in_place(&mut re, &mut im);
            let out_bytes = fft::pack(&re, &im);
            let Ok(mut f) = c.open(&out_path, true, true, true).await else {
                return 1;
            };
            if f.write(&out_bytes).await.is_err() {
                return 1;
            }
            f.close().await;
            0
        })
        .await;

    let (re, im) = fft::gen_samples(fft::FIG7_POINTS, 0x5eed);
    p.compute(Cycles::new(fft::FIG7_POINTS as u64 * 8)).await;
    let bytes = fft::pack(&re, &im);
    tx.write(p, &bytes).await?;
    tx.close();
    let code = p.waitpid(child).await;
    if code != 0 {
        return Err(Error::new(Code::Internal).with_msg(format!("fft child exited {code}")));
    }
    Ok(())
}
