//! The sqlite-like workload: "creates a table, inserts 8 entries and
//! selects them" (§5.6). A compute-heavy benchmark: "computation makes up
//! the majority of the execution time".
//!
//! This is a miniature row-store: each operation produces real page bytes
//! (written to the database file through whichever OS runs it) plus a
//! calibrated computation cost (parsing, planning, b-tree manipulation —
//! the things sqlite spends its cycles on).

use m3_base::Cycles;

/// Database page size.
pub const PAGE_SIZE: usize = 1024;

/// One step of the workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqlOp {
    /// Human-readable statement (for traces).
    pub stmt: String,
    /// Computation the engine performs for this statement.
    pub compute: Cycles,
    /// Page image appended to the database file (journal + page writes).
    pub page: Option<Vec<u8>>,
    /// Bytes read back from the database file (the final SELECT scan).
    pub read_back: u64,
}

/// SQL parsing + planning cost per statement.
const PARSE: u64 = 45_000;

/// B-tree insert cost per row.
const INSERT: u64 = 230_000;

/// Table creation (schema page, catalog update).
const CREATE: u64 = 420_000;

/// Full-table-scan SELECT over the 8 rows.
const SELECT: u64 = 2_100_000;

/// Encodes the schema page: a length-prefixed copy of the full DDL
/// statement (page 0 of the database image).
fn schema_page(stmt: &str) -> Vec<u8> {
    let mut page = vec![0u8; PAGE_SIZE];
    let bytes = stmt.as_bytes();
    assert!(bytes.len() + 2 <= PAGE_SIZE, "DDL too long for a page");
    page[0..2].copy_from_slice(&(bytes.len() as u16).to_le_bytes());
    page[2..2 + bytes.len()].copy_from_slice(bytes);
    page
}

/// Parses the DDL statement back out of a schema page.
///
/// # Errors
///
/// Returns a descriptive string for malformed pages.
pub fn decode_schema(page: &[u8]) -> Result<String, String> {
    if page.len() < PAGE_SIZE {
        return Err(format!("bad schema page size {}", page.len()));
    }
    let len = u16::from_le_bytes(page[0..2].try_into().unwrap()) as usize;
    if 2 + len > PAGE_SIZE {
        return Err(format!("bad schema statement length {len}"));
    }
    std::str::from_utf8(&page[2..2 + len])
        .map(str::to_string)
        .map_err(|_| "schema statement is not UTF-8".to_string())
}

/// Encodes one row as a slotted-page image.
fn row_page(id: u64, name: &str) -> Vec<u8> {
    let mut page = vec![0u8; PAGE_SIZE];
    page[0..8].copy_from_slice(&id.to_le_bytes());
    let name_bytes = name.as_bytes();
    page[8] = name_bytes.len() as u8;
    page[9..9 + name_bytes.len()].copy_from_slice(name_bytes);
    page
}

/// The paper's workload: CREATE TABLE, 8 INSERTs, SELECT.
pub fn workload() -> Vec<SqlOp> {
    let mut ops = Vec::new();
    let ddl = "CREATE TABLE t (id INTEGER, name TEXT)";
    ops.push(SqlOp {
        stmt: ddl.to_string(),
        compute: Cycles::new(PARSE + CREATE),
        page: Some(schema_page(ddl)),
        read_back: 0,
    });
    for i in 0..8u64 {
        let name = format!("row-{i}");
        ops.push(SqlOp {
            stmt: format!("INSERT INTO t VALUES ({i}, '{name}')"),
            compute: Cycles::new(PARSE + INSERT),
            page: Some(row_page(i, &name)),
            read_back: 0,
        });
    }
    ops.push(SqlOp {
        stmt: "SELECT * FROM t".to_string(),
        compute: Cycles::new(PARSE + SELECT),
        page: None,
        read_back: (9 * PAGE_SIZE) as u64, // schema + 8 row pages
    });
    ops
}

/// Total computation of the workload (for calibration checks).
pub fn total_compute() -> Cycles {
    workload().iter().map(|op| op.compute).sum()
}

/// Parses the row pages back (validation that the benchmark moved real
/// data).
///
/// # Errors
///
/// Returns a descriptive string for malformed pages.
pub fn decode_rows(db: &[u8]) -> Result<Vec<(u64, String)>, String> {
    if db.len() < PAGE_SIZE || !db.len().is_multiple_of(PAGE_SIZE) {
        return Err(format!("bad db size {}", db.len()));
    }
    let mut rows = Vec::new();
    for page in db.chunks(PAGE_SIZE).skip(1) {
        let id = u64::from_le_bytes(page[0..8].try_into().unwrap());
        let len = page[8] as usize;
        let name = std::str::from_utf8(&page[9..9 + len])
            .map_err(|_| "bad row name".to_string())?
            .to_string();
        rows.push((id, name));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shape_matches_paper() {
        let ops = workload();
        assert_eq!(ops.len(), 1 + 8 + 1, "create + 8 inserts + select");
        assert!(ops[0].stmt.starts_with("CREATE"));
        assert!(ops[9].stmt.starts_with("SELECT"));
        assert_eq!(ops[9].read_back, 9 * PAGE_SIZE as u64);
    }

    #[test]
    fn computation_dominates() {
        // §5.6: "computation makes up the majority of the execution time";
        // the data volume is tiny (9 KiB), so compute must be in the
        // millions of cycles.
        let total = total_compute();
        assert!(total.as_u64() > 3_000_000, "{total:?}");
        assert!(total.as_u64() < 8_000_000, "{total:?}");
    }

    #[test]
    fn schema_page_holds_the_full_ddl() {
        let ops = workload();
        let page = ops[0].page.as_ref().unwrap();
        assert_eq!(page.len(), PAGE_SIZE);
        // The full statement round-trips — the old image dropped the
        // trailing "T)" of "name TEXT)".
        assert_eq!(decode_schema(page).unwrap(), ops[0].stmt);
        assert!(decode_schema(page).unwrap().ends_with("TEXT)"));
    }

    #[test]
    fn rows_roundtrip() {
        let ops = workload();
        let mut db = Vec::new();
        for op in &ops {
            if let Some(p) = &op.page {
                db.extend_from_slice(p);
            }
        }
        let rows = decode_rows(&db).unwrap();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[3], (3, "row-3".to_string()));
    }
}
