//! Device interrupts as messages (paper §4.4.2).
//!
//! "We believe that device interrupts should be sent as messages as well to
//! integrate them with the existing concepts. This would allow to wait for
//! them as for any other message, interpose them, send them to any PE,
//! independent of the core, etc. However, we have not yet implemented this
//! idea, because of the lack of devices in the prototype platform."
//!
//! This module implements that idea for a timer device. The device occupies
//! a PE and registers as the `timer` service; a subscriber delegates a send
//! gate to its own receive gate together with a period and a tick count,
//! and the device then delivers interrupts as ordinary DTU messages — which
//! the subscriber can await, multiplex with other messages, or forward to
//! another PE (interposition), all without any core support for interrupts.

use m3_base::error::{Code, Error, Result};
use m3_base::marshal::{IStream, OStream};
use m3_base::{Cycles, SelId};
use m3_libos::serv::{self, Handler};
use m3_libos::{ClientSession, Env, RecvGate, SendGate};

/// Payload layout of one tick message: the tick index.
pub fn tick_payload(index: u64) -> Vec<u8> {
    let mut os = OStream::with_capacity(8);
    os.push_u64(index);
    os.into_bytes()
}

/// Parses a tick message payload.
///
/// # Errors
///
/// Returns [`Code::BadMessage`] on malformed payloads.
pub fn parse_tick(payload: &[u8]) -> Result<u64> {
    IStream::new(payload).pop_u64()
}

struct Subscription {
    gate_sel: SelId,
    period: Cycles,
    count: u64,
}

struct TimerHandler {
    env: Env,
    next_ident: u64,
}

impl Handler for TimerHandler {
    fn open(&mut self, _env: &Env, _arg: u64) -> Result<u64> {
        let ident = self.next_ident;
        self.next_ident += 1;
        Ok(ident)
    }

    async fn exchange(
        &mut self,
        env: &Env,
        ident: u64,
        obtain: bool,
        cap_count: u32,
        args: &[u8],
    ) -> Result<(Vec<SelId>, Vec<u8>)> {
        if obtain || cap_count != 1 {
            return Err(Error::new(Code::NotSup).with_msg("delegate exactly one send gate"));
        }
        let mut is = IStream::new(args);
        let period = Cycles::new(is.pop_u64()?);
        let count = is.pop_u64()?;
        if period.is_zero() || count == 0 {
            return Err(Error::new(Code::InvArgs).with_msg("period and count must be non-zero"));
        }
        let gate_sel = env.alloc_sel();
        let sub = Subscription {
            gate_sel,
            period,
            count,
        };
        // The interrupt generator: one task per subscription, delivering
        // each tick as a plain DTU message through the delegated gate.
        let env2 = self.env.clone();
        self.env
            .sim()
            .spawn(format!("timer-sub-{ident}"), async move {
                let gate = SendGate::bind(&env2, sub.gate_sel);
                for tick in 0..sub.count {
                    env2.sim().sleep(sub.period).await;
                    if gate.send(&tick_payload(tick), None).await.is_err() {
                        // Subscriber gone (revoked): stop firing.
                        return;
                    }
                }
            });
        Ok((vec![gate_sel], Vec::new()))
    }

    fn close(&mut self, _env: &Env, _ident: u64) {}
}

/// Runs the timer device; spawn on its own PE with `spawn_daemon`.
///
/// # Errors
///
/// Fails if service registration is rejected.
pub async fn run_timer_device(env: Env) -> Result<()> {
    let handler = TimerHandler {
        env: env.clone(),
        next_ident: 1,
    };
    serv::serve(env, "timer", handler).await
}

/// A subscription handle on the client side.
#[derive(Debug)]
pub struct TimerClient {
    rgate: RecvGate,
    remaining: u64,
}

impl TimerClient {
    /// Subscribes to `count` interrupts, `period` cycles apart. Creates the
    /// receive gate, a send gate to it, and delegates the send gate to the
    /// device over a session.
    ///
    /// # Errors
    ///
    /// Propagates session and gate errors.
    pub async fn subscribe(env: &Env, period: Cycles, count: u64) -> Result<TimerClient> {
        let rgate = RecvGate::new(env, 8, 64).await?;
        // The device must outlive the session-scoped gate, so the gate is
        // created by us and handed over (credits = buffer slots).
        let sgate = SendGate::new(env, &rgate, 0, 8).await?;
        let session = ClientSession::connect(env, "timer", 0).await?;
        let mut os = OStream::with_capacity(16);
        os.push_u64(period.as_u64()).push_u64(count);
        session.delegate(&[sgate.sel()], os.as_bytes()).await?;
        Ok(TimerClient {
            rgate,
            remaining: count,
        })
    }

    /// Waits for the next interrupt; returns its tick index, or `None`
    /// after the subscription is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub async fn wait_tick(&mut self) -> Result<Option<u64>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let msg = self.rgate.recv().await?;
        self.remaining -= 1;
        Ok(Some(parse_tick(&msg.payload)?))
    }

    /// The underlying receive gate (to multiplex ticks with other
    /// messages, or to interpose them).
    pub fn rgate(&self) -> &RecvGate {
        &self.rgate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_payload_roundtrip() {
        assert_eq!(parse_tick(&tick_payload(42)).unwrap(), 42);
        assert_eq!(parse_tick(&[1, 2]).unwrap_err().code(), Code::BadMessage);
    }
}
