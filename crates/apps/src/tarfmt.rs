//! A minimal ustar-style tar format (pure logic, shared by both OS
//! bindings of the tar/untar benchmarks).
//!
//! Layout per entry: one 512-byte header block (name, octal size, type
//! flag, checksum), then the content padded to 512-byte blocks. The archive
//! ends with two zero blocks.

/// Tar block size.
pub const BLOCK: usize = 512;

/// One parsed archive entry header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TarEntry {
    /// Entry path.
    pub name: String,
    /// Content size in bytes (0 for directories).
    pub size: u64,
    /// Whether the entry is a directory.
    pub is_dir: bool,
}

/// Content bytes rounded up to whole blocks.
pub fn padded_size(size: u64) -> u64 {
    size.div_ceil(BLOCK as u64) * BLOCK as u64
}

/// Total archive bytes an entry occupies (header + padded content).
pub fn entry_size(size: u64) -> u64 {
    BLOCK as u64 + padded_size(size)
}

/// Builds a 512-byte header block.
///
/// # Panics
///
/// Panics if the name exceeds 99 bytes.
pub fn header(name: &str, size: u64, is_dir: bool) -> [u8; BLOCK] {
    assert!(name.len() < 100, "tar name too long: {name}");
    let mut block = [0u8; BLOCK];
    block[..name.len()].copy_from_slice(name.as_bytes());
    let size_field = format!("{size:011o}\0");
    block[124..124 + size_field.len()].copy_from_slice(size_field.as_bytes());
    block[156] = if is_dir { b'5' } else { b'0' };
    // ustar magic.
    block[257..263].copy_from_slice(b"ustar\0");
    // Checksum: sum of all bytes with the checksum field as spaces.
    block[148..156].copy_from_slice(b"        ");
    let sum: u32 = block.iter().map(|&b| b as u32).sum();
    let chk = format!("{sum:06o}\0 ");
    block[148..156].copy_from_slice(chk.as_bytes());
    block
}

/// Parses a header block; `None` for an end-of-archive (zero) block.
///
/// # Errors
///
/// Returns a descriptive string on checksum or format violations.
pub fn parse_header(block: &[u8]) -> Result<Option<TarEntry>, String> {
    if block.len() < BLOCK {
        return Err(format!("short header: {} bytes", block.len()));
    }
    if block[..BLOCK].iter().all(|&b| b == 0) {
        return Ok(None);
    }
    // Verify the checksum.
    let stored = parse_octal(&block[148..156])?;
    let mut copy = [0u8; BLOCK];
    copy.copy_from_slice(&block[..BLOCK]);
    copy[148..156].copy_from_slice(b"        ");
    let sum: u64 = copy.iter().map(|&b| b as u64).sum();
    if sum != stored {
        return Err(format!(
            "checksum mismatch: stored {stored}, computed {sum}"
        ));
    }
    let name_end = block[..100].iter().position(|&b| b == 0).unwrap_or(100);
    let name = std::str::from_utf8(&block[..name_end])
        .map_err(|_| "non-utf8 name".to_string())?
        .to_string();
    let size = parse_octal(&block[124..136])?;
    let is_dir = block[156] == b'5';
    Ok(Some(TarEntry { name, size, is_dir }))
}

fn parse_octal(field: &[u8]) -> Result<u64, String> {
    let mut val = 0u64;
    for &b in field {
        match b {
            b'0'..=b'7' => val = val * 8 + (b - b'0') as u64,
            b'\0' | b' ' => break,
            other => return Err(format!("bad octal byte {other:#x}")),
        }
    }
    Ok(val)
}

/// Builds a complete archive from (name, content, is_dir) triples —
/// reference implementation for tests.
pub fn build_archive(entries: &[(&str, &[u8], bool)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (name, content, is_dir) in entries {
        out.extend_from_slice(&header(name, content.len() as u64, *is_dir));
        out.extend_from_slice(content);
        let pad = padded_size(content.len() as u64) as usize - content.len();
        out.extend(std::iter::repeat_n(0u8, pad));
    }
    out.extend(std::iter::repeat_n(0u8, 2 * BLOCK));
    out
}

/// Parses a complete archive into entries with contents — reference
/// implementation for tests.
///
/// # Errors
///
/// Returns a descriptive string on malformed archives.
pub fn parse_archive(data: &[u8]) -> Result<Vec<(TarEntry, Vec<u8>)>, String> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + BLOCK <= data.len() {
        match parse_header(&data[pos..pos + BLOCK])? {
            None => break,
            Some(entry) => {
                pos += BLOCK;
                let content = data
                    .get(pos..pos + entry.size as usize)
                    .ok_or("truncated content")?
                    .to_vec();
                pos += padded_size(entry.size) as usize;
                out.push((entry, content));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = header("dir/file.txt", 12345, false);
        let e = parse_header(&h).unwrap().unwrap();
        assert_eq!(e.name, "dir/file.txt");
        assert_eq!(e.size, 12345);
        assert!(!e.is_dir);
    }

    #[test]
    fn dir_header() {
        let h = header("some/dir", 0, true);
        let e = parse_header(&h).unwrap().unwrap();
        assert!(e.is_dir);
        assert_eq!(e.size, 0);
    }

    #[test]
    fn zero_block_ends_archive() {
        assert_eq!(parse_header(&[0u8; BLOCK]).unwrap(), None);
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut h = header("x", 5, false);
        h[0] ^= 0xff;
        assert!(parse_header(&h).is_err());
    }

    #[test]
    fn archive_roundtrip() {
        let a = build_archive(&[
            ("d", b"", true),
            ("d/a.txt", b"hello", false),
            ("d/b.bin", &[1, 2, 3, 4, 5, 6, 7], false),
        ]);
        assert_eq!(a.len() % BLOCK, 0);
        let entries = parse_archive(&a).unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[1].0.name, "d/a.txt");
        assert_eq!(entries[1].1, b"hello");
        assert_eq!(entries[2].1, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn sizes() {
        assert_eq!(padded_size(0), 0);
        assert_eq!(padded_size(1), 512);
        assert_eq!(padded_size(512), 512);
        assert_eq!(padded_size(513), 1024);
        assert_eq!(entry_size(100), 512 + 512);
    }
}
