//! Syscall-trace replay — the paper's methodology for the application
//! benchmarks (§5.6).
//!
//! "The other four benchmarks were first run on Linux with BusyBox, once
//! running it with strace and again to record the execution times of the
//! performed syscalls. … On M3, we ran a program that replays the syscalls
//! from the data structure using the corresponding API on M3 or waits as
//! long as specified."
//!
//! This module provides that data structure, a generator for the common
//! patterns, and the M3-side replayer. (The native implementations in
//! [`crate::m3app`]/[`crate::lxapp`] are the primary path; replay is the
//! faithful alternative.)

use m3_base::error::Result;
use m3_base::Cycles;
use m3_libos::vfs::{self, OpenFlags};
use m3_libos::Env;

/// One recorded operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// `open` with the given flags; subsequent Read/Write/Close apply to
    /// this file (one open file at a time, like the BusyBox tools).
    Open {
        /// Path to open.
        path: String,
        /// Writable?
        write: bool,
        /// Create if missing?
        create: bool,
        /// Truncate on open?
        trunc: bool,
    },
    /// `read` of up to `len` bytes from the open file.
    Read {
        /// Buffer size.
        len: usize,
    },
    /// `write` of `len` bytes to the open file.
    Write {
        /// Byte count.
        len: usize,
    },
    /// `close` of the open file.
    Close,
    /// `stat`.
    Stat {
        /// Path to stat.
        path: String,
    },
    /// `mkdir`.
    Mkdir {
        /// Path to create.
        path: String,
    },
    /// `unlink`.
    Unlink {
        /// Path to remove.
        path: String,
    },
    /// `getdents` over a whole directory.
    ReadDir {
        /// Directory path.
        path: String,
    },
    /// Computation or an unsupported syscall: "wait commands were inserted
    /// … we assume that computation and the unsupported syscalls require
    /// the same time on both systems" (§5.6).
    Wait {
        /// Cycles to spend.
        cycles: u64,
    },
}

/// Generates the trace of sequentially reading a file of `size` bytes with
/// `buf` -byte reads (what `strace cat file` looks like).
pub fn file_read_trace(path: &str, size: u64, buf: usize) -> Vec<TraceOp> {
    let mut ops = vec![TraceOp::Open {
        path: path.to_string(),
        write: false,
        create: false,
        trunc: false,
    }];
    let mut left = size;
    while left > 0 {
        let n = left.min(buf as u64);
        ops.push(TraceOp::Read { len: n as usize });
        left -= n;
    }
    ops.push(TraceOp::Read { len: buf }); // the EOF-detecting read
    ops.push(TraceOp::Close);
    ops
}

/// Generates the trace of creating a file of `size` bytes with `buf`-byte
/// writes.
pub fn file_write_trace(path: &str, size: u64, buf: usize) -> Vec<TraceOp> {
    let mut ops = vec![TraceOp::Open {
        path: path.to_string(),
        write: true,
        create: true,
        trunc: true,
    }];
    let mut left = size;
    while left > 0 {
        let n = left.min(buf as u64);
        ops.push(TraceOp::Write { len: n as usize });
        left -= n;
    }
    ops.push(TraceOp::Close);
    ops
}

/// Replays a trace against libm3 (the filesystem must be mounted).
///
/// # Errors
///
/// Propagates the first failing operation's error.
pub async fn replay_m3(env: &Env, ops: &[TraceOp]) -> Result<()> {
    let mut file: Option<Box<dyn vfs::File>> = None;
    let mut buf = vec![0u8; 64 * 1024];
    for op in ops {
        match op {
            TraceOp::Open {
                path,
                write,
                create,
                trunc,
            } => {
                let mut flags = OpenFlags::R;
                if *write {
                    flags = flags.or(OpenFlags::W);
                }
                if *create {
                    flags = flags.or(OpenFlags::CREATE);
                }
                if *trunc {
                    flags = flags.or(OpenFlags::TRUNC);
                }
                file = Some(vfs::open(env, path, flags).await?);
            }
            TraceOp::Read { len } => {
                if let Some(f) = file.as_mut() {
                    let want = (*len).min(buf.len());
                    let _ = f.read(&mut buf[..want]).await?;
                }
            }
            TraceOp::Write { len } => {
                if let Some(f) = file.as_mut() {
                    let data = vec![b'x'; *len];
                    let mut written = 0;
                    while written < data.len() {
                        written += f.write(&data[written..]).await?;
                    }
                }
            }
            TraceOp::Close => {
                if let Some(mut f) = file.take() {
                    f.close().await?;
                }
            }
            TraceOp::Stat { path } => {
                let _ = vfs::stat(env, path).await?;
            }
            TraceOp::Mkdir { path } => {
                vfs::mkdir(env, path).await?;
            }
            TraceOp::Unlink { path } => {
                vfs::unlink(env, path).await?;
            }
            TraceOp::ReadDir { path } => {
                let _ = vfs::read_dir(env, path).await?;
            }
            TraceOp::Wait { cycles } => {
                env.compute(Cycles::new(*cycles)).await;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_trace_shape() {
        let ops = file_read_trace("/f", 10_000, 4096);
        // open + ceil(10000/4096)=3 reads + eof read + close
        assert_eq!(ops.len(), 1 + 3 + 1 + 1);
        assert!(matches!(ops[0], TraceOp::Open { .. }));
        assert!(matches!(ops.last(), Some(TraceOp::Close)));
        assert_eq!(
            ops[3],
            TraceOp::Read {
                len: 10_000 - 2 * 4096
            }
        );
    }

    #[test]
    fn write_trace_shape() {
        let ops = file_write_trace("/f", 8192, 4096);
        assert_eq!(ops.len(), 1 + 2 + 1);
        assert!(matches!(
            ops[0],
            TraceOp::Open {
                write: true,
                create: true,
                trunc: true,
                ..
            }
        ));
    }
}
