//! The evaluation workloads of the paper's §5, implemented natively for
//! both operating systems.
//!
//! The paper implements cat+tr by hand for both systems and replays strace
//! recordings of BusyBox tar/untar/find and sqlite on M3 (§5.6). Here every
//! workload is implemented once as *pure logic* (tar byte format, FFT math,
//! SQL engine, tree generation) plus two thin OS bindings:
//!
//! - [`m3app`] — against libm3 (VPEs, pipes, the m3fs VFS),
//! - [`lxapp`] — against the Linux model (fork, pipes, tmpfs, sendfile).
//!
//! A syscall-trace [`trace`] replayer mirrors the paper's methodology as
//! an alternative path.

pub mod fft;
pub mod lxapp;
pub mod m3app;
pub mod sqlwork;
pub mod tarfmt;
pub mod timer_dev;
pub mod trace;
pub mod workload;
